// Ablation: where should the cache tables live? The paper places them on
// SSDs attached to each database node ("the cache tables reside on SSDs
// ... retrieving the data is always done through a clustered index
// lookup", Sec. 5.4) and argues disk-resident caches beat memory caches
// on capacity. This ablation quantifies the choice by running the same
// hit workload with the cache tables on SSD (default), on the HDD
// arrays, and with the cache disabled.

#include <cstdio>

#include "bench_util.h"

namespace {

double RunHitWorkload(turbdb::TurbDB* db, int64_t n, double rms,
                      double factor) {
  using namespace turbdb;
  using namespace turbdb::bench;
  const ClusterConfig& config = db->mediator().config();
  double total = 0.0;
  for (double multiple : {4.4, 6.0, 8.0}) {
    ThresholdQuery query;
    query.dataset = "mhd";
    query.raw_field = "velocity";
    query.derived_field = "vorticity";
    query.timestep = 0;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = multiple * rms;
    auto warm = db->Threshold(query);  // Populate (or recompute).
    if (!warm.ok()) return -1.0;
    auto hit = db->Threshold(query);
    if (!hit.ok()) return -1.0;
    total += ProjectToPaperScale(*hit, config, factor).Total();
  }
  return total / 3.0;
}

}  // namespace

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  const int64_t n = BenchGridN();
  const double factor = PaperScaleFactor(n);
  PrintHeader("Ablation: cache placement (SSD vs HDD vs no cache)");

  struct Config {
    const char* label;
    DeviceSpec device;
    uint64_t capacity;
  } configs[] = {
      {"SSD cache (paper)", DeviceSpec::Ssd(), 200ULL << 30},
      {"HDD cache", DeviceSpec::HddArray(), 200ULL << 30},
      {"no cache", DeviceSpec::Ssd(), 0},
  };

  std::printf("\n%-22s %20s\n", "configuration",
              "mean query time (s)");
  for (const Config& config : configs) {
    TurbDBConfig db_config;
    db_config.cluster.num_nodes = 4;
    db_config.cluster.processes_per_node = 4;
    db_config.cluster.cost.ssd = config.device;
    db_config.cluster.cost.cache_capacity_bytes = config.capacity;
    auto db = TurbDB::Open(db_config);
    if (!db.ok()) return 1;
    if (!(*db)->CreateDataset(MakeMhdDataset("mhd", n, 1)).ok()) return 1;
    if (!(*db)
             ->IngestSyntheticField("mhd", "velocity", DefaultMhdSpec(2015),
                                    0, 1)
             .ok()) {
      return 1;
    }
    const double rms =
        MeasureRms(db->get(), "mhd", "velocity", "vorticity", 0, n);
    const double mean = RunHitWorkload(db->get(), n, rms, factor);
    if (mean < 0) return 1;
    std::printf("%-22s %18.2f\n", config.label, mean);
  }
  std::printf("\nexpected: most of the win over 'no cache' (~50-100x) comes "
              "from skipping the raw I/O and kernel computation regardless "
              "of the cache medium; the SSD buys another ~4-5x over HDD "
              "cache tables because hit scans are seek-bound on the "
              "contended arrays — supporting the paper's placement of the "
              "cache tables on dedicated SSDs (Secs. 4, 5.4).\n");
  return 0;
}
