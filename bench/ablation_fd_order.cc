// Ablation: finite-difference order. The kernel half-width sets the
// boundary band exchanged between nodes (DESIGN.md, "halo exchange vs
// redundant reads"); higher orders read more halo atoms and cost more
// flops per point. This quantifies the I/O and compute cost of orders
// 2-8 for the same vorticity threshold query, plus the remote (cross-
// node) byte volume the halo exchange generates.

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  const int64_t n = BenchGridN();
  const double factor = PaperScaleFactor(n);
  PrintHeader("Ablation: finite-difference order (vorticity threshold)");

  auto db = MakeMhdBenchDb(4, 4, n, 1);
  if (!db) return 1;
  const ClusterConfig& config = db->mediator().config();
  const double rms =
      MeasureRms(db.get(), "mhd", "velocity", "vorticity", 0, n);

  std::printf("\n%-7s %8s %10s %10s %12s %12s %10s\n", "order", "halo",
              "io (s)", "compute(s)", "local MB", "remote MB", "points");
  for (int order : {2, 4, 6, 8}) {
    ThresholdQuery query;
    query.dataset = "mhd";
    query.raw_field = "velocity";
    query.derived_field = "vorticity";
    query.timestep = 0;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = 6.0 * rms;
    query.fd_order = order;
    QueryOptions options;
    options.use_cache = false;
    auto result = db->Threshold(query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    IoCounters io;
    for (const NodeExecutionStats& stats : result->node_stats) {
      io += stats.io;
    }
    const TimeBreakdown time = ProjectToPaperScale(*result, config, factor);
    std::printf("%-7d %8d %10.1f %10.1f %12.1f %12.1f %10zu\n", order,
                order / 2, time.io_s, time.compute_s,
                static_cast<double>(io.bytes_read_local) / 1e6,
                static_cast<double>(io.bytes_read_remote) / 1e6,
                result->points.size());
  }
  std::printf("\nexpected: compute grows linearly with the stencil width, "
              "but I/O is IDENTICAL for orders 2-8 — the boundary band is "
              "read at database-atom (8^3) granularity and a half-width of "
              "1-4 points always lands in the same one-atom halo layer. "
              "This is why the JHTDB can offer high-order derivatives at "
              "no extra I/O cost. The point count shifts slightly as the "
              "derivative estimates sharpen.\n");
  return 0;
}
