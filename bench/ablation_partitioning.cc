// Ablation: Morton z-order sharding (the JHTDB layout, Sec. 2) versus
// naive z-slab sharding. The derived-field kernels need a halo band from
// adjacent shards; the cross-node traffic is proportional to the shard
// surface area. Morton shards are compact (cube-ish), z-slabs are thin
// slices, so the slab layout ships more halo bytes as the node count
// grows — the quantitative argument for the paper's choice of the
// space-filling curve.

#include <cinttypes>
#include <cstdio>

#include "bench_util.h"

namespace {

struct Traffic {
  uint64_t remote_atoms = 0;
  uint64_t remote_bytes = 0;
  uint64_t local_bytes = 0;
  double io_s = 0.0;
};

turbdb::Result<Traffic> Measure(turbdb::PartitionStrategy strategy, int nodes,
                                int64_t n) {
  using namespace turbdb;
  using namespace turbdb::bench;
  TurbDBConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.processes_per_node = 1;
  config.cluster.partition_strategy = strategy;
  TURBDB_ASSIGN_OR_RETURN(std::unique_ptr<TurbDB> db,
                          TurbDB::Open(config));
  TURBDB_RETURN_NOT_OK(db->CreateDataset(MakeMhdDataset("mhd", n, 1)));
  TURBDB_RETURN_NOT_OK(db->IngestSyntheticField("mhd", "velocity",
                                                DefaultMhdSpec(2015), 0, 1));
  const double rms = MeasureRms(db.get(), "mhd", "velocity", "vorticity", 0, n);
  ThresholdQuery query;
  query.dataset = "mhd";
  query.raw_field = "velocity";
  query.derived_field = "vorticity";
  query.timestep = 0;
  query.box = Box3::WholeGrid(n, n, n);
  query.threshold = 6.0 * rms;
  QueryOptions options;
  options.use_cache = false;
  TURBDB_ASSIGN_OR_RETURN(ThresholdResult result,
                          db->Threshold(query, options));
  Traffic traffic;
  for (const NodeExecutionStats& stats : result.node_stats) {
    traffic.remote_atoms += stats.io.atoms_read_remote;
    traffic.remote_bytes += stats.io.bytes_read_remote;
    traffic.local_bytes += stats.io.bytes_read_local;
    traffic.io_s = std::max(traffic.io_s, stats.time.io_s);
  }
  return traffic;
}

}  // namespace

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  const int64_t n = BenchGridN();
  PrintHeader("Ablation: Morton z-order vs z-slab sharding (halo traffic)");
  std::printf("vorticity threshold over a full %lld^3 time-step, "
              "1 process/node\n\n",
              static_cast<long long>(n));
  std::printf("%-7s %-9s %14s %14s %12s %10s\n", "nodes", "layout",
              "remote atoms", "remote MB", "local MB", "io (s)");
  for (int nodes : {2, 4, 8}) {
    for (PartitionStrategy strategy :
         {PartitionStrategy::kMorton, PartitionStrategy::kZSlabs}) {
      auto traffic = Measure(strategy, nodes, n);
      if (!traffic.ok()) {
        std::fprintf(stderr, "measurement failed: %s\n",
                     traffic.status().ToString().c_str());
        return 1;
      }
      std::printf("%-7d %-9s %14" PRIu64 " %14.1f %12.1f %10.3f\n", nodes,
                  strategy == PartitionStrategy::kMorton ? "morton"
                                                         : "z-slabs",
                  traffic->remote_atoms,
                  static_cast<double>(traffic->remote_bytes) / 1e6,
                  static_cast<double>(traffic->local_bytes) / 1e6,
                  traffic->io_s);
    }
  }
  std::printf("\nexpected: at higher node counts, Morton's compact shards "
              "exchange fewer halo atoms than thin z-slabs (at very low "
              "node counts slabs can win: a 2-way slab cut has only two "
              "internal faces).\n");
  return 0;
}
