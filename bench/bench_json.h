#pragma once

// Provenance stamping for the BENCH_*.json result files: every writer
// opens its JSON object with WriteProvenance so a result is traceable to
// the exact code (git SHA, injected at configure time), the moment it
// ran (UTC, runtime) and the cluster shape it measured (topology string
// supplied by the benchmark). Keys are stable and append-only; scripts
// (tools/check.sh, EXPERIMENTS.md tooling) rely on them.

#include <cstdio>
#include <ctime>
#include <string>

namespace turbdb {
namespace bench {

/// Short git SHA of the built tree, injected per-target by CMake
/// (`TURBDB_GIT_SHA` compile definition); "unknown" when the build did
/// not run inside a git checkout.
inline const char* GitSha() {
#ifdef TURBDB_GIT_SHA
  return TURBDB_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Current wall-clock time as an ISO-8601 UTC string
/// (e.g. "2026-08-09T14:03:12Z").
inline std::string UtcTimestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &utc);
  return buf;
}

/// Emits the provenance member (with a trailing comma) into an open JSON
/// object. `topology` describes what was measured — a host:port list for
/// TCP benchmarks, or a shape like "in-process 4x4" for modeled runs.
inline void WriteProvenance(std::FILE* json, const std::string& topology) {
  std::fprintf(json,
               "  \"provenance\": {\"git_sha\": \"%s\", "
               "\"timestamp_utc\": \"%s\", \"topology\": \"%s\"},\n",
               GitSha(), UtcTimestamp().c_str(), topology.c_str());
}

}  // namespace bench
}  // namespace turbdb
