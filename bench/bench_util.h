#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/turbdb.h"

namespace turbdb {
namespace bench {

/// Grid edge used by the figure benchmarks. The paper's datasets are
/// 1024^3; the reproduction defaults to 128^3 so every figure regenerates
/// in seconds (override with TURBDB_BENCH_N). All headline comparisons
/// are ratios/shapes, which are scale-invariant here; EXPERIMENTS.md
/// records the mapping.
inline int64_t BenchGridN() {
  const char* env = std::getenv("TURBDB_BENCH_N");
  if (env != nullptr) {
    const long value = std::strtol(env, nullptr, 10);
    if (value >= 32) return value;
  }
  return 128;
}

inline int32_t BenchTimesteps() {
  const char* env = std::getenv("TURBDB_BENCH_T");
  if (env != nullptr) {
    const long value = std::strtol(env, nullptr, 10);
    if (value >= 1) return static_cast<int32_t>(value);
  }
  return 4;
}

/// Builds the benchmark stand-in for the paper's MHD dataset: velocity
/// and magnetic fields (independent seeds) on an n^3 periodic grid,
/// sharded over `nodes` database nodes.
inline std::unique_ptr<TurbDB> MakeMhdBenchDb(
    int nodes, int processes, int64_t n, int32_t timesteps,
    uint64_t seed = 2015, const ClusterTopology* topology = nullptr) {
  TurbDBConfig config;
  config.cluster.num_nodes = nodes;
  config.cluster.processes_per_node = processes;
  if (topology != nullptr) config.cluster.topology = *topology;
  auto db = TurbDB::Open(config);
  if (!db.ok()) {
    std::fprintf(stderr, "TurbDB::Open failed: %s\n",
                 db.status().ToString().c_str());
    return nullptr;
  }
  Status status =
      (*db)->CreateDataset(MakeMhdDataset("mhd", n, timesteps));
  if (status.ok()) {
    status = (*db)->IngestSyntheticField("mhd", "velocity",
                                         DefaultMhdSpec(seed), 0, timesteps);
  }
  if (status.ok()) {
    status = (*db)->IngestSyntheticField(
        "mhd", "magnetic", DefaultMhdSpec(seed * 7919 + 13), 0, timesteps);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "ingest failed: %s\n", status.ToString().c_str());
    return nullptr;
  }
  return std::move(db).value();
}

/// RMS of a derived field's norm over one whole time-step.
inline double MeasureRms(TurbDB* db, const std::string& dataset,
                         const std::string& raw, const std::string& derived,
                         int32_t timestep, int64_t n) {
  FieldStatsQuery query;
  query.dataset = dataset;
  query.raw_field = raw;
  query.derived_field = derived;
  query.timestep = timestep;
  query.box = Box3::WholeGrid(n, n, n);
  auto stats = db->FieldStats(query);
  if (!stats.ok()) {
    std::fprintf(stderr, "stats failed: %s\n",
                 stats.status().ToString().c_str());
    return 0.0;
  }
  return stats->rms;
}

inline void PrintHeader(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// Volume ratio between the paper's 1024^3 time-steps and the benchmark
/// grid. Because I/O bytes, kernel work and result sizes all scale with
/// the point count (the threshold fractions are scale-free), multiplying
/// the volume-proportional time components by this factor projects the
/// modeled times onto the paper's dataset size; per-call latencies stay
/// fixed. EXPERIMENTS.md compares these projections against the paper's
/// absolute numbers.
inline double PaperScaleFactor(int64_t n) {
  const double r = 1024.0 / static_cast<double>(n);
  return r * r * r;
}

/// Projects a threshold result's modeled breakdown to paper scale.
///
/// Interior (owned) bytes and kernel work scale with the volume ratio
/// `factor`, but halo bytes scale with the shard *surface*, i.e. with
/// factor^(2/3): at 128^3 a node's boundary band is ~50-100% of its
/// interior, while at the paper's 1024^3 it is only a few percent ("only
/// a small amount of data along the boundary", Sec. 4). The projection
/// therefore splits the measured I/O time by the real interior/halo byte
/// counters before scaling.
inline TimeBreakdown ProjectToPaperScale(const ThresholdResult& result,
                                         const ClusterConfig& config,
                                         double factor) {
  TimeBreakdown out;
  out.cache_lookup_s = result.time.cache_lookup_s * factor;
  out.compute_s = result.time.compute_s * factor;

  uint64_t atoms_read = 0;
  uint64_t bytes_read = 0;
  uint64_t points_evaluated = 0;
  for (const NodeExecutionStats& stats : result.node_stats) {
    atoms_read += stats.io.atoms_read_local + stats.io.atoms_read_remote;
    bytes_read += stats.io.bytes_read_local + stats.io.bytes_read_remote;
    points_evaluated += stats.io.points_evaluated;
  }
  double io_scale = factor;
  if (atoms_read > 0 && points_evaluated > 0) {
    const double bytes_per_point =
        static_cast<double>(bytes_read) /
        (static_cast<double>(atoms_read) * 512.0);
    const double interior_bytes =
        static_cast<double>(points_evaluated) * bytes_per_point;
    const double halo_bytes =
        std::max(0.0, static_cast<double>(bytes_read) - interior_bytes);
    const double projected_bytes =
        interior_bytes * factor + halo_bytes * std::cbrt(factor * factor);
    io_scale = projected_bytes / static_cast<double>(bytes_read);
  }
  out.io_s = result.time.io_s * io_scale;
  const double participants =
      result.node_stats.empty()
          ? static_cast<double>(config.num_nodes)
          : static_cast<double>(result.node_stats.size());
  out.mediator_db_comm_s =
      participants *
          (config.cost.mediator_dispatch_s + config.cost.lan.latency_s) +
      static_cast<double>(result.result_bytes_binary) * factor /
          config.cost.lan.bandwidth_bps;
  out.mediator_user_comm_s =
      config.cost.wan.latency_s +
      static_cast<double>(result.result_bytes_xml) * factor /
          config.cost.wan.bandwidth_bps;
  return out;
}

}  // namespace bench
}  // namespace turbdb
