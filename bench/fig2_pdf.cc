// Reproduces Figure 2: the probability density function of the norm of
// the vorticity field for a representative time-step of the MHD dataset.
// The paper plots point counts per 10-unit vorticity bin on a log axis;
// with thresholds rescaled by the RMS, the shape to reproduce is a heavy
// right tail spanning ~8 decades from the modal bin to the extreme bin.

#include <cinttypes>
#include <cmath>
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  const int64_t n = BenchGridN();
  PrintHeader("Figure 2: PDF of the vorticity norm (MHD dataset)");
  std::printf("grid %lldx%lldx%lld, 4 nodes, 4 processes/node\n",
              static_cast<long long>(n), static_cast<long long>(n),
              static_cast<long long>(n));

  auto db = MakeMhdBenchDb(/*nodes=*/4, /*processes=*/4, n, /*timesteps=*/1);
  if (!db) return 1;

  const double rms =
      MeasureRms(db.get(), "mhd", "velocity", "vorticity", 0, n);
  std::printf("vorticity norm RMS = %.3f (paper: ~10.0)\n", rms);

  // The paper's bins are 10 vorticity units wide with RMS ~10, i.e. one
  // RMS per bin; we use the same relative binning.
  PdfQuery query;
  query.dataset = "mhd";
  query.raw_field = "velocity";
  query.derived_field = "vorticity";
  query.timestep = 0;
  query.box = Box3::WholeGrid(n, n, n);
  query.bin_width = rms;
  query.num_bins = 9;
  auto pdf = db->Pdf(query);
  if (!pdf.ok()) {
    std::fprintf(stderr, "pdf failed: %s\n", pdf.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%-18s %14s %12s\n", "vorticity bin", "points", "fraction");
  for (size_t bin = 0; bin < pdf->counts.size(); ++bin) {
    char label[64];
    if (bin + 1 < pdf->counts.size()) {
      std::snprintf(label, sizeof(label), "[%.0f,%.0f)",
                    bin * query.bin_width, (bin + 1) * query.bin_width);
    } else {
      std::snprintf(label, sizeof(label), "[%.0f,..)",
                    bin * query.bin_width);
    }
    std::printf("%-18s %14" PRIu64 " %12.3e\n", label, pdf->counts[bin],
                static_cast<double>(pdf->counts[bin]) /
                    static_cast<double>(pdf->total_points));
  }
  std::printf("\nmodeled query time: %s\n", pdf->time.ToString().c_str());
  std::printf("wall time: %.3fs\n", pdf->wall_seconds);
  std::printf("paper shape check: counts fall monotonically over ~6-8 "
              "decades with a non-empty extreme bin.\n");
  return 0;
}
