// Reproduces the Figure 3 analysis: the locations of maximum vorticity
// across all time-steps are clustered with a friends-of-friends
// algorithm in 4-D (space + time), and the cluster containing the most
// intense event is examined. The paper's observations to reproduce:
// the top cluster spans multiple time-steps (it develops and decays
// within the stored time span), and several "worms" interact — i.e. the
// intense points form a small number of elongated spatial clusters
// rather than a diffuse cloud.

#include <cstdio>

#include "analysis/fof.h"
#include "bench_util.h"

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  const int64_t n = BenchGridN();
  const int32_t timesteps = BenchTimesteps();
  PrintHeader("Figure 3: 4-D friends-of-friends clustering of intense "
              "vorticity events");
  std::printf("grid %lld^3, %d time-steps\n", static_cast<long long>(n),
              timesteps);

  auto db = MakeMhdBenchDb(4, 4, n, timesteps);
  if (!db) return 1;
  const double rms =
      MeasureRms(db.get(), "mhd", "velocity", "vorticity", 0, n);

  // Gather the extreme points of every time-step (threshold well into
  // the intermittent tail).
  std::vector<FofPoint> all_points;
  for (int32_t t = 0; t < timesteps; ++t) {
    ThresholdQuery query;
    query.dataset = "mhd";
    query.raw_field = "velocity";
    query.derived_field = "vorticity";
    query.timestep = t;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = 5.0 * rms;
    auto result = db->Threshold(query);
    if (!result.ok()) {
      std::fprintf(stderr, "threshold failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::vector<FofPoint> points = ToFofPoints(result->points, t);
    all_points.insert(all_points.end(), points.begin(), points.end());
    std::printf("t=%d: %zu points above 5x RMS\n", t, points.size());
  }

  // 4-D clustering: spatial linking length of 3 grid cells, temporal
  // linking of 1 step (as in the paper's friends-of-friends analysis).
  auto clusters = db->ClusterPoints("mhd", all_points,
                                    /*linking_length=*/3.0,
                                    /*time_linking=*/1);
  if (!clusters.ok()) {
    std::fprintf(stderr, "clustering failed: %s\n",
                 clusters.status().ToString().c_str());
    return 1;
  }

  std::printf("\n%zu spacetime clusters; top 5 by peak vorticity:\n",
              clusters->size());
  std::printf("%-6s %8s %10s %8s %8s %24s\n", "rank", "points", "max|w|/rms",
              "t_min", "t_max", "centroid (x,y,z)");
  int rank = 0;
  for (const FofCluster& cluster : *clusters) {
    if (rank >= 5) break;
    std::printf("%-6d %8zu %10.1f %8d %8d     (%6.1f, %6.1f, %6.1f)\n",
                ++rank, cluster.size(), cluster.max_norm / rms,
                cluster.t_min, cluster.t_max, cluster.centroid[0],
                cluster.centroid[1], cluster.centroid[2]);
  }

  if (!clusters->empty()) {
    const FofCluster& top = clusters->front();
    // Record the most intense event in the landmark database (Sec. 7).
    db->landmarks().AddCluster("mhd", "velocity:vorticity", 5.0 * rms,
                               all_points, top);
    std::printf("\nmost intense event: cluster of %zu points spanning "
                "time-steps [%d, %d] (%s)\n",
                top.size(), top.t_min, top.t_max,
                top.t_max > top.t_min
                    ? "persists across steps, as in the paper"
                    : "single-step event");
    std::printf("landmark database now holds %zu landmark(s).\n",
                db->landmarks().size());
  }
  return 0;
}
