// Reproduces Figure 4 and the Sec. 4 sizing facts: the set of points
// with vorticity norms above 7x (and 8x) the RMS value in one time-step.
// Paper (1024^3 MHD): ~2.4e5 points above 7x RMS (~0.02% of the grid);
// values above 8x RMS are ~25% of the maximum and ~2.6e5 points fit a
// 1e6-point cap comfortably. The shape to reproduce: multiples of the
// RMS between 4x and 8x select sparse sets (1e-5..1e-3 of all points),
// and the maximum sits tens of RMS above the mean.

// TCP mode: with TURBDB_TOPOLOGY="host:port" pointing at a running
// turbdb_server, the same sweep runs over the wire (TURBDB_BENCH_N must
// match the server's --n, default 64) — the live-cluster smoke for the
// whole-grid threshold path.

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "bench_util.h"
#include "cluster/topology.h"
#include "net/client.h"

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  std::unique_ptr<net::Client> client;
  int64_t n = BenchGridN();
  if (const char* topology_spec = std::getenv("TURBDB_TOPOLOGY")) {
    auto topology = ParseTopology(topology_spec);
    if (!topology.ok() || topology->size() == 0) {
      std::fprintf(stderr, "bad TURBDB_TOPOLOGY: %s\n", topology_spec);
      return 1;
    }
    const NodeAddress& address = topology->nodes.front();
    n = 64;  // turbdb_server's --n default; TURBDB_BENCH_N overrides.
    if (const char* env = std::getenv("TURBDB_BENCH_N")) {
      const long value = std::strtol(env, nullptr, 10);
      if (value >= 16) n = value;
    }
    client = std::make_unique<net::Client>(address.host, address.port);
    if (!client->Ping().ok()) {
      std::fprintf(stderr, "server %s unreachable\n",
                   address.ToString().c_str());
      return 3;
    }
  }

  PrintHeader("Figure 4: points above multiples of the RMS vorticity");
  std::unique_ptr<TurbDB> db;
  if (client == nullptr) {
    db = MakeMhdBenchDb(4, 4, n, 1);
    if (!db) return 1;
  } else {
    std::printf("(over TCP, grid %lld^3)\n", static_cast<long long>(n));
  }

  FieldStatsQuery stats_query;
  stats_query.dataset = "mhd";
  stats_query.raw_field = "velocity";
  stats_query.derived_field = "vorticity";
  stats_query.timestep = 0;
  stats_query.box = Box3::WholeGrid(n, n, n);
  auto stats = client != nullptr ? client->FieldStats(stats_query)
                                 : db->FieldStats(stats_query);
  if (!stats.ok()) {
    std::fprintf(stderr, "FieldStats failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("RMS = %.3f, max = %.3f (max/RMS = %.1f; paper: ~32)\n",
              stats->rms, stats->max, stats->max / stats->rms);

  const double total =
      static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(n);
  std::printf("\n%-12s %-12s %12s %12s %14s\n", "threshold", "(x RMS)",
              "points", "fraction", "paper fraction");
  const double paper_fraction[] = {8.47e-4, 8.1e-5, 2.3e-5, 4e-6};
  const double multiples[] = {4.4, 6.0, 7.0, 8.0};
  for (int i = 0; i < 4; ++i) {
    const double threshold = multiples[i] * stats->rms;
    ThresholdQuery query;
    query.dataset = "mhd";
    query.raw_field = "velocity";
    query.derived_field = "vorticity";
    query.timestep = 0;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = threshold;
    QueryOptions options;
    options.use_cache = false;
    auto result = client != nullptr ? client->Threshold(query, options)
                                    : db->Threshold(query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "threshold failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12.2f %-12.1f %12zu %12.3e %14.1e\n", threshold,
                multiples[i], result->points.size(),
                static_cast<double>(result->points.size()) / total,
                paper_fraction[i]);
  }
  std::printf("\n(paper fractions: 44.0->0.0847%%, 60.0->0.0081%%, "
              "7xRMS->2.4e5/1024^3, 80.0->0.0004%% of points)\n");
  return 0;
}
