// Reproduces Figure 7(a): vertical scaling of cold-cache threshold
// queries with 1-8 worker processes per node on a 4-node cluster.
// Paper shape: ~2x speedup at 2 processes, ~2.6x at 4, little additional
// gain at 8 — because compute parallelizes but the shared disk arrays
// scale sub-linearly and halo I/O redundancy grows with process count.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  const int64_t n = BenchGridN();
  const double factor = PaperScaleFactor(n);
  PrintHeader("Figure 7(a): scale-up with processes per node (4 nodes)");

  auto db = MakeMhdBenchDb(4, 1, n, 1);
  if (!db) return 1;
  const ClusterConfig& config = db->mediator().config();
  const double rms =
      MeasureRms(db.get(), "mhd", "velocity", "vorticity", 0, n);

  const struct {
    const char* label;
    double multiple;
  } kLevels[] = {{"low (44.0)", 4.4}, {"medium (60.0)", 6.0},
                 {"high (80.0)", 8.0}};

  std::printf("\n%-15s", "procs/node:");
  for (int procs : {1, 2, 4, 8}) std::printf(" %9d", procs);
  std::printf("\n");

  for (const auto& level : kLevels) {
    double base = 0.0;
    std::printf("%-15s", level.label);
    std::vector<double> speedups;
    for (int procs : {1, 2, 4, 8}) {
      ThresholdQuery query;
      query.dataset = "mhd";
      query.raw_field = "velocity";
      query.derived_field = "vorticity";
      query.timestep = 0;
      query.box = Box3::WholeGrid(n, n, n);
      query.threshold = level.multiple * rms;
      QueryOptions options;
      options.use_cache = false;  // Cold-cache evaluation from raw data.
      options.processes_per_node = procs;
      auto result = db->Threshold(query, options);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      const double total =
          ProjectToPaperScale(*result, config, factor).Total();
      if (procs == 1) base = total;
      std::printf(" %8.2fx", base / total);
    }
    std::printf("\n");
  }
  std::printf("%-15s %9s %9s %9s %9s\n", "linear", "1.00x", "2.00x", "4.00x",
              "8.00x");
  std::printf("%-15s %9s %9s %9s %9s\n", "paper", "1.0x", "~2.0x", "~2.6x",
              "~2.8x");
  return 0;
}
