// Reproduces Figure 7(b): horizontal scaling of cold-cache threshold
// queries across 1-8 database nodes (one worker process per node).
// Paper shape: nearly perfect linear speedup, because the computation is
// embarrassingly parallel and each added node contributes its own disks
// and memory.

#include <cstdio>
#include <cstdlib>
#include <map>

#include "bench_util.h"
#include "wire/serializer.h"

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  const int64_t n = BenchGridN();
  const double factor = PaperScaleFactor(n);
  PrintHeader("Figure 7(b): scale-out across database nodes (1 proc/node)");
  std::printf("(each column is a separately provisioned cluster ingesting "
              "the same dataset)\n");

  const struct {
    const char* label;
    double multiple;
  } kLevels[] = {{"low (44.0)", 4.4}, {"medium (60.0)", 6.0},
                 {"high (80.0)", 8.0}};

  // nodes -> level -> projected total seconds.
  std::map<int, std::map<int, double>> times;
  double rms = 0.0;
  for (int nodes : {1, 2, 4, 8}) {
    auto db = MakeMhdBenchDb(nodes, 1, n, 1);
    if (!db) return 1;
    const ClusterConfig& config = db->mediator().config();
    if (rms == 0.0) {
      rms = MeasureRms(db.get(), "mhd", "velocity", "vorticity", 0, n);
    }
    for (int level = 0; level < 3; ++level) {
      ThresholdQuery query;
      query.dataset = "mhd";
      query.raw_field = "velocity";
      query.derived_field = "vorticity";
      query.timestep = 0;
      query.box = Box3::WholeGrid(n, n, n);
      query.threshold = kLevels[level].multiple * rms;
      QueryOptions options;
      options.use_cache = false;
      auto result = db->Threshold(query, options);
      if (!result.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      times[nodes][level] = ProjectToPaperScale(*result, config, factor).Total();
    }
  }

  std::printf("\n%-15s", "nodes:");
  for (int nodes : {1, 2, 4, 8}) std::printf(" %9d", nodes);
  std::printf("\n");
  for (int level = 0; level < 3; ++level) {
    std::printf("%-15s", kLevels[level].label);
    const double base = times[1][level];
    for (int nodes : {1, 2, 4, 8}) {
      std::printf(" %8.2fx", base / times[nodes][level]);
    }
    std::printf("\n");
  }
  std::printf("%-15s %9s %9s %9s %9s\n", "linear", "1.00x", "2.00x", "4.00x",
              "8.00x");
  std::printf("paper: nearly perfect linear speedup at all thresholds.\n");

  // Optional distributed column: TURBDB_TOPOLOGY="host:port,host:port,..."
  // points at running turbdb_node processes. The same queries go through
  // the mediator's remote scatter-gather path and must return the exact
  // point set the in-process cluster of the same size does.
  const char* topology_env = std::getenv("TURBDB_TOPOLOGY");
  if (topology_env != nullptr) {
    auto topology = ParseTopology(topology_env);
    if (!topology.ok()) {
      std::fprintf(stderr, "bad TURBDB_TOPOLOGY: %s\n",
                   topology.status().ToString().c_str());
      return 1;
    }
    const int nodes = static_cast<int>(topology->size());
    std::printf("\nDistributed run over %d turbdb_node processes (%s):\n",
                nodes, topology->ToString().c_str());
    auto remote_db = MakeMhdBenchDb(nodes, 1, n, 1, 2015, &*topology);
    auto local_db = MakeMhdBenchDb(nodes, 1, n, 1);
    if (!remote_db || !local_db) return 1;
    const ClusterConfig& config = remote_db->mediator().config();
    for (int level = 0; level < 3; ++level) {
      ThresholdQuery query;
      query.dataset = "mhd";
      query.raw_field = "velocity";
      query.derived_field = "vorticity";
      query.timestep = 0;
      query.box = Box3::WholeGrid(n, n, n);
      query.threshold = kLevels[level].multiple * rms;
      QueryOptions options;
      options.use_cache = false;
      auto remote = remote_db->Threshold(query, options);
      auto local = local_db->Threshold(query, options);
      if (!remote.ok() || !local.ok()) {
        std::fprintf(stderr, "distributed query failed: %s\n",
                     (!remote.ok() ? remote.status() : local.status())
                         .ToString()
                         .c_str());
        return 1;
      }
      const bool identical = EncodePointsBinary(remote->points) ==
                             EncodePointsBinary(local->points);
      std::printf("%-15s %8.2fs modeled, %zu points, byte-identical to "
                  "in-process: %s\n",
                  kLevels[level].label,
                  ProjectToPaperScale(*remote, config, factor).Total(),
                  remote->points.size(), identical ? "yes" : "NO");
      if (!identical) return 1;
    }
  }
  return 0;
}
