// Reproduces Figure 8: total running time of medium-threshold queries vs
// the time taken to perform the I/O only, for 1-8 processes per node.
// Paper shape: I/O is about half the total at low process counts; I/O
// time decreases mildly with processes (partitioned files drive the disk
// arrays in parallel) but far from linearly; and the total at 4-8
// processes is about equal to the I/O-only time at 1 process.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  const int64_t n = BenchGridN();
  const double factor = PaperScaleFactor(n);
  PrintHeader("Figure 8: total vs I/O-only execution time (medium threshold)");

  auto db = MakeMhdBenchDb(4, 1, n, 1);
  if (!db) return 1;
  const ClusterConfig& config = db->mediator().config();
  const double rms =
      MeasureRms(db.get(), "mhd", "velocity", "vorticity", 0, n);

  std::printf("\n%-12s %14s %14s %10s\n", "procs/node", "total (s)",
              "I/O only (s)", "io/total");
  double total_1proc = 0.0;
  double io_only_1proc = 0.0;
  for (int procs : {1, 2, 4, 8}) {
    ThresholdQuery query;
    query.dataset = "mhd";
    query.raw_field = "velocity";
    query.derived_field = "vorticity";
    query.timestep = 0;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = 6.0 * rms;

    QueryOptions options;
    options.use_cache = false;
    options.processes_per_node = procs;
    auto total = db->Threshold(query, options);
    if (!total.ok()) return 1;

    options.io_only = true;
    auto io_only = db->Threshold(query, options);
    if (!io_only.ok()) return 1;

    const double total_s = ProjectToPaperScale(*total, config, factor).Total();
    const double io_s =
        ProjectToPaperScale(*io_only, config, factor).Total();
    if (procs == 1) {
      total_1proc = total_s;
      io_only_1proc = io_s;
    }
    std::printf("%-12d %14.1f %14.1f %9.0f%%\n", procs, total_s, io_s,
                100.0 * io_s / total_s);
  }
  std::printf("\npaper: ~260/130 s at 1 proc, ~120/70 s at 4, ~110/65 s at "
              "8; total@4-8 procs ~= I/O-only@1 proc (here: %.1f vs %.1f).\n",
              total_1proc, io_only_1proc);
  return 0;
}
