// Reproduces Figure 9: breakdown of threshold-query execution time into
// cache lookup, I/O, compute, mediator<->DB and mediator<->user
// communication, for three fields at three threshold levels, on both a
// cold cache (a-c) and a warm cache (d-f).
//
// Paper shapes to reproduce:
//  - misses are dominated by I/O + compute; Q-criterion compute exceeds
//    vorticity compute (all 9 gradient components, non-linear combination)
//    while their I/O matches (same kernel support);
//  - the magnetic field (a raw stored field) has almost no compute and
//    less I/O (no halo);
//  - cache-lookup time is negligible in every case;
//  - on hits the time is dominated by transferring the result to the
//    user, and the mediator/user terms match the miss case.

#include <cstdio>
#include <vector>

#include "bench_util.h"

namespace {

struct FieldCase {
  const char* title;
  const char* raw;
  const char* derived;
  const char* paper_counts;
};

}  // namespace

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  const int64_t n = BenchGridN();
  const double factor = PaperScaleFactor(n);
  const double total_points =
      static_cast<double>(n) * static_cast<double>(n) * static_cast<double>(n);
  PrintHeader("Figure 9: execution-time breakdown (4 nodes x 4 procs)");
  std::printf("times are modeled seconds projected to 1024^3 scale\n");

  auto db = MakeMhdBenchDb(4, 4, n, 1);
  if (!db) return 1;
  const ClusterConfig& config = db->mediator().config();

  const FieldCase kFields[] = {
      {"(a/d) vorticity", "velocity", "vorticity",
       "4247 / 86580 / 909274 of 1024^3"},
      {"(b/e) q_criterion", "velocity", "q_criterion",
       "3801 / 75062 / 809735 of 1024^3"},
      {"(c/f) magnetic magnitude", "magnetic", "magnitude",
       "1452 / 11195 / 939716 of 1024^3"},
  };
  // Result-set fractions matching the paper's high/medium/low runs.
  const double kFractions[] = {4.0e-6, 8.0e-5, 8.0e-4};

  for (const FieldCase& field : kFields) {
    std::printf("\n--- %s (paper result sizes: %s) ---\n", field.title,
                field.paper_counts);
    std::printf("%-10s %8s | %8s %8s %8s %8s %8s %9s | %8s\n", "level",
                "points", "cache", "io", "compute", "db_comm", "usr_comm",
                "total", "hit(s)");
    for (double fraction : kFractions) {
      // Pick the threshold whose result set has the paper's fraction by
      // taking the k-th largest norm.
      const uint64_t k = std::max<uint64_t>(
          4, static_cast<uint64_t>(fraction * total_points));
      TopKQuery topk;
      topk.dataset = "mhd";
      topk.raw_field = field.raw;
      topk.derived_field = field.derived;
      topk.timestep = 0;
      topk.box = Box3::WholeGrid(n, n, n);
      topk.k = k;
      auto pivot = db->TopK(topk);
      if (!pivot.ok() || pivot->points.empty()) {
        std::fprintf(stderr, "topk failed\n");
        return 1;
      }
      const double threshold = pivot->points.back().norm;

      ThresholdQuery query;
      query.dataset = "mhd";
      query.raw_field = field.raw;
      query.derived_field = field.derived;
      query.timestep = 0;
      query.box = Box3::WholeGrid(n, n, n);
      query.threshold = threshold;

      if (!db->DropCache("mhd", field.raw, field.derived, 0).ok()) return 1;
      auto miss = db->Threshold(query);
      if (!miss.ok()) {
        std::fprintf(stderr, "miss failed: %s\n",
                     miss.status().ToString().c_str());
        return 1;
      }
      auto hit = db->Threshold(query);
      if (!hit.ok() || !hit->all_cache_hits) {
        std::fprintf(stderr, "expected a hit\n");
        return 1;
      }
      const TimeBreakdown miss_time =
          ProjectToPaperScale(*miss, config, factor);
      const TimeBreakdown hit_time = ProjectToPaperScale(*hit, config, factor);
      std::printf("%-10.0e %8zu | %8.2f %8.1f %8.1f %8.2f %8.2f %9.1f | %8.2f\n",
                  fraction, miss->points.size(), miss_time.cache_lookup_s,
                  miss_time.io_s, miss_time.compute_s,
                  miss_time.mediator_db_comm_s,
                  miss_time.mediator_user_comm_s, miss_time.Total(),
                  hit_time.Total());
    }
  }
  std::printf("\nshape checks: io(q_criterion) ~= io(vorticity); "
              "compute(q) > compute(vorticity); magnetic has ~no compute "
              "and less io; cache lookup negligible; hits dominated by "
              "user transfer.\n");
  return 0;
}
