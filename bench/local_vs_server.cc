// Reproduces the Sec. 1 / Sec. 5.3 comparison: evaluating a threshold of
// a derived field server-side (the integrated method) versus the user
// downloading the derived field and thresholding locally. The paper
// reports that a collaborator's local evaluation of one time-step took
// over 20 hours, while the integrated method takes under two minutes
// cold and seconds when cached.
//
// The local path requires shipping the velocity gradient (9 components
// vs the velocity's 3) of an entire time-step over the user's link,
// XML-wrapped by the SOAP web service.

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  const int64_t n = BenchGridN();
  const double factor = PaperScaleFactor(n);
  PrintHeader("Sec. 5.3: integrated server-side evaluation vs local "
              "download-and-threshold");

  auto db = MakeMhdBenchDb(4, 4, n, 1);
  if (!db) return 1;
  const ClusterConfig& config = db->mediator().config();
  const double rms =
      MeasureRms(db.get(), "mhd", "velocity", "vorticity", 0, n);

  ThresholdQuery query;
  query.dataset = "mhd";
  query.raw_field = "velocity";
  query.derived_field = "vorticity";
  query.timestep = 0;
  query.box = Box3::WholeGrid(n, n, n);
  query.threshold = 6.0 * rms;

  if (!db->DropCache("mhd", "velocity", "vorticity", 0).ok()) return 1;
  auto miss = db->Threshold(query);
  if (!miss.ok()) return 1;
  auto hit = db->Threshold(query);
  if (!hit.ok() || !hit->all_cache_hits) return 1;
  const double integrated_s =
      ProjectToPaperScale(*miss, config, factor).Total();
  const double cached_s = ProjectToPaperScale(*hit, config, factor).Total();

  // Local evaluation: the server computes the velocity gradient (same
  // I/O and a 9-component kernel) and the user downloads all of it,
  // XML-wrapped, then thresholds locally (local thresholding itself is
  // fast and ignored, as in the paper).
  const double paper_points = 1024.0 * 1024.0 * 1024.0;
  const uint64_t gradient_bytes_binary =
      static_cast<uint64_t>(paper_points) * 9 * sizeof(float);
  // Per-value XML footprint, measured from our SOAP-style encoder:
  // "<V>%.9g</V>"-scale elements run ~28 bytes per scalar.
  const double xml_bytes_per_value = 28.0;
  const double gradient_bytes_xml =
      paper_points * 9 * xml_bytes_per_value;
  const double server_side_s =
      ProjectToPaperScale(*miss, config, factor).io_s +       // Same reads.
      ProjectToPaperScale(*miss, config, factor).compute_s * 1.5;  // 9 comps.
  const double transfer_s =
      gradient_bytes_xml / config.cost.wan.bandwidth_bps;
  const double local_total_s = server_side_s + transfer_s;

  std::printf("\n%-42s %14s\n", "method", "time");
  std::printf("%-42s %12.1f s\n",
              "integrated threshold query (cold cache)", integrated_s);
  std::printf("%-42s %12.1f s\n", "integrated threshold query (cache hit)",
              cached_s);
  std::printf("%-42s %12.1f s  (%.1f h)\n",
              "download velocity gradient + threshold", local_total_s,
              local_total_s / 3600.0);
  std::printf("\nvelocity gradient of one 1024^3 time-step: %.0f GB binary, "
              "%.0f GB XML-wrapped\n",
              gradient_bytes_binary / 1e9, gradient_bytes_xml / 1e9);
  std::printf("paper: local evaluation took a collaborator over 20 hours; "
              "integrated evaluation runs in under two minutes, seconds "
              "when cached.\n");
  std::printf("speedup integrated vs local: %.0fx (cold), %.0fx (cached)\n",
              local_total_s / integrated_s, local_total_s / cached_s);
  return 0;
}
