// Micro-benchmarks (google-benchmark) for the hot paths underneath the
// threshold-query engine: Morton coding, box-to-range decomposition,
// derived-field kernels, result serialization, cache lookups and
// friends-of-friends clustering.

#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "analysis/fof.h"
#include "array/morton.h"
#include "array/slab.h"
#include "cache/semantic_cache.h"
#include "common/logging.h"
#include "common/rng.h"
#include "datagen/turbulence.h"
#include "fields/derived_field.h"
#include "fields/differentiator.h"
#include "wire/serializer.h"

namespace turbdb {
namespace {

void BM_MortonEncode(benchmark::State& state) {
  uint32_t x = 123, y = 456, z = 789;
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonEncode3(x, y, z));
    ++x;
  }
}
BENCHMARK(BM_MortonEncode);

void BM_MortonDecode(benchmark::State& state) {
  uint64_t code = 0x123456789ABCDEFULL & ((1ULL << 63) - 1);
  uint32_t x, y, z;
  for (auto _ : state) {
    MortonDecode3(code, &x, &y, &z);
    benchmark::DoNotOptimize(x + y + z);
    ++code;
  }
}
BENCHMARK(BM_MortonDecode);

void BM_MortonRangesForBox(benchmark::State& state) {
  const uint32_t side = static_cast<uint32_t>(state.range(0));
  const uint32_t lo[3] = {3, 5, 7};
  const uint32_t hi[3] = {3 + side, 5 + side, 7 + side};
  for (auto _ : state) {
    benchmark::DoNotOptimize(MortonRangesForBox(lo, hi));
  }
}
BENCHMARK(BM_MortonRangesForBox)->Arg(8)->Arg(32)->Arg(128);

/// Shared fixture state: a 48^3 slab of synthetic velocity with halo.
struct KernelFixture {
  KernelFixture() : geometry(GridGeometry::Isotropic(48)) {
    TurbulenceSpec spec;
    spec.num_modes = 24;
    spec.num_tubes = 8;
    SyntheticField field(spec, geometry, 3);
    const Box3 region = geometry.Bounds().Grown(4);
    slab = Slab(region, 3);
    double value[3];
    for (int64_t z = region.lo[2]; z < region.hi[2]; ++z) {
      for (int64_t y = region.lo[1]; y < region.hi[1]; ++y) {
        for (int64_t x = region.lo[0]; x < region.hi[0]; ++x) {
          field.EvaluateAtNode(0, geometry.WrapIndex(0, x),
                               geometry.WrapIndex(1, y),
                               geometry.WrapIndex(2, z), value);
          for (int c = 0; c < 3; ++c) {
            slab.At(x, y, z, c) = static_cast<float>(value[c]);
          }
        }
      }
    }
  }
  GridGeometry geometry;
  Slab slab;
};

KernelFixture& Fixture() {
  static KernelFixture fixture;
  return fixture;
}

template <typename Kernel>
void RunKernelBench(benchmark::State& state, int order) {
  KernelFixture& fixture = Fixture();
  auto diff = Differentiator::Create(fixture.geometry, order);
  Kernel kernel;
  int64_t i = 0;
  const int64_t n = fixture.geometry.nx();
  for (auto _ : state) {
    const int64_t x = i % n;
    const int64_t y = (i / n) % n;
    const int64_t z = (i / n / n) % n;
    benchmark::DoNotOptimize(kernel.NormAt(fixture.slab, *diff, x, y, z));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_VorticityNorm(benchmark::State& state) {
  RunKernelBench<CurlField>(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_VorticityNorm)->Arg(2)->Arg(4)->Arg(8);

void BM_QCriterionNorm(benchmark::State& state) {
  RunKernelBench<QCriterionField>(state, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_QCriterionNorm)->Arg(4);

void BM_MagnitudeNorm(benchmark::State& state) {
  RunKernelBench<MagnitudeField>(state, 4);
}
BENCHMARK(BM_MagnitudeNorm);

std::vector<ThresholdPoint> RandomPoints(size_t count) {
  SplitMix64 rng(99);
  std::vector<ThresholdPoint> points;
  points.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    points.push_back(MakeThresholdPoint(
        static_cast<uint32_t>(rng.NextBounded(1024)),
        static_cast<uint32_t>(rng.NextBounded(1024)),
        static_cast<uint32_t>(rng.NextBounded(1024)),
        static_cast<float>(rng.NextDouble(1.0, 300.0))));
  }
  std::sort(points.begin(), points.end(),
            [](const ThresholdPoint& a, const ThresholdPoint& b) {
              return a.zindex < b.zindex;
            });
  return points;
}

void BM_EncodePointsBinary(benchmark::State& state) {
  const auto points = RandomPoints(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodePointsBinary(points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodePointsBinary)->Arg(1000)->Arg(100000);

void BM_EncodePointsXml(benchmark::State& state) {
  const auto points = RandomPoints(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodePointsXml(points));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EncodePointsXml)->Arg(1000)->Arg(100000);

void BM_CacheLookupHit(benchmark::State& state) {
  TransactionManager txn_manager;
  SemanticCache cache(&txn_manager, DeviceSpec::Ssd(), 1ULL << 30);
  const Box3 region = Box3::WholeGrid(256, 256, 256);
  const auto points = RandomPoints(static_cast<size_t>(state.range(0)));
  TURBDB_CHECK_OK(
      cache.Insert("d", "f", 0, 4, region, 10.0, points));
  for (auto _ : state) {
    auto lookup = cache.Lookup("d", "f", 0, 4, region, 20.0);
    benchmark::DoNotOptimize(lookup);
  }
}
BENCHMARK(BM_CacheLookupHit)->Arg(1000)->Arg(100000);

void BM_FriendsOfFriends(benchmark::State& state) {
  const auto raw = RandomPoints(static_cast<size_t>(state.range(0)));
  const auto points = ToFofPoints(raw, 0);
  FofParams params;
  params.linking_length = 8.0;
  params.periodic_extent = {1024.0, 1024.0, 1024.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(FriendsOfFriends(points, params));
  }
}
BENCHMARK(BM_FriendsOfFriends)->Arg(1000)->Arg(30000);

}  // namespace
}  // namespace turbdb

BENCHMARK_MAIN();
