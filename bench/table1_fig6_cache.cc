// Reproduces Table 1 / Figure 6: effectiveness of the application-aware
// cache. For vorticity thresholds at three levels (high/medium/low,
// chosen as the RMS multiples that reproduce the paper's result-set
// fractions), compares:
//   - "no cache":   the cache is bypassed entirely;
//   - "cache miss": entries for the queried time-step are dropped first,
//                   so the query pays lookup + raw evaluation + insert;
//   - "cache hit":  the same query again, served from the cache.
// Paper findings to reproduce: miss overhead < 3% of the no-cache time,
// and hits over an order of magnitude faster (97.1 / 100.2 / 0.5 s etc.).

#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  const int64_t n = BenchGridN();
  const double factor = PaperScaleFactor(n);
  PrintHeader("Table 1 / Figure 6: cache effectiveness (vorticity)");
  std::printf("grid %lld^3, 4 nodes x 4 processes; times are modeled "
              "seconds projected to the paper's 1024^3 scale (x%.0f)\n",
              static_cast<long long>(n), factor);

  auto db = MakeMhdBenchDb(4, 4, n, 1);
  if (!db) return 1;
  const ClusterConfig& config = db->mediator().config();
  const double rms =
      MeasureRms(db.get(), "mhd", "velocity", "vorticity", 0, n);

  // Warm the cache with unrelated queries so lookups scan a realistic
  // cacheInfo table (the paper pre-populates with several hundred
  // unrelated entries).
  for (double multiple : {5.0, 5.5, 6.5, 7.5}) {
    ThresholdQuery query;
    query.dataset = "mhd";
    query.raw_field = "magnetic";
    query.derived_field = "current";
    query.timestep = 0;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = multiple * rms;
    (void)db->Threshold(query);
  }

  const struct {
    const char* label;
    double multiple;
    const char* paper;
  } kLevels[] = {
      {"high   (80.0)", 8.0, "97.1 / 100.2 /  0.5 s, 4247 pts"},
      {"medium (60.0)", 6.0, "113.7 / 115.9 /  1.2 s, 86580 pts"},
      {"low    (44.0)", 4.4, "111.6 / 115.0 /  9.1 s, 909274 pts"},
  };

  std::printf("\n%-15s %9s %12s %12s %12s %10s %9s\n", "threshold", "points",
              "no-cache(s)", "miss(s)", "hit(s)", "overhead%", "speedup");
  for (const auto& level : kLevels) {
    ThresholdQuery query;
    query.dataset = "mhd";
    query.raw_field = "velocity";
    query.derived_field = "vorticity";
    query.timestep = 0;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = level.multiple * rms;

    constexpr int kReps = 3;
    double no_cache_s = 0.0;
    double miss_s = 0.0;
    double hit_s = 0.0;
    size_t points = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      QueryOptions no_cache;
      no_cache.use_cache = false;
      auto baseline = db->Threshold(query, no_cache);
      if (!baseline.ok()) {
        std::fprintf(stderr, "no-cache failed: %s\n",
                     baseline.status().ToString().c_str());
        return 1;
      }
      no_cache_s +=
          ProjectToPaperScale(*baseline, config, factor).Total();

      // Drop this time-step's entries to force a miss (paper Sec. 5.2).
      if (!db->DropCache("mhd", "velocity", "vorticity", 0).ok()) return 1;
      auto miss = db->Threshold(query);
      if (!miss.ok()) return 1;
      if (miss->all_cache_hits) {
        std::fprintf(stderr, "expected a cache miss\n");
        return 1;
      }
      miss_s += ProjectToPaperScale(*miss, config, factor).Total();

      auto hit = db->Threshold(query);
      if (!hit.ok()) return 1;
      if (!hit->all_cache_hits) {
        std::fprintf(stderr, "expected a cache hit\n");
        return 1;
      }
      hit_s += ProjectToPaperScale(*hit, config, factor).Total();
      points = hit->points.size();
    }
    no_cache_s /= kReps;
    miss_s /= kReps;
    hit_s /= kReps;
    std::printf("%-15s %9zu %12.1f %12.1f %12.2f %9.1f%% %8.1fx\n",
                level.label, points, no_cache_s, miss_s, hit_s,
                100.0 * (miss_s - no_cache_s) / no_cache_s,
                miss_s / hit_s);
    std::printf("%-15s paper: %s\n", "", level.paper);
  }
  std::printf("\nshape checks: miss overhead < 3%%; hit speedup > 10x.\n");
  return 0;
}
