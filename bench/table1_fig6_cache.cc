// Reproduces Table 1 / Figure 6: effectiveness of the application-aware
// cache. For vorticity thresholds at three levels (high/medium/low,
// chosen as the RMS multiples that reproduce the paper's result-set
// fractions), compares:
//   - "no cache":   the cache is bypassed entirely;
//   - "cache miss": entries for the queried time-step are dropped first,
//                   so the query pays lookup + raw evaluation + insert;
//   - "cache hit":  the same query again, served from the cache.
// Paper findings to reproduce: miss overhead < 3% of the no-cache time,
// and hits over an order of magnitude faster (97.1 / 100.2 / 0.5 s etc.).
//
// TCP mode: with TURBDB_TOPOLOGY="host:port" pointing at a running
// turbdb_server (the mediator endpoint), the same cold / warm / subsumed
// cycle runs over the wire with real wall-clock timing — cold pays node
// dispatch + kernel evaluation, warm is served from the mediator-tier
// result cache, subsumed (sub-box, higher threshold) from the same entry
// by containment. Results land in BENCH_cache.json (override the path
// with TURBDB_BENCH_JSON). TURBDB_BENCH_N must match the server's --n
// (default 64).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>

#include "bench_json.h"
#include "bench_util.h"
#include "cluster/topology.h"
#include "net/client.h"

namespace {

using namespace turbdb;
using namespace turbdb::bench;

double WallMs(const std::function<bool()>& call) {
  const auto start = std::chrono::steady_clock::now();
  if (!call()) return -1.0;
  const auto end = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(end - start).count();
}

/// The cold / warm / subsumed measurement cycle against a live
/// turbdb_server, emitting BENCH_cache.json.
int RunOverTcp(const char* topology_spec) {
  auto topology = ParseTopology(topology_spec);
  if (!topology.ok() || topology->size() == 0) {
    std::fprintf(stderr, "bad TURBDB_TOPOLOGY: %s\n", topology_spec);
    return 1;
  }
  const NodeAddress& address = topology->nodes.front();
  // The server's demo grid defaults to --n 64; TURBDB_BENCH_N overrides.
  int64_t n = 64;
  if (const char* env = std::getenv("TURBDB_BENCH_N")) {
    const long value = std::strtol(env, nullptr, 10);
    if (value >= 16) n = value;
  }
  PrintHeader("Mediator cache over TCP: cold / warm / subsumed");
  std::printf("server %s, grid %lld^3 (set TURBDB_BENCH_N to the server's "
              "--n)\n\n",
              address.ToString().c_str(), static_cast<long long>(n));

  net::Client client(address.host, address.port);
  if (!client.Ping().ok()) {
    std::fprintf(stderr, "server %s unreachable\n",
                 address.ToString().c_str());
    return 3;
  }

  FieldStatsQuery stats_query;
  stats_query.dataset = "mhd";
  stats_query.raw_field = "velocity";
  stats_query.derived_field = "vorticity";
  stats_query.timestep = 0;
  stats_query.box = Box3::WholeGrid(n, n, n);
  auto field_stats = client.FieldStats(stats_query);
  if (!field_stats.ok()) {
    std::fprintf(stderr,
                 "FieldStats failed (TURBDB_BENCH_N mismatch with the "
                 "server's --n?): %s\n",
                 field_stats.status().ToString().c_str());
    return 1;
  }
  const double rms = field_stats->rms;

  const struct {
    const char* label;
    double multiple;
  } kLevels[] = {{"high", 8.0}, {"medium", 6.0}, {"low", 4.4}};

  struct LevelRow {
    const char* label;
    double threshold = 0.0;
    size_t points = 0;
    double cold_ms = 0.0;
    double warm_ms = 0.0;
    double subsumed_ms = 0.0;
  };
  LevelRow rows[3];

  std::printf("%-8s %9s %12s %12s %12s %9s %9s\n", "level", "points",
              "cold(ms)", "warm(ms)", "subsumed(ms)", "warm-x", "sub-x");
  for (int i = 0; i < 3; ++i) {
    ThresholdQuery query;
    query.dataset = "mhd";
    query.raw_field = "velocity";
    query.derived_field = "vorticity";
    query.timestep = 0;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = kLevels[i].multiple * rms;

    // Cold: both cache tiers dropped first, so the query pays node
    // dispatch + raw reads + kernel evaluation.
    net::DropCacheRequest drop;
    drop.dataset = "mhd";
    drop.raw_field = "velocity";
    drop.derived_field = "vorticity";
    drop.timestep = -1;
    if (!client.DropCache(drop).ok()) {
      std::fprintf(stderr, "DropCache failed\n");
      return 1;
    }
    Result<ThresholdResult> last = Status::Internal("not run");
    auto run = [&](const ThresholdQuery& q) {
      return WallMs([&]() {
        last = client.Threshold(q);
        return last.ok();
      });
    };
    const double cold_ms = run(query);
    if (cold_ms < 0) {
      std::fprintf(stderr, "cold query failed: %s\n",
                   last.status().ToString().c_str());
      return 1;
    }
    const size_t points = last->points.size();

    // Warm: the identical query, now a mediator-cache hit (min of 3).
    double warm_ms = -1.0;
    for (int rep = 0; rep < 3; ++rep) {
      const double ms = run(query);
      if (ms < 0) return 1;
      if (warm_ms < 0 || ms < warm_ms) warm_ms = ms;
    }

    // Subsumed: a sub-box at a higher threshold, answered from the same
    // whole-grid entry by containment.
    ThresholdQuery sub = query;
    sub.box = Box3(n / 8, n / 8, n / 8, 5 * n / 8, 5 * n / 8, 5 * n / 8);
    sub.threshold = query.threshold * 1.25;
    double subsumed_ms = -1.0;
    for (int rep = 0; rep < 3; ++rep) {
      const double ms = run(sub);
      if (ms < 0) return 1;
      if (subsumed_ms < 0 || ms < subsumed_ms) subsumed_ms = ms;
    }

    rows[i] = {kLevels[i].label, query.threshold, points,
               cold_ms,          warm_ms,         subsumed_ms};
    std::printf("%-8s %9zu %12.2f %12.2f %12.2f %8.1fx %8.1fx\n",
                kLevels[i].label, points, cold_ms, warm_ms, subsumed_ms,
                cold_ms / warm_ms, cold_ms / subsumed_ms);
  }

  auto cache_stats = client.CacheStats();
  auto server_stats = client.ServerStats();
  if (!cache_stats.ok() || !server_stats.ok()) {
    std::fprintf(stderr, "stats RPC failed\n");
    return 1;
  }
  if (cache_stats->hits == 0) {
    std::fprintf(stderr, "server reports no cache hits — is the mediator "
                         "cache enabled (--mediator-cache-mb)?\n");
    return 1;
  }
  std::printf("\ncache: %llu hits (%llu subsumed) / %llu misses, "
              "%llu entries, %llu bytes (governor in-use %llu)\n",
              static_cast<unsigned long long>(cache_stats->hits),
              static_cast<unsigned long long>(cache_stats->subsumption_hits),
              static_cast<unsigned long long>(cache_stats->misses),
              static_cast<unsigned long long>(cache_stats->entries),
              static_cast<unsigned long long>(cache_stats->bytes),
              static_cast<unsigned long long>(
                  server_stats->result_bytes_in_use));

  const char* json_path = std::getenv("TURBDB_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_cache.json";
  FILE* json = std::fopen(json_path, "w");
  if (json == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(json, "{\n");
  WriteProvenance(json, address.ToString());
  std::fprintf(json, "  \"mode\": \"tcp\",\n  \"server\": \"%s\",\n"
               "  \"grid_n\": %lld,\n  \"levels\": [\n",
               address.ToString().c_str(), static_cast<long long>(n));
  for (int i = 0; i < 3; ++i) {
    const LevelRow& row = rows[i];
    std::fprintf(
        json,
        "    {\"label\": \"%s\", \"threshold\": %.6f, \"points\": %zu, "
        "\"cold_ms\": %.3f, \"warm_ms\": %.3f, \"subsumed_ms\": %.3f, "
        "\"warm_speedup\": %.2f, \"subsumed_speedup\": %.2f}%s\n",
        row.label, row.threshold, row.points, row.cold_ms, row.warm_ms,
        row.subsumed_ms, row.cold_ms / row.warm_ms,
        row.cold_ms / row.subsumed_ms, i + 1 < 3 ? "," : "");
  }
  std::fprintf(
      json,
      "  ],\n  \"cache\": {\"hits\": %llu, \"subsumption_hits\": %llu, "
      "\"misses\": %llu, \"entries\": %llu, \"bytes\": %llu},\n"
      "  \"governor\": {\"result_bytes_in_use\": %llu, "
      "\"cache_bytes\": %llu}\n}\n",
      static_cast<unsigned long long>(cache_stats->hits),
      static_cast<unsigned long long>(cache_stats->subsumption_hits),
      static_cast<unsigned long long>(cache_stats->misses),
      static_cast<unsigned long long>(cache_stats->entries),
      static_cast<unsigned long long>(cache_stats->bytes),
      static_cast<unsigned long long>(server_stats->result_bytes_in_use),
      static_cast<unsigned long long>(server_stats->cache_bytes));
  std::fclose(json);
  std::printf("wrote %s\n", json_path);
  return 0;
}

}  // namespace

int main() {
  using namespace turbdb;
  using namespace turbdb::bench;

  // TCP mode: measure the live server instead of the in-process model.
  if (const char* topology = std::getenv("TURBDB_TOPOLOGY")) {
    return RunOverTcp(topology);
  }

  const int64_t n = BenchGridN();
  const double factor = PaperScaleFactor(n);
  PrintHeader("Table 1 / Figure 6: cache effectiveness (vorticity)");
  std::printf("grid %lld^3, 4 nodes x 4 processes; times are modeled "
              "seconds projected to the paper's 1024^3 scale (x%.0f)\n",
              static_cast<long long>(n), factor);

  auto db = MakeMhdBenchDb(4, 4, n, 1);
  if (!db) return 1;
  const ClusterConfig& config = db->mediator().config();
  const double rms =
      MeasureRms(db.get(), "mhd", "velocity", "vorticity", 0, n);

  // Warm the cache with unrelated queries so lookups scan a realistic
  // cacheInfo table (the paper pre-populates with several hundred
  // unrelated entries).
  for (double multiple : {5.0, 5.5, 6.5, 7.5}) {
    ThresholdQuery query;
    query.dataset = "mhd";
    query.raw_field = "magnetic";
    query.derived_field = "current";
    query.timestep = 0;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = multiple * rms;
    (void)db->Threshold(query);
  }

  const struct {
    const char* label;
    double multiple;
    const char* paper;
  } kLevels[] = {
      {"high   (80.0)", 8.0, "97.1 / 100.2 /  0.5 s, 4247 pts"},
      {"medium (60.0)", 6.0, "113.7 / 115.9 /  1.2 s, 86580 pts"},
      {"low    (44.0)", 4.4, "111.6 / 115.0 /  9.1 s, 909274 pts"},
  };

  std::printf("\n%-15s %9s %12s %12s %12s %10s %9s\n", "threshold", "points",
              "no-cache(s)", "miss(s)", "hit(s)", "overhead%", "speedup");
  for (const auto& level : kLevels) {
    ThresholdQuery query;
    query.dataset = "mhd";
    query.raw_field = "velocity";
    query.derived_field = "vorticity";
    query.timestep = 0;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = level.multiple * rms;

    constexpr int kReps = 3;
    double no_cache_s = 0.0;
    double miss_s = 0.0;
    double hit_s = 0.0;
    size_t points = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      QueryOptions no_cache;
      no_cache.use_cache = false;
      auto baseline = db->Threshold(query, no_cache);
      if (!baseline.ok()) {
        std::fprintf(stderr, "no-cache failed: %s\n",
                     baseline.status().ToString().c_str());
        return 1;
      }
      no_cache_s +=
          ProjectToPaperScale(*baseline, config, factor).Total();

      // Drop this time-step's entries to force a miss (paper Sec. 5.2).
      if (!db->DropCache("mhd", "velocity", "vorticity", 0).ok()) return 1;
      auto miss = db->Threshold(query);
      if (!miss.ok()) return 1;
      if (miss->all_cache_hits) {
        std::fprintf(stderr, "expected a cache miss\n");
        return 1;
      }
      miss_s += ProjectToPaperScale(*miss, config, factor).Total();

      auto hit = db->Threshold(query);
      if (!hit.ok()) return 1;
      if (!hit->all_cache_hits) {
        std::fprintf(stderr, "expected a cache hit\n");
        return 1;
      }
      hit_s += ProjectToPaperScale(*hit, config, factor).Total();
      points = hit->points.size();
    }
    no_cache_s /= kReps;
    miss_s /= kReps;
    hit_s /= kReps;
    std::printf("%-15s %9zu %12.1f %12.1f %12.2f %9.1f%% %8.1fx\n",
                level.label, points, no_cache_s, miss_s, hit_s,
                100.0 * (miss_s - no_cache_s) / no_cache_s,
                miss_s / hit_s);
    std::printf("%-15s paper: %s\n", "", level.paper);
  }
  std::printf("\nshape checks: miss overhead < 3%%; hit speedup > 10x.\n");
  return 0;
}
