file(REMOVE_RECURSE
  "CMakeFiles/ablation_cache_device.dir/ablation_cache_device.cc.o"
  "CMakeFiles/ablation_cache_device.dir/ablation_cache_device.cc.o.d"
  "ablation_cache_device"
  "ablation_cache_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cache_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
