# Empty compiler generated dependencies file for ablation_cache_device.
# This may be replaced when dependencies are built.
