file(REMOVE_RECURSE
  "CMakeFiles/ablation_fd_order.dir/ablation_fd_order.cc.o"
  "CMakeFiles/ablation_fd_order.dir/ablation_fd_order.cc.o.d"
  "ablation_fd_order"
  "ablation_fd_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fd_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
