# Empty dependencies file for ablation_fd_order.
# This may be replaced when dependencies are built.
