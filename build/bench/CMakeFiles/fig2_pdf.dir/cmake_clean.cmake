file(REMOVE_RECURSE
  "CMakeFiles/fig2_pdf.dir/fig2_pdf.cc.o"
  "CMakeFiles/fig2_pdf.dir/fig2_pdf.cc.o.d"
  "fig2_pdf"
  "fig2_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
