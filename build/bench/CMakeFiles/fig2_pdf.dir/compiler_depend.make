# Empty compiler generated dependencies file for fig2_pdf.
# This may be replaced when dependencies are built.
