file(REMOVE_RECURSE
  "CMakeFiles/fig3_clusters.dir/fig3_clusters.cc.o"
  "CMakeFiles/fig3_clusters.dir/fig3_clusters.cc.o.d"
  "fig3_clusters"
  "fig3_clusters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_clusters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
