# Empty dependencies file for fig3_clusters.
# This may be replaced when dependencies are built.
