file(REMOVE_RECURSE
  "CMakeFiles/fig4_extreme_points.dir/fig4_extreme_points.cc.o"
  "CMakeFiles/fig4_extreme_points.dir/fig4_extreme_points.cc.o.d"
  "fig4_extreme_points"
  "fig4_extreme_points.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_extreme_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
