# Empty dependencies file for fig4_extreme_points.
# This may be replaced when dependencies are built.
