file(REMOVE_RECURSE
  "CMakeFiles/fig7a_scaleup.dir/fig7a_scaleup.cc.o"
  "CMakeFiles/fig7a_scaleup.dir/fig7a_scaleup.cc.o.d"
  "fig7a_scaleup"
  "fig7a_scaleup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7a_scaleup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
