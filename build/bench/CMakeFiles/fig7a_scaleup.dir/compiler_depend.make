# Empty compiler generated dependencies file for fig7a_scaleup.
# This may be replaced when dependencies are built.
