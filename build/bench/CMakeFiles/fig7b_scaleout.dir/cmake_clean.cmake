file(REMOVE_RECURSE
  "CMakeFiles/fig7b_scaleout.dir/fig7b_scaleout.cc.o"
  "CMakeFiles/fig7b_scaleout.dir/fig7b_scaleout.cc.o.d"
  "fig7b_scaleout"
  "fig7b_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7b_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
