# Empty compiler generated dependencies file for fig7b_scaleout.
# This may be replaced when dependencies are built.
