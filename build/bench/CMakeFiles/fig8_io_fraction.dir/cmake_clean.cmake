file(REMOVE_RECURSE
  "CMakeFiles/fig8_io_fraction.dir/fig8_io_fraction.cc.o"
  "CMakeFiles/fig8_io_fraction.dir/fig8_io_fraction.cc.o.d"
  "fig8_io_fraction"
  "fig8_io_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_io_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
