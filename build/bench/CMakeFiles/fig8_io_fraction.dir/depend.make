# Empty dependencies file for fig8_io_fraction.
# This may be replaced when dependencies are built.
