file(REMOVE_RECURSE
  "CMakeFiles/local_vs_server.dir/local_vs_server.cc.o"
  "CMakeFiles/local_vs_server.dir/local_vs_server.cc.o.d"
  "local_vs_server"
  "local_vs_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_vs_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
