# Empty compiler generated dependencies file for local_vs_server.
# This may be replaced when dependencies are built.
