file(REMOVE_RECURSE
  "CMakeFiles/table1_fig6_cache.dir/table1_fig6_cache.cc.o"
  "CMakeFiles/table1_fig6_cache.dir/table1_fig6_cache.cc.o.d"
  "table1_fig6_cache"
  "table1_fig6_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fig6_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
