# Empty dependencies file for table1_fig6_cache.
# This may be replaced when dependencies are built.
