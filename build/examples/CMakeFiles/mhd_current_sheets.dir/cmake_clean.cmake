file(REMOVE_RECURSE
  "CMakeFiles/mhd_current_sheets.dir/mhd_current_sheets.cpp.o"
  "CMakeFiles/mhd_current_sheets.dir/mhd_current_sheets.cpp.o.d"
  "mhd_current_sheets"
  "mhd_current_sheets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhd_current_sheets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
