# Empty dependencies file for mhd_current_sheets.
# This may be replaced when dependencies are built.
