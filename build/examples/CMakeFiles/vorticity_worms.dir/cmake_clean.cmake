file(REMOVE_RECURSE
  "CMakeFiles/vorticity_worms.dir/vorticity_worms.cpp.o"
  "CMakeFiles/vorticity_worms.dir/vorticity_worms.cpp.o.d"
  "vorticity_worms"
  "vorticity_worms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vorticity_worms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
