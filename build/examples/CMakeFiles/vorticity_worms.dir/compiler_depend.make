# Empty compiler generated dependencies file for vorticity_worms.
# This may be replaced when dependencies are built.
