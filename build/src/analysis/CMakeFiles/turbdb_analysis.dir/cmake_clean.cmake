file(REMOVE_RECURSE
  "CMakeFiles/turbdb_analysis.dir/fof.cc.o"
  "CMakeFiles/turbdb_analysis.dir/fof.cc.o.d"
  "CMakeFiles/turbdb_analysis.dir/landmark.cc.o"
  "CMakeFiles/turbdb_analysis.dir/landmark.cc.o.d"
  "CMakeFiles/turbdb_analysis.dir/particles.cc.o"
  "CMakeFiles/turbdb_analysis.dir/particles.cc.o.d"
  "libturbdb_analysis.a"
  "libturbdb_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
