file(REMOVE_RECURSE
  "libturbdb_analysis.a"
)
