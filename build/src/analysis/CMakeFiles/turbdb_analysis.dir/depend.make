# Empty dependencies file for turbdb_analysis.
# This may be replaced when dependencies are built.
