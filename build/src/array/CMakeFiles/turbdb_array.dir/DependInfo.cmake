
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/array/box.cc" "src/array/CMakeFiles/turbdb_array.dir/box.cc.o" "gcc" "src/array/CMakeFiles/turbdb_array.dir/box.cc.o.d"
  "/root/repo/src/array/geometry.cc" "src/array/CMakeFiles/turbdb_array.dir/geometry.cc.o" "gcc" "src/array/CMakeFiles/turbdb_array.dir/geometry.cc.o.d"
  "/root/repo/src/array/morton.cc" "src/array/CMakeFiles/turbdb_array.dir/morton.cc.o" "gcc" "src/array/CMakeFiles/turbdb_array.dir/morton.cc.o.d"
  "/root/repo/src/array/slab.cc" "src/array/CMakeFiles/turbdb_array.dir/slab.cc.o" "gcc" "src/array/CMakeFiles/turbdb_array.dir/slab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/turbdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
