file(REMOVE_RECURSE
  "CMakeFiles/turbdb_array.dir/box.cc.o"
  "CMakeFiles/turbdb_array.dir/box.cc.o.d"
  "CMakeFiles/turbdb_array.dir/geometry.cc.o"
  "CMakeFiles/turbdb_array.dir/geometry.cc.o.d"
  "CMakeFiles/turbdb_array.dir/morton.cc.o"
  "CMakeFiles/turbdb_array.dir/morton.cc.o.d"
  "CMakeFiles/turbdb_array.dir/slab.cc.o"
  "CMakeFiles/turbdb_array.dir/slab.cc.o.d"
  "libturbdb_array.a"
  "libturbdb_array.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
