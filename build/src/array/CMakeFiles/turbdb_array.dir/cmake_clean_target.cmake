file(REMOVE_RECURSE
  "libturbdb_array.a"
)
