# Empty dependencies file for turbdb_array.
# This may be replaced when dependencies are built.
