file(REMOVE_RECURSE
  "CMakeFiles/turbdb_cache.dir/semantic_cache.cc.o"
  "CMakeFiles/turbdb_cache.dir/semantic_cache.cc.o.d"
  "libturbdb_cache.a"
  "libturbdb_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
