file(REMOVE_RECURSE
  "libturbdb_cache.a"
)
