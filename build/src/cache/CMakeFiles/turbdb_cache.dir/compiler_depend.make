# Empty compiler generated dependencies file for turbdb_cache.
# This may be replaced when dependencies are built.
