file(REMOVE_RECURSE
  "CMakeFiles/turbdb_capi.dir/turbdb_c.cc.o"
  "CMakeFiles/turbdb_capi.dir/turbdb_c.cc.o.d"
  "libturbdb_capi.a"
  "libturbdb_capi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_capi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
