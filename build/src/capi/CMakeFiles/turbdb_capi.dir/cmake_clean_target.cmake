file(REMOVE_RECURSE
  "libturbdb_capi.a"
)
