# Empty dependencies file for turbdb_capi.
# This may be replaced when dependencies are built.
