file(REMOVE_RECURSE
  "CMakeFiles/turbdb_cluster.dir/mediator.cc.o"
  "CMakeFiles/turbdb_cluster.dir/mediator.cc.o.d"
  "CMakeFiles/turbdb_cluster.dir/network_model.cc.o"
  "CMakeFiles/turbdb_cluster.dir/network_model.cc.o.d"
  "CMakeFiles/turbdb_cluster.dir/node.cc.o"
  "CMakeFiles/turbdb_cluster.dir/node.cc.o.d"
  "CMakeFiles/turbdb_cluster.dir/partitioner.cc.o"
  "CMakeFiles/turbdb_cluster.dir/partitioner.cc.o.d"
  "libturbdb_cluster.a"
  "libturbdb_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
