file(REMOVE_RECURSE
  "libturbdb_cluster.a"
)
