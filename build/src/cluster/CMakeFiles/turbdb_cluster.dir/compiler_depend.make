# Empty compiler generated dependencies file for turbdb_cluster.
# This may be replaced when dependencies are built.
