file(REMOVE_RECURSE
  "CMakeFiles/turbdb_common.dir/crc32.cc.o"
  "CMakeFiles/turbdb_common.dir/crc32.cc.o.d"
  "CMakeFiles/turbdb_common.dir/logging.cc.o"
  "CMakeFiles/turbdb_common.dir/logging.cc.o.d"
  "CMakeFiles/turbdb_common.dir/profile.cc.o"
  "CMakeFiles/turbdb_common.dir/profile.cc.o.d"
  "CMakeFiles/turbdb_common.dir/status.cc.o"
  "CMakeFiles/turbdb_common.dir/status.cc.o.d"
  "CMakeFiles/turbdb_common.dir/thread_pool.cc.o"
  "CMakeFiles/turbdb_common.dir/thread_pool.cc.o.d"
  "libturbdb_common.a"
  "libturbdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
