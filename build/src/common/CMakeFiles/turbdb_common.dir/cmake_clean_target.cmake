file(REMOVE_RECURSE
  "libturbdb_common.a"
)
