# Empty compiler generated dependencies file for turbdb_common.
# This may be replaced when dependencies are built.
