file(REMOVE_RECURSE
  "CMakeFiles/turbdb_core.dir/turbdb.cc.o"
  "CMakeFiles/turbdb_core.dir/turbdb.cc.o.d"
  "libturbdb_core.a"
  "libturbdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
