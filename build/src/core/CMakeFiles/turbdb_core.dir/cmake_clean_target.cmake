file(REMOVE_RECURSE
  "libturbdb_core.a"
)
