# Empty compiler generated dependencies file for turbdb_core.
# This may be replaced when dependencies are built.
