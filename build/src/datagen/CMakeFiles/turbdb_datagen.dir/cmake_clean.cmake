file(REMOVE_RECURSE
  "CMakeFiles/turbdb_datagen.dir/turbulence.cc.o"
  "CMakeFiles/turbdb_datagen.dir/turbulence.cc.o.d"
  "libturbdb_datagen.a"
  "libturbdb_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
