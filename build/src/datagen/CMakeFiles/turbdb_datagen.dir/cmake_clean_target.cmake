file(REMOVE_RECURSE
  "libturbdb_datagen.a"
)
