# Empty dependencies file for turbdb_datagen.
# This may be replaced when dependencies are built.
