
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fields/derived_field.cc" "src/fields/CMakeFiles/turbdb_fields.dir/derived_field.cc.o" "gcc" "src/fields/CMakeFiles/turbdb_fields.dir/derived_field.cc.o.d"
  "/root/repo/src/fields/differentiator.cc" "src/fields/CMakeFiles/turbdb_fields.dir/differentiator.cc.o" "gcc" "src/fields/CMakeFiles/turbdb_fields.dir/differentiator.cc.o.d"
  "/root/repo/src/fields/field_registry.cc" "src/fields/CMakeFiles/turbdb_fields.dir/field_registry.cc.o" "gcc" "src/fields/CMakeFiles/turbdb_fields.dir/field_registry.cc.o.d"
  "/root/repo/src/fields/interpolator.cc" "src/fields/CMakeFiles/turbdb_fields.dir/interpolator.cc.o" "gcc" "src/fields/CMakeFiles/turbdb_fields.dir/interpolator.cc.o.d"
  "/root/repo/src/fields/stencil.cc" "src/fields/CMakeFiles/turbdb_fields.dir/stencil.cc.o" "gcc" "src/fields/CMakeFiles/turbdb_fields.dir/stencil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/array/CMakeFiles/turbdb_array.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/turbdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
