file(REMOVE_RECURSE
  "CMakeFiles/turbdb_fields.dir/derived_field.cc.o"
  "CMakeFiles/turbdb_fields.dir/derived_field.cc.o.d"
  "CMakeFiles/turbdb_fields.dir/differentiator.cc.o"
  "CMakeFiles/turbdb_fields.dir/differentiator.cc.o.d"
  "CMakeFiles/turbdb_fields.dir/field_registry.cc.o"
  "CMakeFiles/turbdb_fields.dir/field_registry.cc.o.d"
  "CMakeFiles/turbdb_fields.dir/interpolator.cc.o"
  "CMakeFiles/turbdb_fields.dir/interpolator.cc.o.d"
  "CMakeFiles/turbdb_fields.dir/stencil.cc.o"
  "CMakeFiles/turbdb_fields.dir/stencil.cc.o.d"
  "libturbdb_fields.a"
  "libturbdb_fields.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_fields.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
