file(REMOVE_RECURSE
  "libturbdb_fields.a"
)
