# Empty compiler generated dependencies file for turbdb_fields.
# This may be replaced when dependencies are built.
