file(REMOVE_RECURSE
  "CMakeFiles/turbdb_query.dir/query.cc.o"
  "CMakeFiles/turbdb_query.dir/query.cc.o.d"
  "libturbdb_query.a"
  "libturbdb_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
