file(REMOVE_RECURSE
  "libturbdb_query.a"
)
