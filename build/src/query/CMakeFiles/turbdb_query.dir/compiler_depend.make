# Empty compiler generated dependencies file for turbdb_query.
# This may be replaced when dependencies are built.
