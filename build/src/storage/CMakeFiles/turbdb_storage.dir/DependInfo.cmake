
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/atom_store.cc" "src/storage/CMakeFiles/turbdb_storage.dir/atom_store.cc.o" "gcc" "src/storage/CMakeFiles/turbdb_storage.dir/atom_store.cc.o.d"
  "/root/repo/src/storage/device.cc" "src/storage/CMakeFiles/turbdb_storage.dir/device.cc.o" "gcc" "src/storage/CMakeFiles/turbdb_storage.dir/device.cc.o.d"
  "/root/repo/src/storage/file_atom_store.cc" "src/storage/CMakeFiles/turbdb_storage.dir/file_atom_store.cc.o" "gcc" "src/storage/CMakeFiles/turbdb_storage.dir/file_atom_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/array/CMakeFiles/turbdb_array.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/turbdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
