file(REMOVE_RECURSE
  "CMakeFiles/turbdb_storage.dir/atom_store.cc.o"
  "CMakeFiles/turbdb_storage.dir/atom_store.cc.o.d"
  "CMakeFiles/turbdb_storage.dir/device.cc.o"
  "CMakeFiles/turbdb_storage.dir/device.cc.o.d"
  "CMakeFiles/turbdb_storage.dir/file_atom_store.cc.o"
  "CMakeFiles/turbdb_storage.dir/file_atom_store.cc.o.d"
  "libturbdb_storage.a"
  "libturbdb_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
