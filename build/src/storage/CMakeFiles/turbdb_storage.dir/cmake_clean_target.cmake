file(REMOVE_RECURSE
  "libturbdb_storage.a"
)
