# Empty compiler generated dependencies file for turbdb_storage.
# This may be replaced when dependencies are built.
