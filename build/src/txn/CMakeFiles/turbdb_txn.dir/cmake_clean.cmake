file(REMOVE_RECURSE
  "CMakeFiles/turbdb_txn.dir/txn_manager.cc.o"
  "CMakeFiles/turbdb_txn.dir/txn_manager.cc.o.d"
  "libturbdb_txn.a"
  "libturbdb_txn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_txn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
