file(REMOVE_RECURSE
  "libturbdb_txn.a"
)
