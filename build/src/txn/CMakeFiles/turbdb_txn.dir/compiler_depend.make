# Empty compiler generated dependencies file for turbdb_txn.
# This may be replaced when dependencies are built.
