file(REMOVE_RECURSE
  "CMakeFiles/turbdb_wire.dir/serializer.cc.o"
  "CMakeFiles/turbdb_wire.dir/serializer.cc.o.d"
  "libturbdb_wire.a"
  "libturbdb_wire.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_wire.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
