file(REMOVE_RECURSE
  "libturbdb_wire.a"
)
