# Empty compiler generated dependencies file for turbdb_wire.
# This may be replaced when dependencies are built.
