file(REMOVE_RECURSE
  "CMakeFiles/derived_field_test.dir/derived_field_test.cc.o"
  "CMakeFiles/derived_field_test.dir/derived_field_test.cc.o.d"
  "derived_field_test"
  "derived_field_test.pdb"
  "derived_field_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/derived_field_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
