file(REMOVE_RECURSE
  "CMakeFiles/differentiator_test.dir/differentiator_test.cc.o"
  "CMakeFiles/differentiator_test.dir/differentiator_test.cc.o.d"
  "differentiator_test"
  "differentiator_test.pdb"
  "differentiator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/differentiator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
