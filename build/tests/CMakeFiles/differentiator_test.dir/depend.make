# Empty dependencies file for differentiator_test.
# This may be replaced when dependencies are built.
