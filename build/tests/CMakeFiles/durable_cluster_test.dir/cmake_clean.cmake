file(REMOVE_RECURSE
  "CMakeFiles/durable_cluster_test.dir/durable_cluster_test.cc.o"
  "CMakeFiles/durable_cluster_test.dir/durable_cluster_test.cc.o.d"
  "durable_cluster_test"
  "durable_cluster_test.pdb"
  "durable_cluster_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durable_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
