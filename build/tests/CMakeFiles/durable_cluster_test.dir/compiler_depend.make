# Empty compiler generated dependencies file for durable_cluster_test.
# This may be replaced when dependencies are built.
