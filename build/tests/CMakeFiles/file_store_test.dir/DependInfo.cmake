
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/file_store_test.cc" "tests/CMakeFiles/file_store_test.dir/file_store_test.cc.o" "gcc" "tests/CMakeFiles/file_store_test.dir/file_store_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/turbdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/turbdb_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/turbdb_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/turbdb_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/turbdb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/fields/CMakeFiles/turbdb_fields.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/turbdb_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/txn/CMakeFiles/turbdb_txn.dir/DependInfo.cmake"
  "/root/repo/build/src/wire/CMakeFiles/turbdb_wire.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/turbdb_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/array/CMakeFiles/turbdb_array.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/turbdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
