file(REMOVE_RECURSE
  "CMakeFiles/fof_test.dir/fof_test.cc.o"
  "CMakeFiles/fof_test.dir/fof_test.cc.o.d"
  "fof_test"
  "fof_test.pdb"
  "fof_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fof_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
