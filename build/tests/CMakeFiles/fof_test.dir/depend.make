# Empty dependencies file for fof_test.
# This may be replaced when dependencies are built.
