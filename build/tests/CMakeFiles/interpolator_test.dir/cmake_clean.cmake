file(REMOVE_RECURSE
  "CMakeFiles/interpolator_test.dir/interpolator_test.cc.o"
  "CMakeFiles/interpolator_test.dir/interpolator_test.cc.o.d"
  "interpolator_test"
  "interpolator_test.pdb"
  "interpolator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interpolator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
