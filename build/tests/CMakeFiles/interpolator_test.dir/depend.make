# Empty dependencies file for interpolator_test.
# This may be replaced when dependencies are built.
