file(REMOVE_RECURSE
  "CMakeFiles/query_validation_test.dir/query_validation_test.cc.o"
  "CMakeFiles/query_validation_test.dir/query_validation_test.cc.o.d"
  "query_validation_test"
  "query_validation_test.pdb"
  "query_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
