# Empty compiler generated dependencies file for query_validation_test.
# This may be replaced when dependencies are built.
