file(REMOVE_RECURSE
  "CMakeFiles/slab_test.dir/slab_test.cc.o"
  "CMakeFiles/slab_test.dir/slab_test.cc.o.d"
  "slab_test"
  "slab_test.pdb"
  "slab_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slab_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
