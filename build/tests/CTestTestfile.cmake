# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/morton_test[1]_include.cmake")
include("/root/repo/build/tests/box_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/file_store_test[1]_include.cmake")
include("/root/repo/build/tests/txn_test[1]_include.cmake")
include("/root/repo/build/tests/stencil_test[1]_include.cmake")
include("/root/repo/build/tests/differentiator_test[1]_include.cmake")
include("/root/repo/build/tests/derived_field_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/wire_test[1]_include.cmake")
include("/root/repo/build/tests/partitioner_test[1]_include.cmake")
include("/root/repo/build/tests/fof_test[1]_include.cmake")
include("/root/repo/build/tests/landmark_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/query_validation_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/durable_cluster_test[1]_include.cmake")
include("/root/repo/build/tests/slab_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/capi_test[1]_include.cmake")
include("/root/repo/build/tests/interpolator_test[1]_include.cmake")
include("/root/repo/build/tests/sample_test[1]_include.cmake")
