file(REMOVE_RECURSE
  "CMakeFiles/turbdb_cli.dir/turbdb_cli.cc.o"
  "CMakeFiles/turbdb_cli.dir/turbdb_cli.cc.o.d"
  "turbdb_cli"
  "turbdb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/turbdb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
