# Empty compiler generated dependencies file for turbdb_cli.
# This may be replaced when dependencies are built.
