# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(turbdb_cli_smoke "/root/repo/build/tools/turbdb_cli" "--n" "32" "--timesteps" "1" "--nodes" "2" "stats" "vorticity")
set_tests_properties(turbdb_cli_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(turbdb_cli_threshold_smoke "/root/repo/build/tools/turbdb_cli" "--n" "32" "--timesteps" "1" "--nodes" "2" "threshold" "vorticity" "2rms")
set_tests_properties(turbdb_cli_threshold_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
