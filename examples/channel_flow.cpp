// Channel flow: the wall-bounded dataset of the JHTDB ("the channel
// flow data ... has an irregular y dimension", Sec. 2). The grid is
// periodic in x/z only, with tanh-stretched nodes clustered toward the
// walls; derivatives on the y axis use per-node Fornberg weights and
// shifted stencils at the walls. This example thresholds the vorticity
// and shows where the intense events live as a function of wall
// distance — near-wall shear dominates, as in real channel DNS.
//
//   $ ./build/examples/channel_flow

#include <cstdio>
#include <vector>

#include "core/turbdb.h"

using namespace turbdb;

int main() {
  TurbDBConfig config;
  config.cluster.num_nodes = 4;
  config.cluster.processes_per_node = 2;
  auto db_or = TurbDB::Open(config);
  if (!db_or.ok()) return 1;
  std::unique_ptr<TurbDB> db = std::move(db_or).value();

  // Streamwise x, wall-normal y, spanwise z.
  const int64_t nx = 96, ny = 64, nz = 48;
  if (!db->CreateDataset(MakeChannelDataset("channel", nx, ny, nz, 1)).ok()) {
    return 1;
  }
  if (!db->IngestSyntheticField("channel", "velocity",
                                DefaultChannelSpec(55), 0, 1)
           .ok()) {
    return 1;
  }

  FieldStatsQuery stats_query;
  stats_query.dataset = "channel";
  stats_query.raw_field = "velocity";
  stats_query.derived_field = "vorticity";
  stats_query.timestep = 0;
  stats_query.box = Box3::WholeGrid(nx, ny, nz);
  auto stats = db->FieldStats(stats_query);
  if (!stats.ok()) {
    std::fprintf(stderr, "stats failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("channel %lldx%lldx%lld, vorticity rms %.2f max %.2f\n",
              static_cast<long long>(nx), static_cast<long long>(ny),
              static_cast<long long>(nz), stats->rms, stats->max);

  ThresholdQuery query;
  query.dataset = "channel";
  query.raw_field = "velocity";
  query.derived_field = "vorticity";
  query.timestep = 0;
  query.box = Box3::WholeGrid(nx, ny, nz);
  query.threshold = 1.5 * stats->rms;
  auto result = db->Threshold(query);
  if (!result.ok()) {
    std::fprintf(stderr, "threshold failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%zu points above 1.5x RMS\n", result->points.size());

  // Wall-normal profile of the intense events: counts per y band. The
  // parabolic mean profile U(y) = U0 (1 - y^2) concentrates |du/dy| —
  // and with it the intense vorticity — near the walls.
  const int kBands = 8;
  std::vector<uint64_t> bands(kBands, 0);
  for (const ThresholdPoint& point : result->points) {
    uint32_t x, y, z;
    point.Coords(&x, &y, &z);
    bands[static_cast<size_t>(y * kBands / ny)]++;
  }
  std::printf("\nwall-normal distribution of intense events:\n");
  for (int band = 0; band < kBands; ++band) {
    std::printf("  y band %d (%s): %6llu ", band,
                band == 0 || band == kBands - 1 ? "wall  "
                : band == kBands / 2 - 1 || band == kBands / 2
                    ? "center"
                    : "      ",
                static_cast<unsigned long long>(bands[band]));
    const int bars =
        static_cast<int>(60 * bands[static_cast<size_t>(band)] /
                         std::max<uint64_t>(1, *std::max_element(
                                                   bands.begin(), bands.end())));
    for (int i = 0; i < bars; ++i) std::printf("#");
    std::printf("\n");
  }
  std::printf("\n(events cluster in the near-wall bands, where the mean "
              "shear du/dx is strongest)\n");

  // A sub-box query restricted to the lower near-wall region.
  ThresholdQuery near_wall = query;
  near_wall.box = Box3(0, 0, 0, nx, ny / 8, nz);
  auto wall_result = db->Threshold(near_wall);
  if (!wall_result.ok()) return 1;
  std::printf("\nnear-wall sub-box holds %zu of those points (cache %s)\n",
              wall_result->points.size(),
              wall_result->all_cache_hits ? "hit" : "miss");
  return 0;
}
