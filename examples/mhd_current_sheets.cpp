// MHD current sheets: the magnetohydrodynamics use case of Sec. 3. The
// electric current j = curl B is derived on demand from the stored
// magnetic field, exactly like the vorticity from the velocity; its
// extreme locations mark magnetic reconnection sites. This example also
// contrasts the two other derived quantities the paper evaluates
// (Q-criterion and the raw-field magnitude) on the same data, showing
// the per-field execution profile differences of Fig. 9.
//
//   $ ./build/examples/mhd_current_sheets

#include <cstdio>

#include "core/turbdb.h"

using namespace turbdb;

namespace {

struct FieldChoice {
  const char* label;
  const char* raw;
  const char* derived;
};

}  // namespace

int main() {
  TurbDBConfig config;
  config.cluster.num_nodes = 4;
  config.cluster.processes_per_node = 4;
  auto db_or = TurbDB::Open(config);
  if (!db_or.ok()) return 1;
  std::unique_ptr<TurbDB> db = std::move(db_or).value();

  const int64_t n = 64;
  if (!db->CreateDataset(MakeMhdDataset("mhd", n, 1)).ok()) return 1;
  if (!db->IngestSyntheticField("mhd", "velocity", DefaultMhdSpec(300), 0, 1)
           .ok()) {
    return 1;
  }
  if (!db->IngestSyntheticField("mhd", "magnetic", DefaultMhdSpec(301), 0, 1)
           .ok()) {
    return 1;
  }

  const FieldChoice kFields[] = {
      {"electric current |curl B|", "magnetic", "current"},
      {"vorticity        |curl u|", "velocity", "vorticity"},
      {"Q-criterion      |Q(u)|", "velocity", "q_criterion"},
      {"magnetic field   |B|", "magnetic", "magnitude"},
  };

  std::printf("%-28s %10s %10s %8s | %8s %8s %8s\n", "field", "rms", "max",
              "points", "io(s)", "comp(s)", "total(s)");
  for (const FieldChoice& field : kFields) {
    FieldStatsQuery stats_query;
    stats_query.dataset = "mhd";
    stats_query.raw_field = field.raw;
    stats_query.derived_field = field.derived;
    stats_query.timestep = 0;
    stats_query.box = Box3::WholeGrid(n, n, n);
    auto stats = db->FieldStats(stats_query);
    if (!stats.ok()) {
      std::fprintf(stderr, "stats failed: %s\n",
                   stats.status().ToString().c_str());
      return 1;
    }

    ThresholdQuery query;
    query.dataset = "mhd";
    query.raw_field = field.raw;
    query.derived_field = field.derived;
    query.timestep = 0;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = 4.0 * stats->rms;
    QueryOptions options;
    options.use_cache = false;  // Show the raw evaluation profile.
    auto result = db->Threshold(query, options);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-28s %10.2f %10.2f %8zu | %8.3f %8.3f %8.3f\n",
                field.label, stats->rms, stats->max, result->points.size(),
                result->time.io_s, result->time.compute_s,
                result->time.Total());
  }

  // The reconnection-site shortlist: top-20 current locations.
  TopKQuery topk;
  topk.dataset = "mhd";
  topk.raw_field = "magnetic";
  topk.derived_field = "current";
  topk.timestep = 0;
  topk.box = Box3::WholeGrid(n, n, n);
  topk.k = 20;
  auto top = db->TopK(topk);
  if (!top.ok()) return 1;
  std::printf("\nstrongest current sheets (x, y, z, |j|):\n");
  for (size_t i = 0; i < std::min<size_t>(5, top->points.size()); ++i) {
    uint32_t x, y, z;
    top->points[i].Coords(&x, &y, &z);
    std::printf("  (%3u, %3u, %3u)  %.2f\n", x, y, z, top->points[i].norm);
  }

  // Probability density function of |j| (the paper's Fig. 2 companion
  // that guides threshold selection).
  PdfQuery pdf;
  pdf.dataset = "mhd";
  pdf.raw_field = "magnetic";
  pdf.derived_field = "current";
  pdf.timestep = 0;
  pdf.box = Box3::WholeGrid(n, n, n);
  auto stats = db->FieldStats({"mhd", "magnetic", "current", 0,
                               Box3::WholeGrid(n, n, n), 4});
  if (!stats.ok()) return 1;
  pdf.bin_width = stats->rms;
  pdf.num_bins = 9;
  auto histogram = db->Pdf(pdf);
  if (!histogram.ok()) return 1;
  std::printf("\nPDF of |j| (bin = 1 RMS):\n  ");
  for (uint64_t count : histogram->counts) {
    std::printf("%llu ", static_cast<unsigned long long>(count));
  }
  std::printf("\n");
  return 0;
}
