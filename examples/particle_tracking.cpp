// Lagrangian particle tracking: seed tracers at the most intense
// vorticity locations found by a threshold query, then advect them
// through the stored velocity field with RK4 + Lagrange interpolation —
// the workflow behind the paper's statement that "the ability to analyze
// time-series datasets both forward and backward in time has transformed
// our understanding of turbulence" (Sec. 1; the flux-freezing study of
// [12] tracked millions of such particles through the MHD dataset).
//
//   $ ./build/examples/particle_tracking

#include <cmath>
#include <cstdio>

#include "analysis/particles.h"
#include "core/turbdb.h"

using namespace turbdb;

int main() {
  TurbDBConfig config;
  config.cluster.num_nodes = 4;
  config.cluster.processes_per_node = 2;
  auto db_or = TurbDB::Open(config);
  if (!db_or.ok()) return 1;
  std::unique_ptr<TurbDB> db = std::move(db_or).value();

  const int64_t n = 64;
  const int32_t timesteps = 4;
  if (!db->CreateDataset(MakeIsotropicDataset("iso", n, timesteps)).ok()) {
    return 1;
  }
  if (!db->IngestSyntheticField("iso", "velocity", DefaultIsotropicSpec(9),
                                0, timesteps)
           .ok()) {
    return 1;
  }
  const GridGeometry geometry = GridGeometry::Isotropic(n);
  const double dx = geometry.Spacing(0);

  // 1. Find where the action is: the 12 strongest vorticity locations.
  TopKQuery topk;
  topk.dataset = "iso";
  topk.raw_field = "velocity";
  topk.derived_field = "vorticity";
  topk.timestep = 0;
  topk.box = Box3::WholeGrid(n, n, n);
  topk.k = 12;
  auto peaks = db->TopK(topk);
  if (!peaks.ok()) {
    std::fprintf(stderr, "topk failed: %s\n",
                 peaks.status().ToString().c_str());
    return 1;
  }

  // 2. Seed tracers at those grid locations (physical coordinates).
  std::vector<std::array<double, 3>> seeds;
  for (const ThresholdPoint& point : peaks->points) {
    uint32_t x, y, z;
    point.Coords(&x, &y, &z);
    seeds.push_back({x * dx, y * dx, z * dx});
  }
  std::printf("seeded %zu tracers at the strongest vortices\n", seeds.size());

  // 3. Advect them across the stored time span.
  TrackingParams params;
  params.substeps = 4;
  params.support = 6;  // Lag6 spatial interpolation.
  auto tracks = TrackParticles(&db->mediator(), "iso", "velocity", seeds, 0,
                               timesteps - 1, params);
  if (!tracks.ok()) {
    std::fprintf(stderr, "tracking failed: %s\n",
                 tracks.status().ToString().c_str());
    return 1;
  }

  // 4. Report trajectories and dispersion.
  std::printf("\ntracer 0 trajectory (x, y, z):\n");
  for (size_t k = 0; k < tracks->positions.size(); ++k) {
    const auto& p = tracks->positions[k][0];
    std::printf("  t=%zu  (%6.3f, %6.3f, %6.3f)\n", k, p[0], p[1], p[2]);
  }
  double mean_displacement = 0.0;
  const double length = geometry.domain_length(0);
  for (size_t i = 0; i < seeds.size(); ++i) {
    double squared = 0.0;
    for (size_t c = 0; c < 3; ++c) {
      double delta =
          tracks->positions.back()[i][c] - tracks->positions.front()[i][c];
      delta -= length * std::floor(delta / length + 0.5);
      squared += delta * delta;
    }
    mean_displacement += std::sqrt(squared);
  }
  mean_displacement /= static_cast<double>(seeds.size());
  std::printf("\nmean tracer displacement over %d steps: %.3f "
              "(%.1f grid cells)\n",
              timesteps - 1, mean_displacement, mean_displacement / dx);
  std::printf("modeled sampling time accumulated: %.3fs\n",
              tracks->time.Total());
  return 0;
}
