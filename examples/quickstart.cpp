// Quickstart: build a small in-process analysis cluster, ingest a
// synthetic isotropic-turbulence dataset, and run the paper's flagship
// query — "give me every location where the vorticity norm exceeds a
// threshold" — twice, to see the semantic cache at work.
//
//   $ ./build/examples/quickstart
//
// See examples/vorticity_worms.cpp and examples/mhd_current_sheets.cpp
// for the domain workloads, and examples/channel_flow.cpp for the
// wall-bounded grid.

#include <cstdio>

#include "core/turbdb.h"

using namespace turbdb;

int main() {
  // 1. Open a database over a simulated 4-node cluster, 2 worker
  //    processes per node (the paper's production setup uses 4-8 nodes
  //    with 1-8 processes; all knobs live in TurbDBConfig).
  TurbDBConfig config;
  config.cluster.num_nodes = 4;
  config.cluster.processes_per_node = 2;
  auto db_or = TurbDB::Open(config);
  if (!db_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 db_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<TurbDB> db = std::move(db_or).value();

  // 2. Create a dataset (64^3 periodic grid, 2 stored time-steps) and
  //    ingest a synthetic velocity field. With real DNS output you would
  //    ingest through Mediator::IngestTimestep with your own atom source.
  const int64_t n = 64;
  Status status = db->CreateDataset(MakeIsotropicDataset("demo", n, 2));
  if (status.ok()) {
    status = db->IngestSyntheticField("demo", "velocity",
                                      DefaultIsotropicSpec(/*seed=*/1), 0, 2);
  }
  if (!status.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Ask for the field statistics to pick a threshold, as scientists
  //    do ("8 times the root mean square value...").
  FieldStatsQuery stats_query;
  stats_query.dataset = "demo";
  stats_query.raw_field = "velocity";
  stats_query.derived_field = "vorticity";
  stats_query.timestep = 0;
  stats_query.box = Box3::WholeGrid(n, n, n);
  auto stats = db->FieldStats(stats_query);
  if (!stats.ok()) return 1;
  std::printf("vorticity norm: mean %.2f rms %.2f max %.2f\n", stats->mean,
              stats->rms, stats->max);

  // 4. Threshold query over the whole time-step. The derived field
  //    (curl of the stored velocity) is computed on demand, in parallel,
  //    on the nodes that store the data.
  ThresholdQuery query;
  query.dataset = "demo";
  query.raw_field = "velocity";
  query.derived_field = "vorticity";
  query.timestep = 0;
  query.box = Box3::WholeGrid(n, n, n);
  query.threshold = 4.0 * stats->rms;

  auto first = db->Threshold(query);
  if (!first.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 first.status().ToString().c_str());
    return 1;
  }
  std::printf("\nfirst run (cache miss): %zu points above %.2f\n",
              first->points.size(), query.threshold);
  std::printf("  modeled time: %s\n", first->time.ToString().c_str());

  // 5. The same query again: answered from the application-aware cache,
  //    over an order of magnitude faster (no raw I/O, no kernel work).
  auto second = db->Threshold(query);
  if (!second.ok()) return 1;
  std::printf("\nsecond run (cache %s): %zu points\n",
              second->all_cache_hits ? "hit" : "miss",
              second->points.size());
  std::printf("  modeled time: %s\n", second->time.ToString().c_str());
  std::printf("  speedup: %.1fx\n",
              first->time.Total() / second->time.Total());

  // 6. Inspect the top locations.
  std::printf("\nstrongest 5 locations (x, y, z, |curl u|):\n");
  std::vector<ThresholdPoint> by_norm = second->points;
  std::sort(by_norm.begin(), by_norm.end(),
            [](const ThresholdPoint& a, const ThresholdPoint& b) {
              return a.norm > b.norm;
            });
  for (size_t i = 0; i < std::min<size_t>(5, by_norm.size()); ++i) {
    uint32_t x, y, z;
    by_norm[i].Coords(&x, &y, &z);
    std::printf("  (%3u, %3u, %3u)  %.2f\n", x, y, z, by_norm[i].norm);
  }
  return 0;
}
