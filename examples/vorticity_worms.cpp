// Vorticity "worms": the Sec. 3 workflow of the paper. Threshold queries
// pull the most intense vorticity locations from every stored time-step;
// friends-of-friends clustering in 4-D (space + time) groups them into
// coherent vortex structures; the strongest become landmarks that later
// sessions can revisit without re-scanning the data.
//
//   $ ./build/examples/vorticity_worms

#include <cstdio>

#include "core/turbdb.h"

using namespace turbdb;

int main() {
  TurbDBConfig config;
  config.cluster.num_nodes = 4;
  config.cluster.processes_per_node = 4;
  auto db_or = TurbDB::Open(config);
  if (!db_or.ok()) return 1;
  std::unique_ptr<TurbDB> db = std::move(db_or).value();

  const int64_t n = 64;
  const int32_t timesteps = 4;
  if (!db->CreateDataset(MakeIsotropicDataset("iso", n, timesteps)).ok()) {
    return 1;
  }
  if (!db->IngestSyntheticField("iso", "velocity", DefaultIsotropicSpec(77),
                                0, timesteps)
           .ok()) {
    return 1;
  }

  FieldStatsQuery stats_query;
  stats_query.dataset = "iso";
  stats_query.raw_field = "velocity";
  stats_query.derived_field = "vorticity";
  stats_query.timestep = 0;
  stats_query.box = Box3::WholeGrid(n, n, n);
  auto stats = db->FieldStats(stats_query);
  if (!stats.ok()) return 1;
  const double threshold = 4.5 * stats->rms;
  std::printf("thresholding |curl u| >= %.2f (4.5x RMS) across %d steps\n",
              threshold, timesteps);

  // Extreme points of every time-step (the per-step queries also warm
  // the cache, so a second pass over any step is nearly free).
  std::vector<FofPoint> points;
  for (int32_t t = 0; t < timesteps; ++t) {
    ThresholdQuery query;
    query.dataset = "iso";
    query.raw_field = "velocity";
    query.derived_field = "vorticity";
    query.timestep = t;
    query.box = Box3::WholeGrid(n, n, n);
    query.threshold = threshold;
    auto result = db->Threshold(query);
    if (!result.ok()) {
      std::fprintf(stderr, "t=%d failed: %s\n", t,
                   result.status().ToString().c_str());
      return 1;
    }
    auto step_points = ToFofPoints(result->points, t);
    points.insert(points.end(), step_points.begin(), step_points.end());
    std::printf("  t=%d: %5zu extreme points\n", t, step_points.size());
  }

  // 4-D friends-of-friends: linking length 2.5 cells, one step in time.
  auto clusters = db->ClusterPoints("iso", points, 2.5, /*time_linking=*/1);
  if (!clusters.ok()) return 1;
  std::printf("\n%zu spacetime structures; the strongest:\n",
              clusters->size());
  std::printf("%-5s %7s %7s %7s %12s %22s\n", "rank", "points", "t_min",
              "t_max", "peak/rms", "centroid");
  int rank = 0;
  for (const FofCluster& cluster : *clusters) {
    if (++rank > 8) break;
    std::printf("%-5d %7zu %7d %7d %12.1f   (%5.1f, %5.1f, %5.1f)\n", rank,
                cluster.size(), cluster.t_min, cluster.t_max,
                cluster.max_norm / stats->rms, cluster.centroid[0],
                cluster.centroid[1], cluster.centroid[2]);
  }

  // Record the strongest structures in the landmark database (Sec. 7's
  // proposed extension) and persist it.
  rank = 0;
  for (const FofCluster& cluster : *clusters) {
    if (++rank > 3) break;
    db->landmarks().AddCluster("iso", "velocity:vorticity", threshold,
                               points, cluster);
  }
  const std::string path = "/tmp/turbdb_worm_landmarks.txt";
  if (db->landmarks().SaveTo(path).ok()) {
    std::printf("\nsaved %zu landmarks to %s\n", db->landmarks().size(),
                path.c_str());
  }

  // Revisit: which landmarks intersect time-step 2?
  const auto revisit = db->landmarks().AtTimestep("iso", 2);
  std::printf("landmarks alive at t=2: %zu\n", revisit.size());
  for (const Landmark& landmark : revisit) {
    std::printf("  #%llu box %s peak %.1f (%llu points)\n",
                static_cast<unsigned long long>(landmark.id),
                landmark.bounding_box.ToString().c_str(), landmark.max_norm,
                static_cast<unsigned long long>(landmark.num_points));
  }
  return 0;
}
