#include "analysis/distributed_fof.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_map>
#include <utility>

namespace turbdb {
namespace {

/// Disjoint-set forest with path halving and union by size — the same
/// structure fof.cc uses. The final components do not depend on the
/// order unions are applied in, which is what makes the stitched result
/// independent of shard join order.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  size_t Find(size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

struct CellKey {
  int64_t cx, cy, cz;
  bool operator==(const CellKey& other) const {
    return cx == other.cx && cy == other.cy && cz == other.cz;
  }
};

struct CellKeyHash {
  size_t operator()(const CellKey& key) const {
    uint64_t h = 1469598103934665603ULL;
    for (int64_t v : {key.cx, key.cy, key.cz}) {
      h ^= static_cast<uint64_t>(v);
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

double AxisDelta(double a, double b, double extent) {
  double delta = a - b;
  if (extent > 0.0) {
    delta -= extent * std::floor(delta / extent + 0.5);
  }
  return delta;
}

struct Coord {
  double x, y, z;
};

/// Links every cell-adjacent pair within `subset` (global point
/// indices) whose periodic distance is at most the linking length —
/// exactly fof.cc's predicate: unwrapped home cells, probe cells
/// wrapped modulo ceil(extent / cell) on periodic axes, then the
/// wrap-aware distance test. The predicate depends only on the two
/// endpoints, so running it over a subset reproduces precisely the
/// global run's links restricted to that subset — quirks (partial last
/// cell near the wrap seam) included.
void LinkSubset(const std::vector<Coord>& coords,
                const std::vector<size_t>& subset,
                const DistributedFofParams& params, UnionFind* forest) {
  const double cell = params.linking_length;
  const double link_sq = cell * cell;

  std::array<int64_t, 3> cells_per_axis = {0, 0, 0};
  for (int d = 0; d < 3; ++d) {
    if (params.periodic_extent[d] > 0.0) {
      cells_per_axis[d] =
          static_cast<int64_t>(std::ceil(params.periodic_extent[d] / cell));
    }
  }

  auto cell_of = [&](const Coord& c) {
    return CellKey{static_cast<int64_t>(std::floor(c.x / cell)),
                   static_cast<int64_t>(std::floor(c.y / cell)),
                   static_cast<int64_t>(std::floor(c.z / cell))};
  };

  std::unordered_map<CellKey, std::vector<size_t>, CellKeyHash> cells;
  cells.reserve(subset.size() * 2);
  for (size_t i : subset) {
    cells[cell_of(coords[i])].push_back(i);
  }

  for (size_t i : subset) {
    const Coord& p = coords[i];
    const CellKey home = cell_of(p);
    for (int64_t dz = -1; dz <= 1; ++dz) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        for (int64_t dx = -1; dx <= 1; ++dx) {
          CellKey probe{home.cx + dx, home.cy + dy, home.cz + dz};
          if (cells_per_axis[0] > 0) {
            probe.cx = ((probe.cx % cells_per_axis[0]) + cells_per_axis[0]) %
                       cells_per_axis[0];
          }
          if (cells_per_axis[1] > 0) {
            probe.cy = ((probe.cy % cells_per_axis[1]) + cells_per_axis[1]) %
                       cells_per_axis[1];
          }
          if (cells_per_axis[2] > 0) {
            probe.cz = ((probe.cz % cells_per_axis[2]) + cells_per_axis[2]) %
                       cells_per_axis[2];
          }
          auto it = cells.find(probe);
          if (it == cells.end()) continue;
          for (size_t j : it->second) {
            if (j <= i) continue;
            const Coord& q = coords[j];
            const double ddx = AxisDelta(p.x, q.x, params.periodic_extent[0]);
            const double ddy = AxisDelta(p.y, q.y, params.periodic_extent[1]);
            const double ddz = AxisDelta(p.z, q.z, params.periodic_extent[2]);
            if (ddx * ddx + ddy * ddy + ddz * ddz <= link_sq) {
              forest->Union(i, j);
            }
          }
        }
      }
    }
  }
}

}  // namespace

Result<FofStitcher> FofStitcher::Create(const DistributedFofParams& params,
                                        OwnerOfAtomFn owner_of_atom) {
  if (params.linking_length <= 0.0) {
    return Status::InvalidArgument("linking length must be positive");
  }
  if (params.atom_width <= 0) {
    return Status::InvalidArgument("atom width must be positive");
  }
  if (params.linking_length > static_cast<double>(params.atom_width)) {
    return Status::InvalidArgument(
        "linking length " + std::to_string(params.linking_length) +
        " exceeds the halo width (atom width " +
        std::to_string(params.atom_width) +
        "): a cross-shard link could span more than one atom boundary and "
        "the halo exchange would silently split clusters; use a smaller "
        "linking length or the in-process FriendsOfFriends");
  }
  return FofStitcher(params, std::move(owner_of_atom));
}

void FofStitcher::AddShard(int shard_id, std::vector<ThresholdPoint> points) {
  std::vector<ThresholdPoint>& bucket = shards_[shard_id];
  num_points_ += points.size();
  if (bucket.empty()) {
    bucket = std::move(points);
  } else {
    bucket.insert(bucket.end(), points.begin(), points.end());
  }
}

Result<std::vector<DistributedFofCluster>> FofStitcher::Finish() {
  // Flatten the shards into one global index space. Each shard's points
  // are z-sorted first so chunk arrival order leaves no trace; the
  // shards themselves flatten in id order (std::map).
  std::vector<ThresholdPoint> points;
  std::vector<Coord> coords;
  std::vector<int> shard_of;
  points.reserve(num_points_);
  coords.reserve(num_points_);
  shard_of.reserve(num_points_);
  for (auto& [shard, batch] : shards_) {
    // Z-order with a norm tie-break: real threshold sets have unique
    // locations, but duplicated z-indexes (possible in synthetic input)
    // must not make the output depend on arrival order.
    std::sort(batch.begin(), batch.end(),
              [](const ThresholdPoint& a, const ThresholdPoint& b) {
                if (a.zindex != b.zindex) return a.zindex < b.zindex;
                return a.norm < b.norm;
              });
    for (const ThresholdPoint& point : batch) {
      uint32_t x, y, z;
      point.Coords(&x, &y, &z);
      points.push_back(point);
      coords.push_back(Coord{static_cast<double>(x), static_cast<double>(y),
                             static_cast<double>(z)});
      shard_of.push_back(shard);
    }
  }

  std::vector<DistributedFofCluster> clusters;
  const size_t n = points.size();
  if (n == 0) return clusters;

  UnionFind forest(n);

  // Pass 1: within-shard links, one cell-grid run per shard.
  {
    std::vector<size_t> subset;
    size_t begin = 0;
    while (begin < n) {
      size_t end = begin;
      while (end < n && shard_of[end] == shard_of[begin]) ++end;
      subset.clear();
      subset.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) subset.push_back(i);
      LinkSubset(coords, subset, params_, &forest);
      begin = end;
    }
  }

  // Pass 2: cross-shard links. A point is a halo candidate when its
  // ±linking-length cube (wrapped on periodic axes, clamped otherwise)
  // touches an atom owned by another shard; any cross-shard friendship
  // puts both endpoints within linking length of foreign territory, so
  // relinking the combined candidate set finds every cross-shard edge.
  // Without an owner map (tests, degenerate topologies) every point is
  // a candidate — still correct, just a full relink.
  if (shards_.size() > 1) {
    const double ll = params_.linking_length;
    const int64_t width = params_.atom_width;
    std::array<int64_t, 3> atoms_along = {0, 0, 0};
    for (int d = 0; d < 3; ++d) {
      if (params_.grid_extent[d] > 0) {
        atoms_along[d] = (params_.grid_extent[d] + width - 1) / width;
      }
    }

    auto is_halo = [&](size_t gi) {
      if (owner_of_atom_ == nullptr) return true;
      const Coord& c = coords[gi];
      const double pos[3] = {c.x, c.y, c.z};
      // Up to three atom indices per axis (the cube spans at most two
      // atom boundaries because linking_length <= atom_width).
      std::array<std::array<int64_t, 3>, 3> axis_atoms;
      std::array<int, 3> axis_counts = {0, 0, 0};
      for (int d = 0; d < 3; ++d) {
        const int64_t lo =
            static_cast<int64_t>(std::floor((pos[d] - ll) / width));
        const int64_t hi =
            static_cast<int64_t>(std::floor((pos[d] + ll) / width));
        for (int64_t a = lo; a <= hi; ++a) {
          int64_t wrapped = a;
          if (params_.periodic_extent[d] > 0.0 && atoms_along[d] > 0) {
            wrapped = ((a % atoms_along[d]) + atoms_along[d]) % atoms_along[d];
          } else if (atoms_along[d] > 0) {
            wrapped = std::min(std::max<int64_t>(wrapped, 0),
                               atoms_along[d] - 1);
          } else if (wrapped < 0) {
            wrapped = 0;
          }
          bool duplicate = false;
          for (int k = 0; k < axis_counts[d]; ++k) {
            if (axis_atoms[d][k] == wrapped) duplicate = true;
          }
          if (!duplicate && axis_counts[d] < 3) {
            axis_atoms[d][axis_counts[d]++] = wrapped;
          }
        }
      }
      for (int ix = 0; ix < axis_counts[0]; ++ix) {
        for (int iy = 0; iy < axis_counts[1]; ++iy) {
          for (int iz = 0; iz < axis_counts[2]; ++iz) {
            if (owner_of_atom_(axis_atoms[0][ix], axis_atoms[1][iy],
                               axis_atoms[2][iz]) != shard_of[gi]) {
              return true;
            }
          }
        }
      }
      return false;
    };

    std::vector<size_t> halo;
    for (size_t i = 0; i < n; ++i) {
      if (is_halo(i)) halo.push_back(i);
    }
    LinkSubset(coords, halo, params_, &forest);
  }

  // Materialize: group by root, name each cluster by its smallest
  // member z-index, and derive every statistic from the z-sorted member
  // list so the output is bit-stable across shard join orders.
  std::unordered_map<size_t, size_t> root_to_cluster;
  std::vector<std::vector<size_t>> member_indices;
  for (size_t i = 0; i < n; ++i) {
    const size_t root = forest.Find(i);
    auto [it, inserted] = root_to_cluster.emplace(root, member_indices.size());
    if (inserted) member_indices.emplace_back();
    member_indices[it->second].push_back(i);
  }

  clusters.reserve(member_indices.size());
  for (std::vector<size_t>& indices : member_indices) {
    if (indices.size() < params_.min_cluster_size) continue;
    std::sort(indices.begin(), indices.end(), [&](size_t a, size_t b) {
      if (points[a].zindex != points[b].zindex) {
        return points[a].zindex < points[b].zindex;
      }
      return points[a].norm < points[b].norm;
    });
    DistributedFofCluster cluster;
    cluster.members.reserve(indices.size());
    bool first = true;
    for (size_t i : indices) {
      const ThresholdPoint& point = points[i];
      uint32_t x, y, z;
      point.Coords(&x, &y, &z);
      const uint64_t grid[3] = {x, y, z};
      cluster.members.push_back(point);
      for (int d = 0; d < 3; ++d) {
        cluster.centroid[d] += static_cast<double>(grid[d]);
        if (first || grid[d] < cluster.bbox_lo[d]) cluster.bbox_lo[d] = grid[d];
        if (first || grid[d] > cluster.bbox_hi[d]) cluster.bbox_hi[d] = grid[d];
      }
      // Strict > over the z-sorted members picks the smallest z-index
      // among max-norm points — the same peak the in-process run finds
      // on z-ordered input.
      if (first || point.norm > cluster.max_norm) {
        cluster.max_norm = point.norm;
        cluster.peak_zindex = point.zindex;
      }
      first = false;
    }
    cluster.id = cluster.members.front().zindex;
    const double inv = 1.0 / static_cast<double>(cluster.members.size());
    for (int d = 0; d < 3; ++d) cluster.centroid[d] *= inv;
    clusters.push_back(std::move(cluster));
  }

  std::sort(clusters.begin(), clusters.end(),
            [](const DistributedFofCluster& a, const DistributedFofCluster& b) {
              if (a.members.size() != b.members.size()) {
                return a.members.size() > b.members.size();
              }
              return a.id < b.id;
            });
  return clusters;
}

}  // namespace turbdb
