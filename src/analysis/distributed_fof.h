#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "array/point.h"
#include "common/profile.h"
#include "common/result.h"

namespace turbdb {

/// Parameters of a distributed friends-of-friends run. The spatial
/// semantics (cell grid, periodic wrap, link predicate) are exactly
/// those of the in-process `FriendsOfFriends` (analysis/fof.h), so the
/// distributed path returns byte-identical cluster membership.
struct DistributedFofParams {
  /// Spatial linking length in grid units; two points are friends iff
  /// their periodic distance is at most this.
  double linking_length = 2.0;
  /// Per-axis periodic extents in grid units; 0 disables wrapping.
  std::array<double, 3> periodic_extent = {0.0, 0.0, 0.0};
  /// Grid extent per axis (points), for clamping halo probes.
  std::array<int64_t, 3> grid_extent = {0, 0, 0};
  /// Atom width of the dataset — the guaranteed halo width. A linking
  /// length above it could link points more than one atom apart across
  /// a shard boundary, which the halo exchange cannot see; such runs
  /// are refused with a typed error instead of silently splitting
  /// clusters.
  int64_t atom_width = 8;
  /// Clusters smaller than this are dropped from the output.
  uint64_t min_cluster_size = 1;
};

/// One stitched cluster. `id` is the smallest member z-index — a
/// content-derived name that is identical no matter in which order the
/// shards were joined.
struct DistributedFofCluster {
  uint64_t id = 0;
  std::vector<ThresholdPoint> members;  ///< Sorted by z-index.
  std::array<uint64_t, 3> bbox_lo{0, 0, 0};  ///< Grid coords, inclusive.
  std::array<uint64_t, 3> bbox_hi{0, 0, 0};
  /// Plain (not wrap-aware) mean of the member grid coordinates — the
  /// same convention FriendsOfFriends uses.
  std::array<double, 3> centroid{0.0, 0.0, 0.0};
  float max_norm = 0.0f;
  /// z-index of the max-norm member (smallest z-index on ties).
  uint64_t peak_zindex = 0;

  uint64_t size() const { return members.size(); }
};

/// Summary row of a distributed FoF run (what the terminating
/// FofResponse frame carries after the cluster records streamed out).
struct DistributedFofSummary {
  uint64_t clusters = 0;         ///< Clusters at or above the size floor.
  uint64_t points = 0;           ///< Member points across those clusters.
  uint64_t largest_cluster = 0;  ///< Size of the biggest cluster.
  TimeBreakdown time;            ///< Modeled end-to-end time breakdown.
};

/// Merges per-shard threshold points into global friends-of-friends
/// clusters.
///
/// Usage: feed each shard's points with `AddShard` (repeatable per
/// shard as streamed chunks arrive, any shard order), then call
/// `Finish` once. The stitcher
///
///   1. runs the fof.cc cell-grid union-find over each shard's points
///      in *absolute* grid coordinates — this reproduces every
///      within-shard link of the global run, partial-cell wrap quirks
///      included, because the link predicate depends only on the two
///      endpoints;
///   2. collects the halo set: every point whose ±linking-length cube
///      (periodically wrapped) touches an atom owned by a different
///      shard. Every cross-shard link has both endpoints within
///      linking length of foreign territory, so both land in this set;
///   3. runs the same cell-grid linking once more over the combined
///      halo set, unioning shard-local components across boundaries.
///
/// Within-shard links are reproduced per shard, cross-shard links by
/// the halo pass, so the connected components — and therefore the
/// cluster membership — equal the in-process run's exactly. All
/// derived statistics and ids are computed from sorted member lists,
/// so the output is deterministic and independent of shard join order.
class FofStitcher {
 public:
  /// Maps atom coordinates (atom units, already wrapped/clamped into
  /// the domain) to the owning shard id.
  using OwnerOfAtomFn = std::function<int(int64_t, int64_t, int64_t)>;

  /// Validates the parameters (positive linking length; linking length
  /// at most the atom width — see DistributedFofParams::atom_width).
  static Result<FofStitcher> Create(const DistributedFofParams& params,
                                    OwnerOfAtomFn owner_of_atom);

  FofStitcher(FofStitcher&&) = default;
  FofStitcher& operator=(FofStitcher&&) = default;

  /// Adds a batch of `shard_id`'s threshold points. Batches for the
  /// same shard accumulate; call order carries no meaning.
  void AddShard(int shard_id, std::vector<ThresholdPoint> points);

  /// Total points added so far.
  uint64_t num_points() const { return num_points_; }

  /// Stitches and returns the clusters, sorted by size descending then
  /// id ascending. Call once.
  Result<std::vector<DistributedFofCluster>> Finish();

 private:
  FofStitcher(const DistributedFofParams& params, OwnerOfAtomFn owner_of_atom)
      : params_(params), owner_of_atom_(std::move(owner_of_atom)) {}

  DistributedFofParams params_;
  OwnerOfAtomFn owner_of_atom_;
  std::map<int, std::vector<ThresholdPoint>> shards_;
  uint64_t num_points_ = 0;
};

}  // namespace turbdb
