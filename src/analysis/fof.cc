#include "analysis/fof.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace turbdb {

std::vector<FofPoint> ToFofPoints(const std::vector<ThresholdPoint>& points,
                                  int32_t timestep) {
  std::vector<FofPoint> out;
  out.reserve(points.size());
  for (const ThresholdPoint& point : points) {
    uint32_t x, y, z;
    point.Coords(&x, &y, &z);
    out.push_back(FofPoint{static_cast<double>(x), static_cast<double>(y),
                           static_cast<double>(z), timestep, point.norm});
  }
  return out;
}

namespace {

/// Disjoint-set forest with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n), size_(n, 1) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }

  size_t Find(size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  void Union(size_t a, size_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<size_t> parent_;
  std::vector<size_t> size_;
};

struct CellKey {
  int64_t cx, cy, cz, ct;
  bool operator==(const CellKey& other) const {
    return cx == other.cx && cy == other.cy && cz == other.cz &&
           ct == other.ct;
  }
};

struct CellKeyHash {
  size_t operator()(const CellKey& key) const {
    uint64_t h = 1469598103934665603ULL;
    for (int64_t v : {key.cx, key.cy, key.cz, key.ct}) {
      h ^= static_cast<uint64_t>(v);
      h *= 1099511628211ULL;
    }
    return static_cast<size_t>(h);
  }
};

double AxisDelta(double a, double b, double extent) {
  double delta = a - b;
  if (extent > 0.0) {
    delta -= extent * std::floor(delta / extent + 0.5);
  }
  return delta;
}

}  // namespace

Result<std::vector<FofCluster>> FriendsOfFriends(
    const std::vector<FofPoint>& points, const FofParams& params) {
  if (params.linking_length <= 0.0) {
    return Status::InvalidArgument("linking length must be positive");
  }
  if (params.time_linking < 0) {
    return Status::InvalidArgument("time linking must be non-negative");
  }
  const size_t n = points.size();
  std::vector<FofCluster> clusters;
  if (n == 0) return clusters;

  const double cell = params.linking_length;
  const double link_sq = params.linking_length * params.linking_length;
  const int64_t t_link = params.time_linking;

  // Bucket points into cells sized to the linking length; friends can
  // only live in the 3^3 (x 3 time slabs) neighborhood of a point's cell.
  std::unordered_map<CellKey, std::vector<size_t>, CellKeyHash> cells;
  cells.reserve(n * 2);
  auto cell_of = [&](const FofPoint& point) {
    return CellKey{static_cast<int64_t>(std::floor(point.x / cell)),
                   static_cast<int64_t>(std::floor(point.y / cell)),
                   static_cast<int64_t>(std::floor(point.z / cell)),
                   t_link > 0 ? point.timestep / (t_link) : point.timestep};
  };
  for (size_t i = 0; i < n; ++i) {
    cells[cell_of(points[i])].push_back(i);
  }

  // Number of cells per periodic axis, for wrapped neighbor lookup.
  std::array<int64_t, 3> cells_per_axis = {0, 0, 0};
  for (int d = 0; d < 3; ++d) {
    if (params.periodic_extent[d] > 0.0) {
      cells_per_axis[d] = static_cast<int64_t>(
          std::ceil(params.periodic_extent[d] / cell));
    }
  }

  UnionFind forest(n);
  for (size_t i = 0; i < n; ++i) {
    const FofPoint& p = points[i];
    const CellKey home = cell_of(p);
    for (int64_t dt = -1; dt <= 1; ++dt) {
      for (int64_t dz = -1; dz <= 1; ++dz) {
        for (int64_t dy = -1; dy <= 1; ++dy) {
          for (int64_t dx = -1; dx <= 1; ++dx) {
            CellKey probe{home.cx + dx, home.cy + dy, home.cz + dz,
                          home.ct + dt};
            // Wrap the probe cell on periodic axes.
            if (cells_per_axis[0] > 0) {
              probe.cx = ((probe.cx % cells_per_axis[0]) + cells_per_axis[0]) %
                         cells_per_axis[0];
            }
            if (cells_per_axis[1] > 0) {
              probe.cy = ((probe.cy % cells_per_axis[1]) + cells_per_axis[1]) %
                         cells_per_axis[1];
            }
            if (cells_per_axis[2] > 0) {
              probe.cz = ((probe.cz % cells_per_axis[2]) + cells_per_axis[2]) %
                         cells_per_axis[2];
            }
            auto it = cells.find(probe);
            if (it == cells.end()) continue;
            for (size_t j : it->second) {
              if (j <= i) continue;
              const FofPoint& q = points[j];
              if (std::abs(static_cast<int64_t>(p.timestep) -
                           static_cast<int64_t>(q.timestep)) > t_link) {
                continue;
              }
              const double ddx = AxisDelta(p.x, q.x, params.periodic_extent[0]);
              const double ddy = AxisDelta(p.y, q.y, params.periodic_extent[1]);
              const double ddz = AxisDelta(p.z, q.z, params.periodic_extent[2]);
              if (ddx * ddx + ddy * ddy + ddz * ddz <= link_sq) {
                forest.Union(i, j);
              }
            }
          }
        }
      }
    }
  }

  // Materialize clusters.
  std::unordered_map<size_t, size_t> root_to_cluster;
  for (size_t i = 0; i < n; ++i) {
    const size_t root = forest.Find(i);
    auto [it, inserted] = root_to_cluster.emplace(root, clusters.size());
    if (inserted) {
      clusters.emplace_back();
      clusters.back().t_min = points[i].timestep;
      clusters.back().t_max = points[i].timestep;
    }
    FofCluster& cluster = clusters[it->second];
    cluster.members.push_back(i);
    cluster.centroid[0] += points[i].x;
    cluster.centroid[1] += points[i].y;
    cluster.centroid[2] += points[i].z;
    cluster.t_min = std::min(cluster.t_min, points[i].timestep);
    cluster.t_max = std::max(cluster.t_max, points[i].timestep);
    if (points[i].norm > cluster.max_norm) {
      cluster.max_norm = points[i].norm;
      cluster.peak_index = i;
    }
  }
  for (FofCluster& cluster : clusters) {
    const double inv = 1.0 / static_cast<double>(cluster.size());
    for (int d = 0; d < 3; ++d) cluster.centroid[d] *= inv;
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const FofCluster& a, const FofCluster& b) {
              return a.max_norm > b.max_norm;
            });
  return clusters;
}

}  // namespace turbdb
