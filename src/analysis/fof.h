#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "array/geometry.h"
#include "array/point.h"
#include "common/result.h"

namespace turbdb {

/// A point fed to friends-of-friends clustering: grid coordinates plus
/// the time-step (for 4-D clustering) and the derived-field norm.
struct FofPoint {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;
  int32_t timestep = 0;
  float norm = 0.0f;
};

/// Converts threshold-query rows to FoF inputs.
std::vector<FofPoint> ToFofPoints(const std::vector<ThresholdPoint>& points,
                                  int32_t timestep);

struct FofParams {
  /// Spatial linking length, in grid units. Two points are friends if
  /// their (periodic) distance is at most this.
  double linking_length = 2.0;
  /// Maximum time-step difference for 4-D linking; 0 restricts links to
  /// the same time-step (pure 3-D clustering).
  int32_t time_linking = 0;
  /// Per-axis periodic wrapping with the given extents (grid units);
  /// extent 0 disables wrapping for that axis.
  std::array<double, 3> periodic_extent = {0.0, 0.0, 0.0};
};

/// One friends-of-friends cluster, with the statistics a landmark
/// database records (Sec. 7: "locations of the highest vorticity regions
/// ... and their associated statistics").
struct FofCluster {
  std::vector<size_t> members;  ///< Indices into the input point vector.
  float max_norm = 0.0f;
  size_t peak_index = 0;        ///< Input index of the max-norm member.
  std::array<double, 3> centroid = {0.0, 0.0, 0.0};
  int32_t t_min = 0;
  int32_t t_max = 0;

  size_t size() const { return members.size(); }
};

/// Friends-of-friends clustering via a spatial hash grid and union-find.
/// Complexity is O(N * neighbors) with cells sized to the linking length.
/// Clusters are returned sorted by max_norm, descending — the paper's
/// use case is isolating the most intense event (Fig. 3).
///
/// With time_linking > 0 this is the 4-D clustering the paper applies to
/// per-time-step threshold results: worms that persist across steps merge
/// into one spacetime cluster.
Result<std::vector<FofCluster>> FriendsOfFriends(
    const std::vector<FofPoint>& points, const FofParams& params);

}  // namespace turbdb
