#include "analysis/landmark.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace turbdb {

uint64_t LandmarkDatabase::Add(Landmark landmark) {
  std::lock_guard<std::mutex> lock(mutex_);
  landmark.id = next_id_++;
  const uint64_t id = landmark.id;
  landmarks_.emplace(id, std::move(landmark));
  return id;
}

uint64_t LandmarkDatabase::AddCluster(const std::string& dataset,
                                      const std::string& field,
                                      double threshold,
                                      const std::vector<FofPoint>& points,
                                      const FofCluster& cluster) {
  Landmark landmark;
  landmark.dataset = dataset;
  landmark.field = field;
  landmark.threshold = threshold;
  landmark.t_min = cluster.t_min;
  landmark.t_max = cluster.t_max;
  landmark.centroid = cluster.centroid;
  landmark.max_norm = cluster.max_norm;
  landmark.num_points = cluster.size();
  bool first = true;
  for (size_t index : cluster.members) {
    const FofPoint& point = points[index];
    const int64_t x = static_cast<int64_t>(point.x);
    const int64_t y = static_cast<int64_t>(point.y);
    const int64_t z = static_cast<int64_t>(point.z);
    if (first) {
      landmark.bounding_box = Box3(x, y, z, x + 1, y + 1, z + 1);
      first = false;
    } else {
      landmark.bounding_box.lo[0] = std::min(landmark.bounding_box.lo[0], x);
      landmark.bounding_box.lo[1] = std::min(landmark.bounding_box.lo[1], y);
      landmark.bounding_box.lo[2] = std::min(landmark.bounding_box.lo[2], z);
      landmark.bounding_box.hi[0] = std::max(landmark.bounding_box.hi[0], x + 1);
      landmark.bounding_box.hi[1] = std::max(landmark.bounding_box.hi[1], y + 1);
      landmark.bounding_box.hi[2] = std::max(landmark.bounding_box.hi[2], z + 1);
    }
  }
  return Add(std::move(landmark));
}

Result<Landmark> LandmarkDatabase::Get(uint64_t id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = landmarks_.find(id);
  if (it == landmarks_.end()) {
    return Status::NotFound("no landmark with id " + std::to_string(id));
  }
  return it->second;
}

std::vector<Landmark> LandmarkDatabase::List(const std::string& dataset,
                                             const std::string& field) const {
  std::vector<Landmark> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, landmark] : landmarks_) {
      if (landmark.dataset != dataset) continue;
      if (!field.empty() && landmark.field != field) continue;
      out.push_back(landmark);
    }
  }
  std::sort(out.begin(), out.end(), [](const Landmark& a, const Landmark& b) {
    return a.max_norm > b.max_norm;
  });
  return out;
}

std::vector<Landmark> LandmarkDatabase::AtTimestep(const std::string& dataset,
                                                   int32_t timestep) const {
  std::vector<Landmark> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [id, landmark] : landmarks_) {
    if (landmark.dataset == dataset && timestep >= landmark.t_min &&
        timestep <= landmark.t_max) {
      out.push_back(landmark);
    }
  }
  return out;
}

size_t LandmarkDatabase::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return landmarks_.size();
}

Status LandmarkDatabase::SaveTo(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return Status::IOError("cannot open " + path);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [id, lm] : landmarks_) {
      std::fprintf(
          file,
          "%" PRIu64 "|%s|%s|%d|%d|%lld %lld %lld %lld %lld %lld|"
          "%.17g %.17g %.17g|%.17g|%" PRIu64 "|%.17g\n",
          lm.id, lm.dataset.c_str(), lm.field.c_str(), lm.t_min, lm.t_max,
          static_cast<long long>(lm.bounding_box.lo[0]),
          static_cast<long long>(lm.bounding_box.lo[1]),
          static_cast<long long>(lm.bounding_box.lo[2]),
          static_cast<long long>(lm.bounding_box.hi[0]),
          static_cast<long long>(lm.bounding_box.hi[1]),
          static_cast<long long>(lm.bounding_box.hi[2]), lm.centroid[0],
          lm.centroid[1], lm.centroid[2], lm.max_norm, lm.num_points,
          lm.threshold);
    }
  }
  std::fclose(file);
  return Status::OK();
}

Status LandmarkDatabase::LoadFrom(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "r");
  if (file == nullptr) return Status::IOError("cannot open " + path);
  std::map<uint64_t, Landmark> loaded;
  uint64_t max_id = 0;
  char dataset[256];
  char field[256];
  char line[1024];
  while (std::fgets(line, sizeof(line), file) != nullptr) {
    Landmark lm;
    long long lo0, lo1, lo2, hi0, hi1, hi2;
    const int matched = std::sscanf(
        line,
        "%" SCNu64 "|%255[^|]|%255[^|]|%d|%d|%lld %lld %lld %lld %lld %lld|"
        "%lg %lg %lg|%lg|%" SCNu64 "|%lg",
        &lm.id, dataset, field, &lm.t_min, &lm.t_max, &lo0, &lo1, &lo2, &hi0,
        &hi1, &hi2, &lm.centroid[0], &lm.centroid[1], &lm.centroid[2],
        &lm.max_norm, &lm.num_points, &lm.threshold);
    if (matched != 17) {
      std::fclose(file);
      return Status::Corruption("malformed landmark line: " +
                                std::string(line));
    }
    lm.dataset = dataset;
    lm.field = field;
    lm.bounding_box = Box3(lo0, lo1, lo2, hi0, hi1, hi2);
    max_id = std::max(max_id, lm.id);
    loaded.emplace(lm.id, std::move(lm));
  }
  std::fclose(file);
  std::lock_guard<std::mutex> lock(mutex_);
  landmarks_ = std::move(loaded);
  next_id_ = max_id + 1;
  return Status::OK();
}

}  // namespace turbdb
