#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/fof.h"
#include "array/box.h"
#include "common/result.h"

namespace turbdb {

/// One landmark: a region of special interest (typically an intense
/// vortex cluster) and its statistics. The paper's conclusions propose a
/// "landmark database ... [that] can store the locations of the highest
/// vorticity regions in the dataset or more broadly regions of interest
/// and their associated statistics" (Sec. 7); this module implements it.
struct Landmark {
  uint64_t id = 0;
  std::string dataset;
  std::string field;    ///< Cache-style key, e.g. "velocity:vorticity".
  int32_t t_min = 0;
  int32_t t_max = 0;
  Box3 bounding_box;    ///< Spatial extent, grid coordinates.
  std::array<double, 3> centroid = {0.0, 0.0, 0.0};
  double max_norm = 0.0;
  uint64_t num_points = 0;
  double threshold = 0.0;  ///< Threshold used to extract the region.
};

/// In-memory landmark store with text-file persistence. Thread-safe.
class LandmarkDatabase {
 public:
  LandmarkDatabase() = default;

  /// Registers a landmark; assigns and returns its id.
  uint64_t Add(Landmark landmark);

  /// Builds a landmark from a FoF cluster over `points`.
  uint64_t AddCluster(const std::string& dataset, const std::string& field,
                      double threshold, const std::vector<FofPoint>& points,
                      const FofCluster& cluster);

  Result<Landmark> Get(uint64_t id) const;

  /// Landmarks of a dataset (all if `field` empty), sorted by max_norm
  /// descending.
  std::vector<Landmark> List(const std::string& dataset,
                             const std::string& field = "") const;

  /// Landmarks whose [t_min, t_max] intersects `timestep`.
  std::vector<Landmark> AtTimestep(const std::string& dataset,
                                   int32_t timestep) const;

  size_t size() const;

  /// Whole-database persistence as a line-oriented text file.
  Status SaveTo(const std::string& path) const;
  Status LoadFrom(const std::string& path);

 private:
  mutable std::mutex mutex_;
  std::map<uint64_t, Landmark> landmarks_;
  uint64_t next_id_ = 1;
};

}  // namespace turbdb
