#include "analysis/particles.h"

#include <cmath>

#include "common/logging.h"

namespace turbdb {

namespace {

/// Velocity at fractional time t_begin_step + alpha for all particles:
/// linear blend of the two bracketing stored steps.
Result<std::vector<std::array<double, 3>>> VelocityAt(
    Mediator* mediator, const std::string& dataset, const std::string& field,
    int32_t step, double alpha, int support,
    const std::vector<std::array<double, 3>>& positions,
    TimeBreakdown* time) {
  SampleQuery query;
  query.dataset = dataset;
  query.raw_field = field;
  query.timestep = step;
  query.positions = positions;
  query.support = support;
  TURBDB_ASSIGN_OR_RETURN(SampleResult now, mediator->GetSamples(query));
  *time += now.time;
  if (alpha <= 0.0) return now.values;
  query.timestep = step + 1;
  TURBDB_ASSIGN_OR_RETURN(SampleResult next, mediator->GetSamples(query));
  *time += next.time;
  std::vector<std::array<double, 3>> blended(positions.size());
  for (size_t i = 0; i < positions.size(); ++i) {
    for (int c = 0; c < 3; ++c) {
      blended[i][static_cast<size_t>(c)] =
          (1.0 - alpha) * now.values[i][static_cast<size_t>(c)] +
          alpha * next.values[i][static_cast<size_t>(c)];
    }
  }
  return blended;
}

void WrapPositions(const GridGeometry& geometry,
                   std::vector<std::array<double, 3>>* positions) {
  for (auto& position : *positions) {
    for (int d = 0; d < 3; ++d) {
      const double length = geometry.domain_length(d);
      if (geometry.periodic(d)) {
        position[static_cast<size_t>(d)] -=
            length *
            std::floor(position[static_cast<size_t>(d)] / length);
      } else {
        // Channel walls: clamp (particles stick to the wall, a common
        // tracer convention; reflective walls would be a one-line swap).
        const double lo = geometry.Coord(d, 0);
        const double hi = geometry.Coord(d, geometry.extent(d) - 1);
        position[static_cast<size_t>(d)] =
            std::clamp(position[static_cast<size_t>(d)], lo, hi);
      }
    }
  }
}

}  // namespace

Result<Trajectories> TrackParticles(Mediator* mediator,
                                    const std::string& dataset,
                                    const std::string& field,
                                    std::vector<std::array<double, 3>> seeds,
                                    int32_t t_begin, int32_t t_end,
                                    const TrackingParams& params) {
  if (seeds.empty()) {
    return Status::InvalidArgument("no seed particles");
  }
  if (t_end <= t_begin) {
    return Status::InvalidArgument("need t_end > t_begin");
  }
  if (params.substeps < 1) {
    return Status::InvalidArgument("substeps must be positive");
  }
  TURBDB_ASSIGN_OR_RETURN(const DatasetInfo* info,
                          mediator->GetDataset(dataset));
  const GridGeometry& geometry = info->geometry;
  WrapPositions(geometry, &seeds);

  Trajectories out;
  out.positions.reserve(static_cast<size_t>(t_end - t_begin) + 1);
  out.positions.push_back(seeds);

  // Physical time per stored step comes from the generator convention:
  // one step = spec.dt; tracking only needs a consistent unit, so we
  // advance one "step unit" per stored interval.
  std::vector<std::array<double, 3>> current = std::move(seeds);
  const double h = 1.0 / static_cast<double>(params.substeps);
  for (int32_t step = t_begin; step < t_end; ++step) {
    for (int sub = 0; sub < params.substeps; ++sub) {
      const double alpha0 = sub * h;
      auto euler_shift = [&](const std::vector<std::array<double, 3>>& base,
                             const std::vector<std::array<double, 3>>& k,
                             double scale) {
        std::vector<std::array<double, 3>> shifted(base.size());
        for (size_t i = 0; i < base.size(); ++i) {
          for (size_t c = 0; c < 3; ++c) {
            shifted[i][c] = base[i][c] + scale * k[i][c];
          }
        }
        WrapPositions(geometry, &shifted);
        return shifted;
      };
      // Classical RK4 for dx/dt = u(x, t).
      TURBDB_ASSIGN_OR_RETURN(
          auto k1, VelocityAt(mediator, dataset, field, step, alpha0,
                              params.support, current, &out.time));
      TURBDB_ASSIGN_OR_RETURN(
          auto k2,
          VelocityAt(mediator, dataset, field, step, alpha0 + 0.5 * h,
                     params.support, euler_shift(current, k1, 0.5 * h),
                     &out.time));
      TURBDB_ASSIGN_OR_RETURN(
          auto k3,
          VelocityAt(mediator, dataset, field, step, alpha0 + 0.5 * h,
                     params.support, euler_shift(current, k2, 0.5 * h),
                     &out.time));
      TURBDB_ASSIGN_OR_RETURN(
          auto k4, VelocityAt(mediator, dataset, field, step,
                              std::min(1.0, alpha0 + h), params.support,
                              euler_shift(current, k3, h), &out.time));
      for (size_t i = 0; i < current.size(); ++i) {
        for (size_t c = 0; c < 3; ++c) {
          current[i][c] += h / 6.0 *
                           (k1[i][c] + 2.0 * k2[i][c] + 2.0 * k3[i][c] +
                            k4[i][c]);
        }
      }
      WrapPositions(geometry, &current);
    }
    out.positions.push_back(current);
  }
  return out;
}

}  // namespace turbdb
