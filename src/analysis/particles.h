#pragma once

#include <array>
#include <vector>

#include "cluster/mediator.h"
#include "common/result.h"

namespace turbdb {

/// Parameters of Lagrangian particle tracking (one of the JHTDB's
/// built-in data-intensive analysis routines, Sec. 2; the paper's Fig. 3
/// science — following worms through time — builds on it).
struct TrackingParams {
  /// RK substeps between consecutive stored time-steps.
  int substeps = 4;
  /// Lagrange interpolation support (4, 6 or 8).
  int support = 4;
};

/// Trajectories: positions[k][p] is particle p at stored step
/// t_begin + k, for k in [0, t_end - t_begin].
struct Trajectories {
  std::vector<std::vector<std::array<double, 3>>> positions;
  TimeBreakdown time;  ///< Accumulated over all sampling calls.
};

/// Advects tracer particles through the stored velocity field from
/// `t_begin` to `t_end` with classical RK4. The velocity between stored
/// steps is interpolated linearly in time (each RK stage samples the two
/// bracketing stored steps); space uses Lagrange interpolation of order
/// `params.support`. Positions wrap along periodic axes.
///
/// `field` must be a stored vector field ("velocity"). Fails if the
/// requested steps are not ingested.
Result<Trajectories> TrackParticles(
    Mediator* mediator, const std::string& dataset, const std::string& field,
    std::vector<std::array<double, 3>> seeds, int32_t t_begin, int32_t t_end,
    const TrackingParams& params = {});

}  // namespace turbdb
