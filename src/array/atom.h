#pragma once

#include <cstdint>
#include <functional>
#include <tuple>
#include <vector>

#include "array/box.h"
#include "array/morton.h"

namespace turbdb {

/// Identifies one database atom within a (dataset, field) table: the
/// time-step it belongs to and the Morton code of its lower-left corner in
/// atom coordinates. This pair is the clustered primary key of the data
/// tables in the paper's SQL Server deployment.
struct AtomKey {
  int32_t timestep = 0;
  uint64_t zindex = 0;

  bool operator==(const AtomKey& other) const {
    return timestep == other.timestep && zindex == other.zindex;
  }
  bool operator<(const AtomKey& other) const {
    return std::tie(timestep, zindex) < std::tie(other.timestep, other.zindex);
  }
};

struct AtomKeyHash {
  size_t operator()(const AtomKey& key) const {
    return std::hash<uint64_t>()(key.zindex * 1000003ULL +
                                 static_cast<uint64_t>(
                                     static_cast<uint32_t>(key.timestep)));
  }
};

/// One 8^3 (atom_width^3) block of field data, stored point-major
/// ("array of structures"): data[((k*w + j)*w + i)*ncomp + c] where
/// (i, j, k) are local offsets. Point-major layout keeps all components
/// of a point adjacent, which is what derived-field kernels consume.
struct Atom {
  AtomKey key;
  int32_t width = 8;
  int32_t ncomp = 0;
  std::vector<float> data;

  Atom() = default;
  Atom(AtomKey k, int32_t w, int32_t nc)
      : key(k), width(w), ncomp(nc),
        data(static_cast<size_t>(w) * w * w * nc, 0.0f) {}

  float At(int i, int j, int k, int c) const {
    return data[(((static_cast<size_t>(k) * width + j) * width + i) * ncomp) +
                c];
  }
  float& At(int i, int j, int k, int c) {
    return data[(((static_cast<size_t>(k) * width + j) * width + i) * ncomp) +
                c];
  }

  /// Payload size in bytes (what disk and network cost models charge for).
  uint64_t SizeBytes() const { return data.size() * sizeof(float); }

  /// Atom coordinates (grid coords / width) recovered from the z-index.
  void AtomCoords(uint32_t* ax, uint32_t* ay, uint32_t* az) const {
    MortonDecode3(key.zindex, ax, ay, az);
  }

  /// The grid-point box covered by this atom.
  Box3 GridBox() const {
    uint32_t ax, ay, az;
    AtomCoords(&ax, &ay, &az);
    const int64_t w = width;
    return Box3(ax * w, ay * w, az * w, (ax + 1) * w, (ay + 1) * w,
                (az + 1) * w);
  }
};

/// Builds the key of the atom holding grid point (x, y, z) at `timestep`.
inline AtomKey AtomKeyForPoint(int32_t timestep, int64_t x, int64_t y,
                               int64_t z, int64_t atom_width) {
  return AtomKey{timestep,
                 MortonEncode3(static_cast<uint32_t>(x / atom_width),
                               static_cast<uint32_t>(y / atom_width),
                               static_cast<uint32_t>(z / atom_width))};
}

}  // namespace turbdb
