#include "array/box.h"

#include <algorithm>
#include <cstdio>

namespace turbdb {

Box3 Box3::Intersection(const Box3& other) const {
  Box3 out;
  for (int d = 0; d < 3; ++d) {
    out.lo[d] = std::max(lo[d], other.lo[d]);
    out.hi[d] = std::min(hi[d], other.hi[d]);
  }
  if (out.Empty()) return Box3();
  return out;
}

Box3 Box3::Grown(int64_t halo) const {
  Box3 out = *this;
  for (int d = 0; d < 3; ++d) {
    out.lo[d] -= halo;
    out.hi[d] += halo;
  }
  return out;
}

std::string Box3::ToString() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%lld,%lld,%lld)x(%lld,%lld,%lld]",
                static_cast<long long>(lo[0]), static_cast<long long>(lo[1]),
                static_cast<long long>(lo[2]), static_cast<long long>(hi[0]),
                static_cast<long long>(hi[1]), static_cast<long long>(hi[2]));
  return buf;
}

}  // namespace turbdb
