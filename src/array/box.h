#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace turbdb {

/// Axis-aligned half-open box of grid indices: [lo[d], hi[d]) per axis.
/// The paper's query boxes [xl..xu] are inclusive; use FromInclusive to
/// convert at the API boundary.
struct Box3 {
  std::array<int64_t, 3> lo{0, 0, 0};
  std::array<int64_t, 3> hi{0, 0, 0};

  Box3() = default;
  Box3(int64_t xl, int64_t yl, int64_t zl, int64_t xu, int64_t yu, int64_t zu)
      : lo{xl, yl, zl}, hi{xu, yu, zu} {}

  static Box3 FromInclusive(int64_t xl, int64_t yl, int64_t zl, int64_t xu,
                            int64_t yu, int64_t zu) {
    return Box3(xl, yl, zl, xu + 1, yu + 1, zu + 1);
  }

  /// The whole [0, n)^3 domain of a grid with per-axis extents.
  static Box3 WholeGrid(int64_t nx, int64_t ny, int64_t nz) {
    return Box3(0, 0, 0, nx, ny, nz);
  }

  bool Empty() const {
    return hi[0] <= lo[0] || hi[1] <= lo[1] || hi[2] <= lo[2];
  }

  int64_t Extent(int axis) const { return hi[axis] - lo[axis]; }

  /// Number of grid points in the box (0 if empty).
  int64_t Volume() const {
    if (Empty()) return 0;
    return Extent(0) * Extent(1) * Extent(2);
  }

  bool ContainsPoint(int64_t x, int64_t y, int64_t z) const {
    return x >= lo[0] && x < hi[0] && y >= lo[1] && y < hi[1] && z >= lo[2] &&
           z < hi[2];
  }

  /// True if `other` lies entirely inside this box. Empty boxes are
  /// contained in everything.
  bool ContainsBox(const Box3& other) const {
    if (other.Empty()) return true;
    for (int d = 0; d < 3; ++d) {
      if (other.lo[d] < lo[d] || other.hi[d] > hi[d]) return false;
    }
    return true;
  }

  bool Intersects(const Box3& other) const {
    for (int d = 0; d < 3; ++d) {
      if (other.hi[d] <= lo[d] || other.lo[d] >= hi[d]) return false;
    }
    return true;
  }

  /// Component-wise intersection (may be empty).
  Box3 Intersection(const Box3& other) const;

  /// Grows the box by `halo` points on every side (no clamping).
  Box3 Grown(int64_t halo) const;

  bool operator==(const Box3& other) const {
    return lo == other.lo && hi == other.hi;
  }

  std::string ToString() const;
};

/// A Box3 plus a half-open time-step interval; used by 4-D analyses
/// (friends-of-friends clustering across time, Fig. 3).
struct Box4 {
  Box3 space;
  int64_t t_lo = 0;
  int64_t t_hi = 0;

  bool Empty() const { return t_hi <= t_lo || space.Empty(); }
  int64_t Volume() const { return Empty() ? 0 : space.Volume() * (t_hi - t_lo); }
  bool Contains(int64_t x, int64_t y, int64_t z, int64_t t) const {
    return t >= t_lo && t < t_hi && space.ContainsPoint(x, y, z);
  }
};

}  // namespace turbdb
