#include "array/geometry.h"

#include <cmath>

#include "common/logging.h"

namespace turbdb {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;
}

GridGeometry GridGeometry::Isotropic(int64_t n, int64_t atom_width) {
  GridGeometry g;
  g.extent_ = {n, n, n};
  g.length_ = {kTwoPi, kTwoPi, kTwoPi};
  g.periodic_ = {true, true, true};
  g.atom_width_ = atom_width;
  return g;
}

GridGeometry GridGeometry::Channel(int64_t nx, int64_t ny, int64_t nz,
                                   double stretch, int64_t atom_width) {
  GridGeometry g;
  g.extent_ = {nx, ny, nz};
  // Channel half-height 1: y in [-1, 1]; streamwise 8*pi, spanwise 3*pi
  // (the proportions of the JHTDB channel-flow dataset).
  g.length_ = {4 * kTwoPi, 2.0, 1.5 * kTwoPi};
  g.periodic_ = {true, false, true};
  g.atom_width_ = atom_width;
  g.stretched_y_.resize(static_cast<size_t>(ny));
  const double denom = std::tanh(stretch);
  for (int64_t j = 0; j < ny; ++j) {
    // Map xi in [-1, 1] through tanh clustering toward the walls.
    const double xi =
        -1.0 + 2.0 * static_cast<double>(j) / static_cast<double>(ny - 1);
    g.stretched_y_[static_cast<size_t>(j)] =
        std::tanh(stretch * xi) / denom;
  }
  return g;
}

Status GridGeometry::Validate() const {
  for (int d = 0; d < 3; ++d) {
    if (extent_[d] <= 0) {
      return Status::InvalidArgument("grid extent must be positive");
    }
    if (length_[d] <= 0.0) {
      return Status::InvalidArgument("domain length must be positive");
    }
  }
  if (atom_width_ <= 0) {
    return Status::InvalidArgument("atom width must be positive");
  }
  for (int d = 0; d < 3; ++d) {
    if (extent_[d] % atom_width_ != 0) {
      return Status::InvalidArgument(
          "atom width must divide every grid extent");
    }
  }
  if (!stretched_y_.empty()) {
    if (static_cast<int64_t>(stretched_y_.size()) != extent_[1]) {
      return Status::InvalidArgument(
          "stretched y coordinate array must have ny entries");
    }
    for (size_t j = 1; j < stretched_y_.size(); ++j) {
      if (stretched_y_[j] <= stretched_y_[j - 1]) {
        return Status::InvalidArgument(
            "stretched y coordinates must be strictly increasing");
      }
    }
    if (periodic_[1]) {
      return Status::InvalidArgument(
          "a stretched axis cannot be periodic");
    }
  }
  return Status::OK();
}

Result<Box3> GridGeometry::ClipToDomain(const Box3& box) const {
  Box3 out = box;
  for (int d = 0; d < 3; ++d) {
    if (!periodic_[d]) {
      out.lo[d] = std::max<int64_t>(out.lo[d], 0);
      out.hi[d] = std::min<int64_t>(out.hi[d], extent_[d]);
    } else {
      // A query box wider than the domain along a periodic axis would
      // visit points twice; clamp its extent to one period.
      if (out.hi[d] - out.lo[d] > extent_[d]) {
        return Status::InvalidArgument(
            "query box exceeds one period along a periodic axis");
      }
    }
  }
  if (out.Empty()) {
    return Status::InvalidArgument("query box is empty after clipping: " +
                                   box.ToString());
  }
  return out;
}

Box3 GridGeometry::AtomCover(const Box3& points_box) const {
  const int64_t w = atom_width_;
  Box3 out;
  for (int d = 0; d < 3; ++d) {
    // Floor-divide lo, ceil-divide hi (handles negative coords from halos
    // along periodic axes).
    int64_t lo = points_box.lo[d];
    int64_t hi = points_box.hi[d];
    out.lo[d] = (lo >= 0) ? lo / w : -((-lo + w - 1) / w);
    out.hi[d] = (hi >= 0) ? (hi + w - 1) / w : -((-hi) / w);
  }
  return out;
}

}  // namespace turbdb
