#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "array/box.h"
#include "common/result.h"
#include "common/status.h"

namespace turbdb {

/// Geometry of one simulation grid: extents, physical domain, periodicity,
/// atom decomposition, and (for channel-flow-like datasets) a stretched,
/// non-uniform y coordinate.
///
/// All JHTDB datasets except channel flow live on regular periodic
/// [0, 2*pi)^3 grids; the channel-flow dataset is periodic in x and z and
/// wall-bounded with tanh-clustered nodes in y. Both are supported.
class GridGeometry {
 public:
  GridGeometry() = default;

  /// A periodic isotropic cube of n^3 points with physical size 2*pi.
  static GridGeometry Isotropic(int64_t n, int64_t atom_width = 8);

  /// A channel-like grid: periodic in x/z, wall-bounded in y with nodes
  /// clustered toward the walls via a tanh mapping with the given
  /// stretching factor (typical DNS values ~2).
  static GridGeometry Channel(int64_t nx, int64_t ny, int64_t nz,
                              double stretch = 2.0, int64_t atom_width = 8);

  /// Reassembles a geometry from its raw members — the wire-decode path,
  /// where a remote peer ships the exact fields instead of the recipe
  /// that produced them. Callers should Validate() the result.
  static GridGeometry FromParts(const std::array<int64_t, 3>& extent,
                                const std::array<double, 3>& length,
                                const std::array<bool, 3>& periodic,
                                int64_t atom_width,
                                std::vector<double> stretched_y) {
    GridGeometry g;
    g.extent_ = extent;
    g.length_ = length;
    g.periodic_ = periodic;
    g.atom_width_ = atom_width;
    g.stretched_y_ = std::move(stretched_y);
    return g;
  }

  /// Validates invariants (positive extents, atom width divides extents,
  /// stretched coordinates strictly increasing, ...).
  Status Validate() const;

  int64_t extent(int axis) const { return extent_[axis]; }
  int64_t nx() const { return extent_[0]; }
  int64_t ny() const { return extent_[1]; }
  int64_t nz() const { return extent_[2]; }
  int64_t NumPoints() const { return extent_[0] * extent_[1] * extent_[2]; }

  double domain_length(int axis) const { return length_[axis]; }
  bool periodic(int axis) const { return periodic_[axis]; }

  int64_t atom_width() const { return atom_width_; }
  int64_t AtomsAlong(int axis) const { return extent_[axis] / atom_width_; }
  int64_t NumAtoms() const {
    return AtomsAlong(0) * AtomsAlong(1) * AtomsAlong(2);
  }

  /// Uniform spacing along `axis`. For a stretched axis this is the mean
  /// spacing; use Coord() / LocalSpacing() for pointwise values.
  double Spacing(int axis) const {
    return length_[axis] / static_cast<double>(extent_[axis]);
  }

  bool stretched(int axis) const {
    return axis == 1 && !stretched_y_.empty();
  }

  /// Physical coordinate of grid node i along `axis`.
  double Coord(int axis, int64_t i) const {
    if (stretched(axis)) return stretched_y_[static_cast<size_t>(i)];
    return Spacing(axis) * static_cast<double>(i);
  }

  /// Wraps a (possibly out-of-range) index along a periodic axis; clamps
  /// are a caller error on non-periodic axes (checked via InDomain).
  int64_t WrapIndex(int axis, int64_t i) const {
    const int64_t n = extent_[axis];
    i %= n;
    if (i < 0) i += n;
    return i;
  }

  /// True if index i is a valid node along `axis` without wrapping.
  bool InDomain(int axis, int64_t i) const {
    return i >= 0 && i < extent_[axis];
  }

  /// The whole grid as a half-open box.
  Box3 Bounds() const {
    return Box3::WholeGrid(extent_[0], extent_[1], extent_[2]);
  }

  /// Returns `box` clipped to the domain along non-periodic axes and
  /// checked (via status) to be non-empty and within [-n, 2n) sanity
  /// bounds along periodic ones.
  Result<Box3> ClipToDomain(const Box3& box) const;

  /// The box of whole atoms (in atom coordinates) covering `points_box`
  /// (in grid coordinates, not wrapped).
  Box3 AtomCover(const Box3& points_box) const;

  const std::vector<double>& stretched_y() const { return stretched_y_; }

  bool operator==(const GridGeometry& other) const {
    return extent_ == other.extent_ && length_ == other.length_ &&
           periodic_ == other.periodic_ && atom_width_ == other.atom_width_ &&
           stretched_y_ == other.stretched_y_;
  }

 private:
  std::array<int64_t, 3> extent_{0, 0, 0};
  std::array<double, 3> length_{0.0, 0.0, 0.0};
  std::array<bool, 3> periodic_{true, true, true};
  int64_t atom_width_ = 8;
  std::vector<double> stretched_y_;  ///< Empty when y is uniform.
};

}  // namespace turbdb
