#include "array/morton.h"

#include <algorithm>
#include <cassert>

namespace turbdb {

namespace {

/// Spreads the low 21 bits of v so that bit i lands at bit 3i.
uint64_t SpreadBits3(uint32_t v) {
  uint64_t x = v & 0x1FFFFF;  // 21 bits
  x = (x | (x << 32)) & 0x001F00000000FFFFULL;
  x = (x | (x << 16)) & 0x001F0000FF0000FFULL;
  x = (x | (x << 8)) & 0x100F00F00F00F00FULL;
  x = (x | (x << 4)) & 0x10C30C30C30C30C3ULL;
  x = (x | (x << 2)) & 0x1249249249249249ULL;
  return x;
}

/// Inverse of SpreadBits3.
uint32_t CompactBits3(uint64_t x) {
  x &= 0x1249249249249249ULL;
  x = (x | (x >> 2)) & 0x10C30C30C30C30C3ULL;
  x = (x | (x >> 4)) & 0x100F00F00F00F00FULL;
  x = (x | (x >> 8)) & 0x001F0000FF0000FFULL;
  x = (x | (x >> 16)) & 0x001F00000000FFFFULL;
  x = (x | (x >> 32)) & 0x00000000001FFFFFULL;
  return static_cast<uint32_t>(x);
}

struct BoxRef {
  const uint32_t* lo;
  const uint32_t* hi;
};

/// Recursively covers the intersection of the octree cell anchored at
/// (cx, cy, cz) with side 2^level and the target box.
void CoverCell(uint32_t cx, uint32_t cy, uint32_t cz, int level,
               const BoxRef& box, std::vector<MortonRange>* out) {
  const uint64_t side = 1ULL << level;
  // Cell bounds (half-open).
  const uint64_t cell_lo[3] = {cx, cy, cz};
  const uint64_t cell_hi[3] = {cx + side, cy + side, cz + side};
  // Disjoint?
  for (int d = 0; d < 3; ++d) {
    if (cell_hi[d] <= box.lo[d] || cell_lo[d] >= box.hi[d]) return;
  }
  // Fully contained?
  bool contained = true;
  for (int d = 0; d < 3; ++d) {
    if (cell_lo[d] < box.lo[d] || cell_hi[d] > box.hi[d]) {
      contained = false;
      break;
    }
  }
  if (contained) {
    const uint64_t base = MortonEncode3(cx, cy, cz);
    out->push_back(MortonRange{base, base + (1ULL << (3 * level))});
    return;
  }
  assert(level > 0);
  const uint32_t half = static_cast<uint32_t>(side >> 1);
  // Visit children in Morton order so the output is sorted.
  for (uint32_t octant = 0; octant < 8; ++octant) {
    const uint32_t ox = cx + ((octant & 1u) ? half : 0);
    const uint32_t oy = cy + ((octant & 2u) ? half : 0);
    const uint32_t oz = cz + ((octant & 4u) ? half : 0);
    CoverCell(ox, oy, oz, level - 1, box, out);
  }
}

/// Merges adjacent ranges in-place (input must be sorted and disjoint).
void MergeAdjacent(std::vector<MortonRange>* ranges) {
  if (ranges->empty()) return;
  size_t w = 0;
  for (size_t r = 1; r < ranges->size(); ++r) {
    if ((*ranges)[r].lo == (*ranges)[w].hi) {
      (*ranges)[w].hi = (*ranges)[r].hi;
    } else {
      (*ranges)[++w] = (*ranges)[r];
    }
  }
  ranges->resize(w + 1);
}

/// Coalesces the pairs with the smallest gaps until at most `max_ranges`
/// remain. The result is a superset of the original coverage.
void CoalesceToLimit(std::vector<MortonRange>* ranges, int max_ranges) {
  while (static_cast<int>(ranges->size()) > max_ranges) {
    size_t best = 0;
    uint64_t best_gap = UINT64_MAX;
    for (size_t i = 0; i + 1 < ranges->size(); ++i) {
      const uint64_t gap = (*ranges)[i + 1].lo - (*ranges)[i].hi;
      if (gap < best_gap) {
        best_gap = gap;
        best = i;
      }
    }
    (*ranges)[best].hi = (*ranges)[best + 1].hi;
    ranges->erase(ranges->begin() + best + 1);
  }
}

}  // namespace

uint64_t MortonEncode3(uint32_t x, uint32_t y, uint32_t z) {
  assert(x <= kMortonMaxCoord && y <= kMortonMaxCoord && z <= kMortonMaxCoord);
  return SpreadBits3(x) | (SpreadBits3(y) << 1) | (SpreadBits3(z) << 2);
}

void MortonDecode3(uint64_t code, uint32_t* x, uint32_t* y, uint32_t* z) {
  *x = CompactBits3(code);
  *y = CompactBits3(code >> 1);
  *z = CompactBits3(code >> 2);
}

std::vector<MortonRange> MortonRangesForBox(const uint32_t lo[3],
                                            const uint32_t hi[3],
                                            int max_ranges) {
  std::vector<MortonRange> out;
  for (int d = 0; d < 3; ++d) {
    if (hi[d] <= lo[d]) return out;  // Empty box.
  }
  // Find the smallest power-of-two cell that contains the box.
  int level = 0;
  const uint32_t max_hi = std::max({hi[0], hi[1], hi[2]});
  while ((1u << level) < max_hi) ++level;
  BoxRef box{lo, hi};
  CoverCell(0, 0, 0, level, box, &out);
  MergeAdjacent(&out);
  if (max_ranges > 0 && static_cast<int>(out.size()) > max_ranges) {
    CoalesceToLimit(&out, max_ranges);
  }
  return out;
}

}  // namespace turbdb
