#pragma once

#include <cstdint>
#include <vector>

namespace turbdb {

/// 3-D Morton (z-order) curve utilities.
///
/// The JHTDB partitions every time-step into 8^3 "database atoms" and keys
/// each atom by the Morton code of its lower-left corner; contiguous Morton
/// ranges are assigned to database nodes. We use the standard interleaving
/// with the x bit in the least-significant position of each triple:
/// bit i of x maps to code bit 3i, y to 3i+1, z to 3i+2. Each coordinate
/// may use at most 21 bits (grids up to 2097152^3).
constexpr int kMortonBitsPerDim = 21;
constexpr uint32_t kMortonMaxCoord = (1u << kMortonBitsPerDim) - 1;

/// Interleaves (x, y, z) into a 63-bit Morton code.
uint64_t MortonEncode3(uint32_t x, uint32_t y, uint32_t z);

/// Inverse of MortonEncode3.
void MortonDecode3(uint64_t code, uint32_t* x, uint32_t* y, uint32_t* z);

/// A half-open interval [lo, hi) of Morton codes.
struct MortonRange {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool Contains(uint64_t code) const { return code >= lo && code < hi; }
  uint64_t Size() const { return hi - lo; }
  bool operator==(const MortonRange& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// Computes the minimal set of disjoint, sorted Morton ranges that exactly
/// cover the axis-aligned box [lo, hi) (half-open, in atom coordinates).
///
/// Implemented by recursive octree descent: an octree cell occupies a
/// contiguous Morton interval, so cells fully inside the box are emitted
/// as whole intervals and boundary cells are split. Adjacent intervals are
/// merged. This is how a range scan over the clustered (timestep, zindex)
/// index is translated into contiguous disk reads.
///
/// `max_ranges`, if positive, caps the output size: once reached, boundary
/// cells are emitted whole (a superset of the box), trading read
/// amplification for fewer seeks — callers must then post-filter by box.
std::vector<MortonRange> MortonRangesForBox(const uint32_t lo[3],
                                            const uint32_t hi[3],
                                            int max_ranges = 0);

}  // namespace turbdb
