#pragma once

#include <cstdint>

#include "array/morton.h"

namespace turbdb {

/// One threshold-query result row: the Morton z-index of a grid point
/// whose derived-field norm met the threshold, and that norm. This is
/// exactly the schema of the paper's cacheData table (zindex, dataValue).
struct ThresholdPoint {
  uint64_t zindex = 0;
  float norm = 0.0f;

  void Coords(uint32_t* x, uint32_t* y, uint32_t* z) const {
    MortonDecode3(zindex, x, y, z);
  }

  bool operator==(const ThresholdPoint& other) const {
    return zindex == other.zindex && norm == other.norm;
  }
};

/// Builds the result row for grid point (x, y, z).
inline ThresholdPoint MakeThresholdPoint(uint32_t x, uint32_t y, uint32_t z,
                                         float norm) {
  return ThresholdPoint{MortonEncode3(x, y, z), norm};
}

}  // namespace turbdb
