#include "array/slab.h"

#include "common/logging.h"

namespace turbdb {

void Slab::CopyAtom(const Atom& atom, const Box3& dest_box) {
  TURBDB_DCHECK(atom.ncomp == ncomp_);
  const Box3 overlap = region_.Intersection(dest_box);
  if (overlap.Empty()) return;
  const int w = atom.width;
  for (int64_t z = overlap.lo[2]; z < overlap.hi[2]; ++z) {
    const int ak = static_cast<int>(z - dest_box.lo[2]);
    for (int64_t y = overlap.lo[1]; y < overlap.hi[1]; ++y) {
      const int aj = static_cast<int>(y - dest_box.lo[1]);
      // Copy a contiguous x-run of (hi-lo)*ncomp floats.
      const int ai = static_cast<int>(overlap.lo[0] - dest_box.lo[0]);
      const size_t src =
          (((static_cast<size_t>(ak) * w + aj) * w + ai) * atom.ncomp);
      const size_t dst = Index(overlap.lo[0], y, z, 0);
      const size_t count =
          static_cast<size_t>(overlap.Extent(0)) * ncomp_;
      std::copy(atom.data.begin() + src, atom.data.begin() + src + count,
                data_.begin() + dst);
    }
  }
}

}  // namespace turbdb
