#pragma once

#include <cstdint>
#include <vector>

#include "array/atom.h"
#include "array/box.h"

namespace turbdb {

/// A dense, contiguous buffer holding field data for a rectangular region
/// of the grid (typically a worker's chunk plus its halo). Coordinates are
/// *extended* grid coordinates: they may run outside [0, n) along periodic
/// axes; the data placed there are the periodic images gathered from the
/// wrapped atoms.
///
/// Layout is point-major like Atom: all components of a point adjacent.
class Slab {
 public:
  Slab() = default;

  /// Allocates a zero-filled slab covering `region` with `ncomp`
  /// components per point.
  Slab(const Box3& region, int ncomp)
      : region_(region), ncomp_(ncomp),
        data_(static_cast<size_t>(region.Volume()) * ncomp, 0.0f) {}

  const Box3& region() const { return region_; }
  int ncomp() const { return ncomp_; }
  size_t SizeBytes() const { return data_.size() * sizeof(float); }

  /// Value at extended grid coordinates (x, y, z), component c.
  /// Precondition: region().ContainsPoint(x, y, z).
  float At(int64_t x, int64_t y, int64_t z, int c) const {
    return data_[Index(x, y, z, c)];
  }
  float& At(int64_t x, int64_t y, int64_t z, int c) {
    return data_[Index(x, y, z, c)];
  }

  /// Copies the intersection of `atom`'s data into this slab.
  /// `dest_box` is the extended-coordinate box the atom's data should
  /// occupy (the atom's own GridBox() translated by the periodic shift the
  /// gatherer applied; for interior atoms it equals atom.GridBox()).
  void CopyAtom(const Atom& atom, const Box3& dest_box);

  const std::vector<float>& data() const { return data_; }

 private:
  size_t Index(int64_t x, int64_t y, int64_t z, int c) const {
    const int64_t i = x - region_.lo[0];
    const int64_t j = y - region_.lo[1];
    const int64_t k = z - region_.lo[2];
    return (((static_cast<size_t>(k) * region_.Extent(1) + j) *
                 region_.Extent(0) +
             i) *
            ncomp_) +
           c;
  }

  Box3 region_;
  int ncomp_ = 0;
  std::vector<float> data_;
};

}  // namespace turbdb
