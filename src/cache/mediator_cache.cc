#include "cache/mediator_cache.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <utility>

namespace turbdb {

namespace {

/// Resident charge of one entry: fixed overhead plus the point rows.
uint64_t EntryBytes(size_t num_points) {
  return MediatorCache::kEntryOverhead +
         static_cast<uint64_t>(num_points) * MediatorCache::kBytesPerPoint;
}

}  // namespace

MediatorCache::MediatorCache(uint64_t capacity_bytes)
    : capacity_bytes_(capacity_bytes), ledger_(&internal_ledger_) {}

void MediatorCache::AttachLedger(ResourceGovernor* governor) {
  ledger_.store(governor != nullptr ? governor : &internal_ledger_,
                std::memory_order_release);
}

MediatorCache::Shard& MediatorCache::ShardFor(const Key& key) {
  size_t h = std::hash<std::string>{}(key.dataset);
  h = h * 1000003 + std::hash<std::string>{}(key.field);
  h = h * 1000003 + static_cast<size_t>(key.fd_order);
  h = h * 1000003 + static_cast<size_t>(key.timestep);
  return shards_[h % kNumShards];
}

MediatorCacheLookup MediatorCache::Lookup(const std::string& dataset,
                                          const std::string& field,
                                          int fd_order, int32_t timestep,
                                          const Box3& box, double threshold) {
  MediatorCacheLookup out;
  if (!enabled()) {
    return out;  // Disabled tier: silent miss, no counter noise.
  }
  const Key key{dataset, field, fd_order, timestep};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    // Among the subsuming entries prefer the one with the fewest points:
    // it is the cheapest to filter, and an exact-region repeat naturally
    // wins over a whole-domain superset.
    Entry* best = nullptr;
    for (Entry& entry : it->second) {
      if (entry.threshold > threshold) continue;
      if (!entry.region.ContainsBox(box)) continue;
      if (best == nullptr || entry.points.size() < best->points.size()) {
        best = &entry;
      }
    }
    if (best != nullptr) {
      best->tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
      out.hit = true;
      out.subsumed = !(best->region == box) || best->threshold < threshold;
      // Same comparison as SemanticCache::Lookup (float norm promoted to
      // double), so a mediator-tier answer is byte-identical to the
      // node-tier cached answer for the same query.
      out.points.reserve(best->points.size());
      const bool whole_region = best->region == box;
      for (const ThresholdPoint& point : best->points) {
        if (point.norm < threshold) continue;
        if (!whole_region) {
          uint32_t x = 0;
          uint32_t y = 0;
          uint32_t z = 0;
          point.Coords(&x, &y, &z);
          if (!box.ContainsPoint(x, y, z)) continue;
        }
        out.points.push_back(point);
      }
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (out.subsumed) {
        subsumption_hits_.fetch_add(1, std::memory_order_relaxed);
      }
      return out;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void MediatorCache::Insert(const std::string& dataset,
                           const std::string& field, int fd_order,
                           int32_t timestep, const Box3& region,
                           double threshold,
                           const std::vector<ThresholdPoint>& points,
                           uint64_t as_of_epoch) {
  if (!enabled()) return;
  if (epoch() != as_of_epoch) {
    // The data changed while the result was being computed; caching it
    // would serve a pre-ingest answer forever.
    stale_inserts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  const uint64_t bytes = EntryBytes(points.size());
  if (bytes > capacity_bytes_) return;  // Can never fit; best effort.
  EvictUntilFits(bytes);
  if (total_bytes_.load(std::memory_order_relaxed) + bytes >
      capacity_bytes_) {
    return;  // Everything evictable was evicted and it still won't fit.
  }
  // Charge the ledger before committing. Under ledger pressure (shared
  // budget held by in-flight results) the cache yields its own LRU
  // entries first, then gives up — a query must never be blocked by its
  // own cache insert.
  ResourceGovernor::ByteReservation reservation;
  ResourceGovernor* ledger = ledger_.load(std::memory_order_acquire);
  while (!ledger->TryReserve(bytes, &reservation).ok()) {
    if (!EvictOldest()) return;
  }

  const Key key{dataset, field, fd_order, timestep};
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (epoch() != as_of_epoch) {
    // Invalidation bumps the epoch before sweeping the shards, so any
    // insert that got past the first check is caught here, under the
    // shard lock the sweep must also take.
    stale_inserts_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  std::vector<Entry>& slot = shard.entries[key];
  for (size_t i = 0; i < slot.size(); ++i) {
    if (!(slot[i].region == region)) continue;
    if (slot[i].threshold <= threshold) {
      // First committer wins: the resident entry already answers every
      // query the new one could. Drop the new result, no duplicate.
      return;
    }
    // The new result has a strictly lower threshold — a superset of the
    // resident points for the same region. Replace (the
    // stored-threshold-too-high refresh path of the node-local cache).
    const Entry& old = slot[i];
    total_bytes_.fetch_sub(old.bytes, std::memory_order_relaxed);
    total_entries_.fetch_sub(1, std::memory_order_relaxed);
    if (old.pinned) {
      pinned_bytes_.fetch_sub(old.bytes, std::memory_order_relaxed);
      pinned_entries_.fetch_sub(1, std::memory_order_relaxed);
    }
    slot.erase(slot.begin() + static_cast<long>(i));
    break;
  }
  Entry entry;
  entry.region = region;
  entry.threshold = threshold;
  entry.points = points;
  entry.bytes = bytes;
  entry.tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  entry.reservation = std::move(reservation);
  slot.push_back(std::move(entry));
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  total_entries_.fetch_add(1, std::memory_order_relaxed);
  insertions_.fetch_add(1, std::memory_order_relaxed);
}

void MediatorCache::EvictUntilFits(uint64_t needed) {
  // Bounded so a logic error can degrade to "don't cache", never hang.
  for (int attempt = 0; attempt < 1 << 20; ++attempt) {
    if (total_bytes_.load(std::memory_order_relaxed) + needed <=
        capacity_bytes_) {
      return;
    }
    if (!EvictOldest()) return;
  }
}

bool MediatorCache::EvictOldest() {
  // Pass 1: find the globally-oldest unpinned tick, one shard lock at a
  // time (never two at once). Ticks are unique, so pass 2 can identify
  // the entry by tick alone; a concurrent touch simply makes this an
  // approximate LRU, which is all that is promised.
  uint64_t oldest_tick = std::numeric_limits<uint64_t>::max();
  int oldest_shard = -1;
  for (int s = 0; s < kNumShards; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    for (const auto& [key, slot] : shards_[s].entries) {
      for (const Entry& entry : slot) {
        if (entry.pinned) continue;
        if (entry.tick < oldest_tick) {
          oldest_tick = entry.tick;
          oldest_shard = s;
        }
      }
    }
  }
  if (oldest_shard < 0) return false;

  // Pass 2: re-find by tick and erase. If a racing lookup touched it
  // away, report progress anyway — the caller loops.
  Shard& shard = shards_[oldest_shard];
  std::lock_guard<std::mutex> lock(shard.mutex);
  for (auto it = shard.entries.begin(); it != shard.entries.end(); ++it) {
    std::vector<Entry>& slot = it->second;
    for (size_t i = 0; i < slot.size(); ++i) {
      if (slot[i].tick != oldest_tick || slot[i].pinned) continue;
      total_bytes_.fetch_sub(slot[i].bytes, std::memory_order_relaxed);
      total_entries_.fetch_sub(1, std::memory_order_relaxed);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      slot.erase(slot.begin() + static_cast<long>(i));
      if (slot.empty()) shard.entries.erase(it);
      return true;
    }
  }
  return true;
}

template <typename Pred>
uint64_t MediatorCache::InvalidateMatching(const Pred& pred) {
  // Epoch first: a racing insert either observes the new epoch and
  // discards itself, or commits before the sweep below reaches its
  // shard and is swept. Either way no stale entry survives.
  epoch_.fetch_add(1, std::memory_order_acq_rel);
  uint64_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      std::vector<Entry>& slot = it->second;
      for (size_t i = 0; i < slot.size();) {
        if (pred(it->first, slot[i])) {
          total_bytes_.fetch_sub(slot[i].bytes, std::memory_order_relaxed);
          total_entries_.fetch_sub(1, std::memory_order_relaxed);
          if (slot[i].pinned) {
            pinned_bytes_.fetch_sub(slot[i].bytes,
                                    std::memory_order_relaxed);
            pinned_entries_.fetch_sub(1, std::memory_order_relaxed);
          }
          slot.erase(slot.begin() + static_cast<long>(i));
          ++dropped;
        } else {
          ++i;
        }
      }
      it = slot.empty() ? shard.entries.erase(it) : std::next(it);
    }
  }
  invalidations_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

uint64_t MediatorCache::Invalidate(const std::string& dataset,
                                   const std::string& field,
                                   int32_t timestep) {
  if (!enabled()) return 0;
  return InvalidateMatching([&](const Key& key, const Entry&) {
    return key.dataset == dataset && key.field == field &&
           (timestep < 0 || key.timestep == timestep);
  });
}

uint64_t MediatorCache::InvalidateRawField(const std::string& dataset,
                                           const std::string& raw_field,
                                           int32_t timestep) {
  if (!enabled()) return 0;
  const std::string prefix = raw_field + ":";
  return InvalidateMatching([&](const Key& key, const Entry&) {
    return key.dataset == dataset &&
           key.field.compare(0, prefix.size(), prefix) == 0 &&
           (timestep < 0 || key.timestep == timestep);
  });
}

uint64_t MediatorCache::Clear() {
  if (!enabled()) return 0;
  return InvalidateMatching([](const Key&, const Entry&) { return true; });
}

uint64_t MediatorCache::SetPinned(const std::string& dataset,
                                  const std::string& field, int32_t timestep,
                                  bool pinned) {
  if (!enabled()) return 0;
  uint64_t changed = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto& [key, slot] : shard.entries) {
      if (key.dataset != dataset || key.field != field) continue;
      if (timestep >= 0 && key.timestep != timestep) continue;
      for (Entry& entry : slot) {
        if (entry.pinned == pinned) continue;
        entry.pinned = pinned;
        if (pinned) {
          pinned_bytes_.fetch_add(entry.bytes, std::memory_order_relaxed);
          pinned_entries_.fetch_add(1, std::memory_order_relaxed);
        } else {
          pinned_bytes_.fetch_sub(entry.bytes, std::memory_order_relaxed);
          pinned_entries_.fetch_sub(1, std::memory_order_relaxed);
        }
        ++changed;
      }
    }
  }
  return changed;
}

uint64_t MediatorCache::Pin(const std::string& dataset,
                            const std::string& field, int32_t timestep) {
  return SetPinned(dataset, field, timestep, true);
}

uint64_t MediatorCache::Unpin(const std::string& dataset,
                              const std::string& field, int32_t timestep) {
  return SetPinned(dataset, field, timestep, false);
}

MediatorCacheStats MediatorCache::stats() const {
  MediatorCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.subsumption_hits = subsumption_hits_.load(std::memory_order_relaxed);
  out.insertions = insertions_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.stale_inserts = stale_inserts_.load(std::memory_order_relaxed);
  out.entries = total_entries_.load(std::memory_order_relaxed);
  out.bytes = total_bytes_.load(std::memory_order_relaxed);
  out.pinned_entries = pinned_entries_.load(std::memory_order_relaxed);
  out.pinned_bytes = pinned_bytes_.load(std::memory_order_relaxed);
  out.capacity_bytes = capacity_bytes_;
  return out;
}

}  // namespace turbdb
