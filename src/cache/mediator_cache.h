#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "array/box.h"
#include "array/point.h"
#include "common/governor.h"
#include "common/result.h"

namespace turbdb {

/// Aggregate counters of the mediator-tier result cache, snapshotted for
/// the CacheStats RPC and the server-stats reply.
struct MediatorCacheStats {
  uint64_t hits = 0;              ///< Lookups answered from the cache.
  uint64_t misses = 0;            ///< Lookups that found no subsuming entry.
  uint64_t subsumption_hits = 0;  ///< Hits by a strictly larger entry.
  uint64_t insertions = 0;        ///< Entries committed.
  uint64_t evictions = 0;         ///< Entries removed by LRU pressure.
  uint64_t invalidations = 0;     ///< Entries removed by ingest/drop.
  uint64_t stale_inserts = 0;     ///< Inserts rejected by an epoch bump.
  uint64_t entries = 0;           ///< Resident entries right now.
  uint64_t bytes = 0;             ///< Resident bytes right now.
  uint64_t pinned_entries = 0;    ///< Entries exempt from eviction.
  uint64_t pinned_bytes = 0;      ///< Their bytes.
  uint64_t capacity_bytes = 0;    ///< Configured ceiling (0 = disabled).
};

/// Outcome of a mediator-cache interrogation.
struct MediatorCacheLookup {
  bool hit = false;
  /// True when the serving entry was strictly larger than the query
  /// (bigger region or lower stored threshold) — i.e. a subsumption
  /// answer rather than an exact repeat.
  bool subsumed = false;
  /// Cached points filtered to the query box and threshold, in z order.
  std::vector<ThresholdPoint> points;
};

/// The mediator-tier semantic result cache: an in-memory, mutex-sharded
/// cache of completed threshold-query results, keyed by (dataset, field,
/// FD order, time-step) and answered by subsumption — an entry with
/// region R and stored threshold ks serves any query with box q ⊆ R and
/// threshold k ≥ ks, by filtering the cached points to q and norm ≥ k
/// (the same containment semantics as the node-local `SemanticCache`,
/// Sec. 4 of the paper, lifted to the cluster entry point so a repeat
/// query pays zero node RPCs).
///
/// Concurrency: the key space is hash-sharded over `kNumShards`
/// independently locked shards; lookups and inserts for different keys
/// never contend. Replacement is least-recently-used across all shards
/// (a global atomic tick orders recency; eviction scans shards one lock
/// at a time, so no two shard locks are ever held together). Entries can
/// be pinned, which exempts them from LRU eviction — but never from
/// invalidation: an ingest or explicit drop always wins over a pin,
/// because serving stale data is worse than re-computing.
///
/// First-committer-wins: two queries racing to insert the same
/// (key, region) collide under the shard lock and the second insert is
/// dropped (or, when it carries a strictly lower threshold and therefore
/// a superset of the points, replaces the first) — mirroring the
/// CacheSlotKey conflict rule of the node-local cache, so concurrent
/// identical queries never duplicate an entry.
///
/// Staleness: every mutation that changes what the backing store would
/// answer (ingest, drop-cache) bumps a global epoch. Callers snapshot
/// `epoch()` before dispatching the query and pass it to `Insert`; an
/// insert whose epoch is stale is discarded, so a result computed before
/// an ingest can never be cached after it.
///
/// Accounting: every resident byte is charged to a `ResourceGovernor`
/// ledger via an RAII reservation held by the entry. By default that is
/// a private unlimited governor (pure bookkeeping); `AttachLedger` points
/// new reservations at a shared governor — the server attaches its
/// result-byte governor so cache residency competes with in-flight
/// results and shows up in `server-stats`. Reservations are fail-fast:
/// when the ledger is under pressure the cache first evicts its own LRU
/// entries, then gives up and skips caching (best-effort, like the
/// node-local cache) — it never blocks a query.
class MediatorCache {
 public:
  /// `capacity_bytes` bounds resident entry bytes; 0 disables the cache
  /// entirely (every Lookup misses, every Insert is a no-op).
  explicit MediatorCache(uint64_t capacity_bytes);

  MediatorCache(const MediatorCache&) = delete;
  MediatorCache& operator=(const MediatorCache&) = delete;

  bool enabled() const { return capacity_bytes_ > 0; }
  uint64_t capacity_bytes() const { return capacity_bytes_; }

  /// Routes new reservations through `governor` (nullptr restores the
  /// internal ledger). Existing entries keep their original reservation,
  /// which releases against whichever governor issued it — call this at
  /// startup, before the cache holds anything, for exact accounting.
  void AttachLedger(ResourceGovernor* governor);

  /// Interrogates the cache for (dataset, field, fd_order, timestep,
  /// box, threshold). `field` is the derived-field cache key
  /// ("<raw>:<derived>"). A hit returns the cached points filtered to
  /// the box and threshold, in z order — exactly the uncached answer.
  MediatorCacheLookup Lookup(const std::string& dataset,
                             const std::string& field, int fd_order,
                             int32_t timestep, const Box3& box,
                             double threshold);

  /// Records a completed result: `points` are all points of `region`
  /// with norm >= `threshold`, z-sorted. `as_of_epoch` must be the
  /// `epoch()` observed before the query dispatched; a mismatch means
  /// the data changed mid-query and the insert is discarded. Best
  /// effort: evicts LRU entries to make room, and stores nothing when
  /// the entry cannot fit (capacity or ledger pressure).
  void Insert(const std::string& dataset, const std::string& field,
              int fd_order, int32_t timestep, const Box3& region,
              double threshold, const std::vector<ThresholdPoint>& points,
              uint64_t as_of_epoch);

  /// The current invalidation epoch; snapshot before dispatching.
  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }

  /// Drops every entry for (dataset, field [, timestep]); timestep -1
  /// matches all time-steps. Bumps the epoch. Returns entries dropped.
  uint64_t Invalidate(const std::string& dataset, const std::string& field,
                      int32_t timestep);

  /// Drops every entry whose derived field was computed from
  /// `raw_field` (field keys "<raw_field>:*") for `timestep` (-1 = all).
  /// The ingest path calls this: new raw data invalidates every derived
  /// result built from it. Bumps the epoch.
  uint64_t InvalidateRawField(const std::string& dataset,
                              const std::string& raw_field, int32_t timestep);

  /// Drops everything and bumps the epoch. Returns entries dropped.
  uint64_t Clear();

  /// Pins (exempts from LRU eviction) every entry for (dataset, field
  /// [, timestep]); -1 matches all. Returns entries affected. Pinned
  /// entries are still removed by Invalidate/Clear.
  uint64_t Pin(const std::string& dataset, const std::string& field,
               int32_t timestep);
  uint64_t Unpin(const std::string& dataset, const std::string& field,
                 int32_t timestep);

  MediatorCacheStats stats() const;

  /// Resident-byte charge of one cached point (the in-memory row).
  static constexpr uint64_t kBytesPerPoint = sizeof(ThresholdPoint);
  /// Fixed per-entry charge (key strings, region, bookkeeping).
  static constexpr uint64_t kEntryOverhead = 256;

 private:
  /// Semantic identity of a cacheable result set, minus the region.
  struct Key {
    std::string dataset;
    std::string field;
    int32_t fd_order = 4;
    int32_t timestep = 0;

    bool operator<(const Key& other) const {
      return std::tie(dataset, field, fd_order, timestep) <
             std::tie(other.dataset, other.field, other.fd_order,
                      other.timestep);
    }
  };

  struct Entry {
    Box3 region;
    double threshold = 0.0;
    std::vector<ThresholdPoint> points;
    uint64_t bytes = 0;
    uint64_t tick = 0;  ///< Last-use recency; unique (global counter).
    bool pinned = false;
    ResourceGovernor::ByteReservation reservation;
  };

  static constexpr int kNumShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::map<Key, std::vector<Entry>> entries;
  };

  Shard& ShardFor(const Key& key);

  /// Evicts LRU unpinned entries until resident bytes + `needed` fit the
  /// capacity. Never holds two shard locks at once.
  void EvictUntilFits(uint64_t needed);

  /// Evicts the globally-oldest unpinned entry; false when none exist.
  bool EvictOldest();

  /// Removes entries matching the predicate in every shard, bumps the
  /// epoch, counts them as invalidations. `drop` decides per entry.
  template <typename Pred>
  uint64_t InvalidateMatching(const Pred& pred);

  /// Sets the pinned flag on matching entries; returns entries changed.
  uint64_t SetPinned(const std::string& dataset, const std::string& field,
                     int32_t timestep, bool pinned);

  const uint64_t capacity_bytes_;

  /// Internal no-limit ledger used until AttachLedger provides one.
  ResourceGovernor internal_ledger_;
  std::atomic<ResourceGovernor*> ledger_;

  Shard shards_[kNumShards];

  std::atomic<uint64_t> epoch_{1};
  std::atomic<uint64_t> tick_{0};
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> total_entries_{0};
  std::atomic<uint64_t> pinned_bytes_{0};
  std::atomic<uint64_t> pinned_entries_{0};

  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> subsumption_hits_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> invalidations_{0};
  std::atomic<uint64_t> stale_inserts_{0};
};

}  // namespace turbdb
