#include "cache/semantic_cache.h"

#include <algorithm>

#include "common/logging.h"

namespace turbdb {

namespace {
constexpr int kInsertRetries = 5;
constexpr uint64_t kMaxOrdinal = UINT64_MAX;
}  // namespace

SemanticCache::SemanticCache(TransactionManager* txn_manager,
                             DeviceSpec ssd_spec, uint64_t capacity_bytes)
    : txn_manager_(txn_manager), ssd_(std::move(ssd_spec)),
      capacity_bytes_(capacity_bytes) {}

Result<CacheLookup> SemanticCache::Lookup(const std::string& dataset,
                                          const std::string& field,
                                          int32_t timestep, int fd_order,
                                          const Box3& box, double threshold) {
  CacheLookup lookup;
  if (!enabled()) return lookup;

  auto txn = txn_manager_->Begin();
  const CacheInfoKey range_lo{dataset, field, fd_order, timestep, 0};
  const CacheInfoKey range_hi{dataset, field, fd_order, timestep,
                              kMaxOrdinal};

  // Find a semantically sufficient entry: region containment plus
  // threshold subsumption (Algorithm 1, line 12).
  bool found = false;
  CacheInfoKey match_key;
  CacheInfoRecord match_record;
  uint64_t info_rows_scanned = 0;
  cache_info_.Scan(txn.get(), range_lo, range_hi,
                   [&](const CacheInfoKey& key, const CacheInfoRecord& rec) {
                     ++info_rows_scanned;
                     if (rec.threshold <= threshold &&
                         rec.region.ContainsBox(box)) {
                       found = true;
                       match_key = key;
                       match_record = rec;
                       return false;
                     }
                     return true;
                   });
  lookup.io.cache_records_scanned += info_rows_scanned;
  lookup.io.cache_bytes_scanned += info_rows_scanned * kBytesPerInfoRecord;
  // The cacheInfo probe is a clustered-index lookup on the SSD.
  lookup.lookup_cost_s += ssd_.ChargeRead(
      info_rows_scanned * kBytesPerInfoRecord, /*ops=*/1, /*concurrent=*/1);

  if (!found) {
    TURBDB_CHECK_OK(txn_manager_->Commit(txn.get()));
    return lookup;
  }

  // Retrieve the entry's points with one range scan of cacheData
  // (Algorithm 1, lines 13-22), filtering to the query box and threshold.
  const CacheDataKey data_lo{match_key.ordinal, 0};
  const CacheDataKey data_hi{match_key.ordinal, UINT64_MAX};
  uint64_t data_rows = 0;
  cache_data_.Scan(txn.get(), data_lo, data_hi,
                   [&](const CacheDataKey& key, const float& norm) {
                     ++data_rows;
                     if (norm >= threshold) {
                       uint32_t x, y, z;
                       MortonDecode3(key.zindex, &x, &y, &z);
                       if (box.ContainsPoint(x, y, z)) {
                         lookup.points.push_back(
                             ThresholdPoint{key.zindex, norm});
                       }
                     }
                     return true;
                   });
  TURBDB_CHECK_OK(txn_manager_->Commit(txn.get()));

  lookup.hit = true;
  lookup.io.cache_records_scanned += data_rows;
  lookup.io.cache_bytes_scanned += data_rows * kBytesPerPoint;
  lookup.lookup_cost_s +=
      ssd_.ChargeRead(data_rows * kBytesPerPoint, /*ops=*/1, /*concurrent=*/1);
  TouchLru(match_key.ordinal);
  return lookup;
}

Status SemanticCache::Insert(const std::string& dataset,
                             const std::string& field, int32_t timestep,
                             int fd_order, const Box3& region,
                             double threshold,
                             const std::vector<ThresholdPoint>& points,
                             double* cost_s) {
  if (!enabled()) return Status::OK();
  const uint64_t needed =
      points.size() * kBytesPerPoint + kBytesPerInfoRecord;
  if (cost_s != nullptr) {
    // SSD writes of the new entry (sequential append, one positioning op
    // per table).
    *cost_s += ssd_.ChargeRead(needed, /*ops=*/2, /*concurrent=*/1);
  }
  if (needed > capacity_bytes_) {
    TURBDB_LOG(Info) << "cache entry of " << needed
                     << " bytes exceeds cache capacity; not cached";
    return Status::OK();
  }
  Status status;
  for (int attempt = 0; attempt < kInsertRetries; ++attempt) {
    status = InsertOnce(dataset, field, timestep, fd_order, region, threshold,
                        points);
    if (status.ok() &&
        inserts_since_gc_.fetch_add(1) + 1 >= kGcInterval) {
      inserts_since_gc_.store(0);
      GarbageCollect();
    }
    if (!status.IsAborted()) return status;
  }
  TURBDB_LOG(Warning) << "cache insert kept conflicting; giving up: "
                      << status.ToString();
  return Status::OK();  // Caching is best-effort; the query still succeeded.
}

Status SemanticCache::InsertOnce(const std::string& dataset,
                                 const std::string& field, int32_t timestep,
                                 int fd_order, const Box3& region,
                                 double threshold,
                                 const std::vector<ThresholdPoint>& points) {
  const uint64_t needed =
      points.size() * kBytesPerPoint + kBytesPerInfoRecord;
  auto txn = txn_manager_->Begin();

  uint64_t freed = 0;
  std::vector<uint64_t> deleted_ordinals;

  // Replacement path: an entry for the same semantic key and region whose
  // stored threshold no longer serves (or is simply being refreshed) is
  // superseded by this insert.
  {
    const CacheInfoKey range_lo{dataset, field, fd_order, timestep, 0};
    const CacheInfoKey range_hi{dataset, field, fd_order, timestep,
                                kMaxOrdinal};
    std::vector<std::pair<CacheInfoKey, CacheInfoRecord>> to_replace;
    cache_info_.Scan(txn.get(), range_lo, range_hi,
                     [&](const CacheInfoKey& key, const CacheInfoRecord& rec) {
                       if (rec.region == region) to_replace.push_back({key, rec});
                       return true;
                     });
    for (const auto& [key, rec] : to_replace) {
      DeleteEntryInTxn(txn.get(), key, rec);
      freed += rec.num_points * kBytesPerPoint + kBytesPerInfoRecord;
      deleted_ordinals.push_back(key.ordinal);
    }
  }

  // The LRU/meta bookkeeping mutex is held from here through the commit:
  // otherwise a concurrent transaction that replaces or evicts the entry
  // we are about to register could update the books first, leaving a
  // stale meta record behind (observed as a duplicate-entry overcount
  // under the concurrent-insert stress test).
  std::lock_guard<std::mutex> lru_lock(lru_mutex_);

  // LRU eviction until the new entry fits (Algorithm 1's "space is freed
  // up by removing the least recently used data across all quantities").
  {
    auto by_age = [&]() {
      uint64_t best_ordinal = 0;
      uint64_t best_tick = UINT64_MAX;
      for (const auto& [ordinal, tick] : lru_) {
        if (std::find(deleted_ordinals.begin(), deleted_ordinals.end(),
                      ordinal) != deleted_ordinals.end()) {
          continue;
        }
        if (tick < best_tick) {
          best_tick = tick;
          best_ordinal = ordinal;
        }
      }
      return best_ordinal;
    };
    while (used_bytes_.load() + needed > capacity_bytes_ + freed) {
      const uint64_t victim = by_age();
      if (victim == 0) break;  // Nothing left to evict.
      auto meta_it = meta_.find(victim);
      TURBDB_CHECK(meta_it != meta_.end());
      // Re-read the record under the transaction for the authoritative
      // point count (meta_ carries the key).
      auto record = cache_info_.Get(txn.get(), meta_it->second.key);
      if (record.ok()) {
        DeleteEntryInTxn(txn.get(), meta_it->second.key, record.value());
        freed += meta_it->second.bytes;
      }
      deleted_ordinals.push_back(victim);
    }
  }

  // Install the new entry. The slot row serializes concurrent inserts of
  // the same semantic region (see CacheSlotKey).
  const uint64_t ordinal = next_ordinal_.fetch_add(1);
  cache_slots_.Put(txn.get(),
                   CacheSlotKey{dataset, field, fd_order, timestep, region},
                   ordinal);
  CacheInfoKey key{dataset, field, fd_order, timestep, ordinal};
  CacheInfoRecord record;
  record.region = region;
  record.threshold = threshold;
  record.num_points = points.size();
  cache_info_.Put(txn.get(), key, record);
  for (const ThresholdPoint& point : points) {
    cache_data_.Put(txn.get(), CacheDataKey{ordinal, point.zindex},
                    point.norm);
  }

  TURBDB_RETURN_NOT_OK(txn_manager_->Commit(txn.get()));

  // Commit succeeded: update the byte accounting and LRU bookkeeping
  // (still under lru_mutex_, see above).
  for (uint64_t dead : deleted_ordinals) {
    lru_.erase(dead);
    meta_.erase(dead);
  }
  lru_[ordinal] = lru_clock_.fetch_add(1) + 1;
  meta_[ordinal] = EntryMeta{key, needed};
  uint64_t bytes = used_bytes_.load();
  while (!used_bytes_.compare_exchange_weak(bytes, bytes + needed - freed)) {
  }
  return Status::OK();
}

void SemanticCache::DeleteEntryInTxn(Transaction* txn, const CacheInfoKey& key,
                                     const CacheInfoRecord& record) {
  cache_info_.Delete(txn, key);
  cache_slots_.Delete(txn, CacheSlotKey{key.dataset, key.field, key.fd_order,
                                        key.timestep, record.region});
  std::vector<CacheDataKey> data_keys;
  data_keys.reserve(record.num_points);
  cache_data_.Scan(txn, CacheDataKey{key.ordinal, 0},
                   CacheDataKey{key.ordinal, UINT64_MAX},
                   [&](const CacheDataKey& data_key, const float&) {
                     data_keys.push_back(data_key);
                     return true;
                   });
  for (const CacheDataKey& data_key : data_keys) {
    cache_data_.Delete(txn, data_key);
  }
}

Status SemanticCache::Evict(const std::string& dataset,
                            const std::string& field, int32_t timestep) {
  if (!enabled()) return Status::OK();
  for (int attempt = 0; attempt < kInsertRetries; ++attempt) {
    auto txn = txn_manager_->Begin();
    // lru_mutex_ is held through the commit so the bookkeeping can never
    // race a concurrent insert's (see InsertOnce).
    std::lock_guard<std::mutex> lru_lock(lru_mutex_);
    std::vector<std::pair<CacheInfoKey, CacheInfoRecord>> victims;
    for (const auto& [ordinal, meta] : meta_) {
      const CacheInfoKey& key = meta.key;
      if (key.dataset != dataset) continue;
      if (!field.empty() && key.field != field) continue;
      if (timestep >= 0 && key.timestep != timestep) continue;
      auto record = cache_info_.Get(txn.get(), key);
      if (record.ok()) victims.push_back({key, record.value()});
    }
    uint64_t freed = 0;
    for (const auto& [key, record] : victims) {
      DeleteEntryInTxn(txn.get(), key, record);
      freed += record.num_points * kBytesPerPoint + kBytesPerInfoRecord;
    }
    Status status = txn_manager_->Commit(txn.get());
    if (status.IsAborted()) continue;
    TURBDB_RETURN_NOT_OK(status);
    for (const auto& [key, record] : victims) {
      lru_.erase(key.ordinal);
      meta_.erase(key.ordinal);
    }
    uint64_t bytes = used_bytes_.load();
    while (!used_bytes_.compare_exchange_weak(
        bytes, bytes >= freed ? bytes - freed : 0)) {
    }
    return Status::OK();
  }
  return Status::Aborted("cache eviction kept conflicting");
}

size_t SemanticCache::GarbageCollect() {
  const Timestamp horizon = txn_manager_->GcHorizon();
  size_t reclaimed = cache_info_.GarbageCollect(horizon);
  reclaimed += cache_data_.GarbageCollect(horizon);
  reclaimed += cache_slots_.GarbageCollect(horizon);
  return reclaimed;
}

uint64_t SemanticCache::entry_count() const {
  std::lock_guard<std::mutex> lru_lock(lru_mutex_);
  return meta_.size();
}

void SemanticCache::TouchLru(uint64_t ordinal) {
  std::lock_guard<std::mutex> lru_lock(lru_mutex_);
  auto it = lru_.find(ordinal);
  if (it != lru_.end()) it->second = lru_clock_.fetch_add(1) + 1;
}

}  // namespace turbdb
