#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "array/box.h"
#include "array/point.h"
#include "common/profile.h"
#include "common/result.h"
#include "storage/device.h"
#include "txn/txn_manager.h"
#include "txn/versioned_table.h"

namespace turbdb {

/// Primary key of the cacheInfo table. The natural-key prefix
/// (dataset, field, fd_order, timestep) lets a lookup range-scan exactly
/// the entries that can possibly serve a query — the analogue of the
/// paper's index on (dataset, field, timestep). The FD order participates
/// in the key because different stencil orders produce different derived
/// values, so their results must never be substituted for each other.
struct CacheInfoKey {
  std::string dataset;
  std::string field;
  int32_t fd_order = 4;
  int32_t timestep = 0;
  uint64_t ordinal = 0;

  bool operator<(const CacheInfoKey& other) const {
    return std::tie(dataset, field, fd_order, timestep, ordinal) <
           std::tie(other.dataset, other.field, other.fd_order,
                    other.timestep, other.ordinal);
  }
  bool operator==(const CacheInfoKey& other) const {
    return !(*this < other) && !(other < *this);
  }
};

/// Metadata of one cached threshold-query result (a cacheInfo row):
/// the spatial region examined and the threshold used, which together
/// define the semantic description the containment test runs against.
struct CacheInfoRecord {
  Box3 region;
  double threshold = 0.0;
  uint64_t num_points = 0;
};

/// Key of the slot table: the full semantic identity of an entry
/// including its region. Every insert writes its slot row, so two
/// transactions caching the same region concurrently collide on this key
/// and snapshot isolation's first-committer-wins serializes them —
/// otherwise both would commit under distinct ordinals and duplicate the
/// entry.
struct CacheSlotKey {
  std::string dataset;
  std::string field;
  int32_t fd_order = 4;
  int32_t timestep = 0;
  Box3 region;

  bool operator<(const CacheSlotKey& other) const {
    const auto lhs = std::tie(dataset, field, fd_order, timestep);
    const auto rhs =
        std::tie(other.dataset, other.field, other.fd_order, other.timestep);
    if (lhs != rhs) return lhs < rhs;
    return std::tie(region.lo, region.hi) <
           std::tie(other.region.lo, other.region.hi);
  }
  bool operator==(const CacheSlotKey& other) const {
    return !(*this < other) && !(other < *this);
  }
};

/// Primary key of the cacheData table; clustered by (ordinal, zindex) so
/// one entry's points are retrieved with a single range scan.
struct CacheDataKey {
  uint64_t ordinal = 0;
  uint64_t zindex = 0;

  bool operator<(const CacheDataKey& other) const {
    return std::tie(ordinal, zindex) < std::tie(other.ordinal, other.zindex);
  }
  bool operator==(const CacheDataKey& other) const {
    return ordinal == other.ordinal && zindex == other.zindex;
  }
};

/// Outcome of a cache interrogation.
struct CacheLookup {
  bool hit = false;
  std::vector<ThresholdPoint> points;  ///< Filtered to box and threshold.
  double lookup_cost_s = 0.0;          ///< Modeled SSD time.
  IoCounters io;
};

/// The application-aware semantic cache for threshold-query results
/// (Sec. 4 of the paper, Algorithm 1 lines 4-25).
///
/// One instance lives on each database node; its two tables reside on the
/// node's SSD (by cost model). A query with box q and threshold k hits if
/// some entry for the same (dataset, field, FD order, time-step) has
/// region ⊇ q and stored threshold ks <= k: the cached points, filtered
/// to q and k, are then exactly the correct answer, because every point
/// of q whose norm >= k >= ks was recorded when the entry was built.
///
/// All reads and updates run in snapshot-isolation transactions, so
/// concurrent queries never see a cacheInfo row without its cacheData
/// rows, and never deadlock (the paper relies on SQL Server snapshot
/// isolation for the same reasons). Replacement is least-recently-used
/// across all entries; the LRU clock is kept outside the versioned
/// tables so that read-only lookups do not create write conflicts.
class SemanticCache {
 public:
  /// `capacity_bytes` bounds the modeled on-SSD footprint (the paper's
  /// ~200 GB of SSD per node); 0 disables caching entirely ("no cache"
  /// baseline in Fig. 6).
  SemanticCache(TransactionManager* txn_manager, DeviceSpec ssd_spec,
                uint64_t capacity_bytes);

  /// Algorithm 1, lines 4-28: interrogate the cache for (dataset, field,
  /// timestep, fd_order, box, threshold).
  Result<CacheLookup> Lookup(const std::string& dataset,
                             const std::string& field, int32_t timestep,
                             int fd_order, const Box3& box, double threshold);

  /// Algorithm 1, line 37: record a freshly computed result. `region` is
  /// the full region that was examined (typically the node's portion of
  /// the time-step); `points` are all points in `region` with norm >=
  /// `threshold`. Replaces any existing entry for the same semantic key
  /// whose region equals `region` (the stored-threshold-too-high update
  /// path), and evicts LRU entries until the new entry fits. Retries
  /// internally on snapshot conflicts; if capacity is too small for the
  /// entry, stores nothing and returns OK (caching is best-effort).
  /// If `cost_s` is non-null, the modeled SSD write time is added to it.
  Status Insert(const std::string& dataset, const std::string& field,
                int32_t timestep, int fd_order, const Box3& region,
                double threshold, const std::vector<ThresholdPoint>& points,
                double* cost_s = nullptr);

  /// Drops every entry for the given time-step (used by the benchmarks to
  /// force cache misses exactly as the paper's experiments drop cache
  /// entries for the queried time-step). A timestep of -1 drops all.
  Status Evict(const std::string& dataset, const std::string& field,
               int32_t timestep);

  uint64_t entry_count() const;
  uint64_t used_bytes() const { return used_bytes_.load(); }

  /// Reclaims MVCC versions superseded before every active snapshot.
  /// Runs automatically every kGcInterval successful inserts; exposed
  /// for tests and maintenance. Returns the number of versions dropped.
  size_t GarbageCollect();
  uint64_t capacity_bytes() const { return capacity_bytes_; }
  bool enabled() const { return capacity_bytes_ > 0; }

  /// Modeled on-SSD footprint of one cached point, including index and
  /// row overhead (~40 bytes: the paper sizes 1e6 points at ~40 MB).
  static constexpr uint64_t kBytesPerPoint = 40;
  /// Modeled footprint of one cacheInfo row.
  static constexpr uint64_t kBytesPerInfoRecord = 128;

 private:
  struct EntryMeta {
    CacheInfoKey key;
    uint64_t bytes = 0;
  };

  Status InsertOnce(const std::string& dataset, const std::string& field,
                    int32_t timestep, int fd_order, const Box3& region,
                    double threshold,
                    const std::vector<ThresholdPoint>& points);

  /// Deletes one entry's rows inside `txn`; caller commits.
  void DeleteEntryInTxn(Transaction* txn, const CacheInfoKey& key,
                        const CacheInfoRecord& record);

  void TouchLru(uint64_t ordinal);

  TransactionManager* txn_manager_;
  DeviceModel ssd_;
  uint64_t capacity_bytes_;

  VersionedTable<CacheInfoKey, CacheInfoRecord> cache_info_;
  VersionedTable<CacheDataKey, float> cache_data_;
  VersionedTable<CacheSlotKey, uint64_t> cache_slots_;

  /// Successful inserts between automatic GC passes.
  static constexpr uint64_t kGcInterval = 64;

  std::atomic<uint64_t> next_ordinal_{1};
  std::atomic<uint64_t> used_bytes_{0};
  std::atomic<uint64_t> inserts_since_gc_{0};

  /// LRU bookkeeping, maintained outside the versioned tables so that
  /// read-only lookups never create snapshot write conflicts. Guarded by
  /// lru_mutex_; updated only after a successful commit.
  mutable std::mutex lru_mutex_;
  std::map<uint64_t, uint64_t> lru_;        ///< ordinal -> last-use tick.
  std::map<uint64_t, EntryMeta> meta_;      ///< ordinal -> key and size.
  std::atomic<uint64_t> lru_clock_{0};
};

}  // namespace turbdb
