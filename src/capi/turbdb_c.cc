#include "capi/turbdb_c.h"

#include <cstdlib>
#include <cstring>
#include <string>

#include "core/turbdb.h"

struct turbdb_t {
  std::unique_ptr<turbdb::TurbDB> db;
  std::string last_error;
};

namespace {

int Fail(turbdb_t* handle, const turbdb::Status& status) {
  handle->last_error = status.ToString();
  return static_cast<int>(status.code());
}

}  // namespace

extern "C" {

turbdb_t* turbdb_open(int num_nodes, int processes_per_node) {
  turbdb::TurbDBConfig config;
  config.cluster.num_nodes = num_nodes;
  config.cluster.processes_per_node = processes_per_node;
  auto db = turbdb::TurbDB::Open(config);
  if (!db.ok()) return nullptr;
  auto* handle = new turbdb_t;
  handle->db = std::move(db).value();
  return handle;
}

void turbdb_close(turbdb_t* db) { delete db; }

const char* turbdb_status_message(const turbdb_t* db) {
  return db->last_error.c_str();
}

int turbdb_create_isotropic_dataset(turbdb_t* db, const char* name,
                                    int64_t n, int32_t timesteps) {
  turbdb::Status status = db->db->CreateDataset(
      turbdb::MakeIsotropicDataset(name, n, timesteps));
  if (!status.ok()) return Fail(db, status);
  return 0;
}

int turbdb_ingest_synthetic(turbdb_t* db, const char* dataset, uint64_t seed,
                            int32_t t_begin, int32_t t_end) {
  turbdb::Status status = db->db->IngestSyntheticField(
      dataset, "velocity", turbdb::DefaultIsotropicSpec(seed), t_begin,
      t_end);
  if (!status.ok()) return Fail(db, status);
  return 0;
}

int turbdb_get_threshold(turbdb_t* db, const char* dataset, const char* raw,
                         const char* derived, int32_t timestep, int64_t xl,
                         int64_t yl, int64_t zl, int64_t xu, int64_t yu,
                         int64_t zu, double threshold,
                         turbdb_result_t* result) {
  std::memset(result, 0, sizeof(*result));
  turbdb::ThresholdQuery query;
  query.dataset = dataset;
  query.raw_field = raw;
  query.derived_field = derived;
  query.timestep = timestep;
  query.box = turbdb::Box3::FromInclusive(xl, yl, zl, xu, yu, zu);
  query.threshold = threshold;
  auto answer = db->db->Threshold(query);
  if (!answer.ok()) return Fail(db, answer.status());

  result->num_points = answer->points.size();
  if (result->num_points > 0) {
    result->points = static_cast<turbdb_point_t*>(
        std::malloc(result->num_points * sizeof(turbdb_point_t)));
    if (result->points == nullptr) {
      return Fail(db, turbdb::Status::Internal("out of memory"));
    }
    for (size_t i = 0; i < result->num_points; ++i) {
      uint32_t x, y, z;
      answer->points[i].Coords(&x, &y, &z);
      result->points[i] =
          turbdb_point_t{x, y, z, answer->points[i].norm};
    }
  }
  result->total_seconds = answer->time.Total();
  result->cache_lookup_seconds = answer->time.cache_lookup_s;
  result->io_seconds = answer->time.io_s;
  result->compute_seconds = answer->time.compute_s;
  result->mediator_db_seconds = answer->time.mediator_db_comm_s;
  result->mediator_user_seconds = answer->time.mediator_user_comm_s;
  result->all_cache_hits = answer->all_cache_hits ? 1 : 0;
  return 0;
}

int turbdb_get_field_stats(turbdb_t* db, const char* dataset, const char* raw,
                           const char* derived, int32_t timestep,
                           double* mean, double* rms, double* max) {
  auto info = db->db->mediator().GetDataset(dataset);
  if (!info.ok()) return Fail(db, info.status());
  turbdb::FieldStatsQuery query;
  query.dataset = dataset;
  query.raw_field = raw;
  query.derived_field = derived;
  query.timestep = timestep;
  query.box = (*info)->geometry.Bounds();
  auto stats = db->db->FieldStats(query);
  if (!stats.ok()) return Fail(db, stats.status());
  if (mean != nullptr) *mean = stats->mean;
  if (rms != nullptr) *rms = stats->rms;
  if (max != nullptr) *max = stats->max;
  return 0;
}

void turbdb_result_free(turbdb_result_t* result) {
  std::free(result->points);
  result->points = nullptr;
  result->num_points = 0;
}

}  // extern "C"
