#ifndef TURBDB_CAPI_TURBDB_C_H_
#define TURBDB_CAPI_TURBDB_C_H_

/* C client API for turbdb.
 *
 * The production JHTDB ships C/Fortran/Matlab client libraries on top of
 * its web services (Sec. 7 of the paper); this header is the equivalent
 * binding for the in-process library, so non-C++ tooling (or Fortran via
 * ISO_C_BINDING) can issue threshold queries.
 *
 * All functions return 0 on success or a non-zero turbdb StatusCode (see
 * turbdb_status_message for the last error text of a handle).
 */

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct turbdb_t turbdb_t;

typedef struct turbdb_point_t {
  uint32_t x;
  uint32_t y;
  uint32_t z;
  float norm;
} turbdb_point_t;

typedef struct turbdb_result_t {
  turbdb_point_t* points;
  size_t num_points;
  /* Modeled end-to-end seconds and the Fig. 9 breakdown. */
  double total_seconds;
  double cache_lookup_seconds;
  double io_seconds;
  double compute_seconds;
  double mediator_db_seconds;
  double mediator_user_seconds;
  int all_cache_hits; /* 1 if every node answered from its cache. */
} turbdb_result_t;

/* Opens an in-process cluster with `num_nodes` database nodes and
 * `processes_per_node` workers each. Returns NULL on failure. */
turbdb_t* turbdb_open(int num_nodes, int processes_per_node);

void turbdb_close(turbdb_t* db);

/* Message text of the last failed call on this handle ("" if none). */
const char* turbdb_status_message(const turbdb_t* db);

/* Registers an isotropic periodic dataset of n^3 points with a stored
 * 3-component "velocity" field and `timesteps` steps. */
int turbdb_create_isotropic_dataset(turbdb_t* db, const char* name,
                                    int64_t n, int32_t timesteps);

/* Generates and ingests synthetic turbulence (seeded) for
 * [t_begin, t_end) of the dataset's velocity field. */
int turbdb_ingest_synthetic(turbdb_t* db, const char* dataset, uint64_t seed,
                            int32_t t_begin, int32_t t_end);

/* Threshold query over the inclusive box [xl..xu]x[yl..yu]x[zl..zu].
 * On success, *result holds a malloc'd point array; release it with
 * turbdb_result_free. `derived` is a kernel name such as "vorticity",
 * "q_criterion" or "magnitude". */
int turbdb_get_threshold(turbdb_t* db, const char* dataset, const char* raw,
                         const char* derived, int32_t timestep, int64_t xl,
                         int64_t yl, int64_t zl, int64_t xu, int64_t yu,
                         int64_t zu, double threshold,
                         turbdb_result_t* result);

/* Mean/RMS/max of a derived field's norm over a whole time-step. */
int turbdb_get_field_stats(turbdb_t* db, const char* dataset, const char* raw,
                           const char* derived, int32_t timestep,
                           double* mean, double* rms, double* max);

void turbdb_result_free(turbdb_result_t* result);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* TURBDB_CAPI_TURBDB_C_H_ */
