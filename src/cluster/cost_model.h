#pragma once

#include <cstdint>

#include "cluster/network_model.h"
#include "storage/device.h"

namespace turbdb {

/// All calibration constants of the hybrid execution model in one place.
///
/// Everything the library does — kernel evaluation, caching, clustering,
/// serialization, data movement — is executed for real; wall-clock *time*
/// for devices, network and compute is charged through these models so
/// the benchmark shapes reproduce the paper's production hardware
/// deterministically (see DESIGN.md, "Key design choices").
struct CostModelConfig {
  DeviceSpec hdd = DeviceSpec::HddArray();  ///< Raw data tables.
  DeviceSpec ssd = DeviceSpec::Ssd();       ///< Cache tables (per node).
  NetworkSpec lan = NetworkSpec::Lan();     ///< Mediator <-> nodes.
  NetworkSpec wan = NetworkSpec::Wan();     ///< Mediator <-> user.

  /// Effective derived-field kernel throughput per worker process, in
  /// flop/s. Calibrated from Figs. 8/9: ~268M points/node evaluated with
  /// the 4th-order vorticity kernel (~66 flop/point) in ~135 s at one
  /// process gives ~1.3e8 flop/s/process on the 2008 CLR stack.
  double flops_per_process = 1.25e8;

  /// Cores per node effectively available to worker processes. The
  /// paper's nodes are dual quad-cores shared with SQL Server, the OS
  /// and the production workload; Fig. 7(a)/Fig. 8 show compute gains
  /// flattening beyond 4 processes, i.e. ~4 effective cores. Processes
  /// beyond this count time-share.
  double effective_cores_per_node = 4.0;

  /// Mediator bookkeeping per sub-query dispatch.
  double mediator_dispatch_s = 0.002;

  /// Per-node semantic-cache capacity (the paper's nodes have ~200 GB of
  /// SSD for cache tables). 0 disables the cache.
  uint64_t cache_capacity_bytes = 200ULL * 1024 * 1024 * 1024;
};

}  // namespace turbdb
