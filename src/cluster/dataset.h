#pragma once

#include <string>
#include <vector>

#include "array/geometry.h"
#include "common/result.h"

namespace turbdb {

/// Schema of one raw (stored) field of a dataset.
struct RawFieldSpec {
  std::string name;  ///< "velocity", "magnetic", "pressure", ...
  int ncomp = 3;
};

/// Catalog entry for one dataset: the simulation grid and the raw fields
/// persisted for every time-step (the JHTDB stores velocity and pressure
/// for the isotropic dataset; velocity, magnetic field and vector
/// potential for MHD; etc.).
struct DatasetInfo {
  std::string name;
  GridGeometry geometry;
  std::vector<RawFieldSpec> raw_fields;
  int32_t num_timesteps = 1;

  Result<int> FieldNcomp(const std::string& field) const {
    for (const RawFieldSpec& spec : raw_fields) {
      if (spec.name == field) return spec.ncomp;
    }
    return Status::NotFound("dataset '" + name + "' has no raw field '" +
                            field + "'");
  }
};

}  // namespace turbdb
