#include "cluster/mediator.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <thread>

#include "cluster/remote_node.h"
#include "common/governor.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "replication/replica_group.h"
#include "wire/serializer.h"

namespace turbdb {

namespace {

/// How many shards can join one mediator incarnation: the backends_
/// vector reserves this much extra capacity so runtime joins append
/// without reallocating under concurrent readers.
constexpr size_t kJoinHeadroom = 64;

}  // namespace

Mediator::Mediator(const ClusterConfig& config) : config_(config) {
  registry_ = FieldRegistry::Default();
  result_cache_ = std::make_unique<MediatorCache>(config.mediator_cache_bytes);
}

Result<std::unique_ptr<Mediator>> Mediator::Create(
    const ClusterConfig& config) {
  ClusterConfig effective = config;
  const int replication =
      std::max(1, effective.topology.replication_factor);
  if (!effective.topology.empty()) {
    // Distributed deployment: the topology is the physical node list;
    // the mediator's logical node count is the replica-group count.
    if (effective.topology.size() % static_cast<size_t>(replication) != 0) {
      return Status::InvalidArgument(
          "topology of " + std::to_string(effective.topology.size()) +
          " nodes does not divide by replication factor " +
          std::to_string(replication));
    }
    effective.num_nodes =
        static_cast<int>(effective.topology.size()) / replication;
  }
  if (effective.num_nodes <= 0) {
    return Status::InvalidArgument("need at least one database node");
  }
  if (effective.processes_per_node <= 0) {
    return Status::InvalidArgument("need at least one process per node");
  }
  auto mediator = std::unique_ptr<Mediator>(new Mediator(effective));
  const int worker_threads =
      effective.worker_threads > 0
          ? effective.worker_threads
          : static_cast<int>(std::thread::hardware_concurrency());
  mediator->scheduler_ = std::make_unique<ThreadPool>(effective.num_nodes);
  mediator->workers_ = std::make_unique<ThreadPool>(worker_threads);

  if (mediator->distributed()) {
    // The membership registry: seeded from the static topology, or
    // recovered from the persisted file when one exists (nodes joined in
    // a previous incarnation come back with it).
    TURBDB_ASSIGN_OR_RETURN(
        mediator->membership_,
        MembershipRegistry::Open(effective.storage_dir, effective.topology));
    // Reserve join headroom so runtime push_backs never reallocate under
    // a concurrent Dispatch (see backend_count_).
    mediator->backends_.reserve(static_cast<size_t>(effective.num_nodes) +
                                kJoinHeadroom);
    // Remote scatter-gather: one ReplicaGroup per shard, fronting the R
    // consecutive turbdb_node processes that hold the shard's atom
    // range. Bring-up handshakes every member now: with R=1 a dead or
    // misconfigured node fails the bring-up (not the first query); with
    // R>1 a group tolerates dead members as long as one answers.
    for (int g = 0; g < effective.num_nodes; ++g) {
      std::vector<std::unique_ptr<RemoteNode>> members;
      for (int r = 0; r < replication; ++r) {
        const int physical = g * replication + r;
        members.push_back(std::make_unique<RemoteNode>(
            physical,
            effective.topology.nodes[static_cast<size_t>(physical)],
            effective.remote, /*shard=*/g));
      }
      auto group = std::make_unique<ReplicaGroup>(g, std::move(members),
                                                  effective.remote);
      group->set_cache_affinity(effective.cache_affinity);
      TURBDB_RETURN_NOT_OK(group->BringUp());
      mediator->backends_.push_back(std::move(group));
    }
    // Shards joined in a previous mediator incarnation (registry file):
    // re-dial them as single-replica groups so their overridden ranges
    // stay served across a mediator restart.
    for (const NodeRecord& record : mediator->membership_->Snapshot().nodes) {
      if (record.shard < effective.num_nodes ||
          record.role != NodeRole::kShard) {
        continue;
      }
      std::vector<std::unique_ptr<RemoteNode>> members;
      members.push_back(std::make_unique<RemoteNode>(
          record.node_id, NodeAddress{record.host, record.port},
          effective.remote, record.shard));
      auto group = std::make_unique<ReplicaGroup>(
          record.shard, std::move(members), effective.remote);
      group->set_cache_affinity(effective.cache_affinity);
      TURBDB_RETURN_NOT_OK(group->BringUp());
      mediator->backends_.push_back(std::move(group));
    }
    mediator->backend_count_.store(mediator->backends_.size(),
                                   std::memory_order_release);
    return mediator;
  }

  mediator->nodes_.reserve(static_cast<size_t>(effective.num_nodes));
  mediator->backends_.reserve(static_cast<size_t>(effective.num_nodes));
  for (int i = 0; i < effective.num_nodes; ++i) {
    mediator->nodes_.push_back(std::make_unique<DatabaseNode>(
        i, effective.cost, effective.storage_dir));
    mediator->nodes_.back()->set_fsync_on_ingest(effective.fsync_ingest);
  }
  // Wire the halo-exchange hook: a worker on one node fetches boundary
  // atoms by a batched read served from the owning node's disks plus a
  // LAN round trip. (Remote nodes do the same peer-to-peer over TCP.)
  Mediator* raw = mediator.get();
  for (auto& node : mediator->nodes_) {
    node->set_remote_fetch(
        [raw](const NodeQuery& /*query*/, int owner,
              const std::string& dataset, const std::string& field,
              int32_t timestep, const std::vector<uint64_t>& codes,
              int concurrent, double* cost_s) -> Result<std::vector<Atom>> {
          if (owner < 0 || owner >= raw->num_nodes()) {
            return Status::InvalidArgument("no such node");
          }
          uint64_t bytes = 0;
          TURBDB_ASSIGN_OR_RETURN(
              std::vector<Atom> atoms,
              raw->nodes_[static_cast<size_t>(owner)]->ServeAtoms(
                  dataset, field, timestep, codes, concurrent, cost_s,
                  &bytes));
          if (cost_s != nullptr) {
            *cost_s += raw->config_.cost.lan.TransferCost(bytes);
          }
          return atoms;
        });
    mediator->backends_.push_back(
        std::make_unique<LocalNode>(node.get(), mediator->workers_.get()));
  }
  mediator->backend_count_.store(mediator->backends_.size(),
                                 std::memory_order_release);
  return mediator;
}

Status Mediator::CreateDataset(const DatasetInfo& info) {
  TURBDB_RETURN_NOT_OK(info.geometry.Validate());
  if (info.name.empty()) {
    return Status::InvalidArgument("dataset name is empty");
  }
  if (datasets_.count(info.name)) {
    return Status::AlreadyExists("dataset '" + info.name +
                                 "' already exists");
  }
  TURBDB_ASSIGN_OR_RETURN(
      MortonPartitioner partitioner,
      MortonPartitioner::Create(info.geometry, config_.num_nodes,
                                config_.partition_strategy));
  auto state = std::make_unique<DatasetState>(
      DatasetState{info, std::move(partitioner)});
  for (auto& backend : backends_) {
    TURBDB_RETURN_NOT_OK(backend->CreateDataset(info, state->partitioner,
                                                config_.partition_strategy));
  }
  datasets_.emplace(info.name, std::move(state));
  return Status::OK();
}

Result<const Mediator::DatasetState*> Mediator::GetDatasetState(
    const std::string& name) const {
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("no dataset named '" + name + "'");
  }
  return const_cast<const DatasetState*>(it->second.get());
}

Result<const DatasetInfo*> Mediator::GetDataset(const std::string& name) const {
  TURBDB_ASSIGN_OR_RETURN(const DatasetState* state, GetDatasetState(name));
  return &state->info;
}

Status Mediator::IngestTimestep(
    const std::string& dataset, const std::string& field, int32_t timestep,
    const std::function<Result<Atom>(int32_t, uint64_t)>& generate) {
  TURBDB_ASSIGN_OR_RETURN(const DatasetState* state, GetDatasetState(dataset));
  TURBDB_ASSIGN_OR_RETURN(const int ncomp, state->info.FieldNcomp(field));
  (void)ncomp;
  // Materialized-but-unshipped atoms across all workers are charged to
  // this shared budget, so a timestep larger than RAM pages through in
  // bounded batches instead of being built whole. (The governor outlives
  // the futures: every one is joined below.)
  ResourceGovernor ingest_budget(0, config_.ingest_budget_bytes);
  std::vector<std::future<Status>> futures;
  const size_t slices =
      std::max<size_t>(1, static_cast<size_t>(workers_->num_threads()));
  // Flush threshold per worker: a fraction of the shared budget so the
  // concurrent slices still batch RPCs without ganging up on the cap.
  const uint64_t flush_bytes =
      config_.ingest_budget_bytes == 0
          ? 0
          : std::max<uint64_t>(1, config_.ingest_budget_bytes / (2 * slices));
  // Route each atom to the shard that *effectively* owns it: the static
  // partitioner assignment re-homed by the membership view, so ingest
  // lands on a joined shard's replicas once a rebalance moved ranges to
  // it. (A shard beyond the base partitioning owns atoms only through
  // overrides; OwnedAtoms handles both.)
  const std::shared_ptr<const MembershipView> view = ViewSnapshot();
  const MembershipView empty_view;
  for (int node_id = 0; node_id < num_nodes(); ++node_id) {
    const std::vector<uint64_t> codes = OwnedAtoms(
        state->partitioner, view != nullptr ? *view : empty_view, node_id);
    // Slice each node's shard so ingestion saturates the worker pool.
    for (size_t s = 0; s < slices; ++s) {
      const size_t begin = codes.size() * s / slices;
      const size_t end = codes.size() * (s + 1) / slices;
      if (begin == end) continue;
      std::vector<uint64_t> slice(codes.begin() + begin, codes.begin() + end);
      NodeBackend* backend = backends_[static_cast<size_t>(node_id)].get();
      futures.push_back(workers_->Submit(
          [backend, &dataset, &field, timestep, &generate, &ingest_budget,
           flush_bytes, slice = std::move(slice)]() -> Status {
            // Page the slice in bounded batches: each batch still ships
            // as one RPC to a remote backend, but the batch size is
            // capped by the shared byte budget instead of the slice
            // length.
            std::vector<Atom> batch;
            std::vector<ResourceGovernor::ByteReservation> held;
            uint64_t batch_bytes = 0;
            auto flush = [&]() -> Status {
              if (batch.empty()) return Status::OK();
              Status shipped = backend->IngestAtoms(dataset, field, batch);
              batch.clear();
              held.clear();  // Returns the bytes to the budget.
              batch_bytes = 0;
              return shipped;
            };
            for (uint64_t code : slice) {
              auto atom = generate(timestep, code);
              if (!atom.ok()) return atom.status();
              const uint64_t atom_bytes =
                  atom->data.size() * sizeof(float) + sizeof(Atom);
              // Ship what we hold before blocking on a full budget, so a
              // waiting worker never deadlocks the others by sitting on
              // its own share (and the progress guarantee admits even a
              // single atom larger than the whole budget).
              ResourceGovernor::ByteReservation reservation;
              Status reserved =
                  ingest_budget.TryReserve(atom_bytes, &reservation);
              if (!reserved.ok()) {
                TURBDB_RETURN_NOT_OK(flush());
                reserved = ingest_budget.ReserveBlocking(atom_bytes,
                                                         &reservation);
                if (!reserved.ok()) return reserved;
              }
              held.push_back(std::move(reservation));
              batch.push_back(std::move(atom).value());
              batch_bytes += atom_bytes;
              if (flush_bytes != 0 && batch_bytes >= flush_bytes) {
                TURBDB_RETURN_NOT_OK(flush());
              }
            }
            return flush();
          }));
    }
  }
  Status failure;
  for (auto& future : futures) {
    Status status = future.get();
    if (!status.ok() && failure.ok()) failure = status;
  }
  // New raw data invalidates every cached derived result built from it —
  // even on a failed ingest, since some atoms may already have shipped.
  // The epoch bump inside also poisons inserts of queries that dispatched
  // before this ingest.
  result_cache_->InvalidateRawField(dataset, field, timestep);
  return failure;
}

const Differentiator* Mediator::GetDifferentiator(const std::string& dataset,
                                                  const GridGeometry& geometry,
                                                  int order) {
  std::lock_guard<std::mutex> lock(diff_mutex_);
  auto key = std::make_pair(dataset, order);
  auto it = differentiators_.find(key);
  if (it != differentiators_.end()) return it->second.get();
  auto diff = Differentiator::Create(geometry, order);
  if (!diff.ok()) return nullptr;
  auto owned = std::make_unique<Differentiator>(std::move(diff).value());
  const Differentiator* raw = owned.get();
  differentiators_.emplace(key, std::move(owned));
  return raw;
}

Result<NodeQuery> Mediator::BuildNodeQuery(
    NodeQuery::Mode mode, const std::string& dataset,
    const std::string& raw_field, const std::string& derived_field,
    int32_t timestep, const Box3& box, int fd_order,
    const QueryOptions& options) {
  TURBDB_ASSIGN_OR_RETURN(const DatasetState* state, GetDatasetState(dataset));
  TURBDB_ASSIGN_OR_RETURN(const int ncomp,
                          state->info.FieldNcomp(raw_field));
  TURBDB_ASSIGN_OR_RETURN(auto kernel,
                          registry_.Create(derived_field, ncomp));
  if (timestep < 0 || timestep >= state->info.num_timesteps) {
    return Status::OutOfRange("timestep " + std::to_string(timestep) +
                              " outside [0, " +
                              std::to_string(state->info.num_timesteps) + ")");
  }
  const Box3 clipped = box.Intersection(state->info.geometry.Bounds());
  if (clipped.Empty()) {
    return Status::InvalidArgument("query box is outside the grid");
  }
  const Differentiator* diff =
      GetDifferentiator(dataset, state->info.geometry, fd_order);
  if (diff == nullptr) {
    return Status::InvalidArgument("cannot build differentiator of order " +
                                   std::to_string(fd_order));
  }
  NodeQuery node_query;
  node_query.mode = mode;
  node_query.dataset = &state->info;
  node_query.partitioner = &state->partitioner;
  node_query.raw_field = raw_field;
  node_query.derived_field = derived_field;
  node_query.raw_ncomp = ncomp;
  node_query.cache_field_key = raw_field + ":" + derived_field;
  node_query.kernel = std::move(kernel);
  node_query.diff = diff;
  node_query.fd_order = fd_order;
  node_query.timestep = timestep;
  node_query.box = clipped;
  node_query.processes = options.processes_per_node > 0
                             ? options.processes_per_node
                             : config_.processes_per_node;
  node_query.options = options;
  node_query.flops_per_process = config_.cost.flops_per_process;
  node_query.effective_cores = config_.cost.effective_cores_per_node;
  return node_query;
}

Result<std::vector<NodeOutcome>> Mediator::Dispatch(
    const NodeQuery& node_query, const CallBudget& budget,
    const std::function<Status(int node_id,
                               std::vector<ThresholdPoint> points)>&
        point_sink) {
  // A sub-query bounced with kWrongOwner means a cutover raced this
  // dispatch: the snapshot it was routed under predates an ownership
  // change. Re-snapshot and re-scatter — but only while nothing has
  // streamed to the sink yet (a partially consumed stream cannot be
  // replayed without duplicating points).
  uint64_t points_sunk = 0;
  std::function<Status(int, std::vector<ThresholdPoint>)> counted_sink;
  if (point_sink != nullptr) {
    counted_sink = [&](int node_id, std::vector<ThresholdPoint> points) {
      points_sunk += points.size();
      return point_sink(node_id, std::move(points));
    };
  }
  constexpr int kMaxAttempts = 3;
  for (int attempt = 1;; ++attempt) {
    auto outcomes = DispatchOnce(node_query, budget, counted_sink);
    if (outcomes.ok() || attempt >= kMaxAttempts || points_sunk > 0 ||
        outcomes.status().code() != StatusCode::kWrongOwner) {
      return outcomes;
    }
    TURBDB_LOG(Info) << "dispatch raced a membership cutover ("
                     << outcomes.status().message()
                     << "); retrying under a fresh view";
  }
}

Result<std::vector<NodeOutcome>> Mediator::DispatchOnce(
    const NodeQuery& node_query, const CallBudget& budget,
    const std::function<Status(int node_id,
                               std::vector<ThresholdPoint> points)>&
        point_sink) {
  // Split the query along the spatial layout and submit each part
  // asynchronously to the node storing the data (Fig. 1). Under a
  // membership view, the split follows *effective* ownership: a shard
  // participates iff the view assigns it atoms inside the box, which is
  // how joined shards enter routing and moved ranges leave their donor.
  const Box3 cover =
      node_query.dataset->geometry.AtomCover(node_query.box);
  const std::shared_ptr<const MembershipView> view = ViewSnapshot();
  std::vector<int> participants;
  for (int i = 0; i < num_nodes(); ++i) {
    const bool owns =
        view != nullptr
            ? !OwnedAtomsInBox(*node_query.partitioner, *view, i, cover)
                   .empty()
            : !node_query.partitioner->NodeAtomsInBox(i, cover).empty();
    if (owns) participants.push_back(i);
  }

  // Interruption plumbing: one cancel token shared by every sub-query
  // (an external cancellation cascades into it), a cluster-unique id
  // under which remote nodes register the sub-queries, and the tighter
  // of the caller's deadline and the per-sub-query budget.
  NodeQuery query = node_query;
  query.view = view;
  query.query_id = MixSeed(reinterpret_cast<uintptr_t>(this),
                           query_counter_.fetch_add(1));
  if (query.query_id == 0) query.query_id = 1;
  auto token = std::make_shared<std::atomic<bool>>(false);
  query.cancel = token.get();
  query.deadline = budget.deadline;
  if (distributed()) {
    const auto sub_deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(config_.remote.subquery_deadline_ms);
    if (query.deadline == std::chrono::steady_clock::time_point{} ||
        sub_deadline < query.deadline) {
      query.deadline = sub_deadline;
    }
  }

  std::vector<std::future<Result<NodeOutcome>>> futures;
  futures.reserve(participants.size());
  node_executes_.fetch_add(participants.size(), std::memory_order_relaxed);
  for (int node_id : participants) {
    NodeBackend* backend = backends_[static_cast<size_t>(node_id)].get();
    futures.push_back(scheduler_->Submit(
        [backend, &query]() -> Result<NodeOutcome> {
          return backend->Execute(query);
        }));
  }

  // Cancels every sub-query not yet joined: the shared token stops
  // in-process work, the CancelQuery fan-out stops remote work.
  bool cancel_sent = false;
  auto cancel_rest = [&](size_t next) {
    if (cancel_sent) return;
    cancel_sent = true;
    token->store(true, std::memory_order_relaxed);
    for (size_t j = next; j < participants.size(); ++j) {
      backends_[static_cast<size_t>(participants[j])]->Cancel(query.query_id);
      cancels_issued_.fetch_add(1);
    }
  };

  // Join in submit order; every future must be joined before returning
  // (the sub-queries reference `query`). The first *hard* failure — or a
  // tripped point cap, or an external cancellation — aborts the rest.
  std::vector<NodeOutcome> outcomes;
  outcomes.reserve(participants.size());
  Status failure;
  uint64_t total_points = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    if (budget.cancel != nullptr &&
        budget.cancel->load(std::memory_order_relaxed) && !cancel_sent) {
      if (failure.ok()) {
        failure = Status::Cancelled("query " + std::to_string(query.query_id) +
                                    " cancelled");
      }
      cancel_rest(i);
    }
    auto outcome = futures[i].get();
    if (!outcome.ok()) {
      // Our own cancellation echoing back is not a new failure.
      if (cancel_sent && outcome.status().code() == StatusCode::kCancelled) {
        continue;
      }
      if (failure.ok()) failure = outcome.status();
      cancel_rest(i + 1);
      continue;
    }
    NodeOutcome value = std::move(outcome).value();
    value.io.points_returned = value.points.size();
    total_points += value.points.size();
    if (query.mode == NodeQuery::Mode::kThreshold && failure.ok() &&
        total_points > query.options.max_result_points) {
      failure = Status::ThresholdTooLow(
          "threshold produced more than " +
          std::to_string(query.options.max_result_points) +
          " points across nodes; raise the threshold or request the field "
          "directly");
      cancel_rest(i + 1);
      continue;
    }
    outcomes.push_back(std::move(value));
    outcomes.back().node_id = participants[i];
    if (point_sink != nullptr && failure.ok()) {
      // Streamed consumption: hand this outcome's points off while the
      // other shards are still running, keeping at most one outcome's
      // points resident. A sink failure (the client hung up) aborts the
      // tail exactly like a hard shard failure.
      Status sunk =
          point_sink(participants[i], std::move(outcomes.back().points));
      outcomes.back().points.clear();
      if (!sunk.ok()) {
        failure = sunk;
        cancel_rest(i + 1);
      }
    }
  }
  if (!failure.ok()) return failure;
  return outcomes;
}

namespace {

/// Elapsed node phase = component-wise max across nodes (they execute
/// concurrently); the mediator terms are added by the caller.
TimeBreakdown MergeNodeTimes(const std::vector<NodeOutcome>& outcomes) {
  TimeBreakdown merged;
  for (const NodeOutcome& outcome : outcomes) {
    merged = merged.MaxWith(outcome.time);
  }
  return merged;
}

void FillNodeStats(const std::vector<NodeOutcome>& outcomes,
                   std::vector<NodeExecutionStats>* stats) {
  stats->reserve(outcomes.size());
  for (const NodeOutcome& outcome : outcomes) {
    NodeExecutionStats entry;
    entry.node_id = outcome.node_id;
    entry.cache_hit = outcome.cache_hit;
    entry.time = outcome.time;
    entry.io = outcome.io;
    stats->push_back(entry);
  }
}

}  // namespace

Result<ThresholdResult> Mediator::GetThreshold(const ThresholdQuery& query,
                                               const QueryOptions& options,
                                               const CallBudget& budget) {
  Stopwatch watch;
  TURBDB_RETURN_NOT_OK(ValidateThresholdQuery(query));
  TURBDB_ASSIGN_OR_RETURN(
      NodeQuery node_query,
      BuildNodeQuery(NodeQuery::Mode::kThreshold, query.dataset,
                     query.raw_field, query.derived_field, query.timestep,
                     query.box, query.fd_order, options));
  node_query.threshold = query.threshold;

  // Mediator-tier cache: a resident entry subsuming this query answers
  // it here, with zero node RPCs. The epoch is snapshotted *before*
  // dispatch so a concurrent ingest poisons the later insert, never the
  // served data.
  const bool cacheable = options.use_cache && result_cache_->enabled();
  if (cacheable) {
    MediatorCacheLookup cached = result_cache_->Lookup(
        query.dataset, node_query.cache_field_key, query.fd_order,
        query.timestep, node_query.box, query.threshold);
    if (cached.hit) {
      if (cached.points.size() > options.max_result_points) {
        return Status::ThresholdTooLow(
            "threshold produced " + std::to_string(cached.points.size()) +
            " points; the limit is " +
            std::to_string(options.max_result_points) +
            " (raise the threshold, or request the field values directly)");
      }
      ThresholdResult result;
      result.points = std::move(cached.points);
      result.all_cache_hits = true;
      result.result_bytes_binary = EncodePointsBinary(result.points).size();
      result.result_bytes_xml = EncodePointsXml(result.points).size();
      // Modeled time: no node phase and no LAN scatter-gather — only the
      // WAN delivery of the answer remains.
      result.time.mediator_user_comm_s =
          config_.cost.wan.TransferCost(result.result_bytes_xml);
      result.wall_seconds = watch.ElapsedSeconds();
      return result;
    }
  }
  const uint64_t cache_epoch = cacheable ? result_cache_->epoch() : 0;
  TURBDB_ASSIGN_OR_RETURN(std::vector<NodeOutcome> outcomes,
                          Dispatch(node_query, budget));

  ThresholdResult result;
  uint64_t total_points = 0;
  for (const NodeOutcome& outcome : outcomes) {
    total_points += outcome.points.size();
  }
  if (total_points > options.max_result_points) {
    return Status::ThresholdTooLow(
        "threshold produced " + std::to_string(total_points) +
        " points; the limit is " +
        std::to_string(options.max_result_points) +
        " (raise the threshold, or request the field values directly)");
  }
  result.points.reserve(total_points);
  for (NodeOutcome& outcome : outcomes) {
    result.points.insert(result.points.end(), outcome.points.begin(),
                         outcome.points.end());
  }
  std::sort(result.points.begin(), result.points.end(),
            [](const ThresholdPoint& a, const ThresholdPoint& b) {
              return a.zindex < b.zindex;
            });
  result.all_cache_hits =
      !outcomes.empty() &&
      std::all_of(outcomes.begin(), outcomes.end(),
                  [](const NodeOutcome& o) { return o.cache_hit; });

  // Modeled time: concurrent node phases, then the serial mediator work.
  result.time = MergeNodeTimes(outcomes);
  result.result_bytes_binary = EncodePointsBinary(result.points).size();
  result.result_bytes_xml = EncodePointsXml(result.points).size();
  const auto& cost = config_.cost;
  result.time.mediator_db_comm_s =
      static_cast<double>(outcomes.size()) *
          (cost.mediator_dispatch_s + cost.lan.latency_s) +
      static_cast<double>(result.result_bytes_binary) /
          cost.lan.bandwidth_bps;
  result.time.mediator_user_comm_s =
      cost.wan.TransferCost(result.result_bytes_xml);
  FillNodeStats(outcomes, &result.node_stats);
  if (cacheable) {
    // Populate only on successful completion; the pre-dispatch epoch
    // makes the insert a no-op if an ingest raced the query.
    result_cache_->Insert(query.dataset, node_query.cache_field_key,
                          query.fd_order, query.timestep, node_query.box,
                          query.threshold, result.points, cache_epoch);
  }
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<ThresholdResult> Mediator::GetThresholdStreaming(
    const ThresholdQuery& query, const QueryOptions& options,
    const CallBudget& budget, uint64_t chunk_points,
    const ThresholdChunkSink& sink) {
  Stopwatch watch;
  TURBDB_RETURN_NOT_OK(ValidateThresholdQuery(query));
  TURBDB_ASSIGN_OR_RETURN(
      NodeQuery node_query,
      BuildNodeQuery(NodeQuery::Mode::kThreshold, query.dataset,
                     query.raw_field, query.derived_field, query.timestep,
                     query.box, query.fd_order, options));
  node_query.threshold = query.threshold;

  const uint64_t slice = chunk_points == 0 ? 32768 : chunk_points;
  uint64_t streamed_points = 0;
  uint64_t binary_bytes = 0;
  uint64_t xml_bytes = 0;

  // Mediator-tier cache hit: re-chunk the cached (already z-sorted)
  // answer through the existing sink — the consumer sees the same chunk
  // protocol as a computed reply, with zero node RPCs behind it.
  const bool cacheable = options.use_cache && result_cache_->enabled();
  if (cacheable) {
    MediatorCacheLookup cached = result_cache_->Lookup(
        query.dataset, node_query.cache_field_key, query.fd_order,
        query.timestep, node_query.box, query.threshold);
    if (cached.hit) {
      if (cached.points.size() > options.max_result_points) {
        return Status::ThresholdTooLow(
            "threshold produced " + std::to_string(cached.points.size()) +
            " points; the limit is " +
            std::to_string(options.max_result_points) +
            " (raise the threshold, or request the field values directly)");
      }
      size_t begin = 0;
      while (begin < cached.points.size()) {
        const size_t end = std::min(cached.points.size(),
                                    begin + static_cast<size_t>(slice));
        std::vector<ThresholdPoint> part(
            std::make_move_iterator(cached.points.begin() +
                                    static_cast<ptrdiff_t>(begin)),
            std::make_move_iterator(cached.points.begin() +
                                    static_cast<ptrdiff_t>(end)));
        begin = end;
        streamed_points += part.size();
        xml_bytes += EncodePointsXml(part).size();
        TURBDB_ASSIGN_OR_RETURN(uint64_t chunk_bytes,
                                sink(std::move(part), streamed_points));
        binary_bytes += chunk_bytes;
      }
      ThresholdResult result;  // Summary only: points already streamed.
      result.all_cache_hits = true;
      result.result_bytes_binary = binary_bytes;
      result.result_bytes_xml = xml_bytes;
      result.time.mediator_user_comm_s =
          config_.cost.wan.TransferCost(result.result_bytes_xml);
      result.wall_seconds = watch.ElapsedSeconds();
      return result;
    }
  }
  const uint64_t cache_epoch = cacheable ? result_cache_->epoch() : 0;

  // Cache-population accumulator for the miss path. Bounded by the cache
  // capacity alone — deliberately NOT charged to the server governor
  // while accumulating: the chunk emitter may block on that same budget
  // in this very thread, and a cache-side ReserveBlocking here would
  // deadlock it. The governor charge happens at insert time, fail-fast.
  std::vector<ThresholdPoint> accumulated;
  bool accumulate = cacheable;
  const uint64_t accumulate_cap =
      result_cache_->capacity_bytes() > MediatorCache::kEntryOverhead
          ? (result_cache_->capacity_bytes() - MediatorCache::kEntryOverhead) /
                MediatorCache::kBytesPerPoint
          : 0;

  // Slice each joined outcome into bounded chunks and push them through
  // the sink as the outcome arrives: the mediator holds at most one
  // outcome's points, never the union. The point cap is enforced inside
  // Dispatch (a streamed reply must fail *before* the client has seen
  // points it would have to throw away, so the cap trips at join time).
  auto outcome_sink = [&](int /*node_id*/,
                          std::vector<ThresholdPoint> points) -> Status {
    if (accumulate) {
      if (accumulated.size() + points.size() > accumulate_cap) {
        // The would-be entry cannot fit the cache; stop paying for it.
        accumulate = false;
        accumulated.clear();
        accumulated.shrink_to_fit();
      } else {
        accumulated.insert(accumulated.end(), points.begin(), points.end());
      }
    }
    size_t begin = 0;
    while (begin < points.size()) {
      const size_t end =
          std::min(points.size(), begin + static_cast<size_t>(slice));
      std::vector<ThresholdPoint> part(
          std::make_move_iterator(points.begin() + begin),
          std::make_move_iterator(points.begin() + end));
      begin = end;
      streamed_points += part.size();
      // The user-facing XML rendering happens on the consumer; account
      // its modeled transfer size here so the summary's WAN term matches
      // the non-streamed path.
      xml_bytes += EncodePointsXml(part).size();
      TURBDB_ASSIGN_OR_RETURN(uint64_t chunk_bytes,
                              sink(std::move(part), streamed_points));
      binary_bytes += chunk_bytes;
    }
    return Status::OK();
  };
  TURBDB_ASSIGN_OR_RETURN(std::vector<NodeOutcome> outcomes,
                          Dispatch(node_query, budget, outcome_sink));

  ThresholdResult result;  // Summary only: points already streamed.
  result.all_cache_hits =
      !outcomes.empty() &&
      std::all_of(outcomes.begin(), outcomes.end(),
                  [](const NodeOutcome& o) { return o.cache_hit; });
  result.time = MergeNodeTimes(outcomes);
  result.result_bytes_binary = binary_bytes;
  result.result_bytes_xml = xml_bytes;
  const auto& cost = config_.cost;
  result.time.mediator_db_comm_s =
      static_cast<double>(outcomes.size()) *
          (cost.mediator_dispatch_s + cost.lan.latency_s) +
      static_cast<double>(result.result_bytes_binary) /
          cost.lan.bandwidth_bps;
  result.time.mediator_user_comm_s =
      cost.wan.TransferCost(result.result_bytes_xml);
  FillNodeStats(outcomes, &result.node_stats);
  if (accumulate) {
    // The streamed union arrives in join order; canonicalize to z order
    // so a later lookup returns the same byte sequence as the buffered
    // path.
    std::sort(accumulated.begin(), accumulated.end(),
              [](const ThresholdPoint& a, const ThresholdPoint& b) {
                return a.zindex < b.zindex;
              });
    result_cache_->Insert(query.dataset, node_query.cache_field_key,
                          query.fd_order, query.timestep, node_query.box,
                          query.threshold, accumulated, cache_epoch);
  }
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<DistributedFofSummary> Mediator::GetFof(
    const ThresholdQuery& query, const QueryOptions& options,
    double linking_length, uint64_t min_cluster_size,
    const CallBudget& budget, uint64_t chunk_points,
    const FofClusterSink& sink) {
  TURBDB_RETURN_NOT_OK(ValidateThresholdQuery(query));
  TURBDB_ASSIGN_OR_RETURN(const DatasetState* state,
                          GetDatasetState(query.dataset));
  const GridGeometry& geometry = state->info.geometry;

  DistributedFofParams params;
  params.linking_length = linking_length;
  params.min_cluster_size = min_cluster_size == 0 ? 1 : min_cluster_size;
  params.atom_width = geometry.atom_width();
  for (int d = 0; d < 3; ++d) {
    params.grid_extent[d] = geometry.extent(d);
    params.periodic_extent[d] =
        geometry.periodic(d) ? static_cast<double>(geometry.extent(d)) : 0.0;
  }
  const MortonPartitioner* partitioner = &state->partitioner;
  TURBDB_ASSIGN_OR_RETURN(
      FofStitcher stitcher,
      FofStitcher::Create(
          params, [partitioner](int64_t ax, int64_t ay, int64_t az) {
            return partitioner->OwnerOfAtom(MortonEncode3(
                static_cast<uint32_t>(ax), static_cast<uint32_t>(ay),
                static_cast<uint32_t>(az)));
          }));

  TURBDB_ASSIGN_OR_RETURN(
      NodeQuery node_query,
      BuildNodeQuery(NodeQuery::Mode::kThreshold, query.dataset,
                     query.raw_field, query.derived_field, query.timestep,
                     query.box, query.fd_order, options));
  node_query.threshold = query.threshold;

  // Fan the threshold sub-queries out; each shard's points feed the
  // stitcher as that shard joins, with the shard id attached so the
  // halo pass knows which territory is foreign. The mediator-tier
  // result cache is deliberately bypassed: a cached union has lost the
  // per-shard attribution.
  auto outcome_sink = [&](int node_id,
                          std::vector<ThresholdPoint> points) -> Status {
    stitcher.AddShard(node_id, std::move(points));
    return Status::OK();
  };
  TURBDB_ASSIGN_OR_RETURN(std::vector<NodeOutcome> outcomes,
                          Dispatch(node_query, budget, outcome_sink));
  const uint64_t threshold_points = stitcher.num_points();
  TURBDB_ASSIGN_OR_RETURN(std::vector<DistributedFofCluster> clusters,
                          stitcher.Finish());

  DistributedFofSummary summary;
  summary.clusters = clusters.size();
  summary.largest_cluster =
      clusters.empty() ? 0 : clusters.front().members.size();
  for (const DistributedFofCluster& cluster : clusters) {
    summary.points += cluster.members.size();
  }

  // Stream the records out in batches bounded by member points, so a
  // million-point cluster set never sits encoded in one buffer.
  const uint64_t slice = chunk_points == 0 ? 32768 : chunk_points;
  uint64_t reply_bytes = 0;
  std::vector<DistributedFofCluster> batch;
  uint64_t batch_points = 0;
  auto flush = [&]() -> Status {
    if (batch.empty()) return Status::OK();
    batch_points = 0;
    TURBDB_ASSIGN_OR_RETURN(uint64_t bytes,
                            sink(std::move(batch), summary.clusters));
    batch.clear();
    reply_bytes += bytes;
    return Status::OK();
  };
  for (DistributedFofCluster& cluster : clusters) {
    batch_points += cluster.members.size() + 1;
    batch.push_back(std::move(cluster));
    if (batch_points >= slice) TURBDB_RETURN_NOT_OK(flush());
  }
  TURBDB_RETURN_NOT_OK(flush());

  // Modeled time: concurrent node phases, then the LAN gather of the
  // shard results (~6 bytes/point delta-varint encoded) and the WAN
  // delivery of the cluster records actually streamed.
  summary.time = MergeNodeTimes(outcomes);
  const auto& cost = config_.cost;
  summary.time.mediator_db_comm_s =
      static_cast<double>(outcomes.size()) *
          (cost.mediator_dispatch_s + cost.lan.latency_s) +
      static_cast<double>(threshold_points * 6 + 16) / cost.lan.bandwidth_bps;
  summary.time.mediator_user_comm_s = cost.wan.TransferCost(reply_bytes);
  return summary;
}

Result<PdfResult> Mediator::GetPdf(const PdfQuery& query,
                                   const CallBudget& budget) {
  Stopwatch watch;
  TURBDB_RETURN_NOT_OK(ValidatePdfQuery(query));
  QueryOptions options;
  options.use_cache = false;  // Only threshold results are cached (Sec. 4).
  TURBDB_ASSIGN_OR_RETURN(
      NodeQuery node_query,
      BuildNodeQuery(NodeQuery::Mode::kPdf, query.dataset, query.raw_field,
                     query.derived_field, query.timestep, query.box,
                     query.fd_order, options));
  node_query.bin_width = query.bin_width;
  node_query.num_bins = query.num_bins;
  TURBDB_ASSIGN_OR_RETURN(std::vector<NodeOutcome> outcomes,
                          Dispatch(node_query, budget));

  PdfResult result;
  result.bin_width = query.bin_width;
  result.counts.assign(static_cast<size_t>(query.num_bins) + 1, 0);
  for (const NodeOutcome& outcome : outcomes) {
    for (size_t bin = 0; bin < outcome.histogram.size(); ++bin) {
      result.counts[bin] += outcome.histogram[bin];
    }
  }
  for (uint64_t count : result.counts) result.total_points += count;
  result.time = MergeNodeTimes(outcomes);
  const uint64_t result_bytes = result.counts.size() * 16;
  const auto& cost = config_.cost;
  result.time.mediator_db_comm_s =
      static_cast<double>(outcomes.size()) *
          (cost.mediator_dispatch_s + cost.lan.latency_s) +
      static_cast<double>(result_bytes) / cost.lan.bandwidth_bps;
  result.time.mediator_user_comm_s =
      cost.wan.TransferCost(result_bytes * 8);  // XML-wrapped bins.
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<TopKResult> Mediator::GetTopK(const TopKQuery& query,
                                     const CallBudget& budget) {
  Stopwatch watch;
  TURBDB_RETURN_NOT_OK(ValidateTopKQuery(query));
  QueryOptions options;
  options.use_cache = false;
  TURBDB_ASSIGN_OR_RETURN(
      NodeQuery node_query,
      BuildNodeQuery(NodeQuery::Mode::kTopK, query.dataset, query.raw_field,
                     query.derived_field, query.timestep, query.box,
                     query.fd_order, options));
  node_query.k = query.k;
  TURBDB_ASSIGN_OR_RETURN(std::vector<NodeOutcome> outcomes,
                          Dispatch(node_query, budget));

  TopKResult result;
  for (NodeOutcome& outcome : outcomes) {
    result.points.insert(result.points.end(), outcome.points.begin(),
                         outcome.points.end());
  }
  std::sort(result.points.begin(), result.points.end(),
            [](const ThresholdPoint& a, const ThresholdPoint& b) {
              return a.norm > b.norm;
            });
  if (result.points.size() > query.k) result.points.resize(query.k);
  result.time = MergeNodeTimes(outcomes);
  const uint64_t bytes_binary = EncodePointsBinary(result.points).size();
  const uint64_t bytes_xml = EncodePointsXml(result.points).size();
  const auto& cost = config_.cost;
  result.time.mediator_db_comm_s =
      static_cast<double>(outcomes.size()) *
          (cost.mediator_dispatch_s + cost.lan.latency_s) +
      static_cast<double>(bytes_binary) / cost.lan.bandwidth_bps;
  result.time.mediator_user_comm_s = cost.wan.TransferCost(bytes_xml);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<FieldStatsResult> Mediator::GetFieldStats(const FieldStatsQuery& query,
                                                 const CallBudget& budget) {
  Stopwatch watch;
  ThresholdQuery probe;  // Reuse the common validation.
  probe.dataset = query.dataset;
  probe.raw_field = query.raw_field;
  probe.derived_field = query.derived_field;
  probe.timestep = query.timestep;
  probe.box = query.box;
  probe.threshold = 0.0;
  probe.fd_order = query.fd_order;
  TURBDB_RETURN_NOT_OK(ValidateThresholdQuery(probe));
  QueryOptions options;
  options.use_cache = false;
  TURBDB_ASSIGN_OR_RETURN(
      NodeQuery node_query,
      BuildNodeQuery(NodeQuery::Mode::kMoments, query.dataset,
                     query.raw_field, query.derived_field, query.timestep,
                     query.box, query.fd_order, options));
  TURBDB_ASSIGN_OR_RETURN(std::vector<NodeOutcome> outcomes,
                          Dispatch(node_query, budget));

  FieldStatsResult result;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const NodeOutcome& outcome : outcomes) {
    sum += outcome.norm_sum;
    sum_sq += outcome.norm_sum_sq;
    result.max = std::max(result.max, outcome.norm_max);
    result.count += outcome.io.points_evaluated;
  }
  if (result.count > 0) {
    result.mean = sum / static_cast<double>(result.count);
    result.rms = std::sqrt(sum_sq / static_cast<double>(result.count));
  }
  result.time = MergeNodeTimes(outcomes);
  const auto& cost = config_.cost;
  result.time.mediator_db_comm_s =
      static_cast<double>(outcomes.size()) *
      (cost.mediator_dispatch_s + cost.lan.latency_s);
  result.time.mediator_user_comm_s = cost.wan.TransferCost(256);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Result<SampleResult> Mediator::GetSamples(const SampleQuery& query,
                                          const CallBudget& budget) {
  Stopwatch watch;
  TURBDB_RETURN_NOT_OK(ValidateSampleQuery(query));
  TURBDB_ASSIGN_OR_RETURN(const DatasetState* state,
                          GetDatasetState(query.dataset));
  TURBDB_ASSIGN_OR_RETURN(const int ncomp,
                          state->info.FieldNcomp(query.raw_field));
  if (query.timestep >= state->info.num_timesteps) {
    return Status::OutOfRange("timestep out of range");
  }

  // One shared interpolator per (dataset, support).
  std::shared_ptr<const LagrangeInterpolator> interpolator;
  {
    std::lock_guard<std::mutex> lock(diff_mutex_);
    auto key = std::make_pair(query.dataset, query.support);
    auto it = interpolators_.find(key);
    if (it != interpolators_.end()) {
      interpolator = it->second;
    } else {
      TURBDB_ASSIGN_OR_RETURN(
          LagrangeInterpolator built,
          LagrangeInterpolator::Create(state->info.geometry, query.support));
      interpolator =
          std::make_shared<const LagrangeInterpolator>(std::move(built));
      interpolators_.emplace(key, interpolator);
    }
  }

  // Route each target to the node owning the atom of its containing grid
  // cell (the bulk of its stencil data lives there).
  const GridGeometry& geometry = state->info.geometry;
  std::map<int, std::vector<std::pair<uint32_t, std::array<double, 3>>>>
      per_node;
  for (size_t i = 0; i < query.positions.size(); ++i) {
    const std::array<double, 3>& position = query.positions[i];
    const int64_t bx = interpolator->BaseNode(0, position[0]);
    const int64_t by = interpolator->BaseNode(1, position[1]);
    const int64_t bz = interpolator->BaseNode(2, position[2]);
    const AtomKey key = AtomKeyForPoint(query.timestep, bx, by, bz,
                                        geometry.atom_width());
    const int owner = state->partitioner.OwnerOfAtom(key.zindex);
    if (owner < 0) {
      return Status::Internal("target outside the partitioned domain");
    }
    per_node[owner].push_back({static_cast<uint32_t>(i), position});
  }

  // Base node query shared by all parts.
  NodeQuery node_query;
  node_query.mode = NodeQuery::Mode::kSample;
  node_query.dataset = &state->info;
  node_query.partitioner = &state->partitioner;
  node_query.raw_field = query.raw_field;
  node_query.raw_ncomp = ncomp;
  node_query.timestep = query.timestep;
  node_query.box = geometry.Bounds();
  node_query.interpolator = interpolator;
  node_query.sample_support = query.support;
  node_query.processes = config_.processes_per_node;
  node_query.options.use_cache = false;
  node_query.flops_per_process = config_.cost.flops_per_process;
  node_query.effective_cores = config_.cost.effective_cores_per_node;
  node_query.deadline = budget.deadline;
  node_query.cancel = budget.cancel;

  std::vector<NodeQuery> parts;
  parts.reserve(per_node.size());
  std::vector<std::future<Result<NodeOutcome>>> futures;
  for (auto& [node_id, targets] : per_node) {
    parts.push_back(node_query);
    parts.back().targets = std::move(targets);
  }
  size_t part = 0;
  for (auto& [node_id, targets] : per_node) {
    NodeBackend* backend = backends_[static_cast<size_t>(node_id)].get();
    const NodeQuery* query_ptr = &parts[part++];
    futures.push_back(scheduler_->Submit(
        [backend, query_ptr]() -> Result<NodeOutcome> {
          return backend->Execute(*query_ptr);
        }));
  }

  SampleResult result;
  result.ncomp = ncomp;
  result.values.assign(query.positions.size(), {0.0, 0.0, 0.0});
  Status failure;
  TimeBreakdown node_phase;
  size_t filled = 0;
  for (auto& future : futures) {
    auto outcome = future.get();
    if (!outcome.ok()) {
      if (failure.ok()) failure = outcome.status();
      continue;
    }
    node_phase = node_phase.MaxWith(outcome->time);
    for (const auto& [index, value] : outcome->samples) {
      result.values[index] = value;
      ++filled;
    }
  }
  TURBDB_RETURN_NOT_OK(failure);
  if (filled != query.positions.size()) {
    return Status::Internal("some sample targets were not evaluated");
  }
  result.time = node_phase;
  const auto& cost = config_.cost;
  const uint64_t request_bytes = query.positions.size() * 24;
  const uint64_t reply_bytes = query.positions.size() * 12;
  result.time.mediator_db_comm_s =
      static_cast<double>(per_node.size()) *
          (cost.mediator_dispatch_s + cost.lan.latency_s) +
      static_cast<double>(request_bytes + reply_bytes) /
          cost.lan.bandwidth_bps;
  // XML-wrapped component values back to the user (~30 B per scalar).
  result.time.mediator_user_comm_s = cost.wan.TransferCost(
      query.positions.size() * static_cast<uint64_t>(ncomp) * 30);
  result.wall_seconds = watch.ElapsedSeconds();
  return result;
}

Status Mediator::DropCacheEntries(const std::string& dataset,
                                  const std::string& raw_field,
                                  const std::string& derived_field,
                                  int32_t timestep,
                                  uint64_t* mediator_dropped) {
  const std::string key = raw_field + ":" + derived_field;
  // Drop the mediator tier first: its epoch bump also poisons inserts of
  // queries already in flight, so a racing completion cannot repopulate
  // the entry this call was asked to remove.
  const uint64_t dropped = result_cache_->Invalidate(dataset, key, timestep);
  if (mediator_dropped != nullptr) *mediator_dropped = dropped;
  for (auto& backend : backends_) {
    TURBDB_RETURN_NOT_OK(backend->DropCacheEntries(dataset, key, timestep));
  }
  return Status::OK();
}

Result<Mediator::CacheWarmOutcome> Mediator::WarmThresholdCache(
    const ThresholdQuery& query, const CallBudget& budget) {
  if (!result_cache_->enabled()) {
    return Status::InvalidArgument(
        "mediator cache is disabled (--mediator-cache-mb 0)");
  }
  TURBDB_RETURN_NOT_OK(ValidateThresholdQuery(query));
  TURBDB_ASSIGN_OR_RETURN(
      NodeQuery node_query,
      BuildNodeQuery(NodeQuery::Mode::kThreshold, query.dataset,
                     query.raw_field, query.derived_field, query.timestep,
                     query.box, query.fd_order, QueryOptions{}));
  MediatorCacheLookup cached = result_cache_->Lookup(
      query.dataset, node_query.cache_field_key, query.fd_order,
      query.timestep, node_query.box, query.threshold);
  CacheWarmOutcome outcome;
  if (cached.hit) {
    outcome.points = cached.points.size();
    outcome.already_cached = true;
    return outcome;
  }
  TURBDB_ASSIGN_OR_RETURN(ThresholdResult result,
                          GetThreshold(query, QueryOptions{}, budget));
  outcome.points = result.points.size();
  outcome.already_cached = false;
  return outcome;
}

Result<uint64_t> Mediator::StoredAtomCount(const std::string& dataset,
                                           const std::string& field) {
  if (backends_.empty()) return Status::Internal("cluster has no nodes");
  return backends_.front()->StoredAtomCount(dataset, field);
}

uint64_t Mediator::affinity_routes() const {
  uint64_t total = 0;
  for (const auto& backend : backends_) {
    const auto* group = dynamic_cast<const ReplicaGroup*>(backend.get());
    if (group != nullptr) total += group->affinity_routes();
  }
  return total;
}

uint64_t Mediator::corruption_failovers() const {
  uint64_t total = 0;
  for (const auto& backend : backends_) {
    const auto* group = dynamic_cast<const ReplicaGroup*>(backend.get());
    if (group != nullptr) total += group->corruption_failovers();
  }
  return total;
}

uint64_t Mediator::read_repairs() const {
  uint64_t total = 0;
  for (const auto& backend : backends_) {
    const auto* group = dynamic_cast<const ReplicaGroup*>(backend.get());
    if (group != nullptr) total += group->read_repairs();
  }
  return total;
}

std::vector<ClusterNodeStatus> Mediator::ClusterStatus() const {
  std::vector<ClusterNodeStatus> rows;
  const int total = num_nodes();
  for (int g = 0; g < total; ++g) {
    auto* group = const_cast<ReplicaGroup*>(dynamic_cast<const ReplicaGroup*>(
        backends_[static_cast<size_t>(g)].get()));
    if (group == nullptr) continue;  // In-process deployment.
    const std::vector<ReplicaGroup::MemberStatus> members = group->Snapshot();
    for (size_t r = 0; r < members.size(); ++r) {
      const ReplicaGroup::MemberStatus& member = members[r];
      ClusterNodeStatus row;
      row.node_id = member.node_id;
      row.shard = group->id();
      row.primary = member.primary;
      row.healthy = member.healthy;
      row.epoch = member.epoch;
      row.failovers = member.failovers;
      row.address = member.address;
      // Live stats row (WAL lag, generation): best-effort — a member
      // that does not answer keeps the zero defaults.
      if (member.healthy) {
        auto stats = group->member_node(static_cast<int>(r))->Stats("", "");
        if (stats.ok()) {
          row.generation = stats->generation;
          row.wal_pending_records = stats->wal_pending_records;
          row.wal_pending_bytes = stats->wal_pending_bytes;
          row.scrub_passes = stats->scrub_passes;
          row.scrub_atoms_corrupt = stats->scrub_atoms_corrupt;
          row.scrub_atoms_repaired = stats->scrub_atoms_repaired;
          row.atoms_quarantined = stats->atoms_quarantined;
        }
      }
      rows.push_back(std::move(row));
    }
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Elasticity: membership, join/leave, live range moves (v6)
// ---------------------------------------------------------------------------

MembershipView Mediator::Membership() const {
  if (membership_ == nullptr) return MembershipView{};
  return membership_->Snapshot();
}

uint64_t Mediator::generation() const {
  return membership_ == nullptr ? 0 : membership_->generation();
}

std::shared_ptr<const MembershipView> Mediator::ViewSnapshot() const {
  if (membership_ == nullptr) return nullptr;
  return std::make_shared<const MembershipView>(membership_->Snapshot());
}

Result<ReplicaGroup*> Mediator::Group(int shard) const {
  if (shard < 0 || shard >= num_nodes()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard));
  }
  auto* group = dynamic_cast<ReplicaGroup*>(
      backends_[static_cast<size_t>(shard)].get());
  if (group == nullptr) {
    return Status::NotSupported("shard " + std::to_string(shard) +
                                " is not a remote replica group");
  }
  return group;
}

std::vector<std::vector<uint64_t>> Mediator::ComputeShardAtoms(
    const MembershipView& view) const {
  std::vector<std::vector<uint64_t>> shard_atoms(
      static_cast<size_t>(num_nodes()));
  for (const auto& entry : datasets_) {
    const MortonPartitioner& partitioner = entry.second->partitioner;
    for (int b = 0; b < partitioner.num_nodes(); ++b) {
      for (uint64_t code : partitioner.NodeAtoms(b)) {
        const int owner = view.OwnerOf(code, b);
        if (owner >= 0 && owner < static_cast<int>(shard_atoms.size())) {
          shard_atoms[static_cast<size_t>(owner)].push_back(code);
        }
      }
    }
  }
  for (auto& codes : shard_atoms) {
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
  }
  return shard_atoms;
}

Status Mediator::PushMembershipLocked() {
  const MembershipView view = membership_->Snapshot();
  Status first;
  const int total = num_nodes();
  for (int g = 0; g < total; ++g) {
    auto* group = dynamic_cast<ReplicaGroup*>(
        backends_[static_cast<size_t>(g)].get());
    if (group == nullptr) continue;
    Status status = group->PushMembership(view);
    if (!status.ok() && first.ok()) first = status;
  }
  // Best effort: a down member misses the push and installs the current
  // view when its restart resync probes it; the generation fence covers
  // the window either way.
  if (!first.ok()) {
    TURBDB_LOG(Warning) << "membership push (generation " << view.generation
                        << ") incomplete: " << first.ToString();
  }
  return Status::OK();
}

Result<RangeMover::Outcome> Mediator::ExecuteMoveLocked(
    const RangeMove& move) {
  TURBDB_ASSIGN_OR_RETURN(ReplicaGroup * donor, Group(move.from_shard));
  TURBDB_ASSIGN_OR_RETURN(ReplicaGroup * recipient, Group(move.to_shard));
  RangeMoverHooks hooks;
  hooks.begin_handoff = [&](const RangeMove& m) -> Status {
    net::BeginHandoffRequest request;
    request.begin = m.begin;
    request.end = m.end;
    request.from_shard = m.from_shard;
    request.to_shard = m.to_shard;
    TURBDB_RETURN_NOT_OK(donor->BeginHandoff(request));
    return recipient->BeginHandoff(request);
  };
  hooks.copy_range = [&](const RangeMove& m) -> Result<uint64_t> {
    // Page every (dataset, field, timestep) slice of the range from the
    // donor group into every replica of the recipient, skip-existing so
    // a retried move (crash between copy and cutover) converges.
    uint64_t copied = 0;
    for (const auto& entry : datasets_) {
      const DatasetInfo& info = entry.second->info;
      for (const auto& field : info.raw_fields) {
        for (int32_t ts = 0; ts < info.num_timesteps; ++ts) {
          net::NodeSyncRangeRequest request;
          request.dataset = info.name;
          request.field = field.name;
          request.timestep = ts;
          request.begin_code = m.begin;
          request.end_code = m.end;
          request.max_atoms = 256;
          while (true) {
            auto page = donor->SyncRange(request);
            if (!page.ok()) {
              // The donor never opened this (dataset, field) store:
              // nothing of it to move.
              if (page.status().code() == StatusCode::kNotFound) break;
              return page.status();
            }
            if (!page->atoms.empty()) {
              TURBDB_RETURN_NOT_OK(recipient->IngestSkippingExisting(
                  info.name, field.name, page->atoms));
              copied += page->atoms.size();
            }
            if (page->done) break;
            request.begin_code = page->next_code;
          }
        }
      }
    }
    return copied;
  };
  hooks.cutover = [&](const RangeMove& m) -> Result<uint64_t> {
    TURBDB_ASSIGN_OR_RETURN(
        const uint64_t new_generation,
        membership_->ApplyOverride(m.begin, m.end, m.to_shard));
    net::CutoverRequest request;
    request.begin = m.begin;
    request.end = m.end;
    request.from_shard = m.from_shard;
    request.to_shard = m.to_shard;
    request.view = membership_->Snapshot();
    // Donor and recipient must fence: their ownership changed. The rest
    // of the cluster is updated best-effort right after.
    TURBDB_RETURN_NOT_OK(donor->Cutover(request));
    TURBDB_RETURN_NOT_OK(recipient->Cutover(request));
    TURBDB_RETURN_NOT_OK(PushMembershipLocked());
    TURBDB_LOG(Info) << "range [" << m.begin << ", " << m.end
                     << ") cut over from shard " << m.from_shard
                     << " to shard " << m.to_shard << " at generation "
                     << new_generation;
    return new_generation;
  };
  return RangeMover::Execute(move, hooks);
}

Result<net::JoinReply> Mediator::Join(const net::JoinRequest& request) {
  if (!elastic()) {
    return Status::NotSupported(
        "membership join requires a distributed mediator");
  }
  // The admit phase may announce port 0 (the joiner has not bound yet);
  // the activate phase must carry the real port, since it is what the
  // mediator dials and persists for post-restart re-dial.
  if (request.uuid.empty() || request.host.empty() ||
      (request.activate && request.port == 0)) {
    return Status::InvalidArgument("join needs a uuid, host and port");
  }
  std::lock_guard<std::mutex> lock(membership_mutex_);
  net::JoinReply reply;
  if (!request.activate) {
    TURBDB_ASSIGN_OR_RETURN(
        reply.record,
        membership_->Admit(request.uuid, request.host, request.port));
    reply.view = membership_->Snapshot();
    // The catalog the joiner self-registers from; the partitioners stay
    // base-sized (the view's overrides re-home codes, never the
    // partitioning itself).
    for (const auto& entry : datasets_) {
      net::WireDatasetRegistration reg;
      reg.info = entry.second->info;
      reg.num_nodes = entry.second->partitioner.num_nodes();
      reg.strategy = static_cast<int32_t>(config_.partition_strategy);
      reply.registrations.push_back(std::move(reg));
    }
    return reply;
  }
  // Re-admit first: idempotent, and it refreshes the persisted address
  // when the joiner bound an ephemeral port after the admit phase.
  TURBDB_RETURN_NOT_OK(
      membership_->Admit(request.uuid, request.host, request.port).status());
  TURBDB_ASSIGN_OR_RETURN(reply.record, membership_->Activate(request.uuid));
  if (reply.record.shard >= num_nodes()) {
    if (backends_.size() == backends_.capacity()) {
      return Status::Unavailable(
          "join headroom exhausted: this mediator incarnation already "
          "admitted " +
          std::to_string(kJoinHeadroom) + " shards");
    }
    std::vector<std::unique_ptr<RemoteNode>> members;
    members.push_back(std::make_unique<RemoteNode>(
        reply.record.node_id, NodeAddress{request.host, request.port},
        config_.remote, reply.record.shard));
    auto group = std::make_unique<ReplicaGroup>(
        reply.record.shard, std::move(members), config_.remote);
    group->set_cache_affinity(config_.cache_affinity);
    TURBDB_RETURN_NOT_OK(group->BringUp());
    backends_.push_back(std::move(group));
    backend_count_.store(backends_.size(), std::memory_order_release);
  }
  TURBDB_RETURN_NOT_OK(PushMembershipLocked());
  reply.view = membership_->Snapshot();
  TURBDB_LOG(Info) << "node " << reply.record.node_id << " ("
                   << request.host << ":" << request.port
                   << ") joined as shard " << reply.record.shard
                   << " at generation " << reply.view.generation;
  return reply;
}

Result<net::LeaveReply> Mediator::Leave(int node_id) {
  if (!elastic()) {
    return Status::NotSupported(
        "decommission requires a distributed mediator");
  }
  std::lock_guard<std::mutex> lock(membership_mutex_);
  MembershipView view = membership_->Snapshot();
  const NodeRecord* record = view.FindByNodeId(node_id);
  if (record == nullptr) {
    return Status::NotFound("no node " + std::to_string(node_id) +
                            " in the membership");
  }
  const int shard = record->shard;
  net::LeaveReply reply;
  // Drain the shard: move every contiguous run of codes it effectively
  // owns to the least-loaded remaining active shard, one live move per
  // run (copy, cutover, push).
  while (true) {
    view = membership_->Snapshot();
    const std::vector<std::vector<uint64_t>> shard_atoms =
        ComputeShardAtoms(view);
    if (shard >= static_cast<int>(shard_atoms.size()) ||
        shard_atoms[static_cast<size_t>(shard)].empty()) {
      break;
    }
    // Least-loaded active shard other than the leaver.
    int target = -1;
    uint64_t target_load = UINT64_MAX;
    for (const NodeRecord& n : view.nodes) {
      if (n.shard == shard || n.role == NodeRole::kDraining) continue;
      const uint64_t load =
          n.shard < static_cast<int>(shard_atoms.size())
              ? shard_atoms[static_cast<size_t>(n.shard)].size()
              : 0;
      if (load < target_load) {
        target_load = load;
        target = n.shard;
      }
    }
    if (target < 0) {
      return Status::InvalidArgument(
          "cannot decommission node " + std::to_string(node_id) +
          ": no other active shard to take its ranges");
    }
    // The first maximal run of the leaver's codes with no other shard's
    // code inside it: ownership sweep over the merged code space.
    std::vector<std::pair<uint64_t, int>> owners;
    for (size_t s = 0; s < shard_atoms.size(); ++s) {
      for (uint64_t code : shard_atoms[s]) {
        owners.emplace_back(code, static_cast<int>(s));
      }
    }
    std::sort(owners.begin(), owners.end());
    RangeMove move;
    move.from_shard = shard;
    move.to_shard = target;
    for (const auto& [code, owner] : owners) {
      if (owner == shard) {
        if (move.end == 0) move.begin = code;
        move.end = code + 1;
        ++move.estimated_atoms;
      } else if (move.end != 0) {
        break;  // Run ended at a foreign code.
      }
    }
    TURBDB_ASSIGN_OR_RETURN(const RangeMover::Outcome outcome,
                            ExecuteMoveLocked(move));
    ++reply.ranges_moved;
    reply.atoms_copied += outcome.atoms_copied;
  }
  TURBDB_RETURN_NOT_OK(membership_->Decommission(node_id).status());
  TURBDB_RETURN_NOT_OK(PushMembershipLocked());
  reply.view = membership_->Snapshot();
  TURBDB_LOG(Info) << "node " << node_id << " (shard " << shard
                   << ") decommissioned at generation "
                   << reply.view.generation << " after moving "
                   << reply.ranges_moved << " range(s)";
  return reply;
}

Result<net::RebalanceReply> Mediator::Rebalance(
    const net::RebalanceRequest& request) {
  if (!elastic()) {
    return Status::NotSupported("rebalance requires a distributed mediator");
  }
  std::lock_guard<std::mutex> lock(membership_mutex_);
  net::RebalanceReply reply;
  const int rounds = static_cast<int>(std::max<uint64_t>(1, request.max_ranges));
  for (int i = 0; i < rounds; ++i) {
    const MembershipView view = membership_->Snapshot();
    auto move = RebalancePlanner::PlanOne(view, ComputeShardAtoms(view),
                                          request.to_shard);
    if (!move.ok()) {
      // "Nothing left worth moving" ends a multi-round rebalance
      // normally; on the first round it is the caller's answer.
      if (move.status().code() == StatusCode::kNotFound && i > 0) break;
      return move.status();
    }
    TURBDB_ASSIGN_OR_RETURN(const RangeMover::Outcome outcome,
                            ExecuteMoveLocked(*move));
    reply.generation = outcome.generation;
    reply.atoms_copied += outcome.atoms_copied;
    reply.moved.push_back(
        RangeOverride{move->begin, move->end, move->to_shard});
  }
  if (reply.generation == 0) reply.generation = membership_->generation();
  return reply;
}

}  // namespace turbdb
