#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/distributed_fof.h"
#include "cache/mediator_cache.h"
#include "cluster/cost_model.h"
#include "cluster/dataset.h"
#include "cluster/node.h"
#include "cluster/node_backend.h"
#include "cluster/partitioner.h"
#include "cluster/topology.h"
#include "common/thread_pool.h"
#include "fields/field_registry.h"
#include "membership/rebalance.h"
#include "membership/registry.h"
#include "net/protocol.h"
#include "query/query.h"

namespace turbdb {

class ReplicaGroup;

/// Cluster-level configuration (the paper's deployment: 4-8 database
/// nodes, 1-8 worker processes per node, Sec. 5.1).
struct ClusterConfig {
  int num_nodes = 4;
  int processes_per_node = 4;
  CostModelConfig cost;
  /// Host threads actually executing node work; defaults to the hardware
  /// concurrency. This affects only real wall time, never modeled time.
  int worker_threads = 0;
  /// How datasets are sharded across nodes (Morton, as in the JHTDB, or
  /// z-slabs for the partitioning ablation).
  PartitionStrategy partition_strategy = PartitionStrategy::kMorton;
  /// When non-empty, each node persists its atoms in checksummed
  /// append-only files under this directory (one file per node, dataset
  /// and field) instead of holding them in memory; reopening a cluster
  /// over the same directory recovers the data. Device *time* still
  /// comes from the cost models either way.
  std::string storage_dir;
  /// When non-empty, the database nodes are `turbdb_node` processes at
  /// these addresses (entry i = physical node i) and the mediator
  /// scatter-gathers over TCP; `num_nodes` is then the topology's group
  /// count (node count / replication factor). Empty = classic in-process
  /// deployment. The topology's `replication_factor` R fronts each shard
  /// with a ReplicaGroup of R consecutive nodes: primary-preferred reads
  /// with failover, write fan-out, and epoch-aware restart re-sync.
  ClusterTopology topology;
  /// Transport policy toward remote nodes (deadlines, retry budget).
  RemoteNodeOptions remote;
  /// Whether durable ingest fsyncs each (dataset, field) store at batch
  /// completion so acknowledged atoms survive a crash. Benches that only
  /// measure modeled time turn it off (--no-fsync).
  bool fsync_ingest = true;
  /// Byte budget shared by every IngestTimestep worker for atoms
  /// materialized but not yet shipped to their node. Workers page their
  /// slice in bounded batches against this budget instead of
  /// materializing the whole slice, so ingesting a timestep larger than
  /// RAM stays safe. 0 = unlimited (one batch per slice).
  uint64_t ingest_budget_bytes = 256u << 20;
  /// Capacity of the mediator-tier semantic result cache (see
  /// cache/mediator_cache.h): completed threshold results are kept at the
  /// cluster entry point and repeat (or subsumed) queries are answered
  /// with zero node RPCs. 0 (the default) disables the tier.
  uint64_t mediator_cache_bytes = 0;
  /// Cache-affinity replica routing: prefer the replica that most
  /// recently answered a subsuming threshold query for the same cache
  /// key (its node-local cache likely still holds the entry) over the
  /// default primary-preferred order. Off by default.
  bool cache_affinity = false;
};

/// Execution budget a transport front-end (cluster/service.h) attaches
/// to one query. `deadline` is an absolute wall-clock bound derived from
/// the client's frame budget (default-constructed = unbounded);
/// `cancel`, when non-null, is the serving layer's cancellation token
/// (flipped by a CancelQuery RPC). The mediator folds both into every
/// NodeQuery it dispatches, so a shard worker deep in an evaluate loop
/// observes the same budget the client stated.
struct CallBudget {
  std::chrono::steady_clock::time_point deadline{};
  const std::atomic<bool>* cancel = nullptr;
};

/// One physical node's row in Mediator::ClusterStatus().
struct ClusterNodeStatus {
  int node_id = 0;  ///< Physical id (topology index).
  int shard = 0;    ///< Replica group the node belongs to.
  bool primary = false;
  bool healthy = false;
  uint64_t epoch = 0;
  uint64_t failovers = 0;
  std::string address;
  // v6 elasticity/durability columns (append-only: earlier fields keep
  // their meaning and order for JSON consumers).
  uint64_t generation = 0;  ///< Membership generation the node serves at.
  uint64_t wal_pending_records = 0;  ///< WAL records not yet checkpointed.
  uint64_t wal_pending_bytes = 0;    ///< WAL payload bytes pending.
  // v7 self-healing columns (append-only).
  uint64_t scrub_passes = 0;          ///< Scrub passes completed on the node.
  uint64_t scrub_atoms_corrupt = 0;   ///< Corrupt atoms scrubs ever found.
  uint64_t scrub_atoms_repaired = 0;  ///< Atoms healed via anti-entropy.
  uint64_t atoms_quarantined = 0;     ///< Atoms quarantined right now.
};

/// The front-end Web-server of Fig. 1: mediates between clients and the
/// database nodes. Splits each query along the spatial partitioning of
/// the data, submits the parts asynchronously to the owning nodes,
/// assembles their results and accounts the end-to-end (modeled) time.
class Mediator {
 public:
  static Result<std::unique_ptr<Mediator>> Create(const ClusterConfig& config);

  /// Registers a dataset and partitions its atoms across the nodes.
  Status CreateDataset(const DatasetInfo& info);

  /// Ingests one (field, timestep) by materializing every atom through
  /// `generate` (in parallel) and storing it on its owner node.
  Status IngestTimestep(
      const std::string& dataset, const std::string& field, int32_t timestep,
      const std::function<Result<Atom>(int32_t, uint64_t)>& generate);

  /// Evaluates a threshold query (the paper's GetThreshold entry point).
  /// `budget` (optional, default unbounded) carries the caller's
  /// deadline and cancellation token; likewise for the other Get*
  /// entry points below.
  Result<ThresholdResult> GetThreshold(const ThresholdQuery& query,
                                       const QueryOptions& options = {},
                                       const CallBudget& budget = {});

  /// Consumes one chunk of a streamed threshold reply: the points of at
  /// most `chunk_points` joined results plus the running total delivered
  /// so far (including this chunk). Returns the encoded chunk size in
  /// bytes — fed back into the comm-time model — or an error, which
  /// aborts the query and cancels the not-yet-joined shards.
  using ThresholdChunkSink = std::function<Result<uint64_t>(
      std::vector<ThresholdPoint> points, uint64_t total_points)>;

  /// Bounded-memory variant of GetThreshold: each joined sub-query
  /// outcome is sliced into chunks of at most `chunk_points` points and
  /// handed to `sink` *as it arrives*, instead of being accumulated and
  /// globally sorted on the mediator. The returned result carries the
  /// summary (cache hits, modeled times, per-node stats, byte counters
  /// summed over the streamed chunks) with an *empty* point set; the
  /// consumer reassembles the points (z-order sort of the union) and
  /// gets a byte-identical set to the non-streamed path. A sink failure
  /// (client hung up) propagates out after the cancel fan-out.
  Result<ThresholdResult> GetThresholdStreaming(
      const ThresholdQuery& query, const QueryOptions& options,
      const CallBudget& budget, uint64_t chunk_points,
      const ThresholdChunkSink& sink);

  /// Consumes one batch of stitched friends-of-friends clusters from
  /// GetFof, plus the total cluster count (known once stitching
  /// finished, so every batch carries it). Returns the encoded batch
  /// size in bytes — fed into the comm-time model — or an error, which
  /// aborts the reply.
  using FofClusterSink = std::function<Result<uint64_t>(
      std::vector<DistributedFofCluster> clusters, uint64_t total_clusters)>;

  /// Distributed friends-of-friends clustering over the points a
  /// threshold query selects: fans the threshold sub-queries out to the
  /// owning shards, runs per-shard union-find as each shard's points
  /// join, stitches clusters across shard boundaries through a
  /// halo-zone relink (periodic wrap included), and streams the
  /// resulting cluster records through `sink` in batches of at most
  /// `chunk_points` member points. Cluster ids are deterministic
  /// (smallest member z-index) and the membership is byte-identical to
  /// running the in-process FriendsOfFriends over the same threshold
  /// result. Typed failures: non-positive linking length, or a linking
  /// length above the dataset's atom width (the guaranteed halo width).
  Result<DistributedFofSummary> GetFof(
      const ThresholdQuery& query, const QueryOptions& options,
      double linking_length, uint64_t min_cluster_size,
      const CallBudget& budget, uint64_t chunk_points,
      const FofClusterSink& sink);

  /// Histogram of the derived-field norm (Fig. 2).
  Result<PdfResult> GetPdf(const PdfQuery& query,
                           const CallBudget& budget = {});

  /// The k largest-norm locations.
  Result<TopKResult> GetTopK(const TopKQuery& query,
                             const CallBudget& budget = {});

  /// Mean/RMS/max of the derived-field norm.
  Result<FieldStatsResult> GetFieldStats(const FieldStatsQuery& query,
                                         const CallBudget& budget = {});

  /// Interpolates a stored field at arbitrary physical positions
  /// (Lag4/6/8), each evaluated on the node owning its grid cell — the
  /// GetVelocity-style service calls of Sec. 2.
  Result<SampleResult> GetSamples(const SampleQuery& query,
                                  const CallBudget& budget = {});

  /// Drops cached results of (dataset, raw:derived) for `timestep`
  /// (-1 = all timesteps) on every node *and* in the mediator-tier
  /// result cache; benchmark hook matching the paper's procedure of
  /// dropping cache entries before cache-miss runs. `mediator_dropped`,
  /// when non-null, receives the mediator-tier entry count removed.
  Status DropCacheEntries(const std::string& dataset,
                          const std::string& raw_field,
                          const std::string& derived_field, int32_t timestep,
                          uint64_t* mediator_dropped = nullptr);

  /// Outcome of WarmThresholdCache.
  struct CacheWarmOutcome {
    uint64_t points = 0;        ///< Points now resident for the query.
    bool already_cached = false;  ///< True when no query had to run.
  };

  /// Runs `query` solely to populate the mediator-tier cache: a lookup
  /// that already subsumes it is a no-op, otherwise the query executes
  /// (and its completion inserts the entry). Fails when the cache tier
  /// is disabled.
  Result<CacheWarmOutcome> WarmThresholdCache(const ThresholdQuery& query,
                                              const CallBudget& budget = {});

  /// Logical shard count, including shards joined at runtime. Reads the
  /// atomic counter rather than backends_.size(): Join appends into
  /// reserved capacity and publishes through this counter, so the query
  /// path never races the vector's bookkeeping.
  int num_nodes() const {
    return static_cast<int>(backend_count_.load(std::memory_order_acquire));
  }
  /// True when the nodes are remote turbdb_node processes.
  bool distributed() const { return !config_.topology.empty(); }
  /// The in-process DatabaseNode `i` — local deployments only (tests and
  /// benchmarks reach into caches/stores through this).
  DatabaseNode& node(int i) { return *nodes_[static_cast<size_t>(i)]; }
  NodeBackend& backend(int i) { return *backends_[static_cast<size_t>(i)]; }
  const ClusterConfig& config() const { return config_; }
  FieldRegistry& registry() { return registry_; }

  /// Atoms node 0 stores for (dataset, field) — works in both
  /// deployments; used to probe whether data was already ingested.
  Result<uint64_t> StoredAtomCount(const std::string& dataset,
                                   const std::string& field);

  /// Health/epoch/failover snapshot of every physical node, one row per
  /// topology entry. Empty for the in-process deployment.
  std::vector<ClusterNodeStatus> ClusterStatus() const;

  /// Whether this mediator runs the membership registry (distributed
  /// deployments). Elasticity RPCs on a non-elastic mediator fail typed.
  bool elastic() const { return membership_ != nullptr; }

  /// Current membership snapshot (default-constructed when !elastic()).
  MembershipView Membership() const;

  /// Current membership generation (0 when !elastic()).
  uint64_t generation() const;

  /// Two-phase node join (the `turbdb_node --join` handshake). Phase 1
  /// (activate=false) admits the uuid: assigns node id and a fresh
  /// single-replica shard, returns the view plus the dataset catalog the
  /// joiner self-registers from. Phase 2 (activate=true) flips it to
  /// kShard, dials it as a new replica group, and pushes the new view to
  /// the whole cluster. The joined shard owns no ranges until
  /// Rebalance() re-homes some to it — it serves immediately, with an
  /// empty slice.
  Result<net::JoinReply> Join(const net::JoinRequest& request);

  /// Decommissions `node_id`: every range its shard effectively owns is
  /// live-moved to the least-loaded remaining shard (copy, then
  /// cutover), the record flips to kDraining, and the new view is
  /// pushed. The drained node keeps its bytes (lazy drop) so in-flight
  /// halo reads keep succeeding; it can be shut down afterwards.
  Result<net::LeaveReply> Leave(int node_id);

  /// Plans and executes up to `request.max_ranges` live range moves
  /// toward `request.to_shard` (-1 = least-loaded). Each move copies via
  /// SyncRange paging with skip-existing ingest, then cuts ownership
  /// over on a generation bump pushed to every node; queries in flight
  /// across the cutover either finish under their pinned view or retry
  /// under the new one via kWrongOwner.
  Result<net::RebalanceReply> Rebalance(const net::RebalanceRequest& request);

  /// How many CancelQuery fan-outs Dispatch has issued to not-yet-joined
  /// shards (after a hard failure, a tripped point cap, or an external
  /// cancellation). Observability/test hook.
  uint64_t cancels_issued() const { return cancels_issued_.load(); }

  /// The mediator-tier result cache; never null (disabled when
  /// `mediator_cache_bytes` was 0). The serving layer attaches the
  /// server's governor ledger and reads stats through this.
  MediatorCache& result_cache() { return *result_cache_; }

  /// How many node Execute sub-queries Dispatch has submitted over this
  /// mediator's lifetime. A repeat threshold query answered by the
  /// mediator cache leaves this unchanged — the zero-node-RPC assertion
  /// hook for tests and benches.
  uint64_t node_executes() const { return node_executes_.load(); }

  /// Total affinity-preferred replica routing decisions, summed over the
  /// replica groups (always 0 in-process or with affinity off).
  uint64_t affinity_routes() const;

  /// Reads that failed over off a member answering kCorruption, and
  /// background read-repairs completed — summed over the replica groups
  /// (always 0 in-process). Surfaced through the ServerStats RPC (v7).
  uint64_t corruption_failovers() const;
  uint64_t read_repairs() const;

  Result<const DatasetInfo*> GetDataset(const std::string& name) const;

 private:
  struct DatasetState {
    DatasetInfo info;
    MortonPartitioner partitioner;
  };

  explicit Mediator(const ClusterConfig& config);

  Result<const DatasetState*> GetDatasetState(const std::string& name) const;

  /// Resolves catalog/kernel/differentiator and builds the node query.
  Result<NodeQuery> BuildNodeQuery(
      NodeQuery::Mode mode, const std::string& dataset,
      const std::string& raw_field, const std::string& derived_field,
      int32_t timestep, const Box3& box, int fd_order,
      const QueryOptions& options);

  /// Dispatches `node_query` to every node owning data in its box and
  /// merges the outcomes; fills the modeled time breakdown. Assigns the
  /// query a cluster-unique id and a cancel token: when one shard fails
  /// hard, the point cap trips, or `budget.cancel` flips, the token is
  /// set and the remaining in-flight sub-queries are cancelled instead
  /// of running to completion for a result nobody will merge.
  ///
  /// When `point_sink` is set, each outcome's points are *moved* into it
  /// as that outcome joins (the returned outcomes keep their metadata but
  /// empty point vectors), so the mediator never holds more than one
  /// outcome's points. The sink also receives the owning shard's node
  /// id — the FoF stitcher needs the attribution; plain streaming
  /// ignores it. A sink error aborts like a hard shard failure.
  Result<std::vector<NodeOutcome>> Dispatch(
      const NodeQuery& node_query, const CallBudget& budget,
      const std::function<Status(int node_id,
                                 std::vector<ThresholdPoint> points)>&
          point_sink = nullptr);

  /// One dispatch attempt under one membership snapshot. Dispatch wraps
  /// it with the kWrongOwner retry: a sub-query bounced by a node whose
  /// ownership moved re-runs the whole scatter under a fresh snapshot
  /// (only while no points have streamed to the sink yet — a partially
  /// consumed stream cannot be replayed without duplicates).
  Result<std::vector<NodeOutcome>> DispatchOnce(
      const NodeQuery& node_query, const CallBudget& budget,
      const std::function<Status(int node_id,
                                 std::vector<ThresholdPoint> points)>&
          point_sink);

  const Differentiator* GetDifferentiator(const std::string& dataset,
                                          const GridGeometry& geometry,
                                          int order);

  /// Fresh shared snapshot of the membership view; null when !elastic().
  std::shared_ptr<const MembershipView> ViewSnapshot() const;

  /// The replica group serving `shard`, or an error naming it.
  Result<ReplicaGroup*> Group(int shard) const;

  /// Sorted codes each shard effectively owns under `view`, across every
  /// dataset (the shared Morton code space; see RebalancePlanner).
  std::vector<std::vector<uint64_t>> ComputeShardAtoms(
      const MembershipView& view) const;

  /// Copy + cutover of one planned move (caller holds
  /// membership_mutex_). Pushes the post-cutover view to every group.
  Result<RangeMover::Outcome> ExecuteMoveLocked(const RangeMove& move);

  /// Pushes the registry's current view to every replica group (caller
  /// holds membership_mutex_). Down members miss the push and resync on
  /// probe instead.
  Status PushMembershipLocked();

  ClusterConfig config_;
  FieldRegistry registry_;
  /// In-process nodes (empty in distributed mode); backends_ is the
  /// uniform view the query path uses, one entry per node either way.
  /// Capacity is reserved at Create for the base shards plus the join
  /// headroom, so Join's push_back never reallocates under a concurrent
  /// Dispatch; `backend_count_` publishes the readable prefix.
  std::vector<std::unique_ptr<DatabaseNode>> nodes_;
  std::vector<std::unique_ptr<NodeBackend>> backends_;
  std::atomic<size_t> backend_count_{0};
  std::map<std::string, std::unique_ptr<DatasetState>> datasets_;

  /// Authoritative membership (distributed mode; null in-process). Admin
  /// mutations (join/leave/rebalance) serialize on membership_mutex_.
  std::unique_ptr<MembershipRegistry> membership_;
  std::mutex membership_mutex_;

  /// Runs per-node sub-queries (the asynchronous query scheduling layer).
  std::unique_ptr<ThreadPool> scheduler_;
  /// Runs the per-process chunks inside each node.
  std::unique_ptr<ThreadPool> workers_;

  /// Source of CancelQuery ids: a counter mixed with this mediator's
  /// address, so two mediators over the same nodes cannot collide.
  std::atomic<uint64_t> query_counter_{1};
  std::atomic<uint64_t> cancels_issued_{0};
  std::atomic<uint64_t> node_executes_{0};

  /// Mediator-tier semantic result cache (capacity 0 = disabled).
  std::unique_ptr<MediatorCache> result_cache_;

  mutable std::mutex diff_mutex_;
  std::map<std::pair<std::string, int>, std::unique_ptr<Differentiator>>
      differentiators_;
  std::map<std::pair<std::string, int>,
           std::shared_ptr<const LagrangeInterpolator>>
      interpolators_;
};

}  // namespace turbdb
