#include "cluster/network_model.h"

namespace turbdb {

NetworkSpec NetworkSpec::Lan() {
  NetworkSpec spec;
  spec.name = "lan-1gbe";
  spec.latency_s = 0.0002;
  spec.bandwidth_bps = 1.0e9 / 8.0;
  return spec;
}

NetworkSpec NetworkSpec::Wan() {
  NetworkSpec spec;
  spec.name = "user-wan";
  // Effective SOAP throughput to the end user implied by Table 1's
  // cache-hit rows: ~9 s to deliver ~9e5 XML-wrapped points (~70 MB),
  // i.e. ~60 Mbit/s, with ~0.15 s of per-call service overhead.
  spec.latency_s = 0.15;
  spec.bandwidth_bps = 60.0e6 / 8.0;
  return spec;
}

}  // namespace turbdb
