#pragma once

#include <cstdint>
#include <string>

namespace turbdb {

/// Analytic cost model for one network segment. Two segments matter in
/// the deployment (Fig. 1): the cluster LAN between the mediator
/// Web-server and the database nodes, and the WAN between the mediator
/// and the end user (where SOAP/XML inflation applies).
struct NetworkSpec {
  std::string name;
  double latency_s = 0.0;
  double bandwidth_bps = 0.0;

  /// Gigabit cluster interconnect.
  static NetworkSpec Lan();

  /// End-user WAN. Calibrated so that shipping a full derived field of a
  /// large time-step wrapped in XML takes tens of hours, matching the
  /// collaborator's reported 20+ hours for local evaluation (Sec. 1, 5.3).
  static NetworkSpec Wan();

  /// Modeled seconds for transferring `bytes` in one message.
  double TransferCost(uint64_t bytes) const {
    double cost = latency_s;
    if (bandwidth_bps > 0.0) {
      cost += static_cast<double>(bytes) / bandwidth_bps;
    }
    return cost;
  }
};

}  // namespace turbdb
