#include "cluster/node.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <future>
#include <queue>

#include "common/logging.h"
#include "storage/file_atom_store.h"

namespace turbdb {

namespace {

/// Per-chunk slab memory guard; chunks whose gather region would exceed
/// this are split and processed in halves.
constexpr uint64_t kMaxSlabBytes = 256ULL * 1024 * 1024;

/// Gap (in atom codes) the clustered-index read-ahead absorbs without a
/// new positioning operation. The data tables are scanned in Morton
/// order; skipping a few hundred 6 KB records is cheaper for a RAID
/// array than re-seeking, and SQL Server read-ahead does exactly that.
constexpr uint64_t kReadAheadGap = 256;

/// Counts the distinct range scans (seeks) a sorted code list costs on
/// the clustered (timestep, zindex) index, merging runs whose gaps are
/// within the read-ahead window.
uint64_t CountRuns(const std::vector<uint64_t>& sorted_codes) {
  if (sorted_codes.empty()) return 0;
  uint64_t runs = 1;
  for (size_t i = 1; i < sorted_codes.size(); ++i) {
    if (sorted_codes[i] > sorted_codes[i - 1] + kReadAheadGap) ++runs;
  }
  return runs;
}

struct TopKHeapCompare {
  bool operator()(const ThresholdPoint& a, const ThresholdPoint& b) const {
    return a.norm > b.norm;  // Min-heap on norm.
  }
};

/// Cooperative interruption point: a cancelled query wins over an
/// expired one (cancellation means nobody wants the answer at all).
Status CheckInterrupts(const NodeQuery& query) {
  if (query.cancel != nullptr &&
      query.cancel->load(std::memory_order_relaxed)) {
    return Status::Cancelled("query " + std::to_string(query.query_id) +
                             " cancelled");
  }
  if (query.deadline != std::chrono::steady_clock::time_point{} &&
      std::chrono::steady_clock::now() >= query.deadline) {
    return Status::DeadlineExceeded("query budget exhausted mid-evaluation");
  }
  return Status::OK();
}

}  // namespace

DatabaseNode::DatabaseNode(int id, const CostModelConfig& cost,
                           std::string storage_dir)
    : id_(id), shard_id_(id), storage_dir_(std::move(storage_dir)),
      hdd_(cost.hdd),
      cache_(&txn_manager_, cost.ssd, cost.cache_capacity_bytes) {}

void DatabaseNode::RegisterDataset(const std::string& dataset,
                                   std::vector<uint64_t> shard_atoms) {
  std::lock_guard<std::mutex> lock(stores_mutex_);
  shards_[dataset] = std::move(shard_atoms);
}

std::vector<uint64_t> DatabaseNode::RegisteredCodes(
    const std::string& dataset) const {
  std::lock_guard<std::mutex> lock(stores_mutex_);
  auto it = shards_.find(dataset);
  if (it == shards_.end()) return {};
  return it->second;
}

AtomStore* DatabaseNode::FindStore(const std::string& dataset,
                                   const std::string& field) const {
  {
    std::lock_guard<std::mutex> lock(stores_mutex_);
    auto it = stores_.find({dataset, field});
    if (it != stores_.end()) return it->second.get();
  }
  // Durable mode: a store file persisted by an earlier cluster instance
  // is recovered on first touch.
  if (!storage_dir_.empty()) {
    const std::string path = storage_dir_ + "/node" + std::to_string(id_) +
                             "_" + dataset + "_" + field + ".tatm";
    if (::access(path.c_str(), F_OK) == 0) {
      return const_cast<DatabaseNode*>(this)->GetOrCreateStore(dataset, field);
    }
  }
  return nullptr;
}

AtomStore* DatabaseNode::GetOrCreateStore(const std::string& dataset,
                                          const std::string& field) {
  std::lock_guard<std::mutex> lock(stores_mutex_);
  auto& slot = stores_[{dataset, field}];
  if (!slot) {
    if (storage_dir_.empty()) {
      slot = std::make_unique<InMemoryAtomStore>();
    } else {
      const std::string path = storage_dir_ + "/node" + std::to_string(id_) +
                               "_" + dataset + "_" + field + ".tatm";
      auto store = FileAtomStore::Open(path);
      if (!store.ok()) {
        TURBDB_LOG(Error) << "cannot open " << path << ": "
                          << store.status().ToString()
                          << "; falling back to memory";
        slot = std::make_unique<InMemoryAtomStore>();
      } else {
        slot = std::move(store).value();
      }
    }
  }
  return slot.get();
}

Status DatabaseNode::IngestAtom(const std::string& dataset,
                                const std::string& field, const Atom& atom) {
  return GetOrCreateStore(dataset, field)->Put(atom);
}

Status DatabaseNode::FinishIngest(const std::string& dataset,
                                  const std::string& field) {
  if (!fsync_on_ingest_ || storage_dir_.empty()) return Status::OK();
  AtomStore* store = FindStore(dataset, field);
  if (store == nullptr) return Status::OK();
  return store->Sync();
}

std::vector<DatabaseNode::StoreListing> DatabaseNode::ListStores() const {
  std::vector<StoreListing> listings;
  std::lock_guard<std::mutex> lock(stores_mutex_);
  for (const auto& [key, store] : stores_) {
    listings.push_back({key.first, key.second, store->AtomCount()});
  }
  return listings;
}

Status DatabaseNode::CollectRange(const std::string& dataset,
                                  const std::string& field, int32_t timestep,
                                  uint64_t begin, uint64_t end,
                                  uint64_t max_atoms, std::vector<Atom>* atoms,
                                  uint64_t* next_code, bool* done) const {
  const AtomStore* store = FindStore(dataset, field);
  if (store == nullptr) {
    return Status::NotFound("node " + std::to_string(id_) +
                            " stores no field '" + field + "'");
  }
  atoms->clear();
  *next_code = end;
  *done = true;
  // Scan cannot stop early; past the page limit we only record where the
  // next page starts and skip the payload copies.
  TURBDB_RETURN_NOT_OK(store->Scan(
      timestep, MortonRange{begin, end}, [&](const Atom& atom) {
        if (atoms->size() < max_atoms) {
          atoms->push_back(atom);
        } else if (*done) {
          *done = false;
          *next_code = atom.key.zindex;
        }
      }));
  return Status::OK();
}

uint64_t DatabaseNode::StoredAtomCount(const std::string& dataset,
                                       const std::string& field) const {
  const AtomStore* store = FindStore(dataset, field);
  return store == nullptr ? 0 : store->AtomCount();
}

std::vector<DatabaseNode::StoreHandle> DatabaseNode::OpenStores() {
  std::vector<StoreHandle> handles;
  std::lock_guard<std::mutex> lock(stores_mutex_);
  for (const auto& [key, store] : stores_) {
    handles.push_back({key.first, key.second, store.get()});
  }
  return handles;
}

Status DatabaseNode::StoreDigestRows(const std::string& dataset,
                                     const std::string& field,
                                     std::vector<AtomDigest>* rows) const {
  const AtomStore* store = FindStore(dataset, field);
  if (store == nullptr) {
    return Status::NotFound("node " + std::to_string(id_) +
                            " stores no field '" + field + "'");
  }
  return store->DigestRows(rows);
}

Status DatabaseNode::RepairAtom(const std::string& dataset,
                                const std::string& field, const Atom& atom) {
  return GetOrCreateStore(dataset, field)->Repair(atom);
}

Result<Atom> DatabaseNode::ReadStoredAtom(const std::string& dataset,
                                          const std::string& field,
                                          const AtomKey& key) const {
  const AtomStore* store = FindStore(dataset, field);
  if (store == nullptr) {
    return Status::NotFound("node " + std::to_string(id_) +
                            " stores no field '" + field + "'");
  }
  return store->Get(key);
}

Result<std::vector<Atom>> DatabaseNode::ServeAtoms(
    const std::string& dataset, const std::string& field, int32_t timestep,
    const std::vector<uint64_t>& codes, int concurrent, double* cost_s,
    uint64_t* bytes_out) {
  AtomStore* store = FindStore(dataset, field);
  if (store == nullptr) {
    return Status::NotFound("node " + std::to_string(id_) +
                            " stores no field '" + field + "'");
  }
  std::vector<Atom> atoms;
  atoms.reserve(codes.size());
  uint64_t bytes = 0;
  for (uint64_t code : codes) {
    TURBDB_ASSIGN_OR_RETURN(Atom atom, store->Get(AtomKey{timestep, code}));
    bytes += atom.SizeBytes();
    atoms.push_back(std::move(atom));
  }
  const double cost = hdd_.ChargeRead(bytes, CountRuns(codes), concurrent);
  if (cost_s != nullptr) *cost_s += cost;
  if (bytes_out != nullptr) *bytes_out += bytes;
  return atoms;
}

Result<NodeOutcome> DatabaseNode::Execute(const NodeQuery& query,
                                          ThreadPool* workers) {
  if (query.mode == NodeQuery::Mode::kSample) {
    return ExecuteSample(query, workers);
  }
  const bool threshold_mode = query.mode == NodeQuery::Mode::kThreshold;
  const bool cacheable =
      threshold_mode && query.options.use_cache && !query.options.io_only &&
      cache_.enabled();

  NodeOutcome outcome;
  if (cacheable) {
    // Algorithm 1 lines 4-25: interrogate the semantic cache first.
    TURBDB_ASSIGN_OR_RETURN(
        CacheLookup lookup,
        cache_.Lookup(query.dataset->name, query.cache_field_key,
                      query.timestep, query.fd_order, query.box,
                      query.threshold));
    outcome.time.cache_lookup_s += lookup.lookup_cost_s;
    outcome.io += lookup.io;
    if (lookup.hit) {
      outcome.cache_hit = true;
      outcome.points = std::move(lookup.points);
      std::sort(outcome.points.begin(), outcome.points.end(),
                [](const ThresholdPoint& a, const ThresholdPoint& b) {
                  return a.zindex < b.zindex;
                });
      outcome.io.points_returned += outcome.points.size();
      return outcome;
    }
  }

  // Algorithm 1 lines 29-36: evaluate from the raw data.
  TURBDB_ASSIGN_OR_RETURN(NodeOutcome raw, ExecuteFromRaw(query, workers));
  raw.time.cache_lookup_s += outcome.time.cache_lookup_s;
  raw.io += outcome.io;

  if (cacheable) {
    // Algorithm 1 line 37: record the result for future queries.
    double insert_cost = 0.0;
    TURBDB_RETURN_NOT_OK(cache_.Insert(
        query.dataset->name, query.cache_field_key, query.timestep,
        query.fd_order, query.box, query.threshold, raw.points,
        &insert_cost));
    raw.time.cache_lookup_s += insert_cost;
  }
  return raw;
}

Result<NodeOutcome> DatabaseNode::ExecuteFromRaw(const NodeQuery& query,
                                                 ThreadPool* workers) {
  NodeOutcome outcome;
  outcome.histogram.assign(static_cast<size_t>(query.num_bins) + 1, 0);

  {
    std::lock_guard<std::mutex> lock(stores_mutex_);
    if (shards_.find(query.dataset->name) == shards_.end()) {
      return Status::NotFound("node " + std::to_string(id_) +
                              " has no shard of dataset '" +
                              query.dataset->name + "'");
    }
  }
  const GridGeometry& geometry = query.dataset->geometry;
  const Box3 atom_cover = geometry.AtomCover(query.box);
  // With a pinned membership view the evaluated atoms are the view's
  // effective ownership (range overrides re-homing live-moved ranges);
  // without one, the static partitioner assignment.
  const std::vector<uint64_t> atoms =
      query.view != nullptr
          ? OwnedAtomsInBox(*query.partitioner, *query.view, shard_id_,
                            atom_cover)
          : query.partitioner->NodeAtomsInBox(shard_id_, atom_cover);
  if (atoms.empty()) return outcome;

  // Data-parallel evaluation: split this node's atoms into one contiguous
  // morton run per worker process.
  const int processes = std::max(1, query.processes);
  const size_t num_chunks =
      std::min<size_t>(static_cast<size_t>(processes), atoms.size());
  std::vector<std::future<ChunkOutcome>> futures;
  futures.reserve(num_chunks);
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const size_t begin = atoms.size() * chunk / num_chunks;
    const size_t end = atoms.size() * (chunk + 1) / num_chunks;
    std::vector<uint64_t> chunk_atoms(atoms.begin() + begin,
                                      atoms.begin() + end);
    futures.push_back(workers->Submit(
        [this, &query, chunk_atoms = std::move(chunk_atoms)]() {
          return ProcessChunk(query, chunk_atoms);
        }));
  }

  // The slowest worker determines the node's elapsed I/O and compute
  // time; byte and point counters accumulate across workers.
  Status failure;
  std::priority_queue<ThresholdPoint, std::vector<ThresholdPoint>,
                      TopKHeapCompare>
      topk;
  for (auto& future : futures) {
    ChunkOutcome chunk = future.get();
    if (!chunk.status.ok()) {
      if (failure.ok()) failure = chunk.status;
      continue;
    }
    outcome.time.io_s = std::max(outcome.time.io_s, chunk.io_s);
    outcome.time.compute_s = std::max(outcome.time.compute_s, chunk.compute_s);
    outcome.io += chunk.io;
    switch (query.mode) {
      case NodeQuery::Mode::kThreshold:
        outcome.points.insert(outcome.points.end(), chunk.points.begin(),
                              chunk.points.end());
        break;
      case NodeQuery::Mode::kPdf:
        for (size_t bin = 0; bin < chunk.histogram.size(); ++bin) {
          outcome.histogram[bin] += chunk.histogram[bin];
        }
        break;
      case NodeQuery::Mode::kTopK:
        for (const ThresholdPoint& point : chunk.points) {
          topk.push(point);
          if (topk.size() > query.k) topk.pop();
        }
        break;
      case NodeQuery::Mode::kMoments:
        outcome.norm_sum += chunk.norm_sum;
        outcome.norm_sum_sq += chunk.norm_sum_sq;
        outcome.norm_max = std::max(outcome.norm_max, chunk.norm_max);
        break;
    }
  }
  TURBDB_RETURN_NOT_OK(failure);

  // CPU saturation: beyond the node's effective core count, worker
  // processes time-share and compute time stops improving (the paper
  // observes little gain from 4 to 8 processes, Sec. 5.3).
  if (query.effective_cores > 0.0 &&
      static_cast<double>(processes) > query.effective_cores) {
    outcome.time.compute_s *=
        static_cast<double>(processes) / query.effective_cores;
  }

  if (query.mode == NodeQuery::Mode::kThreshold &&
      outcome.points.size() > query.options.max_result_points) {
    return Status::ThresholdTooLow(
        "threshold produced more than " +
        std::to_string(query.options.max_result_points) +
        " points on node " + std::to_string(id_) +
        "; raise the threshold or request the field directly");
  }
  if (query.mode == NodeQuery::Mode::kTopK) {
    outcome.points.reserve(topk.size());
    while (!topk.empty()) {
      outcome.points.push_back(topk.top());
      topk.pop();
    }
  }
  std::sort(outcome.points.begin(), outcome.points.end(),
            [](const ThresholdPoint& a, const ThresholdPoint& b) {
              return a.zindex < b.zindex;
            });
  outcome.io.points_returned += outcome.points.size();
  return outcome;
}

Result<NodeOutcome> DatabaseNode::ExecuteSample(const NodeQuery& query,
                                                ThreadPool* workers) {
  NodeOutcome outcome;
  outcome.histogram.assign(static_cast<size_t>(query.num_bins) + 1, 0);
  if (query.targets.empty()) return outcome;
  TURBDB_CHECK(query.interpolator != nullptr);

  const int processes = std::max(1, query.processes);
  const size_t num_chunks =
      std::min<size_t>(static_cast<size_t>(processes), query.targets.size());
  std::vector<std::future<ChunkOutcome>> futures;
  futures.reserve(num_chunks);
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const size_t begin = query.targets.size() * chunk / num_chunks;
    const size_t end = query.targets.size() * (chunk + 1) / num_chunks;
    std::vector<std::pair<uint32_t, std::array<double, 3>>> slice(
        query.targets.begin() + begin, query.targets.begin() + end);
    futures.push_back(
        workers->Submit([this, &query, slice = std::move(slice)]() {
          return ProcessSampleChunk(query, slice);
        }));
  }
  Status failure;
  for (auto& future : futures) {
    ChunkOutcome chunk = future.get();
    if (!chunk.status.ok()) {
      if (failure.ok()) failure = chunk.status;
      continue;
    }
    outcome.time.io_s = std::max(outcome.time.io_s, chunk.io_s);
    outcome.time.compute_s = std::max(outcome.time.compute_s, chunk.compute_s);
    outcome.io += chunk.io;
    outcome.samples.insert(outcome.samples.end(), chunk.samples.begin(),
                           chunk.samples.end());
  }
  TURBDB_RETURN_NOT_OK(failure);
  outcome.io.points_returned += outcome.samples.size();
  return outcome;
}

DatabaseNode::ChunkOutcome DatabaseNode::ProcessSampleChunk(
    const NodeQuery& query,
    const std::vector<std::pair<uint32_t, std::array<double, 3>>>& targets) {
  ChunkOutcome out;
  if (targets.empty()) return out;
  out.status = CheckInterrupts(query);
  if (!out.status.ok()) return out;
  const GridGeometry& geometry = query.dataset->geometry;
  const LagrangeInterpolator& interp = *query.interpolator;

  DestMap dest;
  for (const auto& [index, position] : targets) {
    InsertCover(geometry, geometry.AtomCover(interp.SupportBox(position)),
                &dest);
  }
  if (dest.empty()) return out;

  // Memory guard: widely scattered targets could span a huge bounding
  // box; split the batch until each gather fits.
  {
    Box3 bounds;
    bool first = true;
    for (const auto& [coord, code] : dest) {
      if (first) {
        bounds = Box3(coord[0], coord[1], coord[2], coord[0] + 1,
                      coord[1] + 1, coord[2] + 1);
        first = false;
      } else {
        for (int d = 0; d < 3; ++d) {
          bounds.lo[d] = std::min(bounds.lo[d], coord[d]);
          bounds.hi[d] = std::max(bounds.hi[d], coord[d] + 1);
        }
      }
    }
    const int64_t w = geometry.atom_width();
    const uint64_t slab_bytes = static_cast<uint64_t>(bounds.Volume()) * w *
                                w * w * query.raw_ncomp * sizeof(float);
    if (slab_bytes > kMaxSlabBytes && targets.size() > 1) {
      const size_t mid = targets.size() / 2;
      ChunkOutcome left = ProcessSampleChunk(
          query, {targets.begin(), targets.begin() + mid});
      if (!left.status.ok()) return left;
      ChunkOutcome right =
          ProcessSampleChunk(query, {targets.begin() + mid, targets.end()});
      if (!right.status.ok()) return right;
      right.samples.insert(right.samples.end(), left.samples.begin(),
                           left.samples.end());
      right.io_s += left.io_s;
      right.compute_s += left.compute_s;
      right.io += left.io;
      return right;
    }
  }

  Slab slab = GatherDest(query, dest, &out);
  if (!out.status.ok()) return out;

  double value[3] = {0.0, 0.0, 0.0};
  out.samples.reserve(targets.size());
  for (const auto& [index, position] : targets) {
    interp.At(slab, position, query.raw_ncomp, value);
    std::array<double, 3> sample = {0.0, 0.0, 0.0};
    for (int c = 0; c < query.raw_ncomp; ++c) {
      sample[static_cast<size_t>(c)] = value[c];
    }
    out.samples.push_back({index, sample});
  }
  out.io.points_evaluated += targets.size();
  const int s = interp.support();
  const double flops_per_sample =
      2.0 * s * s * s * query.raw_ncomp + 18.0 * s * s;
  out.compute_s += static_cast<double>(targets.size()) * flops_per_sample /
                   query.flops_per_process;
  return out;
}

void DatabaseNode::InsertCover(const GridGeometry& geometry, const Box3& cover,
                               DestMap* dest) {
  for (int64_t dz = cover.lo[2]; dz < cover.hi[2]; ++dz) {
    for (int64_t dy = cover.lo[1]; dy < cover.hi[1]; ++dy) {
      for (int64_t dx = cover.lo[0]; dx < cover.hi[0]; ++dx) {
        int64_t wrapped[3] = {dx, dy, dz};
        bool valid = true;
        for (int d = 0; d < 3; ++d) {
          const int64_t na = geometry.AtomsAlong(d);
          if (wrapped[d] < 0 || wrapped[d] >= na) {
            if (!geometry.periodic(d)) {
              valid = false;  // No data beyond a wall.
              break;
            }
            wrapped[d] = ((wrapped[d] % na) + na) % na;
          }
        }
        if (!valid) continue;
        (*dest)[{dx, dy, dz}] =
            MortonEncode3(static_cast<uint32_t>(wrapped[0]),
                          static_cast<uint32_t>(wrapped[1]),
                          static_cast<uint32_t>(wrapped[2]));
      }
    }
  }
}

Slab DatabaseNode::GatherDest(const NodeQuery& query, const DestMap& dest,
                              ChunkOutcome* out) {
  const int64_t w = query.dataset->geometry.atom_width();

  // Fetch plan: unique codes, split into local reads and per-peer
  // batches. The same wrapped code can back several periodic images; it
  // is read once and copied to each destination.
  std::vector<uint64_t> local_codes;
  std::map<int, std::vector<uint64_t>> remote_codes;
  {
    std::vector<uint64_t> unique_codes;
    unique_codes.reserve(dest.size());
    for (const auto& [coord, code] : dest) unique_codes.push_back(code);
    std::sort(unique_codes.begin(), unique_codes.end());
    unique_codes.erase(std::unique(unique_codes.begin(), unique_codes.end()),
                       unique_codes.end());
    for (uint64_t code : unique_codes) {
      const int owner = query.partitioner->OwnerOfAtom(code);
      if (owner == shard_id_) {
        local_codes.push_back(code);
      } else {
        remote_codes[owner].push_back(code);
      }
    }
  }

  std::map<uint64_t, Atom> fetched;
  // Local reads: one clustered-index range scan per contiguous run.
  if (!local_codes.empty()) {
    AtomStore* store = FindStore(query.dataset->name, query.raw_field);
    if (store == nullptr) {
      out->status = Status::NotFound("field '" + query.raw_field +
                                     "' not ingested on node " +
                                     std::to_string(id_));
      return Slab();
    }
    uint64_t bytes = 0;
    for (uint64_t code : local_codes) {
      auto atom = store->Get(AtomKey{query.timestep, code});
      if (!atom.ok()) {
        out->status = atom.status();
        return Slab();
      }
      bytes += atom->SizeBytes();
      fetched.emplace(code, std::move(atom).value());
    }
    out->io_s +=
        hdd_.ChargeRead(bytes, CountRuns(local_codes), query.processes);
    out->io.atoms_read_local += local_codes.size();
    out->io.bytes_read_local += bytes;
  }
  // Remote halo reads: one batched request per adjacent node. Each hop
  // re-checks cancellation/deadline first: a network fetch is the most
  // expensive thing to start for a query nobody is waiting on.
  for (const auto& [owner, codes] : remote_codes) {
    if (!remote_fetch_) {
      out->status = Status::Internal("remote fetch hook not wired");
      return Slab();
    }
    out->status = CheckInterrupts(query);
    if (!out->status.ok()) return Slab();
    double cost = 0.0;
    auto atoms = remote_fetch_(query, owner, query.dataset->name,
                               query.raw_field, query.timestep, codes,
                               query.processes, &cost);
    if (!atoms.ok()) {
      out->status = atoms.status();
      return Slab();
    }
    out->io_s += cost;
    uint64_t bytes = 0;
    for (Atom& atom : atoms.value()) {
      bytes += atom.SizeBytes();
      fetched.emplace(atom.key.zindex, std::move(atom));
    }
    out->io.atoms_read_remote += codes.size();
    out->io.bytes_read_remote += bytes;
  }

  // Assemble the slab over the bounding box of all destinations.
  Box3 slab_atoms;
  {
    bool first = true;
    for (const auto& [coord, code] : dest) {
      if (first) {
        slab_atoms = Box3(coord[0], coord[1], coord[2], coord[0] + 1,
                          coord[1] + 1, coord[2] + 1);
        first = false;
      } else {
        for (int d = 0; d < 3; ++d) {
          slab_atoms.lo[d] = std::min(slab_atoms.lo[d], coord[d]);
          slab_atoms.hi[d] = std::max(slab_atoms.hi[d], coord[d] + 1);
        }
      }
    }
  }
  const Box3 slab_region(slab_atoms.lo[0] * w, slab_atoms.lo[1] * w,
                         slab_atoms.lo[2] * w, slab_atoms.hi[0] * w,
                         slab_atoms.hi[1] * w, slab_atoms.hi[2] * w);
  Slab slab(slab_region, query.raw_ncomp);
  for (const auto& [coord, code] : dest) {
    auto it = fetched.find(code);
    TURBDB_CHECK(it != fetched.end());
    const Box3 dest_box(coord[0] * w, coord[1] * w, coord[2] * w,
                        (coord[0] + 1) * w, (coord[1] + 1) * w,
                        (coord[2] + 1) * w);
    slab.CopyAtom(it->second, dest_box);
  }
  return slab;
}

DatabaseNode::ChunkOutcome DatabaseNode::ProcessChunk(
    const NodeQuery& query, const std::vector<uint64_t>& chunk_atoms) {
  ChunkOutcome out;
  out.histogram.assign(static_cast<size_t>(query.num_bins) + 1, 0);
  if (chunk_atoms.empty()) return out;
  out.status = CheckInterrupts(query);
  if (!out.status.ok()) return out;

  const GridGeometry& geometry = query.dataset->geometry;
  const int64_t w = geometry.atom_width();
  const int halo = query.kernel->HaloWidth(query.fd_order);

  // Memory guard: a contiguous morton run can have a large bounding box
  // on grids with non-power-of-two atom counts. Split oversized chunks.
  {
    Box3 rough;
    bool first = true;
    for (uint64_t code : chunk_atoms) {
      uint32_t ax, ay, az;
      MortonDecode3(code, &ax, &ay, &az);
      if (first) {
        rough = Box3(ax, ay, az, ax + 1, ay + 1, az + 1);
        first = false;
      } else {
        for (int d = 0; d < 3; ++d) {
          const int64_t coord = d == 0 ? ax : (d == 1 ? ay : az);
          rough.lo[d] = std::min(rough.lo[d], coord);
          rough.hi[d] = std::max(rough.hi[d], coord + 1);
        }
      }
    }
    const uint64_t slab_bytes = static_cast<uint64_t>(rough.Volume()) * w * w *
                                w * query.raw_ncomp * sizeof(float);
    if (slab_bytes > kMaxSlabBytes && chunk_atoms.size() > 1) {
      const size_t mid = chunk_atoms.size() / 2;
      ChunkOutcome left = ProcessChunk(
          query, {chunk_atoms.begin(), chunk_atoms.begin() + mid});
      if (!left.status.ok()) return left;
      ChunkOutcome right =
          ProcessChunk(query, {chunk_atoms.begin() + mid, chunk_atoms.end()});
      if (!right.status.ok()) return right;
      right.points.insert(right.points.end(), left.points.begin(),
                          left.points.end());
      for (size_t bin = 0; bin < right.histogram.size(); ++bin) {
        right.histogram[bin] += left.histogram[bin];
      }
      right.norm_sum += left.norm_sum;
      right.norm_sum_sq += left.norm_sum_sq;
      right.norm_max = std::max(right.norm_max, left.norm_max);
      right.io_s += left.io_s;
      right.compute_s += left.compute_s;
      right.io += left.io;
      return right;
    }
  }

  // ---- Gather phase -------------------------------------------------
  // Destination atom positions (in unwrapped atom coordinates, so
  // periodic halo images land outside [0, na)) -> wrapped atom code.
  DestMap dest;
  uint64_t interest_points = 0;
  for (uint64_t code : chunk_atoms) {
    uint32_t ax, ay, az;
    MortonDecode3(code, &ax, &ay, &az);
    const Box3 atom_box(ax * w, ay * w, az * w, (ax + 1) * w, (ay + 1) * w,
                        (az + 1) * w);
    const Box3 interest = atom_box.Intersection(query.box);
    if (interest.Empty()) continue;
    interest_points += static_cast<uint64_t>(interest.Volume());
    InsertCover(geometry, geometry.AtomCover(interest.Grown(halo)), &dest);
  }
  if (dest.empty()) return out;

  Slab slab = GatherDest(query, dest, &out);
  if (!out.status.ok()) return out;

  // Evaluated-point accounting happens here (rather than in the evaluate
  // loop) so that I/O-only runs still report the workload size — the
  // counters feed the paper-scale projections of Fig. 8.
  out.io.points_evaluated += interest_points;

  if (query.options.io_only) return out;

  // ---- Evaluate phase ------------------------------------------------
  std::priority_queue<ThresholdPoint, std::vector<ThresholdPoint>,
                      TopKHeapCompare>
      topk;
  uint64_t evaluated = 0;
  for (uint64_t code : chunk_atoms) {
    out.status = CheckInterrupts(query);
    if (!out.status.ok()) return out;
    uint32_t ax, ay, az;
    MortonDecode3(code, &ax, &ay, &az);
    const Box3 atom_box(ax * w, ay * w, az * w, (ax + 1) * w, (ay + 1) * w,
                        (az + 1) * w);
    const Box3 interest = atom_box.Intersection(query.box);
    if (interest.Empty()) continue;
    for (int64_t z = interest.lo[2]; z < interest.hi[2]; ++z) {
      for (int64_t y = interest.lo[1]; y < interest.hi[1]; ++y) {
        for (int64_t x = interest.lo[0]; x < interest.hi[0]; ++x) {
          const double norm =
              query.kernel->NormAt(slab, *query.diff, x, y, z);
          ++evaluated;
          switch (query.mode) {
            case NodeQuery::Mode::kThreshold:
              if (norm >= query.threshold) {
                out.points.push_back(MakeThresholdPoint(
                    static_cast<uint32_t>(x), static_cast<uint32_t>(y),
                    static_cast<uint32_t>(z), static_cast<float>(norm)));
                if (out.points.size() > query.options.max_result_points) {
                  // The global cap is already exceeded by this node
                  // alone; computing further is pointless.
                  out.status = Status::ThresholdTooLow(
                      "threshold too low: result exceeds the point cap");
                  return out;
                }
              }
              break;
            case NodeQuery::Mode::kPdf: {
              int bin = static_cast<int>(norm / query.bin_width);
              bin = std::min(bin, query.num_bins);
              ++out.histogram[static_cast<size_t>(bin)];
              break;
            }
            case NodeQuery::Mode::kMoments:
              out.norm_sum += norm;
              out.norm_sum_sq += norm * norm;
              out.norm_max = std::max(out.norm_max, norm);
              break;
            case NodeQuery::Mode::kTopK:
              if (topk.size() < query.k) {
                topk.push(MakeThresholdPoint(
                    static_cast<uint32_t>(x), static_cast<uint32_t>(y),
                    static_cast<uint32_t>(z), static_cast<float>(norm)));
              } else if (norm > topk.top().norm) {
                topk.pop();
                topk.push(MakeThresholdPoint(
                    static_cast<uint32_t>(x), static_cast<uint32_t>(y),
                    static_cast<uint32_t>(z), static_cast<float>(norm)));
              }
              break;
          }
        }
      }
    }
  }
  while (!topk.empty()) {
    out.points.push_back(topk.top());
    topk.pop();
  }
  out.compute_s += static_cast<double>(evaluated) *
                   query.kernel->FlopsPerPoint(query.fd_order) /
                   query.flops_per_process;
  return out;
}

}  // namespace turbdb
