#pragma once

#include <atomic>
#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "array/point.h"
#include "cache/semantic_cache.h"
#include "cluster/cost_model.h"
#include "cluster/dataset.h"
#include "cluster/partitioner.h"
#include "common/thread_pool.h"
#include "fields/derived_field.h"
#include "fields/differentiator.h"
#include "fields/interpolator.h"
#include "membership/view.h"
#include "query/query.h"
#include "storage/atom_store.h"
#include "txn/txn_manager.h"

namespace turbdb {

/// What a node is asked to evaluate. Built by the mediator after catalog
/// resolution; everything pointed to outlives the call.
struct NodeQuery {
  /// kMoments accumulates sum/sum-of-squares/max of the norm, which is
  /// how thresholds are chosen in practice (the paper expresses them as
  /// multiples of the field's RMS). kSample interpolates the raw field
  /// at arbitrary positions (the GetVelocity-style service calls).
  enum class Mode { kThreshold, kPdf, kTopK, kMoments, kSample };

  Mode mode = Mode::kThreshold;
  const DatasetInfo* dataset = nullptr;
  const MortonPartitioner* partitioner = nullptr;
  std::string raw_field;
  /// Name the kernel was resolved from ("vorticity", ...; empty for
  /// kSample). Carried so a remote backend can re-resolve the kernel on
  /// its own side of the wire.
  std::string derived_field;
  int raw_ncomp = 3;
  /// Cache identity of the derived quantity: "<raw>:<derived>", so that
  /// e.g. the curl of the velocity and the curl of the magnetic field
  /// occupy distinct cache entries.
  std::string cache_field_key;
  std::shared_ptr<const DerivedField> kernel;
  const Differentiator* diff = nullptr;
  int fd_order = 4;
  int32_t timestep = 0;
  Box3 box;  ///< Clipped, half-open, grid coordinates.
  double threshold = 0.0;

  // PDF parameters (mode == kPdf).
  double bin_width = 10.0;
  int num_bins = 9;

  // Top-k parameter (mode == kTopK).
  uint64_t k = 100;

  // Sampling parameters (mode == kSample): the interpolator and this
  // node's share of the targets, tagged with their original indices.
  // `sample_support` is the Lagrange support the interpolator was built
  // with — the wire-transferable form of that pointer.
  std::shared_ptr<const LagrangeInterpolator> interpolator;
  int sample_support = 0;
  std::vector<std::pair<uint32_t, std::array<double, 3>>> targets;

  int processes = 1;
  QueryOptions options;
  double flops_per_process = 1.25e8;
  /// Cores effectively available per node; processes beyond this count
  /// time-share the CPUs (CostModelConfig::effective_cores_per_node).
  double effective_cores = 4.0;

  // Execution budget (not serialized — each hop derives its own from the
  // frame header). A default-constructed time_point means unbounded; a
  // null cancel pointer means not cancellable. Workers poll both at
  // chunk boundaries and between atoms of the evaluate loop, so a
  // cancelled or over-budget query stops burning cores within one atom's
  // worth of work. Plain std::chrono (not net::Deadline) so the core
  // node carries no dependency on the transport layer.
  std::chrono::steady_clock::time_point deadline{};
  const std::atomic<bool>* cancel = nullptr;
  /// Mediator-assigned id under which this query was registered for
  /// CancelQuery; 0 = unregistered. Carried so error messages and remote
  /// sub-queries can name the query being cancelled.
  uint64_t query_id = 0;
  /// Membership view pinned for this query (v6). When set, the atoms the
  /// node evaluates are the view's *effective* ownership of its shard
  /// (base partitioner assignment re-homed by the view's range
  /// overrides) instead of the static assignment — this is what makes a
  /// live range move change query routing without rebuilding
  /// partitioners. Null keeps the static behavior (in-process
  /// deployments, pre-v6 peers).
  std::shared_ptr<const MembershipView> view;
};

/// A node's answer to its part of a query.
struct NodeOutcome {
  int node_id = 0;                     ///< Filled by the mediator.
  std::vector<ThresholdPoint> points;  ///< Threshold/top-k rows, z-sorted.
  std::vector<uint64_t> histogram;     ///< PDF counts (num_bins + 1).
  double norm_sum = 0.0;               ///< kMoments accumulators.
  double norm_sum_sq = 0.0;
  double norm_max = 0.0;
  /// kSample outputs: (original index, interpolated components).
  std::vector<std::pair<uint32_t, std::array<double, 3>>> samples;
  bool cache_hit = false;
  TimeBreakdown time;  ///< cache_lookup/io/compute categories only.
  IoCounters io;
};

/// One database node of the analysis cluster: its shard of every
/// dataset's atoms (keyed by Morton range), its disks, and its local
/// semantic cache, mirroring Fig. 5. The node evaluates its part of each
/// query with `processes` data-parallel workers, fetching the boundary
/// band it does not own from adjacent nodes through the mediator-provided
/// fetch hook.
class DatabaseNode {
 public:
  /// Batched halo fetch from a peer node: returns the atoms for `codes`
  /// (sorted) of (dataset, field, timestep) owned by node `owner`, and
  /// adds the modeled cost (peer disk + LAN) to `*cost_s`. `query` is
  /// the query the fetch serves; implementations deduct its remaining
  /// deadline budget before dialing, so a halo hop never outlives the
  /// query that needs it.
  using RemoteFetchFn = std::function<Result<std::vector<Atom>>(
      const NodeQuery& query, int owner, const std::string& dataset,
      const std::string& field, int32_t timestep,
      const std::vector<uint64_t>& codes, int concurrent, double* cost_s)>;

  /// `storage_dir` empty = in-memory stores; otherwise atoms persist in
  /// FileAtomStore files under that directory.
  DatabaseNode(int id, const CostModelConfig& cost,
               std::string storage_dir = "");

  int id() const { return id_; }

  /// The partition this node serves. Defaults to `id`; a replicated
  /// deployment sets it to id / replication-factor so that every replica
  /// of a group answers for the same slice of the Morton partitioning
  /// while keeping distinct physical ids (file names, error messages).
  void set_shard(int shard) { shard_id_ = shard; }
  int shard() const { return shard_id_; }

  void set_remote_fetch(RemoteFetchFn fn) { remote_fetch_ = std::move(fn); }

  /// Whether FinishIngest() fsyncs durable stores (default true). Benches
  /// that measure modeled — not physical — I/O turn it off (--no-fsync).
  void set_fsync_on_ingest(bool value) { fsync_on_ingest_ = value; }

  /// Registers this node's shard of `dataset` (sorted atom codes).
  /// Re-registration replaces the codes — the ownership-update hook a
  /// live range move uses after cutover.
  void RegisterDataset(const std::string& dataset,
                       std::vector<uint64_t> shard_atoms);

  /// The codes currently registered for `dataset` (empty if none) — a
  /// snapshot copy, safe against concurrent re-registration.
  std::vector<uint64_t> RegisteredCodes(const std::string& dataset) const;

  /// Stores one atom of (dataset, field). Creation path; not timed.
  Status IngestAtom(const std::string& dataset, const std::string& field,
                    const Atom& atom);

  /// Marks the end of an ingest batch for (dataset, field): flushes the
  /// store to stable storage (durable mode) so acknowledged atoms survive
  /// a crash. No-op when fsync-on-ingest is disabled or the store is
  /// volatile.
  Status FinishIngest(const std::string& dataset, const std::string& field);

  /// One (dataset, field) store this node has open.
  struct StoreListing {
    std::string dataset;
    std::string field;
    uint64_t atoms = 0;
  };

  /// Every store currently open, with its atom count. A donor node uses
  /// it to tell a re-syncing replica what it can serve.
  std::vector<StoreListing> ListStores() const;

  /// Collects up to `max_atoms` atoms of (dataset, field, timestep) with
  /// z-index in [begin, end) into `*atoms`, in z order. `*next_code` is
  /// where the next page starts; `*done` is true when the range is
  /// exhausted. NotFound if this node has no such store.
  Status CollectRange(const std::string& dataset, const std::string& field,
                      int32_t timestep, uint64_t begin, uint64_t end,
                      uint64_t max_atoms, std::vector<Atom>* atoms,
                      uint64_t* next_code, bool* done) const;

  /// Point-reads `codes` (sorted) on behalf of a peer's halo gather,
  /// charging this node's disk; used by the mediator's fetch hook.
  Result<std::vector<Atom>> ServeAtoms(const std::string& dataset,
                                       const std::string& field,
                                       int32_t timestep,
                                       const std::vector<uint64_t>& codes,
                                       int concurrent, double* cost_s,
                                       uint64_t* bytes_out);

  /// Evaluates this node's part of a query (Algorithm 1 for thresholds),
  /// running its data-parallel chunks on `workers`.
  Result<NodeOutcome> Execute(const NodeQuery& query, ThreadPool* workers);

  /// Drops cache entries (benchmark hook; see SemanticCache::Evict).
  Status DropCacheEntries(const std::string& dataset, const std::string& field,
                          int32_t timestep) {
    return cache_.Evict(dataset, field, timestep);
  }

  SemanticCache& cache() { return cache_; }
  DeviceModel& hdd() { return hdd_; }

  /// Number of atoms this node stores for (dataset, field).
  uint64_t StoredAtomCount(const std::string& dataset,
                           const std::string& field) const;

  /// Every open store with the raw AtomStore pointer, for the scrubber's
  /// listing callback. Pointers stay valid for the node's lifetime
  /// (stores are never closed while the node runs).
  struct StoreHandle {
    std::string dataset;
    std::string field;
    AtomStore* store = nullptr;
  };
  std::vector<StoreHandle> OpenStores();

  /// Content digests of one store's atoms (for a Merkle build); NotFound
  /// if this node has no such store — but for a durable node the store
  /// is recovered from disk first, like CollectRange does.
  Status StoreDigestRows(const std::string& dataset, const std::string& field,
                         std::vector<AtomDigest>* rows) const;

  /// Overwrites (or inserts) the stored copy of `atom` with known-good
  /// bytes from a healthy replica, clearing any quarantine on the key.
  Status RepairAtom(const std::string& dataset, const std::string& field,
                    const Atom& atom);

  /// Looks up one atom directly in the store (no cache, no cost model):
  /// the repair driver uses it to compare a peer's copy against local
  /// bytes. NotFound when missing, kCorruption when quarantined or rotted.
  Result<Atom> ReadStoredAtom(const std::string& dataset,
                              const std::string& field,
                              const AtomKey& key) const;

 private:
  struct ChunkOutcome {
    std::vector<ThresholdPoint> points;
    std::vector<uint64_t> histogram;
    double norm_sum = 0.0;
    double norm_sum_sq = 0.0;
    double norm_max = 0.0;
    std::vector<std::pair<uint32_t, std::array<double, 3>>> samples;
    double io_s = 0.0;
    double compute_s = 0.0;
    IoCounters io;
    Status status;
  };

  /// Destination atom position (unwrapped atom coords) -> wrapped code.
  using DestMap = std::map<std::array<int64_t, 3>, uint64_t>;

  AtomStore* FindStore(const std::string& dataset,
                       const std::string& field) const;
  AtomStore* GetOrCreateStore(const std::string& dataset,
                              const std::string& field);

  /// Adds the atoms of `cover` (atom coordinates, possibly out of range)
  /// to `dest`, wrapping periodic axes and skipping beyond-wall entries.
  static void InsertCover(const GridGeometry& geometry, const Box3& cover,
                          DestMap* dest);

  /// Fetches every atom of `dest` (local reads + batched peer fetches)
  /// and assembles them into a slab covering the destinations. On
  /// failure only `out->status` is meaningful.
  Slab GatherDest(const NodeQuery& query, const DestMap& dest,
                  ChunkOutcome* out);

  /// Point-sampling worker (mode == kSample).
  ChunkOutcome ProcessSampleChunk(
      const NodeQuery& query,
      const std::vector<std::pair<uint32_t, std::array<double, 3>>>& targets);

  /// Data-parallel sampling across this node's targets.
  Result<NodeOutcome> ExecuteSample(const NodeQuery& query,
                                    ThreadPool* workers);

  /// Evaluates one worker's contiguous run of owned atoms: gathers the
  /// run plus halo into a slab (local reads from this node's store,
  /// remote reads via remote_fetch_), then applies the kernel at every
  /// owned grid point inside the query box.
  ChunkOutcome ProcessChunk(const NodeQuery& query,
                            const std::vector<uint64_t>& chunk_atoms);

  /// Threshold evaluation against the raw data (Algorithm 1 lines 29-38).
  Result<NodeOutcome> ExecuteFromRaw(const NodeQuery& query,
                                     ThreadPool* workers);

  int id_;
  int shard_id_;
  std::string storage_dir_;
  bool fsync_on_ingest_ = true;
  DeviceModel hdd_;
  TransactionManager txn_manager_;
  SemanticCache cache_;
  RemoteFetchFn remote_fetch_;

  mutable std::mutex stores_mutex_;
  std::map<std::pair<std::string, std::string>, std::unique_ptr<AtomStore>>
      stores_;
  std::map<std::string, std::vector<uint64_t>> shards_;
};

}  // namespace turbdb
