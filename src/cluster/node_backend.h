#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cluster/node.h"

namespace turbdb {

/// What the mediator needs from a database node, abstracted over *where*
/// the node runs. `LocalNode` wraps an in-process `DatabaseNode` (the
/// original single-process deployment); `RemoteNode` (remote_node.h)
/// speaks the node-scoped RPCs to a `turbdb_node` process. The mediator
/// holds one backend per node and never assumes in-process execution.
class NodeBackend {
 public:
  virtual ~NodeBackend() = default;

  virtual int id() const = 0;

  /// Human-readable identity for error messages: "node 2 (in-process)"
  /// or "node 2 (127.0.0.1:4242)".
  virtual std::string DebugName() const = 0;

  /// Registers a dataset and the shard of it this node owns. The
  /// partitioner is the mediator's; a remote backend ships the recipe
  /// (geometry, node count, strategy) and lets the node re-derive it.
  virtual Status CreateDataset(const DatasetInfo& info,
                               const MortonPartitioner& partitioner,
                               PartitionStrategy strategy) = 0;

  /// Stores a batch of atoms of (dataset, field). Creation path.
  virtual Status IngestAtoms(const std::string& dataset,
                             const std::string& field,
                             const std::vector<Atom>& atoms) = 0;

  /// Evaluates this node's part of a query. Must not hang: remote
  /// backends bound every wire wait with a deadline and return a typed
  /// error naming the node instead.
  virtual Result<NodeOutcome> Execute(const NodeQuery& query) = 0;

  /// Best-effort cancellation of an in-flight Execute registered under
  /// `query_id`. Fire-and-forget: failures are swallowed (the query may
  /// already have finished). LocalNode needs no override — the mediator
  /// shares the cancel token pointer with the in-process query directly.
  virtual void Cancel(uint64_t /*query_id*/) {}

  /// Drops cache entries of (dataset, "<raw>:<derived>") for `timestep`
  /// (-1 = all).
  virtual Status DropCacheEntries(const std::string& dataset,
                                  const std::string& field,
                                  int32_t timestep) = 0;

  /// Number of atoms stored for (dataset, field).
  virtual Result<uint64_t> StoredAtomCount(const std::string& dataset,
                                           const std::string& field) = 0;
};

/// The in-process deployment: a thin adapter over `DatabaseNode`. The
/// node and the worker pool are owned by the mediator and outlive this.
class LocalNode : public NodeBackend {
 public:
  LocalNode(DatabaseNode* node, ThreadPool* workers)
      : node_(node), workers_(workers) {}

  int id() const override { return node_->id(); }

  std::string DebugName() const override {
    return "node " + std::to_string(node_->id()) + " (in-process)";
  }

  Status CreateDataset(const DatasetInfo& info,
                       const MortonPartitioner& partitioner,
                       PartitionStrategy /*strategy*/) override {
    node_->RegisterDataset(info.name, partitioner.NodeAtoms(node_->id()));
    return Status::OK();
  }

  Status IngestAtoms(const std::string& dataset, const std::string& field,
                     const std::vector<Atom>& atoms) override {
    for (const Atom& atom : atoms) {
      TURBDB_RETURN_NOT_OK(node_->IngestAtom(dataset, field, atom));
    }
    // One fsync per batch (durable mode): atoms acknowledged here
    // survive a crash.
    return node_->FinishIngest(dataset, field);
  }

  Result<NodeOutcome> Execute(const NodeQuery& query) override {
    return node_->Execute(query, workers_);
  }

  Status DropCacheEntries(const std::string& dataset,
                          const std::string& field,
                          int32_t timestep) override {
    return node_->DropCacheEntries(dataset, field, timestep);
  }

  Result<uint64_t> StoredAtomCount(const std::string& dataset,
                                   const std::string& field) override {
    return node_->StoredAtomCount(dataset, field);
  }

 private:
  DatabaseNode* node_;
  ThreadPool* workers_;
};

}  // namespace turbdb
