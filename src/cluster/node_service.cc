#include "cluster/node_service.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <iterator>
#include <set>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "net/protocol.h"
#include "storage/merkle.h"

namespace turbdb {

namespace {

bool SameDataset(const DatasetInfo& a, const DatasetInfo& b) {
  if (a.name != b.name || !(a.geometry == b.geometry) ||
      a.num_timesteps != b.num_timesteps ||
      a.raw_fields.size() != b.raw_fields.size()) {
    return false;
  }
  for (size_t i = 0; i < a.raw_fields.size(); ++i) {
    if (a.raw_fields[i].name != b.raw_fields[i].name ||
        a.raw_fields[i].ncomp != b.raw_fields[i].ncomp) {
      return false;
    }
  }
  return true;
}

net::ClientOptions PeerClientOptions(const RemoteNodeOptions& remote) {
  net::ClientOptions client;
  client.connect_timeout_ms = remote.connect_timeout_ms;
  client.write_timeout_ms = remote.connect_timeout_ms;
  client.read_timeout_ms =
      static_cast<int>(remote.subquery_deadline_ms) + 5000;
  client.max_retries = remote.max_retries;
  client.backoff_initial_ms = remote.backoff_initial_ms;
  client.deadline_ms = remote.subquery_deadline_ms;
  return client;
}

/// Failures of the pipe rather than the request: worth trying the next
/// replica of the owning shard. Typed errors reproduce everywhere.
bool IsTransportFailure(const Status& status) {
  return status.code() == StatusCode::kUnreachable ||
         status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kUnavailable;
}

}  // namespace

NodeService::NodeService(const NodeServiceConfig& config)
    : config_(config),
      node_(config.node_id, config.cost, config.storage_dir),
      registry_(FieldRegistry::Default()),
      workers_(config.worker_threads > 0
                   ? config.worker_threads
                   : static_cast<int>(std::thread::hardware_concurrency())) {
  node_.set_fsync_on_ingest(config.fsync_ingest);
  node_.set_shard(shard());
  node_.set_remote_fetch(
      [this](const NodeQuery& query, int owner, const std::string& dataset,
             const std::string& field, int32_t timestep,
             const std::vector<uint64_t>& codes, int concurrent,
             double* cost_s) -> Result<std::vector<Atom>> {
        return FetchFromPeer(query, owner, dataset, field, timestep, codes,
                             concurrent, cost_s);
      });
  Scrubber::Options scrub;
  scrub.interval_s = config.scrub_interval_s;
  scrub.rate_mb = config.scrub_rate_mb;
  scrubber_ = std::make_unique<Scrubber>(
      std::move(scrub),
      [this]() {
        std::vector<Scrubber::StoreRef> refs;
        for (const DatabaseNode::StoreHandle& handle : node_.OpenStores()) {
          refs.push_back({handle.dataset, handle.field, handle.store});
        }
        return refs;
      },
      [this](const std::string& dataset,
             const std::string& field) -> uint64_t {
        auto repaired = RepairStoreFromSiblings(dataset, field, /*timestep=*/0,
                                                /*begin_code=*/0,
                                                /*end_code=*/0);
        if (!repaired.ok()) {
          TURBDB_LOG(Warning)
              << "node " << config_.node_id << ": anti-entropy repair of "
              << dataset << "/" << field
              << " found no healthy sibling: " << repaired.status().ToString();
          return 0;
        }
        return repaired->atoms_repaired;
      });
  scrubber_->Start();
}

net::Server::Handler NodeService::AsHandler() {
  return [this](const std::vector<uint8_t>& payload,
                const net::CallContext& ctx) {
    return Handle(payload, ctx);
  };
}

Result<const NodeService::DatasetState*> NodeService::GetDatasetState(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  auto it = datasets_.find(name);
  if (it == datasets_.end()) {
    return Status::NotFound("node " + std::to_string(config_.node_id) +
                            " has no dataset named '" + name + "'");
  }
  return const_cast<const DatasetState*>(it->second.get());
}

const Differentiator* NodeService::GetDifferentiator(
    const std::string& dataset, const GridGeometry& geometry, int order) {
  std::lock_guard<std::mutex> lock(state_mutex_);
  auto key = std::make_pair(dataset, order);
  auto it = differentiators_.find(key);
  if (it != differentiators_.end()) return it->second.get();
  auto diff = Differentiator::Create(geometry, order);
  if (!diff.ok()) return nullptr;
  auto owned = std::make_unique<Differentiator>(std::move(diff).value());
  const Differentiator* raw = owned.get();
  differentiators_.emplace(key, std::move(owned));
  return raw;
}

Result<NodeQuery> NodeService::BuildQuery(const net::NodeQuerySpec& spec) {
  TURBDB_ASSIGN_OR_RETURN(const DatasetState* state,
                          GetDatasetState(spec.dataset));
  TURBDB_ASSIGN_OR_RETURN(const int ncomp,
                          state->info.FieldNcomp(spec.raw_field));
  if (spec.mode < 0 ||
      spec.mode > static_cast<int32_t>(NodeQuery::Mode::kSample)) {
    return Status::InvalidArgument("bad node-query mode " +
                                   std::to_string(spec.mode));
  }
  if (spec.timestep < 0 || spec.timestep >= state->info.num_timesteps) {
    return Status::OutOfRange("timestep " + std::to_string(spec.timestep) +
                              " outside [0, " +
                              std::to_string(state->info.num_timesteps) + ")");
  }
  NodeQuery query;
  query.mode = static_cast<NodeQuery::Mode>(spec.mode);
  query.dataset = &state->info;
  query.partitioner = &state->partitioner;
  query.raw_field = spec.raw_field;
  query.derived_field = spec.derived_field;
  query.raw_ncomp = ncomp;
  query.fd_order = spec.fd_order;
  query.timestep = spec.timestep;
  query.box = spec.box;
  query.threshold = spec.threshold;
  query.bin_width = spec.bin_width;
  query.num_bins = spec.num_bins;
  query.k = spec.k;
  query.processes = spec.processes;
  query.options = spec.options;
  query.sample_support = spec.sample_support;
  query.targets = spec.targets;
  query.flops_per_process = spec.flops_per_process;
  query.effective_cores = spec.effective_cores;

  if (query.mode == NodeQuery::Mode::kSample) {
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto key = std::make_pair(spec.dataset, spec.sample_support);
    auto it = interpolators_.find(key);
    if (it != interpolators_.end()) {
      query.interpolator = it->second;
    } else {
      TURBDB_ASSIGN_OR_RETURN(
          LagrangeInterpolator built,
          LagrangeInterpolator::Create(state->info.geometry,
                                       spec.sample_support));
      query.interpolator =
          std::make_shared<const LagrangeInterpolator>(std::move(built));
      interpolators_.emplace(key, query.interpolator);
    }
  } else {
    query.cache_field_key = spec.raw_field + ":" + spec.derived_field;
    TURBDB_ASSIGN_OR_RETURN(query.kernel,
                            registry_.Create(spec.derived_field, ncomp));
    query.diff =
        GetDifferentiator(spec.dataset, state->info.geometry, spec.fd_order);
    if (query.diff == nullptr) {
      return Status::InvalidArgument(
          "cannot build differentiator of order " +
          std::to_string(spec.fd_order));
    }
  }
  return query;
}

NodeService::PeerChannel* NodeService::GetPeerChannel(int physical) {
  std::lock_guard<std::mutex> lock(peers_mutex_);
  auto it = peers_.find(physical);
  if (it == peers_.end()) {
    auto created = std::make_unique<PeerChannel>();
    const NodeAddress& address =
        config_.peers.nodes[static_cast<size_t>(physical)];
    created->client = std::make_unique<net::Client>(
        address.host, address.port, PeerClientOptions(config_.remote));
    it = peers_.emplace(physical, std::move(created)).first;
  }
  return it->second.get();
}

Result<std::vector<Atom>> NodeService::FetchFromPeer(
    const NodeQuery& query, int owner, const std::string& dataset,
    const std::string& field, int32_t timestep,
    const std::vector<uint64_t>& codes, int concurrent, double* cost_s) {
  // `owner` is a shard id; any replica of that shard can serve its halo
  // atoms, so a dead primary is a failover, not an error.
  const int replication = std::max(1, config_.replication_factor);
  const int num_shards = static_cast<int>(config_.peers.size()) / replication;
  if (owner < 0 || owner >= num_shards) {
    return Status::InvalidArgument("no such shard " + std::to_string(owner));
  }
  if (owner == shard()) {
    return Status::Internal("halo fetch routed to the local node");
  }
  net::NodeFetchAtomsRequest request;
  request.dataset = dataset;
  request.field = field;
  request.timestep = timestep;
  request.concurrent = concurrent;
  request.codes = codes;
  // Forward the remaining budget so the peer sizes its work to it; an
  // already-expired budget fails typed here instead of paying a dial.
  if (query.deadline != std::chrono::steady_clock::time_point{}) {
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            query.deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Status::DeadlineExceeded(
          "query budget exhausted before the halo fetch from shard " +
          std::to_string(owner));
    }
    request.rpc.deadline_ms = static_cast<uint64_t>(remaining.count());
  }
  Status last;
  for (int r = 0; r < replication; ++r) {
    const int physical = owner * replication + r;
    if (physical == config_.node_id) continue;
    PeerChannel* channel = GetPeerChannel(physical);
    Result<net::NodeFetchAtomsReply> reply = Status::OK();
    {
      std::lock_guard<std::mutex> lock(channel->mutex);
      reply = channel->client->NodeFetchAtoms(request);
    }
    if (reply.ok()) {
      if (cost_s != nullptr) {
        *cost_s +=
            reply->cost_s + config_.cost.lan.TransferCost(reply->bytes_out);
      }
      return std::move(reply->atoms);
    }
    last = Status(reply.status().code(),
                  "halo fetch from node " + std::to_string(physical) + ": " +
                      reply.status().message());
    // A corrupt store on the peer is as failover-worthy as a dead peer:
    // its replica sibling holds the same atoms, uncorrupted. The owner
    // heals itself (scrub / read-repair); this read just routes around.
    if (!IsTransportFailure(last) &&
        last.code() != StatusCode::kCorruption) {
      return last;
    }
    if (r + 1 < replication) {
      TURBDB_LOG(Warning) << "node " << config_.node_id
                          << ": halo fetch failing over off node " << physical
                          << ": " << last.ToString();
    }
  }
  return last;
}

std::vector<uint8_t> NodeService::Handle(const std::vector<uint8_t>& payload,
                                         const net::CallContext& ctx) {
  auto header = net::PeekRequestHeader(payload);
  if (!header.ok()) return net::EncodeErrorResponse(header.status());
  Result<std::vector<uint8_t>> response = Status::OK();
  switch (header->type) {
    case net::MsgType::kNodeCreateDatasetRequest:
      response = HandleCreateDataset(payload);
      break;
    case net::MsgType::kNodeIngestRequest:
      response = HandleIngest(payload);
      break;
    case net::MsgType::kNodeExecuteRequest:
      response = HandleExecute(payload, ctx);
      break;
    case net::MsgType::kNodeFetchAtomsRequest:
      response = HandleFetchAtoms(payload);
      break;
    case net::MsgType::kNodeDropCacheRequest:
      response = HandleDropCache(payload);
      break;
    case net::MsgType::kNodeStatsRequest:
      response = HandleStats(payload);
      break;
    case net::MsgType::kNodeSyncRangeRequest:
      response = HandleSyncRange(payload);
      break;
    case net::MsgType::kNodeListStoresRequest:
      response = HandleListStores(payload);
      break;
    case net::MsgType::kMembershipUpdateRequest:
      response = HandleMembershipUpdate(payload);
      break;
    case net::MsgType::kBeginHandoffRequest:
      response = HandleBeginHandoff(payload);
      break;
    case net::MsgType::kCutoverRequest:
      response = HandleCutover(payload);
      break;
    case net::MsgType::kNodeMerkleRequest:
      response = HandleMerkle(payload);
      break;
    case net::MsgType::kNodeScrubRequest:
      response = HandleScrub(payload);
      break;
    case net::MsgType::kNodeRepairRangeRequest:
      response = HandleRepairRange(payload);
      break;
    default:
      response = Status::NotSupported(
          "turbdb_node does not serve request type " +
          std::to_string(static_cast<int>(header->type)) +
          " (query RPCs go to the mediator)");
      break;
  }
  if (!response.ok()) return net::EncodeErrorResponse(response.status());
  return std::move(response).value();
}

Status NodeService::RegisterDatasetInternal(const DatasetInfo& info,
                                            int32_t num_nodes,
                                            int32_t strategy) {
  if (strategy < 0 ||
      strategy > static_cast<int32_t>(PartitionStrategy::kZSlabs)) {
    return Status::InvalidArgument("bad partition strategy " +
                                   std::to_string(strategy));
  }
  TURBDB_RETURN_NOT_OK(info.geometry.Validate());
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto it = datasets_.find(info.name);
    if (it != datasets_.end()) {
      // Identical re-registration is a retried RPC, not a conflict.
      if (SameDataset(it->second->info, info)) return Status::OK();
      return Status::AlreadyExists("dataset '" + info.name +
                                   "' already exists with a different shape");
    }
  }
  TURBDB_ASSIGN_OR_RETURN(
      MortonPartitioner partitioner,
      MortonPartitioner::Create(info.geometry, num_nodes,
                                static_cast<PartitionStrategy>(strategy)));
  auto state = std::make_unique<DatasetState>(
      DatasetState{info, std::move(partitioner)});
  std::lock_guard<std::mutex> lock(state_mutex_);
  // This shard's effective atoms under the installed view; the static
  // assignment when none is installed. A joined shard (id beyond the
  // base partitioning) owns nothing until a rebalance re-homes ranges
  // to it — OwnedAtoms returns empty rather than indexing out of range
  // the way MortonPartitioner::NodeAtoms would.
  node_.RegisterDataset(
      info.name, OwnedAtoms(state->partitioner,
                            view_ != nullptr ? *view_ : MembershipView{},
                            shard()));
  datasets_.emplace(info.name, std::move(state));
  return Status::OK();
}

Result<std::vector<uint8_t>> NodeService::HandleCreateDataset(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::NodeCreateDatasetRequest request,
                          net::DecodeNodeCreateDatasetRequest(payload));
  if (request.node_id != shard()) {
    return Status::InvalidArgument(
        "shard " + std::to_string(request.node_id) +
        " addressed to node " + std::to_string(config_.node_id) +
        ", which serves shard " + std::to_string(shard()));
  }
  TURBDB_RETURN_NOT_OK(RegisterDatasetInternal(request.info, request.num_nodes,
                                               request.strategy));
  return net::EncodeAckResponse(net::MsgType::kNodeCreateDatasetResponse);
}

Status NodeService::RegisterDatasetSpec(
    const net::WireDatasetRegistration& reg) {
  return RegisterDatasetInternal(reg.info, reg.num_nodes, reg.strategy);
}

Result<std::vector<uint8_t>> NodeService::HandleIngest(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::NodeIngestRequest request,
                          net::DecodeNodeIngestRequest(payload));
  for (const Atom& atom : request.atoms) {
    Status status = node_.IngestAtom(request.dataset, request.field, atom);
    if (!status.ok() &&
        !(request.skip_existing &&
          status.code() == StatusCode::kAlreadyExists)) {
      return status;
    }
    // Apply-then-log: atoms the store accepted are framed into the WAL
    // (duplicates skipped above never are). The log, not the store file,
    // is what the ack below promises — a kill -9 between here and the
    // store fsync replays from it on restart.
    if (status.ok() && wal_ != nullptr) {
      TURBDB_RETURN_NOT_OK(
          wal_->Append(request.dataset, request.field, atom));
    }
  }
  // Durability order: the log is synced before the batch is acknowledged
  // (per the fsync policy), then the store flush runs. A crash between
  // the two leaves acknowledged atoms recoverable from the log.
  if (wal_ != nullptr) TURBDB_RETURN_NOT_OK(wal_->Sync());
  TURBDB_RETURN_NOT_OK(node_.FinishIngest(request.dataset, request.field));
  TURBDB_RETURN_NOT_OK(WalBatchEnd());
  return net::EncodeAckResponse(net::MsgType::kNodeIngestResponse);
}

Status NodeService::WalBatchEnd() {
  if (wal_ == nullptr ||
      wal_->pending_bytes() < config_.wal_checkpoint_bytes) {
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(wal_mutex_);
  if (wal_->pending_bytes() < config_.wal_checkpoint_bytes) {
    return Status::OK();
  }
  // Checkpoint: every store the log may cover is flushed to stable
  // storage, after which the log's records are redundant and it resets.
  for (const DatabaseNode::StoreListing& listing : node_.ListStores()) {
    TURBDB_RETURN_NOT_OK(node_.FinishIngest(listing.dataset, listing.field));
  }
  return wal_->Truncate();
}

Status NodeService::RecoverWal() {
  if (config_.storage_dir.empty() || !config_.enable_wal) return Status::OK();
  const std::string path = config_.storage_dir + "/node" +
                           std::to_string(config_.node_id) + ".wal";
  TURBDB_ASSIGN_OR_RETURN(wal_,
                          WriteAheadLog::Open(path, config_.wal_fsync));
  if (wal_->pending_records() == 0) return Status::OK();
  TURBDB_LOG(Warning) << "node " << config_.node_id << ": replaying "
                      << wal_->pending_records()
                      << " write-ahead-log records into the stores";
  std::set<std::pair<std::string, std::string>> touched;
  TURBDB_RETURN_NOT_OK(
      wal_->Replay([&](const WriteAheadLog::Record& record) -> Status {
        Status status =
            node_.IngestAtom(record.dataset, record.field, record.atom);
        // Already-persisted atoms are the expected case for the prefix
        // of the log the store flush did cover — replay is idempotent.
        if (!status.ok() &&
            status.code() != StatusCode::kAlreadyExists) {
          return status;
        }
        touched.insert({record.dataset, record.field});
        return Status::OK();
      }));
  for (const auto& df : touched) {
    TURBDB_RETURN_NOT_OK(node_.FinishIngest(df.first, df.second));
  }
  return wal_->Truncate();
}

Status NodeService::ApplyView(const MembershipView& view) {
  auto installed = std::make_shared<const MembershipView>(view);
  std::vector<std::string> evict;
  {
    std::lock_guard<std::mutex> lock(state_mutex_);
    if (view_ != nullptr && view.generation <= view_->generation) {
      return Status::OK();  // Stale or duplicate push; keep the newer view.
    }
    for (const auto& entry : datasets_) {
      const MortonPartitioner& partitioner = entry.second->partitioner;
      std::vector<uint64_t> owned = OwnedAtoms(partitioner, view, shard());
      if (owned == node_.RegisteredCodes(entry.first)) continue;
      node_.RegisterDataset(entry.first, std::move(owned));
      ownership_changed_gen_[entry.first] = view.generation;
      evict.push_back(entry.first);
    }
    view_ = installed;
  }
  // Cached point sets were computed under the old ownership; a query
  // evaluated after cutover must not be answered from them.
  for (const std::string& dataset : evict) {
    TURBDB_RETURN_NOT_OK(node_.DropCacheEntries(dataset, "", -1));
  }
  if (!evict.empty()) {
    TURBDB_LOG(Info) << "node " << config_.node_id << ": membership view g"
                     << view.generation << " re-homed ownership of "
                     << evict.size() << " dataset(s) on shard " << shard();
  }
  return Status::OK();
}

uint64_t NodeService::generation() const {
  std::lock_guard<std::mutex> lock(state_mutex_);
  return view_ != nullptr ? view_->generation : 0;
}

Result<std::vector<uint8_t>> NodeService::HandleExecute(
    const std::vector<uint8_t>& payload, const net::CallContext& ctx) {
  TURBDB_ASSIGN_OR_RETURN(net::NodeExecuteRequest request,
                          net::DecodeNodeExecuteRequest(payload));
  TURBDB_ASSIGN_OR_RETURN(NodeQuery query, BuildQuery(request.spec));
  {
    // Generation fence: a request routed under a view older than the one
    // that last changed this shard's ownership of the dataset would
    // evaluate the wrong atoms — fail typed so the mediator refreshes
    // its view and re-routes. Requests without a generation (v6 clients
    // that have not seen a view, in-process paths) pass unfenced.
    std::lock_guard<std::mutex> lock(state_mutex_);
    auto it = ownership_changed_gen_.find(request.spec.dataset);
    if (request.rpc.generation != 0 && it != ownership_changed_gen_.end() &&
        request.rpc.generation < it->second) {
      return Status::WrongOwner(
          "node " + std::to_string(config_.node_id) + ": ownership of '" +
          request.spec.dataset + "' changed at generation " +
          std::to_string(it->second) + "; request was routed at generation " +
          std::to_string(request.rpc.generation));
    }
    query.view = view_;
  }
  // Thread the transport-level budget into the evaluation: the workers
  // poll the deadline and the cancellation token between atoms, and the
  // remaining budget rides along on peer halo fetches.
  if (!ctx.deadline.infinite()) {
    query.deadline = std::chrono::steady_clock::now() +
                     std::chrono::milliseconds(ctx.deadline.PollTimeoutMs());
  }
  query.cancel = ctx.cancelled.get();
  query.query_id = request.rpc.query_id;
  TURBDB_ASSIGN_OR_RETURN(NodeOutcome outcome,
                          node_.Execute(query, &workers_));
  net::NodeResult result;
  result.points = std::move(outcome.points);
  result.histogram = std::move(outcome.histogram);
  result.norm_sum = outcome.norm_sum;
  result.norm_sum_sq = outcome.norm_sum_sq;
  result.norm_max = outcome.norm_max;
  result.samples = std::move(outcome.samples);
  result.cache_hit = outcome.cache_hit;
  result.time = outcome.time;
  result.io = outcome.io;
  if (request.stream && ctx.emit != nullptr) {
    // Streamed sub-reply: the points leave as bounded kThresholdChunk
    // frames (each reserved against the node server's result budget),
    // the terminating NodeResult carries only the counters — so a
    // sub-reply is never limited by the frame cap and the encoded bytes
    // in flight stay bounded.
    const uint64_t slice = ctx.chunk_points == 0 ? 32768 : ctx.chunk_points;
    uint64_t seq = 0;
    uint64_t total = 0;
    size_t begin = 0;
    while (begin < result.points.size()) {
      const size_t end = std::min(result.points.size(),
                                  begin + static_cast<size_t>(slice));
      net::ThresholdChunk chunk;
      chunk.seq = seq++;
      chunk.points.assign(
          std::make_move_iterator(result.points.begin() +
                                  static_cast<ptrdiff_t>(begin)),
          std::make_move_iterator(result.points.begin() +
                                  static_cast<ptrdiff_t>(end)));
      begin = end;
      total += chunk.points.size();
      chunk.total_points = total;
      ResourceGovernor::ByteReservation reservation;
      if (ctx.governor != nullptr) {
        TURBDB_RETURN_NOT_OK(ctx.governor->ReserveBlocking(
            chunk.points.size() * 20 + 64, &reservation,
            ctx.cancelled.get()));
      }
      TURBDB_RETURN_NOT_OK(ctx.emit(net::EncodeThresholdChunk(chunk)));
    }
    result.points.clear();
  }
  return net::EncodeNodeExecuteResponse(result);
}

Result<std::vector<uint8_t>> NodeService::HandleFetchAtoms(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::NodeFetchAtomsRequest request,
                          net::DecodeNodeFetchAtomsRequest(payload));
  net::NodeFetchAtomsReply reply;
  TURBDB_ASSIGN_OR_RETURN(
      reply.atoms,
      node_.ServeAtoms(request.dataset, request.field, request.timestep,
                       request.codes, request.concurrent, &reply.cost_s,
                       &reply.bytes_out));
  return net::EncodeNodeFetchAtomsResponse(reply);
}

Result<std::vector<uint8_t>> NodeService::HandleDropCache(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::NodeDropCacheRequest request,
                          net::DecodeNodeDropCacheRequest(payload));
  TURBDB_RETURN_NOT_OK(node_.DropCacheEntries(request.dataset, request.field,
                                              request.timestep));
  return net::EncodeAckResponse(net::MsgType::kNodeDropCacheResponse);
}

Result<std::vector<uint8_t>> NodeService::HandleStats(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::NodeStatsRequest request,
                          net::DecodeNodeStatsRequest(payload));
  net::NodeStatsReply reply;
  reply.node_id = config_.node_id;
  if (request.dataset.empty() && request.field.empty()) {
    // The node-wide row: atoms across every open store.
    for (const DatabaseNode::StoreListing& listing : node_.ListStores()) {
      reply.stored_atoms += listing.atoms;
    }
  } else {
    reply.stored_atoms = node_.StoredAtomCount(request.dataset, request.field);
  }
  reply.epoch = config_.epoch;
  if (wal_ != nullptr) {
    reply.wal_pending_records = wal_->pending_records();
    reply.wal_pending_bytes = wal_->pending_bytes();
  }
  reply.generation = generation();
  const Scrubber::Totals scrub = scrubber_->totals();
  reply.scrub_passes = scrub.passes;
  reply.scrub_atoms_verified = scrub.atoms_verified;
  reply.scrub_atoms_corrupt = scrub.atoms_corrupt;
  reply.scrub_atoms_repaired = scrub.atoms_repaired;
  for (const DatabaseNode::StoreHandle& handle : node_.OpenStores()) {
    reply.atoms_quarantined += handle.store->QuarantinedCount();
  }
  return net::EncodeNodeStatsResponse(reply);
}

Result<std::vector<uint8_t>> NodeService::HandleMembershipUpdate(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::MembershipUpdateRequest request,
                          net::DecodeMembershipUpdateRequest(payload));
  TURBDB_RETURN_NOT_OK(ApplyView(request.view));
  return net::EncodeAckResponse(net::MsgType::kMembershipUpdateResponse);
}

Result<std::vector<uint8_t>> NodeService::HandleBeginHandoff(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::BeginHandoffRequest request,
                          net::DecodeBeginHandoffRequest(payload));
  // The double-read window opens: the donor keeps serving [begin, end)
  // while the copy runs; the recipient accepts skip-existing ingests for
  // it. Neither needs new state for that — the announcement exists so
  // both ends log the window and operators can correlate.
  TURBDB_LOG(Info) << "node " << config_.node_id << ": handoff of ["
                   << request.begin << ", " << request.end << ") from shard "
                   << request.from_shard << " to shard " << request.to_shard
                   << " beginning";
  return net::EncodeAckResponse(net::MsgType::kBeginHandoffResponse);
}

Result<std::vector<uint8_t>> NodeService::HandleCutover(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::CutoverRequest request,
                          net::DecodeCutoverRequest(payload));
  TURBDB_RETURN_NOT_OK(ApplyView(request.view));
  TURBDB_LOG(Info) << "node " << config_.node_id << ": cutover of ["
                   << request.begin << ", " << request.end << ") to shard "
                   << request.to_shard << " applied at generation "
                   << request.view.generation;
  return net::EncodeAckResponse(net::MsgType::kCutoverResponse);
}

Result<std::vector<uint8_t>> NodeService::HandleSyncRange(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::NodeSyncRangeRequest request,
                          net::DecodeNodeSyncRangeRequest(payload));
  const uint64_t end =
      request.end_code == 0 ? UINT64_MAX : request.end_code;
  const uint64_t max_atoms = request.max_atoms == 0 ? 512 : request.max_atoms;
  net::NodeSyncRangeReply reply;
  TURBDB_RETURN_NOT_OK(node_.CollectRange(
      request.dataset, request.field, request.timestep, request.begin_code,
      end, max_atoms, &reply.atoms, &reply.next_code, &reply.done));
  return net::EncodeNodeSyncRangeResponse(reply);
}

Result<std::vector<uint8_t>> NodeService::HandleListStores(
    const std::vector<uint8_t>& payload) {
  TURBDB_RETURN_NOT_OK(net::DecodeNodeListStoresRequest(payload).status());
  net::NodeListStoresReply reply;
  for (const DatabaseNode::StoreListing& listing : node_.ListStores()) {
    net::NodeStoreInfo info;
    info.dataset = listing.dataset;
    info.field = listing.field;
    info.atoms = listing.atoms;
    reply.stores.push_back(std::move(info));
  }
  return net::EncodeNodeListStoresResponse(reply);
}

Result<std::vector<uint8_t>> NodeService::HandleMerkle(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::NodeMerkleRequest request,
                          net::DecodeNodeMerkleRequest(payload));
  net::NodeMerkleReply reply;
  reply.node_id = config_.node_id;
  reply.leaf_shift = request.leaf_shift;
  std::vector<AtomDigest> rows;
  Status status = node_.StoreDigestRows(request.dataset, request.field, &rows);
  // An unknown store answers as an empty tree (root 0): anti-entropy
  // between replicas where one side has not opened the store yet is a
  // full divergence, not an error.
  if (!status.ok() && status.code() != StatusCode::kNotFound) return status;
  const MerkleTree tree = BuildMerkleTree(rows, request.leaf_shift);
  reply.root = tree.root;
  reply.leaves.reserve(tree.leaves.size());
  for (const MerkleLeaf& leaf : tree.leaves) {
    net::WireMerkleLeaf wire;
    wire.timestep = leaf.timestep;
    wire.leaf = leaf.leaf;
    wire.digest = leaf.digest;
    wire.atoms = leaf.atoms;
    reply.leaves.push_back(wire);
  }
  return net::EncodeNodeMerkleResponse(reply);
}

Result<std::vector<uint8_t>> NodeService::HandleScrub(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::NodeScrubRequest request,
                          net::DecodeNodeScrubRequest(payload));
  if (request.trigger) (void)scrubber_->RunPass();
  net::NodeScrubReply reply;
  reply.node_id = config_.node_id;
  const Scrubber::Totals totals = scrubber_->totals();
  reply.passes = totals.passes;
  reply.atoms_verified = totals.atoms_verified;
  reply.atoms_corrupt = totals.atoms_corrupt;
  reply.atoms_repaired = totals.atoms_repaired;
  reply.last_pass_unix_ms = totals.last_pass_unix_ms;
  for (const Scrubber::StoreStats& store : scrubber_->Snapshot()) {
    net::ScrubStoreRow row;
    row.dataset = store.dataset;
    row.field = store.field;
    row.atoms_verified = store.atoms_verified;
    row.atoms_corrupt = store.atoms_corrupt;
    row.atoms_repaired = store.atoms_repaired;
    row.atoms_quarantined = store.atoms_quarantined;
    row.bytes_verified = store.bytes_verified;
    row.passes = store.passes;
    row.merkle_root = store.merkle_root;
    reply.stores.push_back(std::move(row));
  }
  return net::EncodeNodeScrubResponse(reply);
}

Result<std::vector<uint8_t>> NodeService::HandleRepairRange(
    const std::vector<uint8_t>& payload) {
  TURBDB_ASSIGN_OR_RETURN(net::NodeRepairRangeRequest request,
                          net::DecodeNodeRepairRangeRequest(payload));
  TURBDB_ASSIGN_OR_RETURN(
      net::NodeRepairRangeReply reply,
      RepairStoreFromSiblings(request.dataset, request.field, request.timestep,
                              request.begin_code, request.end_code));
  return net::EncodeNodeRepairRangeResponse(reply);
}

Result<net::NodeRepairRangeReply> NodeService::RepairStoreFromSiblings(
    const std::string& dataset, const std::string& field, int32_t timestep,
    uint64_t begin_code, uint64_t end_code) {
  net::NodeRepairRangeReply reply;
  reply.node_id = config_.node_id;
  // The local tree; an unopened store diffs as empty (pull everything).
  std::vector<AtomDigest> rows;
  Status status = node_.StoreDigestRows(dataset, field, &rows);
  if (!status.ok() && status.code() != StatusCode::kNotFound) return status;
  const MerkleTree mine = BuildMerkleTree(rows);

  const int replication = std::max(1, config_.replication_factor);
  // Replica siblings are grouped by physical id, not the logical shard
  // override: group g is physicals [g*R, (g+1)*R).
  const int group = config_.node_id / replication;
  Status last = Status::NotFound(
      "node " + std::to_string(config_.node_id) +
      " has no replica siblings to repair from (replication factor " +
      std::to_string(replication) + ")");
  for (int r = 0; r < replication; ++r) {
    const int physical = group * replication + r;
    if (physical == config_.node_id) continue;
    if (physical < 0 || physical >= static_cast<int>(config_.peers.size())) {
      continue;
    }
    PeerChannel* channel = GetPeerChannel(physical);

    net::NodeMerkleRequest merkle_request;
    merkle_request.dataset = dataset;
    merkle_request.field = field;
    merkle_request.leaf_shift = kDefaultMerkleLeafShift;
    Result<net::NodeMerkleReply> peer_tree = Status::OK();
    {
      std::lock_guard<std::mutex> lock(channel->mutex);
      peer_tree = channel->client->NodeMerkle(merkle_request);
    }
    if (!peer_tree.ok()) {
      last = Status(peer_tree.status().code(),
                    "merkle fetch from node " + std::to_string(physical) +
                        ": " + peer_tree.status().message());
      continue;  // Sick sibling; try the next one.
    }

    MerkleTree theirs;
    theirs.leaf_shift = peer_tree->leaf_shift;
    theirs.root = peer_tree->root;
    theirs.leaves.reserve(peer_tree->leaves.size());
    for (const net::WireMerkleLeaf& wire : peer_tree->leaves) {
      MerkleLeaf leaf;
      leaf.timestep = wire.timestep;
      leaf.leaf = wire.leaf;
      leaf.digest = wire.digest;
      leaf.atoms = wire.atoms;
      theirs.leaves.push_back(leaf);
    }

    std::vector<MerkleRange> diverged = DiffMerkleTrees(mine, theirs);
    // Optional confinement to the requested [begin_code, end_code) of
    // one timestep (begin == end == 0 repairs whatever the diff found).
    if (!(begin_code == 0 && end_code == 0)) {
      std::vector<MerkleRange> confined;
      for (MerkleRange& range : diverged) {
        if (range.timestep != timestep) continue;
        range.begin = std::max(range.begin, begin_code);
        range.end = std::min(range.end, end_code);
        if (range.begin < range.end) confined.push_back(range);
      }
      diverged = std::move(confined);
    }
    reply.ranges_diverged = diverged.size();

    for (const MerkleRange& range : diverged) {
      net::NodeSyncRangeRequest sync;
      sync.dataset = dataset;
      sync.field = field;
      sync.timestep = range.timestep;
      sync.begin_code = range.begin;
      sync.end_code = range.end;
      sync.max_atoms = 256;
      bool done = false;
      while (!done) {
        Result<net::NodeSyncRangeReply> page = Status::OK();
        {
          std::lock_guard<std::mutex> lock(channel->mutex);
          page = channel->client->NodeSyncRange(sync);
        }
        // Paging the sibling's copy failed mid-repair: surface it (what
        // has been rewritten so far is already durable and re-verified
        // by the next pass — repair is idempotent).
        TURBDB_RETURN_NOT_OK(page.status());
        for (const Atom& atom : page->atoms) {
          ++reply.atoms_examined;
          Result<Atom> local =
              node_.ReadStoredAtom(dataset, field, atom.key);
          const bool rewrite =
              !local.ok() || local->width != atom.width ||
              local->ncomp != atom.ncomp || local->data != atom.data;
          if (!rewrite) continue;
          TURBDB_RETURN_NOT_OK(node_.RepairAtom(dataset, field, atom));
          ++reply.atoms_repaired;
        }
        done = page->done;
        sync.begin_code = page->next_code;
      }
    }

    if (reply.atoms_repaired > 0) {
      TURBDB_LOG(Warning) << "node " << config_.node_id << ": repaired "
                          << reply.atoms_repaired << " atom(s) of " << dataset
                          << "/" << field << " from node " << physical << " ("
                          << reply.ranges_diverged << " divergent range(s))";
    }
    // One healthy sibling is enough; recompute the local root so the
    // caller can assert convergence against the peer's.
    rows.clear();
    status = node_.StoreDigestRows(dataset, field, &rows);
    if (!status.ok() && status.code() != StatusCode::kNotFound) return status;
    reply.root = BuildMerkleTree(rows).root;
    return reply;
  }
  if (replication < 2) {
    // Unreplicated: nothing to diff against. Answer with the local root
    // rather than failing — the scrub RPC path treats this as "healthy
    // by definition of having no peer".
    reply.root = mine.root;
    return reply;
  }
  return last;
}

}  // namespace turbdb
