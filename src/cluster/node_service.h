#pragma once

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "cluster/node.h"
#include "cluster/topology.h"
#include "common/thread_pool.h"
#include "fields/field_registry.h"
#include "membership/view.h"
#include "net/client.h"
#include "net/server.h"
#include "storage/scrub.h"
#include "storage/wal.h"

namespace turbdb {

/// Configuration of one turbdb_node process.
struct NodeServiceConfig {
  int node_id = 0;  ///< Physical id (index into `peers`).
  CostModelConfig cost;
  /// Empty = in-memory atom stores; otherwise FileAtomStore files live
  /// under this directory.
  std::string storage_dir;
  /// Threads executing this node's data-parallel chunks; 0 = hardware
  /// concurrency.
  int worker_threads = 0;
  /// Peer addresses (entry i = physical node i) for direct halo fetches.
  /// The entry of this node itself is ignored.
  ClusterTopology peers;
  /// Transport policy for peer fetches.
  RemoteNodeOptions remote;
  /// Replica-group width R: physical nodes [g*R, (g+1)*R) all serve
  /// shard g. This node's shard is node_id / R; halo fetches address a
  /// shard and fail over across its replicas. 1 = unreplicated.
  int replication_factor = 1;
  /// fsync each (dataset, field) store at ingest-batch completion
  /// (durable mode). --no-fsync turns it off for benches.
  bool fsync_ingest = true;
  /// This process's incarnation counter (bumped at start, persisted
  /// beside the storage dir); reported through Hello and Stats.
  uint64_t epoch = 0;
  /// Logical shard override for nodes admitted into a running cluster
  /// (v6 join). -1 = derive from node_id / replication_factor; joined
  /// nodes get a fresh shard id from the mediator that the static
  /// formula cannot produce.
  int shard_override = -1;
  /// Per-node write-ahead log (durable mode only; ignored when
  /// storage_dir is empty). Each acknowledged ingest batch is logged and
  /// synced per `wal_fsync` before the ack, so a kill -9 mid-batch or a
  /// torn store tail replays from the log on restart.
  bool enable_wal = true;
  WalFsyncPolicy wal_fsync = WalFsyncPolicy::kEveryBatch;
  /// Checkpoint threshold: once the log holds this many payload bytes,
  /// the batch-end path fsyncs every store and truncates the log.
  uint64_t wal_checkpoint_bytes = 64ull << 20;
  /// Background scrub cadence in seconds; 0 disables the thread (scrub
  /// passes then run only via the NodeScrub RPC).
  int scrub_interval_s = 0;
  /// Scrub read-rate budget in MB/s; 0 = unthrottled.
  int scrub_rate_mb = 0;
};

/// Serves one `DatabaseNode` over the node-scoped RPCs: the process body
/// of `tools/turbdb_node`. Mirrors the resolution work the mediator does
/// for in-process nodes — dataset catalog, partitioner, kernel,
/// differentiator and interpolator are rebuilt here from the names and
/// parameters in each request, so a remote sub-query executes exactly
/// the `NodeQuery` its in-process twin would.
///
/// Halo exchange goes node-to-node: a sub-query needing boundary atoms
/// owned by a peer dials that peer's NodeFetchAtoms directly (no
/// mediator round-trip), adding the modeled LAN cost locally just as the
/// in-process fetch hook does.
class NodeService {
 public:
  explicit NodeService(const NodeServiceConfig& config);

  /// The request handler to mount on a net::Server. The service must
  /// outlive the server.
  net::Server::Handler AsHandler();

  /// Decodes and executes one node-scoped request payload. `ctx` carries
  /// the request's deadline (derived from the frame's budget field) and
  /// cancellation token; Execute threads both into the evaluation loop.
  std::vector<uint8_t> Handle(const std::vector<uint8_t>& payload,
                              const net::CallContext& ctx);

  DatabaseNode& node() { return node_; }
  int node_id() const { return config_.node_id; }

  /// The logical shard this node serves: the join-time override when
  /// set, else node_id / replication factor.
  int shard() const {
    return config_.shard_override >= 0
               ? config_.shard_override
               : config_.node_id / std::max(1, config_.replication_factor);
  }

  /// Opens the write-ahead log and replays any records it holds into the
  /// stores (idempotent: atoms already persisted are skipped), then
  /// truncates it. Call once after construction, before serving and
  /// before any epoch-driven re-sync — the log is the source of truth
  /// for acknowledged-but-torn batches. No-op for in-memory or
  /// WAL-disabled configs.
  Status RecoverWal();

  /// Installs a membership view: datasets whose effective ownership of
  /// this shard changed are re-registered against the view and their
  /// semantic-cache entries dropped, and subsequent executes carrying an
  /// older generation for those datasets fail typed with kWrongOwner.
  /// Stale views (generation below the installed one) are ignored.
  Status ApplyView(const MembershipView& view);

  /// Registers a dataset from its wire form without the node_id check of
  /// the CreateDataset RPC — the self-registration path of a node that
  /// joined a running cluster and received the catalog in its JoinReply.
  Status RegisterDatasetSpec(const net::WireDatasetRegistration& reg);

  /// Generation of the installed membership view (0 = none installed).
  uint64_t generation() const;

  /// The node's background scrubber (always constructed; the thread only
  /// runs when scrub_interval_s > 0). Tests trigger passes through it.
  Scrubber& scrubber() { return *scrubber_; }

 private:
  struct DatasetState {
    DatasetInfo info;
    MortonPartitioner partitioner;
  };

  /// One serialized channel per peer (net::Client is not thread-safe;
  /// worker chunks of one sub-query may fetch concurrently).
  struct PeerChannel {
    std::mutex mutex;
    std::unique_ptr<net::Client> client;
  };

  Result<const DatasetState*> GetDatasetState(const std::string& name) const;
  Result<NodeQuery> BuildQuery(const net::NodeQuerySpec& spec);

  /// Shared by HandleCreateDataset and RegisterDatasetSpec: builds the
  /// partitioner and registers this shard's effective atoms under the
  /// installed view (static assignment when none is installed).
  Status RegisterDatasetInternal(const DatasetInfo& info, int32_t num_nodes,
                                 int32_t strategy);

  /// Batch-end durability: syncs the WAL per policy, then — when the log
  /// has outgrown the checkpoint threshold — fsyncs every store and
  /// truncates it.
  Status WalBatchEnd();
  const Differentiator* GetDifferentiator(const std::string& dataset,
                                          const GridGeometry& geometry,
                                          int order);

  /// Batched halo fetch from a replica of shard `owner`, bounded by
  /// whatever remains of `query`'s deadline budget (a fetch for an
  /// already-expired query fails typed without dialing).
  Result<std::vector<Atom>> FetchFromPeer(
      const NodeQuery& query, int owner, const std::string& dataset,
      const std::string& field, int32_t timestep,
      const std::vector<uint64_t>& codes, int concurrent, double* cost_s);

  /// The serialized channel to physical peer node `physical` (created on
  /// first use).
  PeerChannel* GetPeerChannel(int physical);

  Result<std::vector<uint8_t>> HandleCreateDataset(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleIngest(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleExecute(
      const std::vector<uint8_t>& payload, const net::CallContext& ctx);
  Result<std::vector<uint8_t>> HandleFetchAtoms(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleDropCache(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleStats(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleSyncRange(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleListStores(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleMembershipUpdate(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleBeginHandoff(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleCutover(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleMerkle(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleScrub(
      const std::vector<uint8_t>& payload);
  Result<std::vector<uint8_t>> HandleRepairRange(
      const std::vector<uint8_t>& payload);

  /// Anti-entropy driver: fetches a replica sibling's Merkle tree for
  /// (dataset, field), diffs it against the local one, pages only the
  /// divergent z-ranges over SyncRange, and rewrites atoms that are
  /// missing, quarantined or byte-different locally. Stops after the
  /// first sibling that answers. `begin_code == end_code == 0` means
  /// "whatever the diff finds"; otherwise the repair is confined to
  /// [begin_code, end_code) of `timestep`. Repair is pull-only: atoms
  /// this node holds that the sibling lacks are left alone (the
  /// sibling's own scrubber pulls them in the other direction).
  Result<net::NodeRepairRangeReply> RepairStoreFromSiblings(
      const std::string& dataset, const std::string& field, int32_t timestep,
      uint64_t begin_code, uint64_t end_code);

  NodeServiceConfig config_;
  DatabaseNode node_;
  FieldRegistry registry_;
  ThreadPool workers_;

  /// Write-ahead log (opened by RecoverWal; null until then or when
  /// disabled). The log itself is internally synchronized; checkpointing
  /// (store fsyncs + truncate) serializes on wal_mutex_.
  std::unique_ptr<WriteAheadLog> wal_;
  std::mutex wal_mutex_;

  mutable std::mutex state_mutex_;
  std::map<std::string, std::unique_ptr<DatasetState>> datasets_;
  /// Installed membership view (null = static ownership) and, per
  /// dataset, the generation at which this shard's effective ownership
  /// last changed — the fence HandleExecute checks stale-routed requests
  /// against. Both guarded by state_mutex_; the view is handed to
  /// queries as a shared_ptr so a cutover mid-query cannot invalidate
  /// the atoms an executing query already selected.
  std::shared_ptr<const MembershipView> view_;
  std::map<std::string, uint64_t> ownership_changed_gen_;
  std::map<std::pair<std::string, int>, std::unique_ptr<Differentiator>>
      differentiators_;
  std::map<std::pair<std::string, int>,
           std::shared_ptr<const LagrangeInterpolator>>
      interpolators_;

  std::map<int, std::unique_ptr<PeerChannel>> peers_;
  std::mutex peers_mutex_;

  /// Declared last so its thread stops before any state it scrubs or
  /// repairs through (node_, peers_) is torn down.
  std::unique_ptr<Scrubber> scrubber_;
};

}  // namespace turbdb
