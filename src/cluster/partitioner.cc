#include "cluster/partitioner.h"

#include <algorithm>

namespace turbdb {

Result<MortonPartitioner> MortonPartitioner::Create(
    const GridGeometry& geometry, int num_nodes, PartitionStrategy strategy) {
  TURBDB_RETURN_NOT_OK(geometry.Validate());
  if (num_nodes <= 0) {
    return Status::InvalidArgument("need at least one node");
  }
  const uint64_t total = static_cast<uint64_t>(geometry.NumAtoms());
  if (total < static_cast<uint64_t>(num_nodes)) {
    return Status::InvalidArgument("fewer atoms than nodes");
  }
  MortonPartitioner partitioner;
  partitioner.strategy_ = strategy;

  // Enumerate valid atoms in the order that defines contiguous shards:
  // Morton order for kMorton, (z, y, x)-major for kZSlabs.
  std::vector<uint64_t> layout_order;
  layout_order.reserve(total);
  const uint32_t nax = static_cast<uint32_t>(geometry.AtomsAlong(0));
  const uint32_t nay = static_cast<uint32_t>(geometry.AtomsAlong(1));
  const uint32_t naz = static_cast<uint32_t>(geometry.AtomsAlong(2));
  for (uint32_t az = 0; az < naz; ++az) {
    for (uint32_t ay = 0; ay < nay; ++ay) {
      for (uint32_t ax = 0; ax < nax; ++ax) {
        layout_order.push_back(MortonEncode3(ax, ay, az));
      }
    }
  }
  if (strategy == PartitionStrategy::kMorton) {
    std::sort(layout_order.begin(), layout_order.end());
  }
  // (For kZSlabs the construction order above already is z-major.)

  partitioner.per_node_.resize(static_cast<size_t>(num_nodes));
  std::vector<std::pair<uint64_t, int32_t>> code_owner;
  code_owner.reserve(total);
  for (int node = 0; node < num_nodes; ++node) {
    const size_t begin = static_cast<size_t>(
        total * static_cast<uint64_t>(node) / static_cast<uint64_t>(num_nodes));
    const size_t end = static_cast<size_t>(
        total * static_cast<uint64_t>(node + 1) /
        static_cast<uint64_t>(num_nodes));
    auto& shard = partitioner.per_node_[static_cast<size_t>(node)];
    shard.assign(layout_order.begin() + begin, layout_order.begin() + end);
    std::sort(shard.begin(), shard.end());
    for (uint64_t code : shard) code_owner.push_back({code, node});
  }
  std::sort(code_owner.begin(), code_owner.end());
  partitioner.all_atoms_.reserve(total);
  partitioner.owners_.reserve(total);
  for (const auto& [code, owner] : code_owner) {
    partitioner.all_atoms_.push_back(code);
    partitioner.owners_.push_back(owner);
  }
  return partitioner;
}

int MortonPartitioner::OwnerOfAtom(uint64_t zindex) const {
  auto it =
      std::lower_bound(all_atoms_.begin(), all_atoms_.end(), zindex);
  if (it == all_atoms_.end() || *it != zindex) return -1;
  return owners_[static_cast<size_t>(it - all_atoms_.begin())];
}

MortonRange MortonPartitioner::NodeRange(int node) const {
  const auto& shard = per_node_[static_cast<size_t>(node)];
  if (shard.empty()) return MortonRange{0, 0};
  return MortonRange{shard.front(), shard.back() + 1};
}

std::vector<uint64_t> MortonPartitioner::NodeAtomsInBox(
    int node, const Box3& atom_box) const {
  std::vector<uint64_t> out;
  for (uint64_t code : per_node_[static_cast<size_t>(node)]) {
    uint32_t ax, ay, az;
    MortonDecode3(code, &ax, &ay, &az);
    if (atom_box.ContainsPoint(ax, ay, az)) out.push_back(code);
  }
  return out;
}

}  // namespace turbdb
