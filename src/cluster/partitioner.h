#pragma once

#include <cstdint>
#include <vector>

#include "array/box.h"
#include "array/geometry.h"
#include "array/morton.h"
#include "common/result.h"

namespace turbdb {

/// How a dataset's atoms are divided among database nodes.
enum class PartitionStrategy {
  /// Contiguous ranges of the Morton z-order curve — the JHTDB layout
  /// ("We use the Morton z-order space-filling curve to distribute the
  /// data across nodes and databases", Sec. 2). Shards are compact
  /// (cube-ish), minimizing the boundary band exchanged for kernel halos.
  kMorton,
  /// Contiguous z-slabs (split along the last axis). Simpler, but shards
  /// are thin slices whose surface area — and with it the cross-node halo
  /// traffic — grows with the node count. Provided as the baseline for
  /// the partitioning ablation (bench/ablation_partitioning).
  kZSlabs,
};

/// Assigns the atoms of a dataset to database nodes.
///
/// Construction enumerates the dataset's valid atom codes (grids whose
/// atom counts per axis are not powers of two have gaps in Morton code
/// space) and splits them into `num_nodes` shards of near-equal size
/// according to the strategy.
class MortonPartitioner {
 public:
  static Result<MortonPartitioner> Create(
      const GridGeometry& geometry, int num_nodes,
      PartitionStrategy strategy = PartitionStrategy::kMorton);

  int num_nodes() const { return static_cast<int>(per_node_.size()); }
  PartitionStrategy strategy() const { return strategy_; }

  /// Node owning the atom with the given z-index.
  int OwnerOfAtom(uint64_t zindex) const;

  /// Half-open code interval spanned by `node`'s shard (tight for the
  /// Morton strategy — codes in between always belong to the node; for
  /// z-slabs merely a bounding interval).
  MortonRange NodeRange(int node) const;

  /// Sorted z-indices of the atoms assigned to `node`.
  const std::vector<uint64_t>& NodeAtoms(int node) const {
    return per_node_[static_cast<size_t>(node)];
  }

  /// Sorted z-indices of `node`'s atoms whose atom coordinates intersect
  /// `atom_box` (a half-open box in atom coordinates).
  std::vector<uint64_t> NodeAtomsInBox(int node, const Box3& atom_box) const;

  uint64_t total_atoms() const { return all_atoms_.size(); }

 private:
  MortonPartitioner() = default;

  PartitionStrategy strategy_ = PartitionStrategy::kMorton;
  std::vector<uint64_t> all_atoms_;  ///< All valid codes, sorted.
  std::vector<int32_t> owners_;      ///< Parallel to all_atoms_.
  std::vector<std::vector<uint64_t>> per_node_;
};

}  // namespace turbdb
