#include "cluster/remote_node.h"

#include <algorithm>
#include <chrono>

#include "net/frame.h"

namespace turbdb {

namespace {

net::ClientOptions MakeClientOptions(const RemoteNodeOptions& options) {
  net::ClientOptions client;
  client.connect_timeout_ms = options.connect_timeout_ms;
  client.write_timeout_ms = options.connect_timeout_ms;
  // The read timeout must outlast the server-side budget, or the client
  // gives up on sub-queries the node still considers live.
  client.read_timeout_ms =
      static_cast<int>(options.subquery_deadline_ms) + 5000;
  client.max_retries = options.max_retries;
  client.backoff_initial_ms = options.backoff_initial_ms;
  client.deadline_ms = options.subquery_deadline_ms;
  return client;
}

}  // namespace

net::NodeQuerySpec ToSpec(const NodeQuery& query) {
  net::NodeQuerySpec spec;
  spec.mode = static_cast<int32_t>(query.mode);
  spec.dataset = query.dataset->name;
  spec.raw_field = query.raw_field;
  spec.derived_field = query.derived_field;
  spec.timestep = query.timestep;
  spec.box = query.box;
  spec.fd_order = query.fd_order;
  spec.threshold = query.threshold;
  spec.bin_width = query.bin_width;
  spec.num_bins = query.num_bins;
  spec.k = query.k;
  spec.processes = query.processes;
  spec.options = query.options;
  spec.sample_support = query.sample_support;
  spec.targets = query.targets;
  spec.flops_per_process = query.flops_per_process;
  spec.effective_cores = query.effective_cores;
  return spec;
}

RemoteNode::RemoteNode(int id, const NodeAddress& address,
                       const RemoteNodeOptions& options, int shard)
    : id_(id), shard_(shard >= 0 ? shard : id), address_(address),
      options_(options),
      client_(address.host, address.port, MakeClientOptions(options)) {}

Status RemoteNode::Named(const Status& status) const {
  if (status.ok()) return status;
  return Status(status.code(), DebugName() + ": " + status.message());
}

Result<uint64_t> RemoteNode::Handshake() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto hello = client_.Hello();
  if (!hello.ok()) return Named(hello.status());
  if (hello->protocol_version != net::kProtocolVersion) {
    // Normally unreachable — the frame layer rejects other versions —
    // but kept for a future where frames stay stable and semantics move.
    return Named(Status::VersionMismatch(
        "speaks protocol v" + std::to_string(hello->protocol_version) +
        ", this mediator speaks v" + std::to_string(net::kProtocolVersion)));
  }
  if (hello->server_id != id_) {
    return Named(Status::InvalidArgument(
        "identifies as node " + std::to_string(hello->server_id) +
        " — topology misconfigured?"));
  }
  return hello->epoch;
}

Status RemoteNode::CreateDataset(const DatasetInfo& info,
                                 const MortonPartitioner& partitioner,
                                 PartitionStrategy strategy) {
  net::NodeCreateDatasetRequest request;
  request.info = info;
  request.num_nodes = partitioner.num_nodes();
  request.node_id = shard_;
  request.strategy = static_cast<int32_t>(strategy);
  std::lock_guard<std::mutex> lock(mutex_);
  return Named(client_.NodeCreateDataset(request));
}

Status RemoteNode::IngestBatches(const std::string& dataset,
                                 const std::string& field,
                                 const std::vector<Atom>& atoms,
                                 bool skip_existing) {
  const size_t batch =
      static_cast<size_t>(std::max(1, options_.ingest_batch_atoms));
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t begin = 0; begin < atoms.size(); begin += batch) {
    const size_t end = std::min(atoms.size(), begin + batch);
    net::NodeIngestRequest request;
    request.dataset = dataset;
    request.field = field;
    request.skip_existing = skip_existing;
    request.atoms.assign(atoms.begin() + static_cast<ptrdiff_t>(begin),
                         atoms.begin() + static_cast<ptrdiff_t>(end));
    TURBDB_RETURN_NOT_OK(Named(client_.NodeIngest(request)));
  }
  return Status::OK();
}

Status RemoteNode::IngestAtoms(const std::string& dataset,
                               const std::string& field,
                               const std::vector<Atom>& atoms) {
  return IngestBatches(dataset, field, atoms, /*skip_existing=*/false);
}

Status RemoteNode::IngestSkippingExisting(const std::string& dataset,
                                          const std::string& field,
                                          const std::vector<Atom>& atoms) {
  return IngestBatches(dataset, field, atoms, /*skip_existing=*/true);
}

Result<net::NodeSyncRangeReply> RemoteNode::SyncRange(
    const net::NodeSyncRangeRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto reply = client_.NodeSyncRange(request);
  if (!reply.ok()) return Named(reply.status());
  return reply;
}

Result<net::NodeListStoresReply> RemoteNode::ListStores() {
  std::lock_guard<std::mutex> lock(mutex_);
  auto reply = client_.NodeListStores();
  if (!reply.ok()) return Named(reply.status());
  return reply;
}

Result<NodeOutcome> RemoteNode::Execute(const NodeQuery& query) {
  net::NodeExecuteRequest request;
  request.spec = ToSpec(query);
  // Threshold sub-replies stream back as bounded chunk frames, so a
  // large sub-result is neither capped by the frame limit nor buffered
  // whole on the node's encoder.
  request.stream = query.mode == NodeQuery::Mode::kThreshold;
  // Each hop carries the *remaining* budget: the sub-query deadline,
  // tightened by whatever is left of the caller's overall deadline.
  uint64_t budget_ms = options_.subquery_deadline_ms;
  if (query.deadline != std::chrono::steady_clock::time_point{}) {
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
        query.deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      return Named(Status::DeadlineExceeded(
          "query budget exhausted before dispatching the sub-query"));
    }
    budget_ms = std::min<uint64_t>(
        budget_ms, static_cast<uint64_t>(remaining.count()));
  }
  request.rpc.deadline_ms = budget_ms;
  request.rpc.query_id = query.query_id;
  // The routing generation rides in the header: a node whose ownership
  // of the dataset changed past it answers kWrongOwner instead of
  // evaluating stale ranges, and the mediator re-routes.
  request.rpc.generation =
      query.view != nullptr ? query.view->generation : 0;
  std::unique_lock<std::mutex> lock(mutex_);
  auto result = client_.NodeExecute(request);
  lock.unlock();
  if (!result.ok()) return Named(result.status());
  NodeOutcome outcome;
  outcome.node_id = id_;
  outcome.points = std::move(result->points);
  outcome.histogram = std::move(result->histogram);
  outcome.norm_sum = result->norm_sum;
  outcome.norm_sum_sq = result->norm_sum_sq;
  outcome.norm_max = result->norm_max;
  outcome.samples = std::move(result->samples);
  outcome.cache_hit = result->cache_hit;
  outcome.time = result->time;
  outcome.io = result->io;
  return outcome;
}

void RemoteNode::Cancel(uint64_t query_id) {
  if (query_id == 0) return;
  // The main channel is busy with the Execute being cancelled, so dial a
  // one-shot connection. No retries and a small budget: cancellation is
  // advisory, and a node too sick to take the RPC is not doing useful
  // work anyway.
  net::ClientOptions options = MakeClientOptions(options_);
  options.max_retries = 0;
  options.deadline_ms = std::min<uint64_t>(
      2000, std::max<uint64_t>(1, options_.subquery_deadline_ms));
  options.read_timeout_ms = static_cast<int>(options.deadline_ms) + 1000;
  net::Client canceller(address_.host, address_.port, options);
  (void)canceller.CancelQuery(query_id);
}

Status RemoteNode::DropCacheEntries(const std::string& dataset,
                                    const std::string& field,
                                    int32_t timestep) {
  net::NodeDropCacheRequest request;
  request.dataset = dataset;
  request.field = field;
  request.timestep = timestep;
  std::lock_guard<std::mutex> lock(mutex_);
  return Named(client_.NodeDropCache(request));
}

Result<uint64_t> RemoteNode::StoredAtomCount(const std::string& dataset,
                                             const std::string& field) {
  net::NodeStatsRequest request;
  request.dataset = dataset;
  request.field = field;
  std::lock_guard<std::mutex> lock(mutex_);
  auto stats = client_.NodeStats(request);
  if (!stats.ok()) return Named(stats.status());
  return stats->stored_atoms;
}

Result<net::NodeStatsReply> RemoteNode::Stats(const std::string& dataset,
                                              const std::string& field) {
  net::NodeStatsRequest request;
  request.dataset = dataset;
  request.field = field;
  std::lock_guard<std::mutex> lock(mutex_);
  auto stats = client_.NodeStats(request);
  if (!stats.ok()) return Named(stats.status());
  return stats;
}

Result<net::NodeMerkleReply> RemoteNode::Merkle(
    const net::NodeMerkleRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto reply = client_.NodeMerkle(request);
  if (!reply.ok()) return Named(reply.status());
  return reply;
}

Result<net::NodeScrubReply> RemoteNode::Scrub(
    const net::NodeScrubRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto reply = client_.NodeScrub(request);
  if (!reply.ok()) return Named(reply.status());
  return reply;
}

Result<net::NodeRepairRangeReply> RemoteNode::RepairRange(
    const net::NodeRepairRangeRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto reply = client_.NodeRepairRange(request);
  if (!reply.ok()) return Named(reply.status());
  return reply;
}

Status RemoteNode::PushMembership(const MembershipView& view) {
  net::MembershipUpdateRequest request;
  request.view = view;
  std::lock_guard<std::mutex> lock(mutex_);
  return Named(client_.MembershipUpdate(request));
}

Status RemoteNode::BeginHandoff(const net::BeginHandoffRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Named(client_.BeginHandoff(request));
}

Status RemoteNode::Cutover(const net::CutoverRequest& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  return Named(client_.Cutover(request));
}

}  // namespace turbdb
