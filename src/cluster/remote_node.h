#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "cluster/node_backend.h"
#include "cluster/topology.h"
#include "net/client.h"

namespace turbdb {

/// A database node living in another process: implements NodeBackend by
/// speaking the node-scoped RPCs to a `turbdb_node` over `net::Client`.
///
/// Every wire wait is deadline-bounded and transport failures are
/// retried a bounded number of times (the client's policy); a node that
/// cannot be reached surfaces as kUnreachable *naming this node*, which
/// is what the mediator propagates so a dead node fails the query fast
/// instead of hanging it. The underlying client drives one connection
/// and is not thread-safe, so calls are serialized on a mutex — the
/// cluster's parallelism is across nodes, not within one node's channel.
class RemoteNode : public NodeBackend {
 public:
  /// `shard` is the logical shard whose atom range this node serves;
  /// under replication several physical nodes share one shard. Negative
  /// (the default) means "same as the physical id" — the unreplicated
  /// layout.
  RemoteNode(int id, const NodeAddress& address,
             const RemoteNodeOptions& options, int shard = -1);

  /// Verifies the node answers, speaks this protocol version and
  /// identifies as the expected node id; returns the node's incarnation
  /// epoch. Called by the mediator at cluster bring-up (so
  /// misconfiguration fails at Create, not mid-query) and again by the
  /// replica layer when probing a node it saw go down — an epoch higher
  /// than the one recorded means the process restarted.
  Result<uint64_t> Handshake();

  int id() const override { return id_; }
  int shard() const { return shard_; }
  const NodeAddress& address() const { return address_; }
  std::string DebugName() const override {
    return "node " + std::to_string(id_) + " (" + address_.ToString() + ")";
  }

  Status CreateDataset(const DatasetInfo& info,
                       const MortonPartitioner& partitioner,
                       PartitionStrategy strategy) override;
  Status IngestAtoms(const std::string& dataset, const std::string& field,
                     const std::vector<Atom>& atoms) override;
  Result<NodeOutcome> Execute(const NodeQuery& query) override;

  /// Fire-and-forget CancelQuery for an Execute in flight on this node.
  /// Uses a short-lived dedicated connection: the main channel's mutex is
  /// held by the very Execute being cancelled, which is the whole point.
  void Cancel(uint64_t query_id) override;
  Status DropCacheEntries(const std::string& dataset,
                          const std::string& field,
                          int32_t timestep) override;
  Result<uint64_t> StoredAtomCount(const std::string& dataset,
                                   const std::string& field) override;

  /// IngestAtoms with `skip_existing`: duplicate keys are silently kept
  /// as-is on the node. The re-sync path uses it to push ranges that may
  /// overlap atoms a restarted node already recovered from disk.
  Status IngestSkippingExisting(const std::string& dataset,
                                const std::string& field,
                                const std::vector<Atom>& atoms);

  /// One page of a replica sync: atoms of (dataset, field, timestep) in
  /// [begin_code, end_code), at most max_atoms of them.
  Result<net::NodeSyncRangeReply> SyncRange(
      const net::NodeSyncRangeRequest& request);

  /// Every (dataset, field) store the node has open, with atom counts.
  Result<net::NodeListStoresReply> ListStores();

  /// The node's full stats row (epoch, WAL lag, membership generation).
  Result<net::NodeStatsReply> Stats(const std::string& dataset,
                                    const std::string& field);

  /// Self-healing RPCs (v7): a store's Merkle digest, a synchronous
  /// scrub pass (or counter read), and an anti-entropy repair of one
  /// store from the node's replica siblings.
  Result<net::NodeMerkleReply> Merkle(const net::NodeMerkleRequest& request);
  Result<net::NodeScrubReply> Scrub(const net::NodeScrubRequest& request);
  Result<net::NodeRepairRangeReply> RepairRange(
      const net::NodeRepairRangeRequest& request);

  /// Membership pushes (v6): install a view, announce a handoff window,
  /// apply a cutover. Mediator-to-node control plane.
  Status PushMembership(const MembershipView& view);
  Status BeginHandoff(const net::BeginHandoffRequest& request);
  Status Cutover(const net::CutoverRequest& request);

 private:
  /// Prefixes a failure with this node's identity (code preserved).
  Status Named(const Status& status) const;

  Status IngestBatches(const std::string& dataset, const std::string& field,
                       const std::vector<Atom>& atoms, bool skip_existing);

  int id_;
  int shard_;
  NodeAddress address_;
  RemoteNodeOptions options_;

  std::mutex mutex_;
  net::Client client_;
};

/// The wire form of a NodeQuery: every process-local pointer replaced by
/// the name/parameters it resolves from. Shared by RemoteNode (encode
/// side) and NodeService (rebuild side).
net::NodeQuerySpec ToSpec(const NodeQuery& query);

}  // namespace turbdb
