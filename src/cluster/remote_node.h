#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "cluster/node_backend.h"
#include "cluster/topology.h"
#include "net/client.h"

namespace turbdb {

/// A database node living in another process: implements NodeBackend by
/// speaking the node-scoped RPCs to a `turbdb_node` over `net::Client`.
///
/// Every wire wait is deadline-bounded and transport failures are
/// retried a bounded number of times (the client's policy); a node that
/// cannot be reached surfaces as kUnreachable *naming this node*, which
/// is what the mediator propagates so a dead node fails the query fast
/// instead of hanging it. The underlying client drives one connection
/// and is not thread-safe, so calls are serialized on a mutex — the
/// cluster's parallelism is across nodes, not within one node's channel.
class RemoteNode : public NodeBackend {
 public:
  RemoteNode(int id, const NodeAddress& address,
             const RemoteNodeOptions& options);

  /// Verifies the node answers, speaks this protocol version and
  /// identifies as the expected node id. Called by the mediator at
  /// cluster bring-up so misconfiguration fails at Create, not mid-query.
  Status Handshake();

  int id() const override { return id_; }
  std::string DebugName() const override {
    return "node " + std::to_string(id_) + " (" + address_.ToString() + ")";
  }

  Status CreateDataset(const DatasetInfo& info,
                       const MortonPartitioner& partitioner,
                       PartitionStrategy strategy) override;
  Status IngestAtoms(const std::string& dataset, const std::string& field,
                     const std::vector<Atom>& atoms) override;
  Result<NodeOutcome> Execute(const NodeQuery& query) override;
  Status DropCacheEntries(const std::string& dataset,
                          const std::string& field,
                          int32_t timestep) override;
  Result<uint64_t> StoredAtomCount(const std::string& dataset,
                                   const std::string& field) override;

 private:
  /// Prefixes a failure with this node's identity (code preserved).
  Status Named(const Status& status) const;

  int id_;
  NodeAddress address_;
  RemoteNodeOptions options_;

  std::mutex mutex_;
  net::Client client_;
};

/// The wire form of a NodeQuery: every process-local pointer replaced by
/// the name/parameters it resolves from. Shared by RemoteNode (encode
/// side) and NodeService (rebuild side).
net::NodeQuerySpec ToSpec(const NodeQuery& query);

}  // namespace turbdb
