#include "cluster/service.h"

#include <chrono>
#include <utility>
#include <variant>

namespace turbdb {

net::Server::Handler MediatorHandler(Mediator* mediator) {
  return [mediator](const std::vector<uint8_t>& payload,
                    const net::CallContext& ctx) -> std::vector<uint8_t> {
    auto request_or = net::DecodeRequest(payload);
    if (!request_or.ok()) {
      return net::EncodeErrorResponse(request_or.status());
    }
    const net::Request& request = *request_or;

    // Hand the mediator the same budget the server derived from the
    // frame header, so shard dispatch and remote sub-queries inherit it.
    CallBudget budget;
    if (!ctx.deadline.infinite()) {
      budget.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(ctx.deadline.PollTimeoutMs());
    }
    budget.cancel = ctx.cancelled.get();

    std::vector<uint8_t> response;
    auto finish = [&](auto&& result_or) {
      if (!result_or.ok()) {
        response = net::EncodeErrorResponse(result_or.status());
      } else if (ctx.deadline.Expired()) {
        // The result is ready but stale: the client stopped waiting.
        response = net::EncodeErrorResponse(
            Status::DeadlineExceeded("deadline exceeded"));
      } else {
        response = net::EncodeResponse(*result_or);
      }
    };

    if (std::holds_alternative<net::ThresholdRequest>(request)) {
      const auto& req = std::get<net::ThresholdRequest>(request);
      finish(mediator->GetThreshold(req.query, req.options, budget));
    } else if (std::holds_alternative<net::PdfRequest>(request)) {
      finish(mediator->GetPdf(std::get<net::PdfRequest>(request).query,
                              budget));
    } else if (std::holds_alternative<net::TopKRequest>(request)) {
      finish(mediator->GetTopK(std::get<net::TopKRequest>(request).query,
                               budget));
    } else if (std::holds_alternative<net::FieldStatsRequest>(request)) {
      finish(mediator->GetFieldStats(
          std::get<net::FieldStatsRequest>(request).query, budget));
    } else {
      // Ping/ServerStats/Hello are answered by the server itself; a
      // node-scoped request reaching a mediator lands here too.
      response = net::EncodeErrorResponse(Status::NotSupported(
          "request type not served by a mediator server"));
    }
    return response;
  };
}

Result<std::unique_ptr<net::Server>> ServeMediator(
    Mediator* mediator, const net::ServerOptions& options) {
  if (mediator == nullptr) {
    return Status::InvalidArgument("server needs a mediator");
  }
  return net::Server::Start(MediatorHandler(mediator), options);
}

}  // namespace turbdb
