#include "cluster/service.h"

#include <utility>
#include <variant>

namespace turbdb {

net::Server::Handler MediatorHandler(Mediator* mediator) {
  return [mediator](const std::vector<uint8_t>& payload,
                    const net::Deadline& deadline) -> std::vector<uint8_t> {
    auto request_or = net::DecodeRequest(payload);
    if (!request_or.ok()) {
      return net::EncodeErrorResponse(request_or.status());
    }
    const net::Request& request = *request_or;

    std::vector<uint8_t> response;
    auto finish = [&](auto&& result_or) {
      if (!result_or.ok()) {
        response = net::EncodeErrorResponse(result_or.status());
      } else if (deadline.Expired()) {
        // The result is ready but stale: the client stopped waiting.
        response = net::EncodeErrorResponse(
            Status::Unavailable("deadline exceeded"));
      } else {
        response = net::EncodeResponse(*result_or);
      }
    };

    if (std::holds_alternative<net::ThresholdRequest>(request)) {
      const auto& req = std::get<net::ThresholdRequest>(request);
      finish(mediator->GetThreshold(req.query, req.options));
    } else if (std::holds_alternative<net::PdfRequest>(request)) {
      finish(mediator->GetPdf(std::get<net::PdfRequest>(request).query));
    } else if (std::holds_alternative<net::TopKRequest>(request)) {
      finish(mediator->GetTopK(std::get<net::TopKRequest>(request).query));
    } else if (std::holds_alternative<net::FieldStatsRequest>(request)) {
      finish(mediator->GetFieldStats(
          std::get<net::FieldStatsRequest>(request).query));
    } else {
      // Ping/ServerStats/Hello are answered by the server itself; a
      // node-scoped request reaching a mediator lands here too.
      response = net::EncodeErrorResponse(Status::NotSupported(
          "request type not served by a mediator server"));
    }
    return response;
  };
}

Result<std::unique_ptr<net::Server>> ServeMediator(
    Mediator* mediator, const net::ServerOptions& options) {
  if (mediator == nullptr) {
    return Status::InvalidArgument("server needs a mediator");
  }
  return net::Server::Start(MediatorHandler(mediator), options);
}

}  // namespace turbdb
