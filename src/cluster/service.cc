#include "cluster/service.h"

#include <chrono>
#include <utility>
#include <variant>

namespace turbdb {

net::Server::Handler MediatorHandler(Mediator* mediator) {
  return [mediator](const std::vector<uint8_t>& payload,
                    const net::CallContext& ctx) -> std::vector<uint8_t> {
    auto request_or = net::DecodeRequest(payload);
    if (!request_or.ok()) {
      return net::EncodeErrorResponse(request_or.status());
    }
    const net::Request& request = *request_or;

    // Hand the mediator the same budget the server derived from the
    // frame header, so shard dispatch and remote sub-queries inherit it.
    CallBudget budget;
    if (!ctx.deadline.infinite()) {
      budget.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(ctx.deadline.PollTimeoutMs());
    }
    budget.cancel = ctx.cancelled.get();

    std::vector<uint8_t> response;
    auto finish = [&](auto&& result_or) {
      if (!result_or.ok()) {
        response = net::EncodeErrorResponse(result_or.status());
      } else if (ctx.deadline.Expired()) {
        // The result is ready but stale: the client stopped waiting.
        response = net::EncodeErrorResponse(
            Status::DeadlineExceeded("deadline exceeded"));
      } else {
        response = net::EncodeResponse(*result_or);
      }
    };

    if (std::holds_alternative<net::ThresholdRequest>(request)) {
      const auto& req = std::get<net::ThresholdRequest>(request);
      if (req.stream && ctx.emit != nullptr) {
        // Streamed reply: encode each chunk as a kThresholdChunk frame
        // and push it to the connection now; the terminating frame is the
        // summary (or error) this handler returns. Each chunk's buffer is
        // reserved against the server's result-byte budget *before* it is
        // materialized, so concurrent large replies cannot blow past the
        // configured memory bound — they wait (bounded by the deadline /
        // cancel token) for earlier chunks to drain.
        uint64_t seq = 0;
        Mediator::ThresholdChunkSink sink =
            [&](std::vector<ThresholdPoint> points,
                uint64_t total_points) -> Result<uint64_t> {
          ResourceGovernor::ByteReservation reservation;
          if (ctx.governor != nullptr) {
            // Upper-bound estimate of the encoded chunk: <= 20 bytes per
            // point (3 varint coords + float + float) plus header slack.
            const uint64_t estimate = points.size() * 20 + 64;
            TURBDB_RETURN_NOT_OK(ctx.governor->ReserveBlocking(
                estimate, &reservation, ctx.cancelled.get()));
          }
          net::ThresholdChunk chunk;
          chunk.seq = seq++;
          chunk.points = std::move(points);
          chunk.total_points = total_points;
          const std::vector<uint8_t> frame = net::EncodeThresholdChunk(chunk);
          TURBDB_RETURN_NOT_OK(ctx.emit(frame));
          return static_cast<uint64_t>(frame.size());
        };
        finish(mediator->GetThresholdStreaming(req.query, req.options, budget,
                                               ctx.chunk_points, sink));
      } else {
        finish(mediator->GetThreshold(req.query, req.options, budget));
      }
    } else if (std::holds_alternative<net::PdfRequest>(request)) {
      finish(mediator->GetPdf(std::get<net::PdfRequest>(request).query,
                              budget));
    } else if (std::holds_alternative<net::TopKRequest>(request)) {
      finish(mediator->GetTopK(std::get<net::TopKRequest>(request).query,
                               budget));
    } else if (std::holds_alternative<net::FieldStatsRequest>(request)) {
      finish(mediator->GetFieldStats(
          std::get<net::FieldStatsRequest>(request).query, budget));
    } else {
      // Ping/ServerStats/Hello are answered by the server itself; a
      // node-scoped request reaching a mediator lands here too.
      response = net::EncodeErrorResponse(Status::NotSupported(
          "request type not served by a mediator server"));
    }
    return response;
  };
}

Result<std::unique_ptr<net::Server>> ServeMediator(
    Mediator* mediator, const net::ServerOptions& options) {
  if (mediator == nullptr) {
    return Status::InvalidArgument("server needs a mediator");
  }
  return net::Server::Start(MediatorHandler(mediator), options);
}

}  // namespace turbdb
