#include "cluster/service.h"

#include <chrono>
#include <utility>
#include <variant>

namespace turbdb {

net::Server::Handler MediatorHandler(Mediator* mediator) {
  return [mediator](const std::vector<uint8_t>& payload,
                    const net::CallContext& ctx) -> std::vector<uint8_t> {
    // Elasticity control plane (v6): these admin messages are not part
    // of the query Request variant — peek the type and route them to the
    // mediator's membership API directly. A mediator running without a
    // membership registry answers with a typed kNotSupported.
    if (auto header = net::PeekRequestHeader(payload); header.ok()) {
      switch (header->type) {
        case net::MsgType::kJoinRequest: {
          auto req = net::DecodeJoinRequest(payload);
          if (!req.ok()) return net::EncodeErrorResponse(req.status());
          auto reply = mediator->Join(*req);
          if (!reply.ok()) return net::EncodeErrorResponse(reply.status());
          return net::EncodeJoinResponse(*reply);
        }
        case net::MsgType::kLeaveRequest: {
          auto req = net::DecodeLeaveRequest(payload);
          if (!req.ok()) return net::EncodeErrorResponse(req.status());
          auto reply = mediator->Leave(req->node_id);
          if (!reply.ok()) return net::EncodeErrorResponse(reply.status());
          return net::EncodeLeaveResponse(*reply);
        }
        case net::MsgType::kMembershipGetRequest: {
          auto req = net::DecodeMembershipGetRequest(payload);
          if (!req.ok()) return net::EncodeErrorResponse(req.status());
          if (!mediator->elastic()) {
            return net::EncodeErrorResponse(Status::NotSupported(
                "mediator runs without a membership registry"));
          }
          net::MembershipGetReply reply;
          reply.view = mediator->Membership();
          return net::EncodeMembershipGetResponse(reply);
        }
        case net::MsgType::kRebalanceRequest: {
          auto req = net::DecodeRebalanceRequest(payload);
          if (!req.ok()) return net::EncodeErrorResponse(req.status());
          auto reply = mediator->Rebalance(*req);
          if (!reply.ok()) return net::EncodeErrorResponse(reply.status());
          return net::EncodeRebalanceResponse(*reply);
        }
        default:
          break;
      }
    }

    auto request_or = net::DecodeRequest(payload);
    if (!request_or.ok()) {
      return net::EncodeErrorResponse(request_or.status());
    }
    const net::Request& request = *request_or;

    // Hand the mediator the same budget the server derived from the
    // frame header, so shard dispatch and remote sub-queries inherit it.
    CallBudget budget;
    if (!ctx.deadline.infinite()) {
      budget.deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(ctx.deadline.PollTimeoutMs());
    }
    budget.cancel = ctx.cancelled.get();

    std::vector<uint8_t> response;
    auto finish = [&](auto&& result_or) {
      if (!result_or.ok()) {
        response = net::EncodeErrorResponse(result_or.status());
      } else if (ctx.deadline.Expired()) {
        // The result is ready but stale: the client stopped waiting.
        response = net::EncodeErrorResponse(
            Status::DeadlineExceeded("deadline exceeded"));
      } else {
        response = net::EncodeResponse(*result_or);
      }
    };

    if (std::holds_alternative<net::ThresholdRequest>(request)) {
      const auto& req = std::get<net::ThresholdRequest>(request);
      if (req.stream && ctx.emit != nullptr) {
        // Streamed reply: encode each chunk as a kThresholdChunk frame
        // and push it to the connection now; the terminating frame is the
        // summary (or error) this handler returns. Each chunk's buffer is
        // reserved against the server's result-byte budget *before* it is
        // materialized, so concurrent large replies cannot blow past the
        // configured memory bound — they wait (bounded by the deadline /
        // cancel token) for earlier chunks to drain.
        uint64_t seq = 0;
        Mediator::ThresholdChunkSink sink =
            [&](std::vector<ThresholdPoint> points,
                uint64_t total_points) -> Result<uint64_t> {
          ResourceGovernor::ByteReservation reservation;
          if (ctx.governor != nullptr) {
            // Upper-bound estimate of the encoded chunk: <= 20 bytes per
            // point (3 varint coords + float + float) plus header slack.
            const uint64_t estimate = points.size() * 20 + 64;
            TURBDB_RETURN_NOT_OK(ctx.governor->ReserveBlocking(
                estimate, &reservation, ctx.cancelled.get()));
          }
          net::ThresholdChunk chunk;
          chunk.seq = seq++;
          chunk.points = std::move(points);
          chunk.total_points = total_points;
          const std::vector<uint8_t> frame = net::EncodeThresholdChunk(chunk);
          TURBDB_RETURN_NOT_OK(ctx.emit(frame));
          return static_cast<uint64_t>(frame.size());
        };
        finish(mediator->GetThresholdStreaming(req.query, req.options, budget,
                                               ctx.chunk_points, sink));
      } else {
        finish(mediator->GetThreshold(req.query, req.options, budget));
      }
    } else if (std::holds_alternative<net::FofRequest>(request)) {
      const auto& req = std::get<net::FofRequest>(request);
      // Distributed FoF reply: cluster records stream out as kFofChunk
      // frames as the stitcher emits them, each buffer reserved against
      // the server's result-byte budget first (same discipline as the
      // streamed threshold path); the terminating frame carries the
      // summary. Without a streaming transport (in-process callers) the
      // records are dropped and only the summary is returned.
      uint64_t seq = 0;
      Mediator::FofClusterSink sink =
          [&](std::vector<DistributedFofCluster> clusters,
              uint64_t total_clusters) -> Result<uint64_t> {
        if (ctx.emit == nullptr) return static_cast<uint64_t>(0);
        net::FofChunk chunk;
        chunk.seq = seq++;
        chunk.total_clusters = total_clusters;
        uint64_t member_points = 0;
        chunk.clusters.reserve(clusters.size());
        for (DistributedFofCluster& cluster : clusters) {
          net::FofClusterRecord record;
          record.id = cluster.id;
          record.size = cluster.members.size();
          record.bbox_lo = cluster.bbox_lo;
          record.bbox_hi = cluster.bbox_hi;
          record.centroid = cluster.centroid;
          record.max_norm = cluster.max_norm;
          record.peak_zindex = cluster.peak_zindex;
          if (req.include_members) {
            member_points += cluster.members.size();
            record.members = std::move(cluster.members);
          }
          chunk.clusters.push_back(std::move(record));
        }
        ResourceGovernor::ByteReservation reservation;
        if (ctx.governor != nullptr) {
          // Upper-bound estimate: ~96 bytes of stats per record plus
          // <= 20 bytes per shipped member point.
          const uint64_t estimate =
              chunk.clusters.size() * 96 + member_points * 20 + 64;
          TURBDB_RETURN_NOT_OK(ctx.governor->ReserveBlocking(
              estimate, &reservation, ctx.cancelled.get()));
        }
        const std::vector<uint8_t> frame = net::EncodeFofChunk(chunk);
        TURBDB_RETURN_NOT_OK(ctx.emit(frame));
        return static_cast<uint64_t>(frame.size());
      };
      auto summary_or =
          mediator->GetFof(req.query, req.options, req.linking_length,
                           req.min_cluster_size, budget, ctx.chunk_points,
                           sink);
      if (!summary_or.ok()) {
        response = net::EncodeErrorResponse(summary_or.status());
      } else if (ctx.deadline.Expired()) {
        response = net::EncodeErrorResponse(
            Status::DeadlineExceeded("deadline exceeded"));
      } else {
        net::FofReply reply;
        reply.clusters = summary_or->clusters;
        reply.points = summary_or->points;
        reply.largest_cluster = summary_or->largest_cluster;
        reply.time = summary_or->time;
        response = net::EncodeFofResponse(reply);
      }
    } else if (std::holds_alternative<net::PdfRequest>(request)) {
      finish(mediator->GetPdf(std::get<net::PdfRequest>(request).query,
                              budget));
    } else if (std::holds_alternative<net::TopKRequest>(request)) {
      finish(mediator->GetTopK(std::get<net::TopKRequest>(request).query,
                               budget));
    } else if (std::holds_alternative<net::FieldStatsRequest>(request)) {
      finish(mediator->GetFieldStats(
          std::get<net::FieldStatsRequest>(request).query, budget));
    } else if (std::holds_alternative<net::DropCacheRequest>(request)) {
      const auto& req = std::get<net::DropCacheRequest>(request);
      uint64_t dropped = 0;
      Status status = mediator->DropCacheEntries(
          req.dataset, req.raw_field, req.derived_field, req.timestep,
          &dropped);
      if (!status.ok()) {
        response = net::EncodeErrorResponse(status);
      } else {
        net::DropCacheReply reply;
        reply.mediator_entries = dropped;
        reply.node_tier_cleared = true;
        response = net::EncodeDropCacheResponse(reply);
      }
    } else if (std::holds_alternative<net::CacheStatsRequest>(request)) {
      const MediatorCacheStats stats = mediator->result_cache().stats();
      net::CacheStatsReply reply;
      reply.enabled = mediator->result_cache().enabled();
      reply.capacity_bytes = stats.capacity_bytes;
      reply.entries = stats.entries;
      reply.bytes = stats.bytes;
      reply.hits = stats.hits;
      reply.misses = stats.misses;
      reply.subsumption_hits = stats.subsumption_hits;
      reply.insertions = stats.insertions;
      reply.evictions = stats.evictions;
      reply.invalidations = stats.invalidations;
      reply.stale_inserts = stats.stale_inserts;
      reply.pinned_entries = stats.pinned_entries;
      reply.pinned_bytes = stats.pinned_bytes;
      reply.affinity_enabled = mediator->config().cache_affinity;
      reply.affinity_routes = mediator->affinity_routes();
      response = net::EncodeCacheStatsResponse(reply);
    } else if (std::holds_alternative<net::CacheWarmRequest>(request)) {
      const auto& req = std::get<net::CacheWarmRequest>(request);
      auto outcome = mediator->WarmThresholdCache(req.query, budget);
      if (!outcome.ok()) {
        response = net::EncodeErrorResponse(outcome.status());
      } else {
        net::CacheWarmReply reply;
        reply.points = outcome->points;
        reply.already_cached = outcome->already_cached;
        response = net::EncodeCacheWarmResponse(reply);
      }
    } else if (std::holds_alternative<net::CachePinRequest>(request)) {
      const auto& req = std::get<net::CachePinRequest>(request);
      net::CachePinReply reply;
      reply.entries = mediator->result_cache().Pin(
          req.dataset, req.raw_field + ":" + req.derived_field, req.timestep);
      response =
          net::EncodeCachePinResponse(reply, net::MsgType::kCachePinResponse);
    } else if (std::holds_alternative<net::CacheUnpinRequest>(request)) {
      const auto& req = std::get<net::CacheUnpinRequest>(request);
      net::CachePinReply reply;
      reply.entries = mediator->result_cache().Unpin(
          req.dataset, req.raw_field + ":" + req.derived_field, req.timestep);
      response = net::EncodeCachePinResponse(reply,
                                             net::MsgType::kCacheUnpinResponse);
    } else {
      // Ping/ServerStats/Hello are answered by the server itself; a
      // node-scoped request reaching a mediator lands here too.
      response = net::EncodeErrorResponse(Status::NotSupported(
          "request type not served by a mediator server"));
    }
    return response;
  };
}

Result<std::unique_ptr<net::Server>> ServeMediator(
    Mediator* mediator, const net::ServerOptions& options) {
  if (mediator == nullptr) {
    return Status::InvalidArgument("server needs a mediator");
  }
  // Fold the mediator-cache gauges into every server-stats snapshot, so
  // `turbdb_cli server-stats` shows the cache next to the governor
  // counters without a second RPC.
  net::ServerOptions effective = options;
  effective.stats_decorator = [mediator](net::ServerStatsReply* reply) {
    const MediatorCacheStats stats = mediator->result_cache().stats();
    reply->cache_hits = stats.hits;
    reply->cache_misses = stats.misses;
    reply->cache_subsumption_hits = stats.subsumption_hits;
    reply->cache_evictions = stats.evictions;
    reply->cache_entries = stats.entries;
    reply->cache_bytes = stats.bytes;
    reply->cache_pinned_bytes = stats.pinned_bytes;
    reply->membership_generation = mediator->generation();
    reply->corruption_failovers = mediator->corruption_failovers();
    reply->read_repairs = mediator->read_repairs();
  };
  // The cache will charge the server's governor; when the server stops,
  // its governor dies with it, so the resident entries (whose RAII
  // reservations reference it) must be released first and the cache
  // re-pointed at its internal ledger.
  effective.on_stop = [mediator]() {
    mediator->result_cache().Clear();
    mediator->result_cache().AttachLedger(nullptr);
  };
  TURBDB_ASSIGN_OR_RETURN(std::unique_ptr<net::Server> server,
                          net::Server::Start(MediatorHandler(mediator),
                                             effective));
  // Charge resident cache bytes to the server's result-byte ledger: the
  // cache competes with in-flight results for the same budget and its
  // bytes are visible in the governor gauges. Attached while the cache
  // is still empty, so every reservation goes through this ledger.
  mediator->result_cache().AttachLedger(&server->governor());
  return std::move(server);
}

}  // namespace turbdb
