#pragma once

#include <memory>
#include <vector>

#include "cluster/mediator.h"
#include "net/server.h"

namespace turbdb {

/// The user-facing request handler: decodes the client RPCs (threshold,
/// PDF, top-k, field stats) and runs them on the mediator — the request
/// semantics that used to live inside net::Server, now mounted on it as
/// a handler. The mediator must outlive the returned handler.
net::Server::Handler MediatorHandler(Mediator* mediator);

/// Starts a net::Server answering user queries against `mediator`
/// (tools/turbdb_server's body). The mediator must outlive the server.
Result<std::unique_ptr<net::Server>> ServeMediator(
    Mediator* mediator, const net::ServerOptions& options);

}  // namespace turbdb
