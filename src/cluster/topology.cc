#include "cluster/topology.h"

#include <fstream>
#include <sstream>

#include "net/socket.h"

namespace turbdb {

namespace {

std::string Trim(const std::string& text) {
  const size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  const size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

}  // namespace

std::string ClusterTopology::ToString() const {
  std::string out;
  for (const NodeAddress& node : nodes) {
    if (!out.empty()) out += ",";
    out += node.ToString();
  }
  return out;
}

Result<ClusterTopology> ParseTopology(const std::string& spec) {
  ClusterTopology topology;
  std::stringstream stream(spec);
  std::string entry;
  while (std::getline(stream, entry, ',')) {
    const std::string trimmed = Trim(entry);
    if (trimmed.empty()) continue;
    TURBDB_ASSIGN_OR_RETURN(auto host_port, net::ParseHostPort(trimmed));
    topology.nodes.push_back({host_port.first, host_port.second});
  }
  return topology;
}

Result<ClusterTopology> LoadTopologyFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::IOError("cannot open topology file '" + path + "'");
  }
  ClusterTopology topology;
  std::string line;
  while (std::getline(file, line)) {
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    const std::string trimmed = Trim(line);
    if (trimmed.empty()) continue;
    TURBDB_ASSIGN_OR_RETURN(auto host_port, net::ParseHostPort(trimmed));
    topology.nodes.push_back({host_port.first, host_port.second});
  }
  return topology;
}

}  // namespace turbdb
