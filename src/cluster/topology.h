#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace turbdb {

/// Network address of one turbdb_node process.
struct NodeAddress {
  std::string host;
  uint16_t port = 0;

  std::string ToString() const {
    return host + ":" + std::to_string(port);
  }
  bool operator==(const NodeAddress& other) const {
    return host == other.host && port == other.port;
  }
};

/// Where the cluster's database nodes live: entry i is physical node i.
/// An empty topology means the in-process deployment (every DatabaseNode
/// inside the mediator); a non-empty one switches the mediator to remote
/// scatter-gather over TCP.
///
/// `replication_factor` R groups the entries into replica groups of R
/// consecutive nodes: entries [g*R, (g+1)*R) all hold shard g's atom
/// range, the first of them being the group's preferred (primary) read
/// target. R=1 (the default) is the unreplicated layout where physical
/// node i IS shard i. The node count must divide evenly by R.
struct ClusterTopology {
  std::vector<NodeAddress> nodes;
  int replication_factor = 1;

  bool empty() const { return nodes.empty(); }
  size_t size() const { return nodes.size(); }

  /// Number of replica groups (= logical shards). With R=1 this equals
  /// the node count.
  int num_groups() const {
    const int factor = replication_factor > 0 ? replication_factor : 1;
    return static_cast<int>(nodes.size()) / factor;
  }

  /// "host:port,host:port,..." — the inverse of ParseTopology; also the
  /// format turbdb_node's --peers flag takes.
  std::string ToString() const;
};

/// How the mediator (and peer nodes) talk to remote turbdb_node
/// processes. Retries apply to transport failures only; a node that
/// stays unreachable after the attempts yields a typed kUnreachable
/// error naming it, never a hang.
struct RemoteNodeOptions {
  /// Per-sub-query execution budget on the remote node.
  uint64_t subquery_deadline_ms = 60000;
  /// Extra attempts after a transport failure (connect refused, reset,
  /// timeout).
  int max_retries = 1;
  int connect_timeout_ms = 5000;
  /// First retry backoff; doubles per attempt.
  int backoff_initial_ms = 50;
  /// Atoms per ingest RPC (keeps frames far below the 64 MiB cap).
  int ingest_batch_atoms = 512;
  /// Minimum spacing between health probes of a down replica.
  int probe_interval_ms = 100;
  /// Circuit breaker for flapping replicas (probe up, fail every real
  /// request): this many transport failures in a row — each within the
  /// decay window of the previous — quarantine the replica for
  /// `breaker_quarantine_ms`, during which it is neither probed nor
  /// dialed. 0 disables the breaker. See replication/health.h.
  int breaker_trip_failures = 3;
  int64_t breaker_failure_decay_ms = 30000;
  int64_t breaker_quarantine_ms = 5000;
};

/// Parses "host:port,host:port,...". Whitespace around entries is
/// ignored; an empty spec yields an empty topology.
Result<ClusterTopology> ParseTopology(const std::string& spec);

/// Loads a topology file: one host:port per line, '#' starts a comment,
/// blank lines ignored. Line order assigns node ids.
Result<ClusterTopology> LoadTopologyFile(const std::string& path);

}  // namespace turbdb
