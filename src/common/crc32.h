#pragma once

#include <cstddef>
#include <cstdint>

namespace turbdb {

/// CRC-32 (IEEE 802.3 polynomial, reflected). Used to checksum atom
/// payloads in the file-backed store so that on-disk corruption is
/// detected at read time rather than silently propagating into derived
/// fields.
uint32_t Crc32(const void* data, size_t length, uint32_t seed = 0);

}  // namespace turbdb
