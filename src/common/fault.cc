#include "common/fault.h"

#ifdef TURBDB_FAULTS

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <vector>

namespace turbdb {
namespace fault {
namespace {

struct Site {
  Action action = Action::kNone;
  uint64_t arg = 0;
  uint64_t remaining = 0;  ///< Armed firings left.
  uint64_t fired = 0;      ///< Times an armed fault was consumed.
};

std::mutex g_mutex;
std::map<std::string, Site>& Registry() {
  static auto* registry = new std::map<std::string, Site>();
  return *registry;
}
// Fast path: sites call Check on every request; skip the lock when
// nothing has ever been armed.
std::atomic<uint64_t> g_armed{0};

Status BadSpec(const std::string& spec, const std::string& why) {
  return Status::InvalidArgument("bad fault spec '" + spec + "': " + why);
}

}  // namespace

bool Enabled() { return g_armed.load(std::memory_order_relaxed) > 0; }

Injected Check(const char* site) {
  if (!Enabled()) return {};
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = Registry().find(site);
  if (it == Registry().end() || it->second.remaining == 0) return {};
  Site& armed = it->second;
  --armed.remaining;
  ++armed.fired;
  if (armed.remaining == 0) {
    g_armed.fetch_sub(1, std::memory_order_relaxed);
  }
  return Injected{armed.action, armed.arg};
}

void Arm(const std::string& site, Action action, uint64_t arg,
         uint64_t count) {
  std::lock_guard<std::mutex> lock(g_mutex);
  Site& entry = Registry()[site];
  if (entry.remaining > 0) g_armed.fetch_sub(1, std::memory_order_relaxed);
  entry.action = action;
  entry.arg = arg;
  entry.remaining = count;
  if (count > 0) g_armed.fetch_add(1, std::memory_order_relaxed);
}

void Disarm(const std::string& site) { Arm(site, Action::kNone, 0, 0); }

void Reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  for (auto& [name, entry] : Registry()) {
    if (entry.remaining > 0) g_armed.fetch_sub(1, std::memory_order_relaxed);
    entry = Site{};
  }
}

uint64_t Fired(const std::string& site) {
  std::lock_guard<std::mutex> lock(g_mutex);
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.fired;
}

Status Configure(const std::string& spec) {
  // site=action:arg:count[;...]  — parsed fully before arming anything,
  // so a typo in the middle does not leave half the spec live.
  struct Parsed {
    std::string site;
    Action action;
    uint64_t arg;
    uint64_t count;
  };
  std::vector<Parsed> parsed;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) end = spec.size();
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) continue;

    const size_t eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      return BadSpec(entry, "expected site=action:arg:count");
    }
    Parsed out;
    out.site = entry.substr(0, eq);
    const std::string rhs = entry.substr(eq + 1);
    const size_t c1 = rhs.find(':');
    const size_t c2 = c1 == std::string::npos ? std::string::npos
                                              : rhs.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos) {
      return BadSpec(entry, "expected action:arg:count after '='");
    }
    const std::string action = rhs.substr(0, c1);
    if (action == "delay") {
      out.action = Action::kDelay;
    } else if (action == "error") {
      out.action = Action::kError;
    } else if (action == "truncate") {
      out.action = Action::kTruncate;
    } else if (action == "stall") {
      out.action = Action::kStall;
    } else {
      return BadSpec(entry, "unknown action '" + action + "'");
    }
    char* parse_end = nullptr;
    const std::string arg_str = rhs.substr(c1 + 1, c2 - c1 - 1);
    out.arg = std::strtoull(arg_str.c_str(), &parse_end, 10);
    if (parse_end == nullptr || *parse_end != '\0' || arg_str.empty()) {
      return BadSpec(entry, "arg is not a number");
    }
    const std::string count_str = rhs.substr(c2 + 1);
    out.count = std::strtoull(count_str.c_str(), &parse_end, 10);
    if (parse_end == nullptr || *parse_end != '\0' || count_str.empty()) {
      return BadSpec(entry, "count is not a number");
    }
    parsed.push_back(std::move(out));
  }
  for (const Parsed& entry : parsed) {
    Arm(entry.site, entry.action, entry.arg, entry.count);
  }
  return Status::OK();
}

Status InitFromEnv() {
  const char* spec = std::getenv("TURBDB_FAULTS");
  if (spec == nullptr) return Status::OK();
  return Configure(spec);
}

}  // namespace fault
}  // namespace turbdb

#endif  // TURBDB_FAULTS
