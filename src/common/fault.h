#pragma once

// Deterministic fault injection for the network path. Named call sites
// in net::Server / net::Client ask the registry whether a fault is armed
// (`Check`) and act it out — delay a reply, answer with an error frame,
// truncate a frame mid-write, stall the accept loop. Faults are armed a
// bounded number of times (`count`), so a test can say "truncate the
// next reply, then behave" and get the same interleaving on every run.
//
// The registry is compiled in only under the TURBDB_FAULTS CMake option;
// otherwise every entry point is an inline no-op the optimizer deletes,
// so production builds carry no branch on the hot path. Armed faults
// come from the TURBDB_FAULTS environment variable or a `--faults` tool
// flag, both using the spec grammar:
//
//   site=action:arg:count[;site=action:arg:count...]
//
//   actions: delay (arg = ms), error (arg = StatusCode int),
//            truncate (arg = bytes written before the cut),
//            stall (arg = ms)
//
// e.g. TURBDB_FAULTS="server.reply.delay=delay:5000:1" delays the first
// reply by five seconds and then serves normally.
//
// Streamed-reply sites (any armed action fires them):
//   server.chunk_truncate       write only `arg` bytes of a streamed
//                               chunk frame, then sever the connection
//   client.disconnect_mid_stream the client severs its connection after
//                               the first received chunk (server-side
//                               cancel/abort drill)
//
// Storage integrity sites (any armed action fires them):
//   store.bit_flip              XOR one payload byte *on disk* (arg =
//                               offset within the payload) just before
//                               the next FileAtomStore record read, so
//                               checksum verification, quarantine and
//                               repair run against genuine media damage
//   scrub.stall                 hold the next scrub pass at its start
//                               for `arg` ms

#include <cstdint>
#include <string>

#include "common/status.h"

namespace turbdb {
namespace fault {

enum class Action : int {
  kNone = 0,
  kDelay = 1,     ///< Sleep `arg` ms before proceeding.
  kError = 2,     ///< Reply with an error frame of StatusCode `arg`.
  kTruncate = 3,  ///< Write only `arg` bytes of the frame, then cut.
  kStall = 4,     ///< Stall the accept path for `arg` ms.
};

/// What `Check` found armed at a site (kNone if nothing, or the build
/// has faults compiled out).
struct Injected {
  Action action = Action::kNone;
  uint64_t arg = 0;
  explicit operator bool() const { return action != Action::kNone; }
};

#ifdef TURBDB_FAULTS

/// True when any fault is currently armed (cheap pre-check for sites).
bool Enabled();

/// Consumes one armed count at `site` and returns the action, or kNone.
/// Every call — armed or not — bumps the site's hit counter.
Injected Check(const char* site);

/// Arms `count` firings of `action` at `site` (replaces a prior arm).
void Arm(const std::string& site, Action action, uint64_t arg,
         uint64_t count);

/// Disarms `site` (armed-but-unfired counts are dropped).
void Disarm(const std::string& site);

/// Disarms everything and zeroes all hit counters.
void Reset();

/// Times `Check` consumed an armed fault at `site` (not mere passes).
uint64_t Fired(const std::string& site);

/// Parses and arms a spec string (grammar above). Empty spec is a no-op.
Status Configure(const std::string& spec);

/// Arms from the TURBDB_FAULTS environment variable, if set. Returns the
/// parse status so tools can refuse to start on a typo.
Status InitFromEnv();

#else  // !TURBDB_FAULTS — inline no-ops, compiled away entirely.

inline bool Enabled() { return false; }
inline Injected Check(const char*) { return {}; }
inline void Arm(const std::string&, Action, uint64_t, uint64_t) {}
inline void Disarm(const std::string&) {}
inline void Reset() {}
inline uint64_t Fired(const std::string&) { return 0; }
inline Status Configure(const std::string& spec) {
  if (spec.empty()) return Status::OK();
  return Status::NotSupported(
      "fault injection is compiled out (build with -DTURBDB_FAULTS=ON)");
}
inline Status InitFromEnv() { return Status::OK(); }

#endif  // TURBDB_FAULTS

}  // namespace fault
}  // namespace turbdb
