#include "common/governor.h"

#include <chrono>
#include <string>

namespace turbdb {

void ResourceGovernor::AdmitTicket::Release() {
  if (governor_ != nullptr) {
    governor_->ReleaseSlot();
    governor_ = nullptr;
  }
}

void ResourceGovernor::ByteReservation::Release() {
  if (governor_ != nullptr) {
    governor_->ReleaseBytes(bytes_);
    governor_ = nullptr;
    bytes_ = 0;
  }
}

Status ResourceGovernor::TryAdmit(AdmitTicket* ticket) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (max_concurrent_ != 0 && in_flight_ >= max_concurrent_) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "server over admission budget (" + std::to_string(in_flight_) +
          "/" + std::to_string(max_concurrent_) +
          " queries in flight); retry later");
    }
    ++in_flight_;
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  *ticket = AdmitTicket(this);
  return Status::OK();
}

Status ResourceGovernor::TryReserve(uint64_t bytes,
                                    ByteReservation* reservation) {
  if (bytes == 0) {
    *reservation = ByteReservation(this, 0);
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_bytes_ != 0 && bytes_in_use_ + bytes > max_bytes_) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "server over memory budget (" + std::to_string(bytes_in_use_) +
        " bytes in use, " + std::to_string(bytes) + " requested, budget " +
        std::to_string(max_bytes_) + ")");
  }
  bytes_in_use_ += bytes;
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (bytes_in_use_ > peak &&
         !peak_bytes_.compare_exchange_weak(peak, bytes_in_use_,
                                            std::memory_order_relaxed)) {
  }
  *reservation = ByteReservation(this, bytes);
  return Status::OK();
}

Status ResourceGovernor::ReserveBlocking(uint64_t bytes,
                                         ByteReservation* reservation,
                                         const std::atomic<bool>* cancelled) {
  if (bytes == 0) {
    *reservation = ByteReservation(this, 0);
    return Status::OK();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const bool fits = max_bytes_ == 0 || bytes_in_use_ + bytes <= max_bytes_;
    // Progress guarantee: an oversized unit passes when the ledger is
    // empty, so it runs alone instead of waiting forever.
    if (fits || bytes_in_use_ == 0) break;
    if (cancelled != nullptr &&
        cancelled->load(std::memory_order_relaxed)) {
      return Status::Cancelled("reservation abandoned: query cancelled");
    }
    bytes_freed_.wait_for(lock, std::chrono::milliseconds(5));
  }
  bytes_in_use_ += bytes;
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (bytes_in_use_ > peak &&
         !peak_bytes_.compare_exchange_weak(peak, bytes_in_use_,
                                            std::memory_order_relaxed)) {
  }
  *reservation = ByteReservation(this, bytes);
  return Status::OK();
}

uint64_t ResourceGovernor::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

uint64_t ResourceGovernor::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_in_use_;
}

void ResourceGovernor::ReleaseSlot() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_ > 0) --in_flight_;
}

void ResourceGovernor::ReleaseBytes(uint64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bytes_in_use_ = bytes_in_use_ >= bytes ? bytes_in_use_ - bytes : 0;
  }
  bytes_freed_.notify_all();
}

}  // namespace turbdb
