#include "common/governor.h"

#include <chrono>
#include <string>

namespace turbdb {

void ResourceGovernor::AdmitTicket::Release() {
  if (governor_ != nullptr) {
    governor_->ReleaseSlot(tenant_);
    governor_ = nullptr;
    tenant_ = nullptr;
  }
}

void ResourceGovernor::ByteReservation::Release() {
  if (governor_ != nullptr) {
    governor_->ReleaseBytes(bytes_);
    governor_ = nullptr;
    bytes_ = 0;
  }
}

Status ResourceGovernor::TryAdmit(AdmitTicket* ticket) {
  return TryAdmit(std::string(), ticket);
}

Status ResourceGovernor::TryAdmit(const std::string& tenant,
                                  AdmitTicket* ticket) {
  TenantState* state = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    state = TenantFor(tenant);
    if (max_concurrent_ != 0 && in_flight_ >= max_concurrent_) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      if (state != nullptr) ++state->shed;
      return Status::ResourceExhausted(
          "server over admission budget (" + std::to_string(in_flight_) +
          "/" + std::to_string(max_concurrent_) +
          " queries in flight); retry later");
    }
    if (state != nullptr && state->cap != 0 &&
        state->in_flight >= state->cap) {
      shed_.fetch_add(1, std::memory_order_relaxed);
      ++state->shed;
      return Status::ResourceExhausted(
          "tenant '" + (tenant.empty() ? std::string("default") : tenant) +
          "' over admission budget (" + std::to_string(state->in_flight) +
          "/" + std::to_string(state->cap) +
          " queries in flight); retry later");
    }
    ++in_flight_;
    if (state != nullptr) {
      ++state->in_flight;
      ++state->admitted;
      if (state->in_flight > state->peak_in_flight) {
        state->peak_in_flight = state->in_flight;
      }
    }
  }
  admitted_.fetch_add(1, std::memory_order_relaxed);
  *ticket = AdmitTicket(this, state);
  return Status::OK();
}

void ResourceGovernor::SetTenantPolicy(
    uint64_t default_max_in_flight, std::map<std::string, double> weights) {
  std::lock_guard<std::mutex> lock(mutex_);
  default_tenant_max_ = default_max_in_flight;
  tenant_weights_ = std::move(weights);
  total_weight_ = 0.0;
  for (const auto& [name, weight] : tenant_weights_) {
    if (weight > 0.0) total_weight_ += weight;
  }
}

ResourceGovernor::TenantState* ResourceGovernor::TenantFor(
    const std::string& tenant) {
  const bool policy_set =
      default_tenant_max_ != 0 || !tenant_weights_.empty();
  if (tenant.empty() && !policy_set) return nullptr;
  const std::string key = tenant.empty() ? "default" : tenant;
  auto [it, inserted] = tenants_.try_emplace(key);
  if (inserted) {
    auto weight = tenant_weights_.find(key);
    if (weight != tenant_weights_.end() && weight->second > 0.0 &&
        max_concurrent_ != 0 && total_weight_ > 0.0) {
      const double share = static_cast<double>(max_concurrent_) *
                           weight->second / total_weight_;
      it->second.cap =
          share < 1.0 ? 1 : static_cast<uint64_t>(share);
    } else {
      it->second.cap = default_tenant_max_;
    }
  }
  return &it->second;
}

std::vector<ResourceGovernor::TenantCounters>
ResourceGovernor::tenant_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TenantCounters> out;
  out.reserve(tenants_.size());
  for (const auto& [name, state] : tenants_) {
    TenantCounters counters;
    counters.name = name;
    counters.in_flight = state.in_flight;
    counters.peak_in_flight = state.peak_in_flight;
    counters.admitted = state.admitted;
    counters.shed = state.shed;
    counters.cap = state.cap;
    out.push_back(std::move(counters));
  }
  return out;
}

Status ResourceGovernor::TryReserve(uint64_t bytes,
                                    ByteReservation* reservation) {
  if (bytes == 0) {
    *reservation = ByteReservation(this, 0);
    return Status::OK();
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (max_bytes_ != 0 && bytes_in_use_ + bytes > max_bytes_) {
    shed_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "server over memory budget (" + std::to_string(bytes_in_use_) +
        " bytes in use, " + std::to_string(bytes) + " requested, budget " +
        std::to_string(max_bytes_) + ")");
  }
  bytes_in_use_ += bytes;
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (bytes_in_use_ > peak &&
         !peak_bytes_.compare_exchange_weak(peak, bytes_in_use_,
                                            std::memory_order_relaxed)) {
  }
  *reservation = ByteReservation(this, bytes);
  return Status::OK();
}

Status ResourceGovernor::ReserveBlocking(uint64_t bytes,
                                         ByteReservation* reservation,
                                         const std::atomic<bool>* cancelled) {
  if (bytes == 0) {
    *reservation = ByteReservation(this, 0);
    return Status::OK();
  }
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const bool fits = max_bytes_ == 0 || bytes_in_use_ + bytes <= max_bytes_;
    // Progress guarantee: an oversized unit passes when the ledger is
    // empty, so it runs alone instead of waiting forever.
    if (fits || bytes_in_use_ == 0) break;
    if (cancelled != nullptr &&
        cancelled->load(std::memory_order_relaxed)) {
      return Status::Cancelled("reservation abandoned: query cancelled");
    }
    bytes_freed_.wait_for(lock, std::chrono::milliseconds(5));
  }
  bytes_in_use_ += bytes;
  uint64_t peak = peak_bytes_.load(std::memory_order_relaxed);
  while (bytes_in_use_ > peak &&
         !peak_bytes_.compare_exchange_weak(peak, bytes_in_use_,
                                            std::memory_order_relaxed)) {
  }
  *reservation = ByteReservation(this, bytes);
  return Status::OK();
}

uint64_t ResourceGovernor::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

uint64_t ResourceGovernor::bytes_in_use() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return bytes_in_use_;
}

void ResourceGovernor::ReleaseSlot(TenantState* tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (in_flight_ > 0) --in_flight_;
  if (tenant != nullptr && tenant->in_flight > 0) --tenant->in_flight;
}

void ResourceGovernor::ReleaseBytes(uint64_t bytes) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bytes_in_use_ = bytes_in_use_ >= bytes ? bytes_in_use_ - bytes : 0;
  }
  bytes_freed_.notify_all();
}

}  // namespace turbdb
