#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace turbdb {

/// Small resource-accounting layer behind admission control and
/// bounded-memory streaming.
///
/// A `ResourceGovernor` tracks two budgets:
///
///   * **Concurrency** — how many queries may be in flight at once.
///     `TryAdmit` either hands back an RAII `AdmitTicket` or fails fast
///     with `kResourceExhausted` (shed, never queued): under overload the
///     cheapest thing a server can do is say "no" immediately.
///   * **Bytes** — how much result/ingest payload may be buffered at
///     once. `TryReserve` is the fail-fast variant; `ReserveBlocking`
///     waits for space and is meant for internal producers (the
///     streaming encoder, the ingest pager) that hold a slot already and
///     make progress by waiting. To guarantee progress it lets a single
///     oversized reservation through when nothing else is charged,
///     so one chunk larger than the whole budget degrades to serial
///     operation instead of deadlocking.
///
/// Both budgets treat 0 as "unlimited" so a default-constructed governor
/// is a no-op. All counters are monotonic except the in-use gauges;
/// `peak_bytes` records the high-water mark of `bytes_in_use` so tests
/// (and operators) can check that streaming really bounded memory.
///
/// **Per-tenant fair admission (v5).** The concurrency budget can be
/// subdivided by tenant so one flooding principal cannot starve the
/// rest: each admitted request names a tenant (empty = the "default"
/// bucket), and a tenant over its own in-flight cap is shed with
/// `kResourceExhausted` even while the global budget has room.
/// Effective caps come from `SetTenantPolicy`: an explicit weight gives
/// the tenant `max(1, global_cap * weight / total_weight)` slots, any
/// other tenant gets the flat default cap (0 = global budget only).
/// Per-tenant counters (in-flight, peak, admitted, shed) are kept for
/// every tenant ever seen and surfaced through `tenant_stats()`.
class ResourceGovernor {
 public:
  ResourceGovernor() = default;
  ResourceGovernor(uint64_t max_concurrent, uint64_t max_bytes)
      : max_concurrent_(max_concurrent), max_bytes_(max_bytes) {}

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// One tenant's admission snapshot (see tenant_stats()).
  struct TenantCounters {
    std::string name;
    uint64_t in_flight = 0;
    uint64_t peak_in_flight = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t cap = 0;  ///< Effective in-flight cap; 0 = global only.
  };

 private:
  /// Internal per-tenant ledger entry; lives in a std::map so the
  /// pointer a ticket holds stays valid for the governor's lifetime.
  struct TenantState {
    uint64_t in_flight = 0;
    uint64_t peak_in_flight = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t cap = 0;
  };

 public:
  /// RAII admission slot. Releases the concurrency slot on destruction.
  class AdmitTicket {
   public:
    AdmitTicket() = default;
    AdmitTicket(AdmitTicket&& other) noexcept
        : governor_(std::exchange(other.governor_, nullptr)),
          tenant_(std::exchange(other.tenant_, nullptr)) {}
    AdmitTicket& operator=(AdmitTicket&& other) noexcept {
      if (this != &other) {
        Release();
        governor_ = std::exchange(other.governor_, nullptr);
        tenant_ = std::exchange(other.tenant_, nullptr);
      }
      return *this;
    }
    ~AdmitTicket() { Release(); }

    bool valid() const { return governor_ != nullptr; }
    void Release();

   private:
    friend class ResourceGovernor;
    AdmitTicket(ResourceGovernor* governor, TenantState* tenant)
        : governor_(governor), tenant_(tenant) {}
    ResourceGovernor* governor_ = nullptr;
    TenantState* tenant_ = nullptr;
  };

  /// RAII byte reservation. Returns the bytes on destruction.
  class ByteReservation {
   public:
    ByteReservation() = default;
    ByteReservation(ByteReservation&& other) noexcept
        : governor_(std::exchange(other.governor_, nullptr)),
          bytes_(std::exchange(other.bytes_, 0)) {}
    ByteReservation& operator=(ByteReservation&& other) noexcept {
      if (this != &other) {
        Release();
        governor_ = std::exchange(other.governor_, nullptr);
        bytes_ = std::exchange(other.bytes_, 0);
      }
      return *this;
    }
    ~ByteReservation() { Release(); }

    bool valid() const { return governor_ != nullptr; }
    uint64_t bytes() const { return bytes_; }
    void Release();

   private:
    friend class ResourceGovernor;
    ByteReservation(ResourceGovernor* governor, uint64_t bytes)
        : governor_(governor), bytes_(bytes) {}
    ResourceGovernor* governor_ = nullptr;
    uint64_t bytes_ = 0;
  };

  /// Admits a query or sheds it fast. On success `ticket` holds the slot;
  /// on failure returns `kResourceExhausted` naming the limit, and the
  /// shed counter is bumped. Equivalent to TryAdmit("", ticket).
  Status TryAdmit(AdmitTicket* ticket);

  /// Tenant-aware admission: checks the global budget first, then the
  /// tenant's own in-flight cap. An empty `tenant` is billed to the
  /// "default" bucket (tracked only once a tenant policy is set, so
  /// internal node-to-node traffic stays free of bookkeeping until the
  /// operator opts in). Shedding — global or per-tenant — is attributed
  /// to the tenant's counters.
  Status TryAdmit(const std::string& tenant, AdmitTicket* ticket);

  /// Configures per-tenant caps. `default_max_in_flight` caps every
  /// tenant without an explicit weight (0 = no per-tenant cap); each
  /// entry of `weights` grants its tenant a proportional share of the
  /// global concurrency budget: max(1, max_concurrent * w / total_w).
  /// Call before serving traffic; not safe to reconfigure mid-flight.
  void SetTenantPolicy(uint64_t default_max_in_flight,
                       std::map<std::string, double> weights);

  /// Snapshot of every tenant ever admitted or shed, sorted by name.
  std::vector<TenantCounters> tenant_stats() const;

  /// Reserves `bytes` against the byte budget or fails fast with
  /// `kResourceExhausted`. Zero-byte reservations always succeed.
  Status TryReserve(uint64_t bytes, ByteReservation* reservation);

  /// Reserves `bytes`, blocking until space frees up. Progress guarantee:
  /// when nothing is currently charged, one oversized reservation is let
  /// through so a producer whose single unit exceeds the budget still
  /// completes (serially). Returns `kCancelled` if `cancelled` flips
  /// while waiting (poll interval a few ms), never `kResourceExhausted`.
  Status ReserveBlocking(uint64_t bytes, ByteReservation* reservation,
                         const std::atomic<bool>* cancelled = nullptr);

  uint64_t max_concurrent() const { return max_concurrent_; }
  uint64_t max_bytes() const { return max_bytes_; }

  uint64_t in_flight() const;
  uint64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  uint64_t bytes_in_use() const;
  /// High-water mark of bytes_in_use since construction.
  uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

 private:
  void ReleaseSlot(TenantState* tenant);
  void ReleaseBytes(uint64_t bytes);
  /// Ledger entry for `tenant`, created on first sight (mutex_ held).
  /// Returns nullptr when the name is empty and no policy is set.
  TenantState* TenantFor(const std::string& tenant);

  const uint64_t max_concurrent_ = 0;  ///< 0 = unlimited.
  const uint64_t max_bytes_ = 0;       ///< 0 = unlimited.

  mutable std::mutex mutex_;
  std::condition_variable bytes_freed_;
  uint64_t in_flight_ = 0;
  uint64_t bytes_in_use_ = 0;
  uint64_t default_tenant_max_ = 0;        ///< 0 = global budget only.
  std::map<std::string, double> tenant_weights_;
  double total_weight_ = 0.0;
  std::map<std::string, TenantState> tenants_;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> peak_bytes_{0};
};

}  // namespace turbdb
