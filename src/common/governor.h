#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <utility>

#include "common/status.h"

namespace turbdb {

/// Small resource-accounting layer behind admission control and
/// bounded-memory streaming.
///
/// A `ResourceGovernor` tracks two budgets:
///
///   * **Concurrency** — how many queries may be in flight at once.
///     `TryAdmit` either hands back an RAII `AdmitTicket` or fails fast
///     with `kResourceExhausted` (shed, never queued): under overload the
///     cheapest thing a server can do is say "no" immediately.
///   * **Bytes** — how much result/ingest payload may be buffered at
///     once. `TryReserve` is the fail-fast variant; `ReserveBlocking`
///     waits for space and is meant for internal producers (the
///     streaming encoder, the ingest pager) that hold a slot already and
///     make progress by waiting. To guarantee progress it lets a single
///     oversized reservation through when nothing else is charged,
///     so one chunk larger than the whole budget degrades to serial
///     operation instead of deadlocking.
///
/// Both budgets treat 0 as "unlimited" so a default-constructed governor
/// is a no-op. All counters are monotonic except the in-use gauges;
/// `peak_bytes` records the high-water mark of `bytes_in_use` so tests
/// (and operators) can check that streaming really bounded memory.
class ResourceGovernor {
 public:
  ResourceGovernor() = default;
  ResourceGovernor(uint64_t max_concurrent, uint64_t max_bytes)
      : max_concurrent_(max_concurrent), max_bytes_(max_bytes) {}

  ResourceGovernor(const ResourceGovernor&) = delete;
  ResourceGovernor& operator=(const ResourceGovernor&) = delete;

  /// RAII admission slot. Releases the concurrency slot on destruction.
  class AdmitTicket {
   public:
    AdmitTicket() = default;
    AdmitTicket(AdmitTicket&& other) noexcept
        : governor_(std::exchange(other.governor_, nullptr)) {}
    AdmitTicket& operator=(AdmitTicket&& other) noexcept {
      if (this != &other) {
        Release();
        governor_ = std::exchange(other.governor_, nullptr);
      }
      return *this;
    }
    ~AdmitTicket() { Release(); }

    bool valid() const { return governor_ != nullptr; }
    void Release();

   private:
    friend class ResourceGovernor;
    explicit AdmitTicket(ResourceGovernor* governor) : governor_(governor) {}
    ResourceGovernor* governor_ = nullptr;
  };

  /// RAII byte reservation. Returns the bytes on destruction.
  class ByteReservation {
   public:
    ByteReservation() = default;
    ByteReservation(ByteReservation&& other) noexcept
        : governor_(std::exchange(other.governor_, nullptr)),
          bytes_(std::exchange(other.bytes_, 0)) {}
    ByteReservation& operator=(ByteReservation&& other) noexcept {
      if (this != &other) {
        Release();
        governor_ = std::exchange(other.governor_, nullptr);
        bytes_ = std::exchange(other.bytes_, 0);
      }
      return *this;
    }
    ~ByteReservation() { Release(); }

    bool valid() const { return governor_ != nullptr; }
    uint64_t bytes() const { return bytes_; }
    void Release();

   private:
    friend class ResourceGovernor;
    ByteReservation(ResourceGovernor* governor, uint64_t bytes)
        : governor_(governor), bytes_(bytes) {}
    ResourceGovernor* governor_ = nullptr;
    uint64_t bytes_ = 0;
  };

  /// Admits a query or sheds it fast. On success `ticket` holds the slot;
  /// on failure returns `kResourceExhausted` naming the limit, and the
  /// shed counter is bumped.
  Status TryAdmit(AdmitTicket* ticket);

  /// Reserves `bytes` against the byte budget or fails fast with
  /// `kResourceExhausted`. Zero-byte reservations always succeed.
  Status TryReserve(uint64_t bytes, ByteReservation* reservation);

  /// Reserves `bytes`, blocking until space frees up. Progress guarantee:
  /// when nothing is currently charged, one oversized reservation is let
  /// through so a producer whose single unit exceeds the budget still
  /// completes (serially). Returns `kCancelled` if `cancelled` flips
  /// while waiting (poll interval a few ms), never `kResourceExhausted`.
  Status ReserveBlocking(uint64_t bytes, ByteReservation* reservation,
                         const std::atomic<bool>* cancelled = nullptr);

  uint64_t max_concurrent() const { return max_concurrent_; }
  uint64_t max_bytes() const { return max_bytes_; }

  uint64_t in_flight() const;
  uint64_t admitted() const { return admitted_.load(std::memory_order_relaxed); }
  uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }
  uint64_t bytes_in_use() const;
  /// High-water mark of bytes_in_use since construction.
  uint64_t peak_bytes() const {
    return peak_bytes_.load(std::memory_order_relaxed);
  }

 private:
  void ReleaseSlot();
  void ReleaseBytes(uint64_t bytes);

  const uint64_t max_concurrent_ = 0;  ///< 0 = unlimited.
  const uint64_t max_bytes_ = 0;       ///< 0 = unlimited.

  mutable std::mutex mutex_;
  std::condition_variable bytes_freed_;
  uint64_t in_flight_ = 0;
  uint64_t bytes_in_use_ = 0;

  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> peak_bytes_{0};
};

}  // namespace turbdb
