#pragma once

#include <cassert>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace turbdb {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Process-wide minimum level; messages below it are discarded.
/// Defaults to kWarning so that library users see problems but not chatter.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace turbdb

#define TURBDB_LOG(level)                                                  \
  ::turbdb::internal::LogMessage(::turbdb::LogLevel::k##level, __FILE__,   \
                                 __LINE__)

/// Invariant check, active in all build types. Use for conditions that
/// indicate a library bug rather than bad user input.
#define TURBDB_CHECK(cond)                                        \
  if (!(cond))                                                    \
  TURBDB_LOG(Fatal) << "Check failed: " #cond " "

#define TURBDB_CHECK_OK(expr)                                       \
  do {                                                              \
    ::turbdb::Status _st = (expr);                                  \
    if (!_st.ok())                                                  \
      TURBDB_LOG(Fatal) << "Status not OK: " << _st.ToString();     \
  } while (0)

#define TURBDB_DCHECK(cond) assert(cond)
