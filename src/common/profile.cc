#include "common/profile.h"

#include <cstdio>

namespace turbdb {

std::string TimeBreakdown::ToString() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "total=%.3fs (cache=%.3f io=%.3f compute=%.3f db_comm=%.3f "
                "user_comm=%.3f)",
                Total(), cache_lookup_s, io_s, compute_s, mediator_db_comm_s,
                mediator_user_comm_s);
  return buf;
}

}  // namespace turbdb
