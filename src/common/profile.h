#pragma once

#include <algorithm>
#include <cstdint>
#include <string>

namespace turbdb {

/// Modeled wall-clock breakdown of one query execution, using the same
/// categories as Figure 9 of the paper. All values are in (modeled)
/// seconds; see storage/device.h and cluster/network_model.h for the
/// cost models that produce them.
struct TimeBreakdown {
  double cache_lookup_s = 0.0;       ///< Interrogating the semantic cache.
  double io_s = 0.0;                 ///< Reading raw atoms from disk.
  double compute_s = 0.0;            ///< Derived-field kernel evaluation.
  double mediator_db_comm_s = 0.0;   ///< Mediator <-> database nodes.
  double mediator_user_comm_s = 0.0; ///< Mediator <-> end user.

  double Total() const {
    return cache_lookup_s + io_s + compute_s + mediator_db_comm_s +
           mediator_user_comm_s;
  }

  TimeBreakdown& operator+=(const TimeBreakdown& other) {
    cache_lookup_s += other.cache_lookup_s;
    io_s += other.io_s;
    compute_s += other.compute_s;
    mediator_db_comm_s += other.mediator_db_comm_s;
    mediator_user_comm_s += other.mediator_user_comm_s;
    return *this;
  }

  /// Component-wise maximum; used to combine the breakdowns of workers
  /// that run concurrently (the slowest worker determines elapsed time).
  TimeBreakdown MaxWith(const TimeBreakdown& other) const {
    TimeBreakdown out;
    out.cache_lookup_s = std::max(cache_lookup_s, other.cache_lookup_s);
    out.io_s = std::max(io_s, other.io_s);
    out.compute_s = std::max(compute_s, other.compute_s);
    out.mediator_db_comm_s =
        std::max(mediator_db_comm_s, other.mediator_db_comm_s);
    out.mediator_user_comm_s =
        std::max(mediator_user_comm_s, other.mediator_user_comm_s);
    return out;
  }

  std::string ToString() const;
};

/// Byte- and record-level counters accumulated during query execution.
/// These are *real* counts produced by the actual data movement in the
/// simulation (including halo-read redundancy), and feed the cost models.
struct IoCounters {
  uint64_t atoms_read_local = 0;    ///< Atoms read from the node's own disks.
  uint64_t atoms_read_remote = 0;   ///< Halo atoms fetched from neighbors.
  uint64_t bytes_read_local = 0;
  uint64_t bytes_read_remote = 0;
  uint64_t cache_records_scanned = 0;
  uint64_t cache_bytes_scanned = 0;
  uint64_t points_evaluated = 0;    ///< Grid points where the kernel ran.
  uint64_t points_returned = 0;

  IoCounters& operator+=(const IoCounters& other) {
    atoms_read_local += other.atoms_read_local;
    atoms_read_remote += other.atoms_read_remote;
    bytes_read_local += other.bytes_read_local;
    bytes_read_remote += other.bytes_read_remote;
    cache_records_scanned += other.cache_records_scanned;
    cache_bytes_scanned += other.cache_bytes_scanned;
    points_evaluated += other.points_evaluated;
    points_returned += other.points_returned;
    return *this;
  }
};

}  // namespace turbdb
