#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace turbdb {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value could not be produced. Modeled on arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT

  /// Implicit construction from an error status. It is a programming error
  /// to construct a Result from an OK status.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// Returns the status: OK if a value is present.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// Value accessors; undefined behaviour if !ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return value();
    return fallback;
  }

 private:
  std::variant<T, Status> payload_;
};

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define TURBDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define TURBDB_ASSIGN_OR_RETURN(lhs, expr)                                  \
  TURBDB_ASSIGN_OR_RETURN_IMPL(TURBDB_CONCAT_(_res_, __LINE__), lhs, expr)

#define TURBDB_CONCAT_INNER_(a, b) a##b
#define TURBDB_CONCAT_(a, b) TURBDB_CONCAT_INNER_(a, b)

}  // namespace turbdb
