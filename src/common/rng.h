#pragma once

#include <cstdint>

namespace turbdb {

/// SplitMix64: tiny, fast, high-quality 64-bit mixer. Used for seeding and
/// for deterministic per-key randomness in the synthetic data generator
/// (the same (seed, key) always produces the same stream, independent of
/// generation order — essential so that every node and process generates
/// identical field data for the atoms it owns).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n).
  uint64_t NextBounded(uint64_t n) { return n == 0 ? 0 : Next() % n; }

 private:
  uint64_t state_;
};

/// Stateless mix of two 64-bit values into one; used to derive independent
/// sub-seeds (e.g. per-field, per-mode) from a dataset seed.
inline uint64_t MixSeed(uint64_t a, uint64_t b) {
  SplitMix64 rng(a ^ (b * 0x9E3779B97F4A7C15ULL) ^ 0xD1B54A32D192ED03ULL);
  return rng.Next();
}

}  // namespace turbdb
