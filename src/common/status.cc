#include "common/status.h"

namespace turbdb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kThresholdTooLow:
      return "ThresholdTooLow";
    case StatusCode::kResultTooLarge:
      return "ResultTooLarge";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnreachable:
      return "Unreachable";
    case StatusCode::kVersionMismatch:
      return "VersionMismatch";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kWrongOwner:
      return "WrongOwner";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace turbdb
