#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace turbdb {

/// Error categories used throughout the library.
///
/// The codes mirror the failure modes of the production JHTDB service:
/// `kThresholdTooLow` corresponds to the service refusing a threshold query
/// whose result would exceed the per-time-step point cap, and `kAborted`
/// is returned when a snapshot-isolation transaction loses a write-write
/// conflict on the cache tables.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kThresholdTooLow = 5,
  kResultTooLarge = 6,
  kIOError = 7,
  kCorruption = 8,
  kAborted = 9,
  kUnavailable = 10,
  kNotSupported = 11,
  kInternal = 12,
  kUnreachable = 13,
  kVersionMismatch = 14,
  kDeadlineExceeded = 15,
  kCancelled = 16,
  kResourceExhausted = 17,
  /// The request was routed with a stale membership view: the receiving
  /// node no longer (or does not yet) own the addressed Morton range.
  /// Retryable — refresh the membership view and re-route.
  kWrongOwner = 18,
};

/// Returns a stable human-readable name for a status code ("IOError" etc.).
std::string_view StatusCodeToString(StatusCode code);

/// A lightweight success-or-error value, modeled on the Status idiom used
/// by LevelDB/RocksDB/Arrow. Functions that can fail return `Status` (or
/// `Result<T>`); exceptions are not used on query paths.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ThresholdTooLow(std::string msg) {
    return Status(StatusCode::kThresholdTooLow, std::move(msg));
  }
  static Status ResultTooLarge(std::string msg) {
    return Status(StatusCode::kResultTooLarge, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unreachable(std::string msg) {
    return Status(StatusCode::kUnreachable, std::move(msg));
  }
  static Status VersionMismatch(std::string msg) {
    return Status(StatusCode::kVersionMismatch, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status WrongOwner(std::string msg) {
    return Status(StatusCode::kWrongOwner, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsThresholdTooLow() const {
    return code_ == StatusCode::kThresholdTooLow;
  }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }
  bool IsUnreachable() const { return code_ == StatusCode::kUnreachable; }
  bool IsVersionMismatch() const {
    return code_ == StatusCode::kVersionMismatch;
  }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsCancelled() const { return code_ == StatusCode::kCancelled; }
  bool IsResourceExhausted() const {
    return code_ == StatusCode::kResourceExhausted;
  }
  bool IsWrongOwner() const { return code_ == StatusCode::kWrongOwner; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK Status to the caller.
#define TURBDB_RETURN_NOT_OK(expr)                   \
  do {                                               \
    ::turbdb::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace turbdb
