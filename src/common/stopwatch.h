#pragma once

#include <chrono>

namespace turbdb {

/// Monotonic wall-clock stopwatch, in seconds.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the start time to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace turbdb
