#include "common/thread_pool.h"

#include <algorithm>

namespace turbdb {

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(1, num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace turbdb
