#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace turbdb {

/// A fixed-size thread pool.
///
/// Used in two roles that mirror the paper's deployment:
///  - the mediator's asynchronous query scheduler, which submits one
///    sub-query per database node and awaits all of them;
///  - the per-node "processes" that evaluate a threshold query in
///    data-parallel fashion (the paper uses 1-8 worker processes per
///    SQL Server node; we use pool threads).
class ThreadPool {
 public:
  /// Creates a pool with `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Schedules `fn` and returns a future for its result.
  template <typename Fn, typename R = std::invoke_result_t<Fn>>
  std::future<R> Submit(Fn fn) {
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(fn));
    std::future<R> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return future;
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace turbdb
