#include "core/turbdb.h"

#include <map>
#include <mutex>

#include "common/logging.h"
#include "common/rng.h"

namespace turbdb {

TurbDB::TurbDB(std::unique_ptr<Mediator> mediator)
    : mediator_(std::move(mediator)) {}

Result<std::unique_ptr<TurbDB>> TurbDB::Open(const TurbDBConfig& config) {
  TURBDB_ASSIGN_OR_RETURN(std::unique_ptr<Mediator> mediator,
                          Mediator::Create(config.cluster));
  return std::unique_ptr<TurbDB>(new TurbDB(std::move(mediator)));
}

Status TurbDB::CreateDataset(const DatasetInfo& info) {
  return mediator_->CreateDataset(info);
}

Status TurbDB::IngestSyntheticField(const std::string& dataset,
                                    const std::string& field,
                                    const TurbulenceSpec& spec,
                                    int32_t t_begin, int32_t t_end) {
  TURBDB_ASSIGN_OR_RETURN(const DatasetInfo* info,
                          mediator_->GetDataset(dataset));
  TURBDB_ASSIGN_OR_RETURN(const int ncomp, info->FieldNcomp(field));
  SyntheticField generator(spec, info->geometry, ncomp);
  for (int32_t t = t_begin; t < t_end; ++t) {
    TURBDB_RETURN_NOT_OK(mediator_->IngestTimestep(
        dataset, field, t, [&generator](int32_t timestep, uint64_t zindex) {
          return generator.GenerateAtom(timestep, zindex);
        }));
  }
  return Status::OK();
}

Result<ThresholdResult> TurbDB::Threshold(const ThresholdQuery& query,
                                          const QueryOptions& options) {
  return mediator_->GetThreshold(query, options);
}

Result<PdfResult> TurbDB::Pdf(const PdfQuery& query) {
  return mediator_->GetPdf(query);
}

Result<TopKResult> TurbDB::TopK(const TopKQuery& query) {
  return mediator_->GetTopK(query);
}

Result<FieldStatsResult> TurbDB::FieldStats(const FieldStatsQuery& query) {
  return mediator_->GetFieldStats(query);
}

Result<SampleResult> TurbDB::Sample(const SampleQuery& query) {
  return mediator_->GetSamples(query);
}

Result<double> TurbDB::ThresholdForCount(const std::string& dataset,
                                         const std::string& raw_field,
                                         const std::string& derived_field,
                                         int32_t timestep, const Box3& box,
                                         uint64_t target_points) {
  if (target_points == 0 || target_points > kDefaultMaxResultPoints) {
    return Status::InvalidArgument(
        "target point count must be in [1, " +
        std::to_string(kDefaultMaxResultPoints) + "]");
  }
  TopKQuery query;
  query.dataset = dataset;
  query.raw_field = raw_field;
  query.derived_field = derived_field;
  query.timestep = timestep;
  query.box = box;
  query.k = target_points;
  TURBDB_ASSIGN_OR_RETURN(TopKResult result, mediator_->GetTopK(query));
  if (result.points.empty()) {
    return Status::NotFound("the queried box holds no points");
  }
  return static_cast<double>(result.points.back().norm);
}

Status TurbDB::DropCache(const std::string& dataset,
                         const std::string& raw_field,
                         const std::string& derived_field, int32_t timestep) {
  return mediator_->DropCacheEntries(dataset, raw_field, derived_field,
                                     timestep);
}

Result<std::vector<FofCluster>> TurbDB::ClusterPoints(
    const std::string& dataset, const std::vector<FofPoint>& points,
    double linking_length, int32_t time_linking) const {
  TURBDB_ASSIGN_OR_RETURN(const DatasetInfo* info,
                          mediator_->GetDataset(dataset));
  FofParams params;
  params.linking_length = linking_length;
  params.time_linking = time_linking;
  for (int d = 0; d < 3; ++d) {
    params.periodic_extent[d] =
        info->geometry.periodic(d)
            ? static_cast<double>(info->geometry.extent(d))
            : 0.0;
  }
  return FriendsOfFriends(points, params);
}

DatasetInfo MakeIsotropicDataset(const std::string& name, int64_t n,
                                 int32_t timesteps) {
  DatasetInfo info;
  info.name = name;
  info.geometry = GridGeometry::Isotropic(n);
  info.raw_fields = {{"velocity", 3}, {"pressure", 1}};
  info.num_timesteps = timesteps;
  return info;
}

DatasetInfo MakeMhdDataset(const std::string& name, int64_t n,
                           int32_t timesteps) {
  DatasetInfo info;
  info.name = name;
  info.geometry = GridGeometry::Isotropic(n);
  info.raw_fields = {{"velocity", 3}, {"magnetic", 3}, {"potential", 3}};
  info.num_timesteps = timesteps;
  return info;
}

DatasetInfo MakeChannelDataset(const std::string& name, int64_t nx, int64_t ny,
                               int64_t nz, int32_t timesteps) {
  DatasetInfo info;
  info.name = name;
  info.geometry = GridGeometry::Channel(nx, ny, nz);
  info.raw_fields = {{"velocity", 3}, {"pressure", 1}};
  info.num_timesteps = timesteps;
  return info;
}

TurbulenceSpec DefaultIsotropicSpec(uint64_t seed) {
  // The spec defaults are the calibrated values (see TurbulenceSpec):
  // a k^-5/3 Fourier background of 96 modes plus 60 lognormal-strength
  // vortex tubes whose intermittent tail matches the fractions of the
  // paper's Fig. 2 / Fig. 4 within small factors.
  TurbulenceSpec spec;
  spec.seed = seed;
  return spec;
}

TurbulenceSpec DefaultMhdSpec(uint64_t seed) {
  TurbulenceSpec spec = DefaultIsotropicSpec(seed);
  // Slightly stronger intermittency: MHD current sheets are sparser and
  // more intense than hydrodynamic worms.
  spec.tube_omega_log_sigma = 0.45;
  return spec;
}

TurbulenceSpec DefaultChannelSpec(uint64_t seed) {
  TurbulenceSpec spec = DefaultIsotropicSpec(seed);
  spec.shear_u0 = 1.5;
  spec.num_tubes = 32;
  return spec;
}

Status EnsureMhdDemoData(TurbDB* db, const std::string& name, int64_t n,
                         int32_t timesteps, uint64_t seed) {
  TURBDB_RETURN_NOT_OK(
      db->CreateDataset(MakeMhdDataset(name, n, timesteps)));
  // A storage-dir cluster reopened over earlier runs — or remote nodes
  // that outlived a previous mediator — already has atoms.
  TURBDB_ASSIGN_OR_RETURN(const uint64_t stored,
                          db->mediator().StoredAtomCount(name, "velocity"));
  if (stored > 0) {
    return Status::OK();
  }
  TURBDB_RETURN_NOT_OK(db->IngestSyntheticField(
      name, "velocity", DefaultMhdSpec(seed), 0, timesteps));
  return db->IngestSyntheticField(
      name, "magnetic", DefaultMhdSpec(seed * 7919 + 13), 0, timesteps);
}

}  // namespace turbdb
