#pragma once

#include <memory>
#include <string>

#include "analysis/fof.h"
#include "analysis/landmark.h"
#include "cluster/mediator.h"
#include "datagen/turbulence.h"
#include "query/query.h"

namespace turbdb {

/// Top-level configuration; see ClusterConfig and CostModelConfig for the
/// knobs (node count, processes per node, device/network calibration).
struct TurbDBConfig {
  ClusterConfig cluster;
};

/// The public facade of the library: an in-process analysis database
/// cluster for numerical-simulation data, providing the JHTDB-style
/// services the paper describes — on-demand derived fields, threshold /
/// PDF / top-k queries with data-parallel distributed evaluation, an
/// application-aware semantic result cache, and landmark bookkeeping.
///
/// Typical use (see examples/quickstart.cpp):
///
///   TurbDBConfig config;
///   auto db = TurbDB::Open(config).value();
///   db->CreateDataset(MakeIsotropicDataset("iso", 64, 4));
///   db->IngestSyntheticField("iso", "velocity",
///                            DefaultIsotropicSpec(42), 0, 4);
///   ThresholdQuery q{...};
///   auto result = db->Threshold(q);
class TurbDB {
 public:
  static Result<std::unique_ptr<TurbDB>> Open(const TurbDBConfig& config = {});

  /// Registers a dataset (grid + raw field schema) and shards it.
  Status CreateDataset(const DatasetInfo& info);

  /// Generates and ingests time-steps [t_begin, t_end) of `field` from a
  /// synthetic turbulence spec (the stand-in for loading DNS output).
  Status IngestSyntheticField(const std::string& dataset,
                              const std::string& field,
                              const TurbulenceSpec& spec, int32_t t_begin,
                              int32_t t_end);

  // -- Queries ---------------------------------------------------------
  Result<ThresholdResult> Threshold(const ThresholdQuery& query,
                                    const QueryOptions& options = {});
  Result<PdfResult> Pdf(const PdfQuery& query);
  Result<TopKResult> TopK(const TopKQuery& query);
  Result<FieldStatsResult> FieldStats(const FieldStatsQuery& query);

  /// Lagrange interpolation of a stored field at arbitrary positions
  /// (the GetVelocity-style point queries of the production service).
  Result<SampleResult> Sample(const SampleQuery& query);

  /// The threshold whose result set over `box` has (approximately)
  /// `target_points` locations: the norm of the target_points-th largest
  /// value. Scientists pick thresholds by result-set size ("obtaining
  /// the locations with values even within 50% of the maximum would be
  /// sufficient", Sec. 4); this helper answers that directly with one
  /// top-k query and guarantees the returned threshold respects the
  /// result cap.
  Result<double> ThresholdForCount(const std::string& dataset,
                                   const std::string& raw_field,
                                   const std::string& derived_field,
                                   int32_t timestep, const Box3& box,
                                   uint64_t target_points);

  /// Drops cached threshold results (see Mediator::DropCacheEntries).
  Status DropCache(const std::string& dataset, const std::string& raw_field,
                   const std::string& derived_field, int32_t timestep = -1);

  // -- Analysis ----------------------------------------------------------
  /// Friends-of-friends clustering of threshold-query output, with the
  /// dataset's periodicity applied automatically. `time_linking` > 0
  /// links across time-steps (4-D clustering, Fig. 3).
  Result<std::vector<FofCluster>> ClusterPoints(
      const std::string& dataset, const std::vector<FofPoint>& points,
      double linking_length, int32_t time_linking = 0) const;

  LandmarkDatabase& landmarks() { return landmarks_; }
  Mediator& mediator() { return *mediator_; }

 private:
  explicit TurbDB(std::unique_ptr<Mediator> mediator);

  std::unique_ptr<Mediator> mediator_;
  LandmarkDatabase landmarks_;
};

// -- Standard dataset presets (the JHTDB holdings, Sec. 2) --------------

/// Forced isotropic turbulence: periodic n^3 grid, raw fields velocity
/// (3 comp) and pressure (1 comp).
DatasetInfo MakeIsotropicDataset(const std::string& name, int64_t n,
                                 int32_t timesteps);

/// Magnetohydrodynamics: periodic n^3 grid, raw fields velocity, magnetic
/// field and vector potential.
DatasetInfo MakeMhdDataset(const std::string& name, int64_t n,
                           int32_t timesteps);

/// Channel flow: periodic in x/z, wall-bounded stretched y.
DatasetInfo MakeChannelDataset(const std::string& name, int64_t nx, int64_t ny,
                               int64_t nz, int32_t timesteps);

/// Generator presets whose vorticity-norm PDF has the heavy tail of the
/// paper's Fig. 2 (sparse intense vortex tubes over a Kolmogorov
/// background). The same spec with a different seed gives statistically
/// independent fields (e.g. the magnetic field of the MHD dataset).
TurbulenceSpec DefaultIsotropicSpec(uint64_t seed);
TurbulenceSpec DefaultMhdSpec(uint64_t seed);
TurbulenceSpec DefaultChannelSpec(uint64_t seed);

/// Registers the demo MHD dataset `name` (n^3 grid, `timesteps` steps)
/// and ingests its velocity and magnetic fields from the synthetic
/// generator — unless a durable store opened by `db` already holds them,
/// in which case ingestion is skipped. This is the shared bring-up path
/// of the command-line front ends (turbdb_cli and turbdb_server).
Status EnsureMhdDemoData(TurbDB* db, const std::string& name, int64_t n,
                         int32_t timesteps, uint64_t seed);

}  // namespace turbdb
