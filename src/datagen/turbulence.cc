#include "datagen/turbulence.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace turbdb {

namespace {
constexpr double kTwoPi = 6.283185307179586476925286766559;

/// Box-Muller from two uniforms.
double Gaussian(SplitMix64* rng) {
  double u1 = rng->NextDouble();
  double u2 = rng->NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
}

/// Random unit vector, isotropic.
std::array<double, 3> RandomUnit(SplitMix64* rng) {
  for (;;) {
    std::array<double, 3> v = {rng->NextDouble(-1, 1), rng->NextDouble(-1, 1),
                               rng->NextDouble(-1, 1)};
    const double n2 = v[0] * v[0] + v[1] * v[1] + v[2] * v[2];
    if (n2 > 1e-4 && n2 <= 1.0) {
      const double inv = 1.0 / std::sqrt(n2);
      return {v[0] * inv, v[1] * inv, v[2] * inv};
    }
  }
}

std::array<double, 3> Cross(const std::array<double, 3>& a,
                            const std::array<double, 3>& b) {
  return {a[1] * b[2] - a[2] * b[1], a[2] * b[0] - a[0] * b[2],
          a[0] * b[1] - a[1] * b[0]};
}

double Dot(const std::array<double, 3>& a, const std::array<double, 3>& b) {
  return a[0] * b[0] + a[1] * b[1] + a[2] * b[2];
}

}  // namespace

SyntheticField::SyntheticField(const TurbulenceSpec& spec,
                               const GridGeometry& geometry, int ncomp)
    : spec_(spec), geometry_(geometry), ncomp_(ncomp) {
  TURBDB_CHECK(ncomp == 1 || ncomp == 3) << "ncomp must be 1 or 3";
  BuildModes();
  if (ncomp_ == 3) BuildTubes();
}

void SyntheticField::BuildModes() {
  SplitMix64 rng(MixSeed(spec_.seed, 0x4D4F4445 /* 'MODE' */));
  modes_.resize(spec_.num_modes);
  // Sample wavenumber magnitudes log-uniformly in [k_min, k_max] and give
  // each mode the amplitude of its k-shell: E(k) ~ k^slope implies a
  // velocity amplitude ~ k^(slope/2) (up to the shell-count factor, which
  // log-uniform sampling makes constant per octave).
  //
  // Wavevector components are snapped to multiples of the fundamental
  // wavenumber 2*pi/L_d of each periodic axis, so the field is exactly
  // periodic over the domain. A non-periodic mode would put a
  // discontinuity at the wrap boundary, and finite differences across it
  // would fabricate intense spurious "vorticity" there.
  std::array<double, 3> base;
  for (int d = 0; d < 3; ++d) {
    base[d] = geometry_.periodic(d)
                  ? kTwoPi / geometry_.domain_length(d)
                  : kTwoPi / geometry_.domain_length(d);  // Same lattice.
  }
  double sum_amp2 = 0.0;
  for (Mode& mode : modes_) {
    double k_mag = 0.0;
    for (;;) {
      const double log_k = rng.NextDouble(
          std::log(spec_.k_min),
          std::log(std::max(spec_.k_min + 1e-9, spec_.k_max)));
      const double target_mag = std::exp(log_k);
      const std::array<double, 3> dir = RandomUnit(&rng);
      const std::array<double, 3> k_int = {
          std::round(dir[0] * target_mag / base[0]) * base[0],
          std::round(dir[1] * target_mag / base[1]) * base[1],
          std::round(dir[2] * target_mag / base[2]) * base[2]};
      k_mag = std::sqrt(Dot(k_int, k_int));
      if (k_mag < std::max(1.0, spec_.k_min) || k_mag > spec_.k_max) {
        continue;  // Rounding left the shell (or hit k = 0); resample.
      }
      mode.k = k_int;
      break;
    }
    const std::array<double, 3> dir = {mode.k[0] / k_mag, mode.k[1] / k_mag,
                                       mode.k[2] / k_mag};
    // Polarization perpendicular to k => exactly divergence-free mode.
    std::array<double, 3> helper = RandomUnit(&rng);
    std::array<double, 3> pol = Cross(dir, helper);
    double pol_norm = std::sqrt(Dot(pol, pol));
    while (pol_norm < 1e-3) {
      helper = RandomUnit(&rng);
      pol = Cross(dir, helper);
      pol_norm = std::sqrt(Dot(pol, pol));
    }
    mode.pol = {pol[0] / pol_norm, pol[1] / pol_norm, pol[2] / pol_norm};
    mode.amplitude = std::pow(k_mag, spec_.spectrum_slope / 2.0);
    mode.phase = rng.NextDouble(0.0, kTwoPi);
    mode.omega = spec_.mode_omega_scale * k_mag * rng.NextDouble(0.2, 1.0);
    sum_amp2 += mode.amplitude * mode.amplitude;
  }
  // Normalize so each component has RMS ~= u_rms. A mode contributes
  // amplitude^2/2 variance split across the polarization components
  // (averaging to 1/3 per component for isotropic polarizations).
  const double variance_per_comp = sum_amp2 / 2.0 / 3.0;
  const double scale =
      spec_.u_rms / std::sqrt(std::max(variance_per_comp, 1e-30));
  for (Mode& mode : modes_) mode.amplitude *= scale;
}

void SyntheticField::BuildTubes() {
  SplitMix64 rng(MixSeed(spec_.seed, 0x54554245 /* 'TUBE' */));
  tubes_.resize(spec_.num_tubes);
  const double lx = geometry_.domain_length(0);
  const double ly = geometry_.domain_length(1);
  const double lz = geometry_.domain_length(2);
  for (Tube& tube : tubes_) {
    tube.center = {rng.NextDouble(0, lx), rng.NextDouble(0, ly),
                   rng.NextDouble(0, lz)};
    tube.axis = RandomUnit(&rng);
    std::array<double, 3> drift_dir = RandomUnit(&rng);
    const double speed = spec_.tube_drift_speed * rng.NextDouble(0.3, 1.0);
    tube.drift = {drift_dir[0] * speed, drift_dir[1] * speed,
                  drift_dir[2] * speed};
    tube.half_length =
        rng.NextDouble(spec_.tube_length_min, spec_.tube_length_max) / 2.0;
    tube.omega0 = std::exp(spec_.tube_omega_log_mean +
                           spec_.tube_omega_log_sigma * Gaussian(&rng));
    // Burgers vortices carry a roughly circulation-limited core:
    // omega0 = Gamma / (pi * rc^2), so the most intense worms are the
    // thinnest. Coupling the core radius to 1/sqrt(omega0) (relative to
    // the median strength) reproduces that, and with it the steep decay
    // of the extreme tail of the vorticity PDF (Fig. 2).
    const double reference = std::exp(spec_.tube_omega_log_mean);
    const double shrink = std::pow(reference / tube.omega0, 0.8);
    tube.radius =
        rng.NextDouble(spec_.tube_radius_min, spec_.tube_radius_max) *
        std::clamp(shrink, 0.15, 1.5);
    tube.pulse_phase = rng.NextDouble(0.0, kTwoPi);
    tube.pulse_rate = rng.NextDouble(0.2, 1.2);
  }
}

void SyntheticField::AddTubeVelocity(const Tube& tube, double time, double x,
                                     double y, double z, double* out) const {
  // Tube center at this time (wrapped into the periodic box).
  std::array<double, 3> center = tube.center;
  const std::array<double, 3> pos = {x, y, z};
  std::array<double, 3> delta;
  for (int d = 0; d < 3; ++d) {
    center[d] += tube.drift[d] * time;
    const double length = geometry_.domain_length(d);
    double diff = pos[d] - center[d];
    if (geometry_.periodic(d)) {
      // Minimum-image displacement.
      diff -= length * std::floor(diff / length + 0.5);
    }
    delta[d] = diff;
  }
  const double axial = Dot(delta, tube.axis);
  if (std::abs(axial) > 3.0 * tube.half_length) return;
  std::array<double, 3> radial = {delta[0] - axial * tube.axis[0],
                                  delta[1] - axial * tube.axis[1],
                                  delta[2] - axial * tube.axis[2]};
  const double r2 = Dot(radial, radial);
  const double rc = tube.radius;
  if (r2 > 36.0 * rc * rc) return;  // Beyond 6 core radii: negligible.
  const double r = std::sqrt(r2);
  // Burgers vortex azimuthal velocity, parameterized by the peak (axis)
  // vorticity omega0: u_theta(r) = omega0*rc^2/(2r) * (1 - exp(-r^2/rc^2)).
  double u_theta;
  if (r < 1e-9) {
    u_theta = 0.0;
  } else {
    u_theta = tube.omega0 * rc * rc / (2.0 * r) * (1.0 - std::exp(-r2 / (rc * rc)));
  }
  // Strength modulated slowly in time (keeps extreme events time-local).
  const double pulse =
      0.75 + 0.25 * std::sin(tube.pulse_phase + tube.pulse_rate * time);
  // Gaussian envelope along the axis bounds the tube's length.
  const double axial_norm = axial / tube.half_length;
  const double envelope = std::exp(-axial_norm * axial_norm);
  const double factor = u_theta * pulse * envelope;
  if (r < 1e-9) return;
  const std::array<double, 3> tangent = Cross(tube.axis, radial);
  const double tangent_norm = std::sqrt(Dot(tangent, tangent));
  if (tangent_norm < 1e-12) return;
  out[0] += factor * tangent[0] / tangent_norm;
  out[1] += factor * tangent[1] / tangent_norm;
  out[2] += factor * tangent[2] / tangent_norm;
}

void SyntheticField::EvaluateAt(int32_t timestep, double x, double y, double z,
                                double* out) const {
  const double time = spec_.dt * static_cast<double>(timestep);
  for (int c = 0; c < ncomp_; ++c) out[c] = 0.0;
  for (const Mode& mode : modes_) {
    const double arg = mode.k[0] * x + mode.k[1] * y + mode.k[2] * z +
                       mode.phase + mode.omega * time;
    const double value = mode.amplitude * std::cos(arg);
    if (ncomp_ == 3) {
      out[0] += value * mode.pol[0];
      out[1] += value * mode.pol[1];
      out[2] += value * mode.pol[2];
    } else {
      out[0] += value;
    }
  }
  if (ncomp_ == 3) {
    for (const Tube& tube : tubes_) {
      AddTubeVelocity(tube, time, x, y, z, out);
    }
    if (spec_.shear_u0 != 0.0) {
      // Parabolic channel profile; y is physical in [-1, 1] for channel
      // geometry, otherwise normalized to the domain.
      out[0] += spec_.shear_u0 * (1.0 - y * y);
    }
  }
}

void SyntheticField::EvaluateAtNode(int32_t timestep, int64_t i, int64_t j,
                                    int64_t k, double* out) const {
  EvaluateAt(timestep, geometry_.Coord(0, i), geometry_.Coord(1, j),
             geometry_.Coord(2, k), out);
}

Result<Atom> SyntheticField::GenerateAtom(int32_t timestep,
                                          uint64_t zindex) const {
  uint32_t ax, ay, az;
  MortonDecode3(zindex, &ax, &ay, &az);
  const int64_t w = geometry_.atom_width();
  const int64_t x0 = static_cast<int64_t>(ax) * w;
  const int64_t y0 = static_cast<int64_t>(ay) * w;
  const int64_t z0 = static_cast<int64_t>(az) * w;
  if (x0 + w > geometry_.nx() || y0 + w > geometry_.ny() ||
      z0 + w > geometry_.nz()) {
    return Status::OutOfRange("atom outside the grid");
  }
  Atom atom(AtomKey{timestep, zindex}, static_cast<int32_t>(w), ncomp_);
  double value[3];
  for (int64_t k = 0; k < w; ++k) {
    for (int64_t j = 0; j < w; ++j) {
      for (int64_t i = 0; i < w; ++i) {
        EvaluateAtNode(timestep, x0 + i, y0 + j, z0 + k, value);
        for (int c = 0; c < ncomp_; ++c) {
          atom.At(static_cast<int>(i), static_cast<int>(j),
                  static_cast<int>(k), c) = static_cast<float>(value[c]);
        }
      }
    }
  }
  return atom;
}

}  // namespace turbdb
