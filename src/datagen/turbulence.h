#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "array/atom.h"
#include "array/geometry.h"
#include "common/result.h"

namespace turbdb {

/// Parameters of the synthetic turbulence generator.
///
/// The paper's experiments run against DNS output (isotropic turbulence
/// and MHD at 1024^3) that we cannot ship, so the generator synthesizes
/// fields with the two properties the experiments actually exercise:
///
///  1. a solenoidal, statistically homogeneous background with a
///     Kolmogorov-like k^-5/3 spectrum (random-phase Fourier modes whose
///     polarization is perpendicular to their wavevector, hence exactly
///     divergence-free), and
///  2. *intermittency*: sparse intense vortex tubes (Burgers vortices
///     with lognormally distributed peak vorticity) so that the vorticity
///     norm has the heavy right tail of Fig. 2 and thresholds at 4-8x RMS
///     select a small (1e-5..1e-3) fraction of points, as in the paper.
///
/// Everything is deterministic in (seed, timestep, position), so every
/// node and worker generates bit-identical data for the atoms it owns.
struct TurbulenceSpec {
  uint64_t seed = 42;

  // -- Fourier background --
  int num_modes = 96;
  double k_min = 1.0;             ///< Smallest wavenumber magnitude.
  double k_max = 16.0;            ///< Largest wavenumber magnitude.
  double spectrum_slope = -5.0 / 3.0;
  double u_rms = 1.0;             ///< Target RMS of each velocity component.

  // -- Vortex tubes ("worms") --
  // Defaults are calibrated (at 128^3) so the vorticity-norm PDF matches
  // the paper's tail fractions within small factors: ~4e-4 of points
  // above 4.4x RMS, ~1e-4 above 6x, ~2e-5 above 8x (paper: 8.5e-4,
  // 8.1e-5, 4e-6). See EXPERIMENTS.md, Fig. 2/Fig. 4.
  int num_tubes = 60;
  double tube_radius_min = 0.10;  ///< Core radius, physical units.
  double tube_radius_max = 0.17;
  double tube_length_min = 0.3;
  double tube_length_max = 0.9;
  /// Peak tube vorticity is lognormal: exp(N(log_mean, log_sigma)); the
  /// core radius shrinks as omega0^-0.8 (strong worms are thin).
  double tube_omega_log_mean = 3.35;
  double tube_omega_log_sigma = 0.35;

  // -- Time evolution --
  double dt = 0.02;               ///< Physical time between time-steps.
  double mode_omega_scale = 1.0;  ///< Phase advection rate of modes.
  double tube_drift_speed = 0.5;  ///< Tube center drift per unit time.

  /// Adds a parabolic mean profile U(y) = shear_u0 * (1 - y^2) to the x
  /// component (channel-flow-like datasets; y must be the wall-normal,
  /// stretched axis in [-1, 1]).
  double shear_u0 = 0.0;
};

/// Generates one synthetic vector (3-component) or scalar (1-component)
/// field on a grid, atom by atom.
class SyntheticField {
 public:
  /// `ncomp` must be 1 or 3. Scalar fields use the same machinery with
  /// scalar mode amplitudes and Gaussian blobs instead of vortex tubes.
  SyntheticField(const TurbulenceSpec& spec, const GridGeometry& geometry,
                 int ncomp);

  int ncomp() const { return ncomp_; }
  const GridGeometry& geometry() const { return geometry_; }
  const TurbulenceSpec& spec() const { return spec_; }

  /// Evaluates the field at physical position (relative to grid node
  /// coordinates) for the given time-step.
  void EvaluateAt(int32_t timestep, double x, double y, double z,
                  double* out) const;

  /// Evaluates the field at a grid node.
  void EvaluateAtNode(int32_t timestep, int64_t i, int64_t j, int64_t k,
                      double* out) const;

  /// Materializes the atom with the given z-index for `timestep`.
  Result<Atom> GenerateAtom(int32_t timestep, uint64_t zindex) const;

 private:
  struct Mode {
    std::array<double, 3> k;    ///< Wavevector.
    std::array<double, 3> pol;  ///< Polarization (unit, perpendicular to k).
    double amplitude = 0.0;
    double phase = 0.0;
    double omega = 0.0;         ///< Temporal phase rate.
  };
  struct Tube {
    std::array<double, 3> center;
    std::array<double, 3> axis;   ///< Unit direction.
    std::array<double, 3> drift;  ///< Center velocity.
    double radius = 0.0;
    double half_length = 0.0;
    double omega0 = 0.0;          ///< Peak vorticity.
    double pulse_phase = 0.0;
    double pulse_rate = 0.0;
  };

  void BuildModes();
  void BuildTubes();
  void AddTubeVelocity(const Tube& tube, double time, double x, double y,
                       double z, double* out) const;

  TurbulenceSpec spec_;
  GridGeometry geometry_;
  int ncomp_;
  std::vector<Mode> modes_;
  std::vector<Tube> tubes_;
};

}  // namespace turbdb
