#include "fields/derived_field.h"

#include <algorithm>

namespace turbdb {

void MagnitudeField::EvaluateAt(const Slab& slab, const Differentiator&,
                                int64_t x, int64_t y, int64_t z,
                                double* out) const {
  for (int c = 0; c < ncomp_; ++c) out[c] = slab.At(x, y, z, c);
}

void CurlField::EvaluateAt(const Slab& slab, const Differentiator& diff,
                           int64_t x, int64_t y, int64_t z,
                           double* out) const {
  const double dvz_dy = diff.Partial(slab, 2, 1, x, y, z);
  const double dvy_dz = diff.Partial(slab, 1, 2, x, y, z);
  const double dvx_dz = diff.Partial(slab, 0, 2, x, y, z);
  const double dvz_dx = diff.Partial(slab, 2, 0, x, y, z);
  const double dvy_dx = diff.Partial(slab, 1, 0, x, y, z);
  const double dvx_dy = diff.Partial(slab, 0, 1, x, y, z);
  out[0] = dvz_dy - dvy_dz;
  out[1] = dvx_dz - dvz_dx;
  out[2] = dvy_dx - dvx_dy;
}

void VelocityGradientField::EvaluateAt(const Slab& slab,
                                       const Differentiator& diff, int64_t x,
                                       int64_t y, int64_t z,
                                       double* out) const {
  // Row-major: out[3*i + j] = du_i/dx_j.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      out[3 * i + j] = diff.Partial(slab, i, j, x, y, z);
    }
  }
}

namespace {

/// Fills a[9] with the velocity gradient at the node.
void Gradient(const Slab& slab, const Differentiator& diff, int64_t x,
              int64_t y, int64_t z, double* a) {
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      a[3 * i + j] = diff.Partial(slab, i, j, x, y, z);
    }
  }
}

}  // namespace

void QCriterionField::EvaluateAt(const Slab& slab, const Differentiator& diff,
                                 int64_t x, int64_t y, int64_t z,
                                 double* out) const {
  double a[9];
  Gradient(slab, diff, x, y, z, a);
  // Q = -(1/2) tr(A^2) = (||Omega||^2 - ||S||^2)/2 with
  // S = (A + A^T)/2, Omega = (A - A^T)/2.
  double s2 = 0.0;
  double o2 = 0.0;
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      const double sym = 0.5 * (a[3 * i + j] + a[3 * j + i]);
      const double asym = 0.5 * (a[3 * i + j] - a[3 * j + i]);
      s2 += sym * sym;
      o2 += asym * asym;
    }
  }
  out[0] = 0.5 * (o2 - s2);
}

void RInvariantField::EvaluateAt(const Slab& slab, const Differentiator& diff,
                                 int64_t x, int64_t y, int64_t z,
                                 double* out) const {
  double a[9];
  Gradient(slab, diff, x, y, z, a);
  const double det =
      a[0] * (a[4] * a[8] - a[5] * a[7]) - a[1] * (a[3] * a[8] - a[5] * a[6]) +
      a[2] * (a[3] * a[7] - a[4] * a[6]);
  out[0] = -det;
}

void BoxFilterField::EvaluateAt(const Slab& slab, const Differentiator& diff,
                                int64_t x, int64_t y, int64_t z,
                                double* out) const {
  for (int c = 0; c < ncomp_; ++c) out[c] = 0.0;
  const GridGeometry& geometry = diff.geometry();
  // Clamp the window at walls (periodic axes keep the full window; the
  // gathered halo holds the wrapped images).
  const int64_t coords[3] = {x, y, z};
  int64_t lo[3];
  int64_t hi[3];
  for (int d = 0; d < 3; ++d) {
    lo[d] = coords[d] - half_width_;
    hi[d] = coords[d] + half_width_;
    if (!geometry.periodic(d)) {
      lo[d] = std::max<int64_t>(lo[d], 0);
      hi[d] = std::min<int64_t>(hi[d], geometry.extent(d) - 1);
    }
  }
  uint64_t count = 0;
  for (int64_t wz = lo[2]; wz <= hi[2]; ++wz) {
    for (int64_t wy = lo[1]; wy <= hi[1]; ++wy) {
      for (int64_t wx = lo[0]; wx <= hi[0]; ++wx) {
        for (int c = 0; c < ncomp_; ++c) {
          out[c] += slab.At(wx, wy, wz, c);
        }
        ++count;
      }
    }
  }
  const double inverse = count > 0 ? 1.0 / static_cast<double>(count) : 0.0;
  for (int c = 0; c < ncomp_; ++c) out[c] *= inverse;
}

void DivergenceField::EvaluateAt(const Slab& slab, const Differentiator& diff,
                                 int64_t x, int64_t y, int64_t z,
                                 double* out) const {
  out[0] = diff.Partial(slab, 0, 0, x, y, z) +
           diff.Partial(slab, 1, 1, x, y, z) +
           diff.Partial(slab, 2, 2, x, y, z);
}

}  // namespace turbdb
