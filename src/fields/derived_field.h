#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <string>

#include "array/slab.h"
#include "fields/differentiator.h"

namespace turbdb {

/// A field derived on-demand from a raw stored field via a localized
/// kernel of computation (Sec. 4 of the paper). Implementations are
/// stateless and thread-safe; one instance is shared by all workers.
class DerivedField {
 public:
  virtual ~DerivedField() = default;

  /// Stable name used in queries and cache keys ("vorticity", ...).
  virtual std::string name() const = 0;

  /// Number of components the raw input field must have (3 for kernels
  /// on velocity/magnetic data, 0 meaning "any" for passthrough norms).
  virtual int input_ncomp() const = 0;

  /// Number of components this derived field produces.
  virtual int output_ncomp() const = 0;

  /// Stencil half-width of the kernel given the FD order; this is the
  /// width of the boundary band a node may need from its neighbors.
  /// Raw (passthrough) fields return 0.
  virtual int HaloWidth(int fd_order) const = 0;

  /// Estimated floating-point work per grid node; feeds the compute cost
  /// model (calibrated against the per-point rates implied by Fig. 9).
  virtual double FlopsPerPoint(int fd_order) const = 0;

  /// Evaluates the derived field at grid node (x, y, z) from `slab`,
  /// writing output_ncomp() values to `out`.
  virtual void EvaluateAt(const Slab& slab, const Differentiator& diff,
                          int64_t x, int64_t y, int64_t z,
                          double* out) const = 0;

  /// The scalar compared against the query threshold: the L2 norm of the
  /// output vector (reduces to the absolute value for scalar fields).
  double NormAt(const Slab& slab, const Differentiator& diff, int64_t x,
                int64_t y, int64_t z) const {
    double out[9];
    EvaluateAt(slab, diff, x, y, z, out);
    double sum = 0.0;
    const int n = output_ncomp();
    for (int c = 0; c < n; ++c) sum += out[c] * out[c];
    return std::sqrt(sum);
  }
};

/// Norm of the raw stored field itself (e.g. thresholding the magnetic
/// field in Fig. 9(c)): no kernel, no halo, no extra computation.
class MagnitudeField : public DerivedField {
 public:
  /// `ncomp` is the component count of the raw field (1 or 3).
  explicit MagnitudeField(int ncomp = 3) : ncomp_(ncomp) {}

  std::string name() const override { return "magnitude"; }
  int input_ncomp() const override { return ncomp_; }
  int output_ncomp() const override { return ncomp_; }
  int HaloWidth(int) const override { return 0; }
  double FlopsPerPoint(int) const override { return 2.0 * ncomp_; }
  void EvaluateAt(const Slab& slab, const Differentiator& diff, int64_t x,
                  int64_t y, int64_t z, double* out) const override;

 private:
  int ncomp_;
};

/// Curl of a 3-component field: the vorticity when applied to velocity,
/// the electric current when applied to the magnetic field (Eq. 1).
class CurlField : public DerivedField {
 public:
  /// `name` distinguishes the physical quantity ("vorticity", "current")
  /// in cache keys while sharing the kernel implementation.
  explicit CurlField(std::string name = "vorticity")
      : name_(std::move(name)) {}

  std::string name() const override { return name_; }
  int input_ncomp() const override { return 3; }
  int output_ncomp() const override { return 3; }
  int HaloWidth(int fd_order) const override { return fd_order / 2; }
  double FlopsPerPoint(int fd_order) const override {
    // 6 first derivatives, each a (fd_order+1)-point dot product,
    // + 3 subtractions.
    return 6.0 * 2.0 * (fd_order + 1) + 3.0;
  }
  void EvaluateAt(const Slab& slab, const Differentiator& diff, int64_t x,
                  int64_t y, int64_t z, double* out) const override;

 private:
  std::string name_;
};

/// The full velocity-gradient tensor A_ij = du_i/dx_j (9 components).
class VelocityGradientField : public DerivedField {
 public:
  std::string name() const override { return "velocity_gradient"; }
  int input_ncomp() const override { return 3; }
  int output_ncomp() const override { return 9; }
  int HaloWidth(int fd_order) const override { return fd_order / 2; }
  double FlopsPerPoint(int fd_order) const override {
    return 9.0 * 2.0 * (fd_order + 1);
  }
  void EvaluateAt(const Slab& slab, const Differentiator& diff, int64_t x,
                  int64_t y, int64_t z, double* out) const override;
};

/// Second invariant of the velocity gradient:
/// Q = (||Omega||^2 - ||S||^2) / 2, with S and Omega the symmetric and
/// antisymmetric parts of A. A non-linear combination of all nine
/// gradient components, hence costlier than the curl (Sec. 5.4).
class QCriterionField : public DerivedField {
 public:
  std::string name() const override { return "q_criterion"; }
  int input_ncomp() const override { return 3; }
  int output_ncomp() const override { return 1; }
  int HaloWidth(int fd_order) const override { return fd_order / 2; }
  double FlopsPerPoint(int fd_order) const override {
    return 9.0 * 2.0 * (fd_order + 1) + 40.0;
  }
  void EvaluateAt(const Slab& slab, const Differentiator& diff, int64_t x,
                  int64_t y, int64_t z, double* out) const override;
};

/// Third invariant of the velocity gradient: R = -det(A).
class RInvariantField : public DerivedField {
 public:
  std::string name() const override { return "r_invariant"; }
  int input_ncomp() const override { return 3; }
  int output_ncomp() const override { return 1; }
  int HaloWidth(int fd_order) const override { return fd_order / 2; }
  double FlopsPerPoint(int fd_order) const override {
    return 9.0 * 2.0 * (fd_order + 1) + 60.0;
  }
  void EvaluateAt(const Slab& slab, const Differentiator& diff, int64_t x,
                  int64_t y, int64_t z, double* out) const override;
};

/// Top-hat (box) spatial filter of the raw field: the mean over the
/// (2*half_width+1)^3 cube around each node. Spatial filtering is one of
/// the JHTDB's built-in data-intensive routines (Sec. 2, [16]);
/// thresholding the filtered-field norm finds large-scale structures.
/// The filter width, not the FD order, sets the halo.
class BoxFilterField : public DerivedField {
 public:
  explicit BoxFilterField(int half_width = 2, int ncomp = 3)
      : half_width_(half_width), ncomp_(ncomp) {}

  std::string name() const override {
    return "box_filter_" + std::to_string(half_width_);
  }
  int input_ncomp() const override { return ncomp_; }
  int output_ncomp() const override { return ncomp_; }
  int HaloWidth(int) const override { return half_width_; }
  double FlopsPerPoint(int) const override {
    const double window = 2.0 * half_width_ + 1.0;
    return window * window * window * ncomp_ + 2.0 * ncomp_;
  }
  void EvaluateAt(const Slab& slab, const Differentiator& diff, int64_t x,
                  int64_t y, int64_t z, double* out) const override;

 private:
  int half_width_;
  int ncomp_;
};

/// Divergence of a 3-component field. Physically ~0 for incompressible
/// velocity; provided as a numerical-consistency diagnostic.
class DivergenceField : public DerivedField {
 public:
  std::string name() const override { return "divergence"; }
  int input_ncomp() const override { return 3; }
  int output_ncomp() const override { return 1; }
  int HaloWidth(int fd_order) const override { return fd_order / 2; }
  double FlopsPerPoint(int fd_order) const override {
    return 3.0 * 2.0 * (fd_order + 1) + 2.0;
  }
  void EvaluateAt(const Slab& slab, const Differentiator& diff, int64_t x,
                  int64_t y, int64_t z, double* out) const override;
};

}  // namespace turbdb
