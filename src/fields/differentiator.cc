#include "fields/differentiator.h"

#include <algorithm>

#include "common/logging.h"
#include "fields/stencil.h"

namespace turbdb {

Result<Differentiator> Differentiator::Create(const GridGeometry& geometry,
                                              int order) {
  if (!IsSupportedFdOrder(order)) {
    return Status::InvalidArgument("unsupported finite-difference order " +
                                   std::to_string(order));
  }
  TURBDB_RETURN_NOT_OK(geometry.Validate());
  for (int axis = 0; axis < 3; ++axis) {
    if (geometry.extent(axis) < order + 1) {
      return Status::InvalidArgument(
          "grid too small for the requested stencil order");
    }
  }
  Differentiator diff;
  diff.geometry_ = geometry;
  diff.order_ = order;
  diff.half_width_ = FdHalfWidth(order);
  diff.width_ = order + 1;
  for (int axis = 0; axis < 3; ++axis) diff.BuildAxis(axis);
  return diff;
}

void Differentiator::BuildAxis(int axis) {
  const int64_t n = geometry_.extent(axis);
  const double dx = geometry_.Spacing(axis);
  if (geometry_.periodic(axis) && !geometry_.stretched(axis)) {
    uniform_centered_[axis] = true;
    auto coeffs = CenteredFirstDerivative(order_);
    TURBDB_CHECK(coeffs.ok());
    centered_weights_[axis] = std::move(coeffs).value();
    for (double& w : centered_weights_[axis]) w /= dx;
    return;
  }
  // Wall-bounded (and possibly stretched) axis: one stencil row per node,
  // shifted near the walls so every node stays inside the domain.
  uniform_centered_[axis] = false;
  rows_[axis].resize(static_cast<size_t>(n));
  weight_pool_[axis].assign(static_cast<size_t>(n) * width_, 0.0);
  for (int64_t i = 0; i < n; ++i) {
    int64_t start = i - half_width_;
    start = std::max<int64_t>(0, std::min<int64_t>(start, n - width_));
    std::vector<double> nodes(static_cast<size_t>(width_));
    for (int m = 0; m < width_; ++m) {
      nodes[static_cast<size_t>(m)] = geometry_.Coord(axis, start + m);
    }
    const double x0 = geometry_.Coord(axis, i);
    std::vector<double> weights = FornbergWeights(x0, nodes, 1);
    Row& row = rows_[axis][static_cast<size_t>(i)];
    row.start = start;
    row.pool_offset = static_cast<size_t>(i) * width_;
    std::copy(weights.begin(), weights.end(),
              weight_pool_[axis].begin() + row.pool_offset);
  }
}

double Differentiator::Partial(const Slab& slab, int c, int axis, int64_t x,
                               int64_t y, int64_t z) const {
  int64_t coords[3] = {x, y, z};
  double sum = 0.0;
  if (uniform_centered_[axis]) {
    const std::vector<double>& weights = centered_weights_[axis];
    const int64_t base = coords[axis] - half_width_;
    for (int m = 0; m < width_; ++m) {
      if (weights[static_cast<size_t>(m)] == 0.0) continue;
      coords[axis] = base + m;
      sum += weights[static_cast<size_t>(m)] *
             slab.At(coords[0], coords[1], coords[2], c);
    }
    return sum;
  }
  const Row& row = rows_[axis][static_cast<size_t>(coords[axis])];
  const double* weights = weight_pool_[axis].data() + row.pool_offset;
  for (int m = 0; m < width_; ++m) {
    coords[axis] = row.start + m;
    sum += weights[m] * slab.At(coords[0], coords[1], coords[2], c);
  }
  return sum;
}

}  // namespace turbdb
