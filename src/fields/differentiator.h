#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "array/geometry.h"
#include "array/slab.h"
#include "common/result.h"

namespace turbdb {

/// Evaluates first partial derivatives of field components held in a Slab
/// at grid nodes, honoring the grid's periodicity and stretching:
///
///  - periodic uniform axes use the classic centered stencil of the
///    configured order (the halo gathered into the slab supplies the
///    wrapped neighbor values);
///  - non-periodic axes switch to shifted (one-sided) stencils of the
///    same polynomial order near the walls;
///  - the stretched channel y axis uses per-node Fornberg weights
///    computed from the physical node coordinates.
///
/// All weight tables are precomputed at construction, so Partial() on the
/// hot path is a small dot product.
class Differentiator {
 public:
  /// Fails if `order` is unsupported or the geometry is invalid.
  static Result<Differentiator> Create(const GridGeometry& geometry,
                                       int order);

  int order() const { return order_; }
  int half_width() const { return half_width_; }
  const GridGeometry& geometry() const { return geometry_; }

  /// d(component c)/d(axis) at grid node (x, y, z). The slab must contain
  /// the full stencil support for that node.
  double Partial(const Slab& slab, int c, int axis, int64_t x, int64_t y,
                 int64_t z) const;

 private:
  Differentiator() = default;

  /// One node's stencil: weights over nodes [start, start + width).
  /// Weights live at weight_pool_[axis][pool_offset .. pool_offset+width)
  /// (an offset rather than a pointer keeps the object copyable).
  struct Row {
    int64_t start = 0;
    size_t pool_offset = 0;
  };

  void BuildAxis(int axis);

  GridGeometry geometry_;
  int order_ = 4;
  int half_width_ = 2;
  int width_ = 5;  ///< order + 1 nodes per stencil.

  /// For each axis: either a single centered row (periodic uniform axes;
  /// `uniform_centered_[axis]` true) or one row per node index.
  std::array<bool, 3> uniform_centered_{true, true, true};
  std::array<std::vector<double>, 3> centered_weights_;
  std::array<std::vector<Row>, 3> rows_;
  std::array<std::vector<double>, 3> weight_pool_;
};

}  // namespace turbdb
