#include "fields/field_registry.h"

namespace turbdb {

FieldRegistry FieldRegistry::Default() {
  FieldRegistry registry;
  registry.Register("magnitude", [](int raw_ncomp) {
    return std::make_unique<MagnitudeField>(raw_ncomp);
  });
  registry.Register("vorticity", [](int) {
    return std::make_unique<CurlField>("vorticity");
  });
  registry.Register("current", [](int) {
    return std::make_unique<CurlField>("current");
  });
  registry.Register("velocity_gradient", [](int) {
    return std::make_unique<VelocityGradientField>();
  });
  registry.Register("q_criterion", [](int) {
    return std::make_unique<QCriterionField>();
  });
  registry.Register("r_invariant", [](int) {
    return std::make_unique<RInvariantField>();
  });
  registry.Register("divergence", [](int) {
    return std::make_unique<DivergenceField>();
  });
  registry.Register("box_filter", [](int raw_ncomp) {
    return std::make_unique<BoxFilterField>(2, raw_ncomp);
  });
  registry.Register("box_filter_4", [](int raw_ncomp) {
    return std::make_unique<BoxFilterField>(4, raw_ncomp);
  });
  return registry;
}

void FieldRegistry::Register(const std::string& name, Factory factory) {
  factories_[name] = std::move(factory);
}

Result<std::shared_ptr<const DerivedField>> FieldRegistry::Create(
    const std::string& name, int raw_ncomp) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    return Status::NotFound("no derived field named '" + name + "'");
  }
  std::shared_ptr<const DerivedField> field = it->second(raw_ncomp);
  if (field->input_ncomp() != 0 && field->input_ncomp() != raw_ncomp) {
    return Status::InvalidArgument(
        "derived field '" + name + "' requires a raw field with " +
        std::to_string(field->input_ncomp()) + " components, got " +
        std::to_string(raw_ncomp));
  }
  return field;
}

bool FieldRegistry::Contains(const std::string& name) const {
  return factories_.count(name) > 0;
}

std::vector<std::string> FieldRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

}  // namespace turbdb
