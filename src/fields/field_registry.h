#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "fields/derived_field.h"

namespace turbdb {

/// Maps derived-field names to kernel factories.
///
/// The production service implements each derived field as a CLR stored
/// procedure; the registry is our equivalent of that dispatch table, and
/// the place where extensions plug in new quantities (the paper's "long
/// list of Web-service calls", Sec. 7).
class FieldRegistry {
 public:
  /// A registry pre-populated with the built-in fields:
  /// magnitude (1 or 3 comp), vorticity, current, velocity_gradient,
  /// q_criterion, r_invariant, divergence.
  static FieldRegistry Default();

  using Factory = std::function<std::unique_ptr<DerivedField>(int raw_ncomp)>;

  /// Registers (or replaces) a factory under `name`.
  void Register(const std::string& name, Factory factory);

  /// Instantiates the derived field `name` for a raw field with
  /// `raw_ncomp` components; validates component compatibility.
  Result<std::shared_ptr<const DerivedField>> Create(const std::string& name,
                                                     int raw_ncomp) const;

  bool Contains(const std::string& name) const;
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, Factory> factories_;
};

}  // namespace turbdb
