#include "fields/interpolator.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "fields/stencil.h"

namespace turbdb {

Result<LagrangeInterpolator> LagrangeInterpolator::Create(
    const GridGeometry& geometry, int support) {
  if (support != 4 && support != 6 && support != 8) {
    return Status::InvalidArgument(
        "interpolation support must be 4, 6 or 8 nodes (Lag4/6/8)");
  }
  TURBDB_RETURN_NOT_OK(geometry.Validate());
  for (int axis = 0; axis < 3; ++axis) {
    if (geometry.extent(axis) < support) {
      return Status::InvalidArgument("grid too small for the stencil");
    }
  }
  LagrangeInterpolator interpolator;
  interpolator.geometry_ = geometry;
  interpolator.support_ = support;
  return interpolator;
}

int64_t LagrangeInterpolator::BaseNode(int axis, double position) const {
  if (geometry_.stretched(axis)) {
    const std::vector<double>& nodes = geometry_.stretched_y();
    const double clamped =
        std::clamp(position, nodes.front(), nodes.back());
    auto it = std::upper_bound(nodes.begin(), nodes.end(), clamped);
    int64_t index = static_cast<int64_t>(it - nodes.begin()) - 1;
    return std::clamp<int64_t>(index, 0, geometry_.extent(axis) - 2);
  }
  const double length = geometry_.domain_length(axis);
  double wrapped = position;
  if (geometry_.periodic(axis)) {
    wrapped -= length * std::floor(wrapped / length);
  } else {
    wrapped = std::clamp(wrapped, 0.0, length);
  }
  const int64_t index =
      static_cast<int64_t>(std::floor(wrapped / geometry_.Spacing(axis)));
  return std::clamp<int64_t>(index, 0, geometry_.extent(axis) - 1);
}

LagrangeInterpolator::AxisStencil LagrangeInterpolator::StencilFor(
    int axis, double position) const {
  AxisStencil stencil;
  const int64_t n = geometry_.extent(axis);
  const int half = support_ / 2;

  double target = position;
  int64_t start;
  std::vector<double> nodes(static_cast<size_t>(support_));
  if (geometry_.periodic(axis) && !geometry_.stretched(axis)) {
    // Keep the unwrapped stencil centered on the (wrapped) position; the
    // gather supplies periodic images at out-of-range node indices.
    const double length = geometry_.domain_length(axis);
    target -= length * std::floor(target / length);
    const double dx = geometry_.Spacing(axis);
    const int64_t base = static_cast<int64_t>(std::floor(target / dx));
    start = base - (half - 1);
    for (int m = 0; m < support_; ++m) {
      nodes[static_cast<size_t>(m)] = static_cast<double>(start + m) * dx;
    }
  } else {
    // Wall-bounded (possibly stretched): shift the stencil inward.
    target = std::clamp(target, geometry_.Coord(axis, 0),
                        geometry_.Coord(axis, n - 1));
    const int64_t base = BaseNode(axis, target);
    start = std::clamp<int64_t>(base - (half - 1), 0, n - support_);
    for (int m = 0; m < support_; ++m) {
      nodes[static_cast<size_t>(m)] = geometry_.Coord(axis, start + m);
    }
  }
  const std::vector<double> weights = FornbergWeights(target, nodes, 0);
  stencil.start = start;
  for (int m = 0; m < support_; ++m) {
    stencil.weights[static_cast<size_t>(m)] =
        weights[static_cast<size_t>(m)];
  }
  return stencil;
}

Box3 LagrangeInterpolator::SupportBox(
    const std::array<double, 3>& position) const {
  Box3 box;
  for (int axis = 0; axis < 3; ++axis) {
    const AxisStencil stencil = StencilFor(axis, position[axis]);
    box.lo[axis] = stencil.start;
    box.hi[axis] = stencil.start + support_;
  }
  return box;
}

void LagrangeInterpolator::At(const Slab& slab,
                              const std::array<double, 3>& position,
                              int ncomp, double* out) const {
  const AxisStencil sx = StencilFor(0, position[0]);
  const AxisStencil sy = StencilFor(1, position[1]);
  const AxisStencil sz = StencilFor(2, position[2]);
  for (int c = 0; c < ncomp; ++c) out[c] = 0.0;
  for (int mz = 0; mz < support_; ++mz) {
    const double wz = sz.weights[static_cast<size_t>(mz)];
    for (int my = 0; my < support_; ++my) {
      const double wyz = wz * sy.weights[static_cast<size_t>(my)];
      for (int mx = 0; mx < support_; ++mx) {
        const double weight =
            wyz * sx.weights[static_cast<size_t>(mx)];
        for (int c = 0; c < ncomp; ++c) {
          out[c] += weight * slab.At(sx.start + mx, sy.start + my,
                                     sz.start + mz, c);
        }
      }
    }
  }
}

}  // namespace turbdb
