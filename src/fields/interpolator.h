#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "array/geometry.h"
#include "array/slab.h"
#include "common/result.h"

namespace turbdb {

/// Lagrange polynomial interpolation of field values at arbitrary
/// (off-grid) physical positions — the JHTDB's GetVelocity-style point
/// queries (Sec. 2 lists interpolation among the service's built-in
/// analysis routines; the production service offers Lag4/Lag6/Lag8).
///
/// `support` grid nodes per axis (4, 6 or 8) enter the tensor-product
/// basis. Uniform periodic axes use closed-form uniform Lagrange
/// weights; the stretched channel y axis uses the actual node
/// coordinates (Fornberg weights of derivative order 0), and stencils
/// shift inward at walls.
class LagrangeInterpolator {
 public:
  static Result<LagrangeInterpolator> Create(const GridGeometry& geometry,
                                             int support);

  int support() const { return support_; }

  /// Half-width of the neighborhood needed around the base node; the
  /// gather halo for sampling (analogous to the FD kernel half-width).
  int HaloWidth() const { return support_ / 2; }

  const GridGeometry& geometry() const { return geometry_; }

  /// The grid node whose cell contains the position along `axis`
  /// (wrapped for periodic axes, clamped into the domain otherwise).
  int64_t BaseNode(int axis, double position) const;

  /// The (unwrapped) node box the stencil for `position` spans; callers
  /// gather this region (plus periodic images) into the slab.
  Box3 SupportBox(const std::array<double, 3>& position) const;

  /// Interpolates `ncomp` components at `position` from `slab` (which
  /// must cover SupportBox(position) in unwrapped coordinates).
  void At(const Slab& slab, const std::array<double, 3>& position, int ncomp,
          double* out) const;

 private:
  LagrangeInterpolator() = default;

  /// Per-axis stencil for one position: first node + weights.
  struct AxisStencil {
    int64_t start = 0;
    std::array<double, 8> weights{};  // support_ entries used.
  };
  AxisStencil StencilFor(int axis, double position) const;

  GridGeometry geometry_;
  int support_ = 4;
};

}  // namespace turbdb
