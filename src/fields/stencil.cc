#include "fields/stencil.h"

#include "common/logging.h"

namespace turbdb {

bool IsSupportedFdOrder(int order) {
  return order == 2 || order == 4 || order == 6 || order == 8;
}

int FdHalfWidth(int order) { return order / 2; }

Result<std::vector<double>> CenteredFirstDerivative(int order) {
  switch (order) {
    case 2:
      return std::vector<double>{-0.5, 0.0, 0.5};
    case 4:
      return std::vector<double>{1.0 / 12, -2.0 / 3, 0.0, 2.0 / 3,
                                 -1.0 / 12};
    case 6:
      return std::vector<double>{-1.0 / 60, 3.0 / 20, -3.0 / 4, 0.0,
                                 3.0 / 4,  -3.0 / 20, 1.0 / 60};
    case 8:
      return std::vector<double>{1.0 / 280, -4.0 / 105, 1.0 / 5, -4.0 / 5,
                                 0.0,       4.0 / 5,    -1.0 / 5, 4.0 / 105,
                                 -1.0 / 280};
    default:
      return Status::InvalidArgument("unsupported finite-difference order " +
                                     std::to_string(order));
  }
}

std::vector<double> FornbergWeights(double x0,
                                    const std::vector<double>& nodes,
                                    int derivative_order) {
  const int n = static_cast<int>(nodes.size()) - 1;  // Highest node index.
  const int m = derivative_order;
  TURBDB_CHECK(n >= m) << "need at least m+1 nodes for an m-th derivative";
  // delta[k][j] = weight of node j for the k-th derivative, built
  // incrementally as nodes are introduced. This is a direct transcription
  // of Fornberg's 1988 algorithm; note that the new node's row (j == i)
  // must be filled from the *pre-update* values of row i-1, which is why
  // it is computed inside the j loop at j == i-1 before that row is
  // touched.
  std::vector<std::vector<double>> delta(
      m + 1, std::vector<double>(nodes.size(), 0.0));
  delta[0][0] = 1.0;
  double c1 = 1.0;
  for (int i = 1; i <= n; ++i) {
    double c2 = 1.0;
    const double c4 = nodes[static_cast<size_t>(i)] - x0;
    const int mn = std::min(i, m);
    for (int j = 0; j < i; ++j) {
      const double c3 =
          nodes[static_cast<size_t>(i)] - nodes[static_cast<size_t>(j)];
      c2 *= c3;
      if (j == i - 1) {
        const double c5 = nodes[static_cast<size_t>(i - 1)] - x0;
        for (int k = mn; k >= 1; --k) {
          delta[static_cast<size_t>(k)][static_cast<size_t>(i)] =
              c1 *
              (k * delta[static_cast<size_t>(k - 1)][static_cast<size_t>(i - 1)] -
               c5 * delta[static_cast<size_t>(k)][static_cast<size_t>(i - 1)]) /
              c2;
        }
        delta[0][static_cast<size_t>(i)] =
            -c1 * c5 * delta[0][static_cast<size_t>(i - 1)] / c2;
      }
      for (int k = mn; k >= 1; --k) {
        delta[static_cast<size_t>(k)][static_cast<size_t>(j)] =
            (c4 * delta[static_cast<size_t>(k)][static_cast<size_t>(j)] -
             k * delta[static_cast<size_t>(k - 1)][static_cast<size_t>(j)]) /
            c3;
      }
      delta[0][static_cast<size_t>(j)] =
          c4 * delta[0][static_cast<size_t>(j)] / c3;
    }
    c1 = c2;
  }
  return delta[static_cast<size_t>(m)];
}

}  // namespace turbdb
