#pragma once

#include <vector>

#include "common/result.h"

namespace turbdb {

/// Supported centered finite-difference orders for first derivatives.
/// The production JHTDB evaluates derivatives with 4th-order centered
/// differencing by default (Eq. 2 of the paper); 2nd, 6th and 8th order
/// variants are offered as well.
bool IsSupportedFdOrder(int order);

/// Stencil half-width: an order-p centered first derivative uses p/2
/// neighbors on each side. This is also the halo width a worker must
/// gather beyond its chunk (the paper's "kernel half-width" band).
int FdHalfWidth(int order);

/// Coefficients of the centered first-derivative stencil of the given
/// order, for unit grid spacing, ordered from offset -p/2 to +p/2
/// (the center coefficient, always 0, is included).
Result<std::vector<double>> CenteredFirstDerivative(int order);

/// Fornberg's algorithm: weights of the finite-difference approximation
/// of the m-th derivative at `x0` given function values at the (distinct)
/// node coordinates `nodes`. Exact for polynomials of degree
/// nodes.size()-1. Used for one-sided stencils at non-periodic walls and
/// for the stretched y axis of channel-flow grids.
///
/// Reference: B. Fornberg, "Generation of finite difference formulas on
/// arbitrarily spaced grids", Math. Comp. 51 (1988).
std::vector<double> FornbergWeights(double x0, const std::vector<double>& nodes,
                                    int derivative_order);

}  // namespace turbdb
