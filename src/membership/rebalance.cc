#include "membership/rebalance.h"

#include <algorithm>
#include <set>

#include "common/fault.h"
#include "common/logging.h"

namespace turbdb {

Result<RangeMove> RebalancePlanner::PlanOne(
    const MembershipView& view,
    const std::vector<std::vector<uint64_t>>& shard_atoms, int to_shard) {
  // Active shards: base shards are implicitly active unless every node of
  // the shard is draining; joined shards are active via their records.
  std::set<int> draining;
  std::set<int> active;
  for (const NodeRecord& n : view.nodes) {
    if (n.role == NodeRole::kDraining) {
      draining.insert(n.shard);
    } else {
      active.insert(n.shard);
    }
  }
  for (int s : active) draining.erase(s);

  auto load = [&](int shard) -> uint64_t {
    if (shard < 0 || shard >= static_cast<int>(shard_atoms.size())) return 0;
    return shard_atoms[static_cast<size_t>(shard)].size();
  };

  if (to_shard < 0) {
    uint64_t best = UINT64_MAX;
    for (int s : active) {
      if (load(s) < best) {
        best = load(s);
        to_shard = s;
      }
    }
  }
  if (to_shard < 0 || draining.count(to_shard) != 0 ||
      active.count(to_shard) == 0) {
    return Status::InvalidArgument("rebalance target shard " +
                                   std::to_string(to_shard) +
                                   " is not an active shard");
  }

  int donor = -1;
  uint64_t donor_load = 0;
  for (int s : active) {
    if (s == to_shard) continue;
    if (load(s) > donor_load) {
      donor_load = load(s);
      donor = s;
    }
  }
  if (donor < 0 || donor_load < 2 || donor_load <= load(to_shard) + 1) {
    return Status::NotFound("no shard has enough atoms to donate");
  }

  const std::vector<uint64_t>& codes =
      shard_atoms[static_cast<size_t>(donor)];
  // Upper half of the donor's codes, but never more than would invert
  // the imbalance.
  size_t take = (donor_load - load(to_shard)) / 2;
  take = std::min(take, codes.size() - 1);
  if (take == 0) return Status::NotFound("no shard has enough atoms to donate");
  RangeMove move;
  move.from_shard = donor;
  move.to_shard = to_shard;
  move.begin = codes[codes.size() - take];
  move.end = codes.back() + 1;
  move.estimated_atoms = take;
  return move;
}

Result<RangeMover::Outcome> RangeMover::Execute(const RangeMove& move,
                                                const RangeMoverHooks& hooks) {
  if (move.begin >= move.end || move.from_shard == move.to_shard ||
      move.from_shard < 0 || move.to_shard < 0) {
    return Status::InvalidArgument("malformed range move");
  }
  TURBDB_RETURN_NOT_OK(hooks.begin_handoff(move));
  TURBDB_ASSIGN_OR_RETURN(uint64_t copied, hooks.copy_range(move));
  if (fault::Check("handoff.crash_before_cutover")) {
    // The simulated crash window: the copy landed but ownership did not
    // change. Both shards hold the range's atoms; the donor still serves
    // them. A retried move re-copies (skip-existing) and cuts over.
    TURBDB_LOG(Warning)
        << "handoff aborted before cutover (fault injection); range ["
        << move.begin << ", " << move.end << ") stays with shard "
        << move.from_shard;
    return Status::Aborted("handoff crashed before cutover (fault)");
  }
  TURBDB_ASSIGN_OR_RETURN(uint64_t generation, hooks.cutover(move));
  Outcome outcome;
  outcome.atoms_copied = copied;
  outcome.generation = generation;
  return outcome;
}

}  // namespace turbdb
