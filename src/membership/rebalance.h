#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/result.h"
#include "membership/view.h"

namespace turbdb {

/// One planned live migration: the half-open Morton range [begin, end)
/// moves from `from_shard` to `to_shard`.
struct RangeMove {
  uint64_t begin = 0;
  uint64_t end = 0;
  int from_shard = -1;
  int to_shard = -1;
  uint64_t estimated_atoms = 0;  ///< Atom codes inside the range (donor's).
};

/// Chooses which range to move where. Pure ownership math on the current
/// view — no I/O — so it is unit-testable under generation bumps.
class RebalancePlanner {
 public:
  /// Plans one move. `shard_atoms[s]` holds the sorted atom codes shard
  /// `s` effectively owns under the current view (see OwnedAtoms);
  /// entries for draining shards are ignored as donors and targets.
  /// `to_shard` -1 picks the least-loaded active shard; the donor is the
  /// most-loaded active shard other than the target. The move takes the
  /// upper half of the donor's codes, so repeated planning converges
  /// toward balance. Fails with NotFound when no move would help (the
  /// donor holds fewer than two atoms or already is the target).
  static Result<RangeMove> PlanOne(
      const MembershipView& view,
      const std::vector<std::vector<uint64_t>>& shard_atoms, int to_shard);
};

/// The I/O half of a move, supplied by the mediator: each hook runs one
/// phase against the live cluster. Splitting phases from sequencing
/// keeps this library free of transport types and lets tests drive the
/// mover with in-memory hooks.
struct RangeMoverHooks {
  /// Announce the handoff to donor and recipient (double-read window
  /// opens: the donor keeps serving the range while the copy runs).
  std::function<Status(const RangeMove&)> begin_handoff;
  /// Page the range's atoms from the donor to the recipient (SyncRange
  /// paging + skip-existing ingest). Returns atoms copied.
  std::function<Result<uint64_t>(const RangeMove&)> copy_range;
  /// Apply the ownership override, bump the generation, push the new
  /// view. Returns the new generation.
  std::function<Result<uint64_t>(const RangeMove&)> cutover;
};

/// Sequences one live range move: BeginHandoff -> copy -> cutover.
/// The `handoff.crash_before_cutover` fault site fires after the copy
/// and before the cutover, aborting the move there — the cluster is left
/// with the range double-stored but ownership unchanged, which is the
/// crash-consistent state (a re-run of the move converges: the copy
/// skips existing atoms).
class RangeMover {
 public:
  struct Outcome {
    uint64_t atoms_copied = 0;
    uint64_t generation = 0;  ///< Generation after cutover.
  };

  static Result<Outcome> Execute(const RangeMove& move,
                                 const RangeMoverHooks& hooks);
};

}  // namespace turbdb
