#include "membership/registry.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/logging.h"

namespace turbdb {

namespace {

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

/// Parses the persisted registry file. Format, one directive per line:
///   generation <g>
///   replication <r>
///   base_shards <n>
///   node <id> <uuid> <host> <port> <shard> <role> <joined_gen>
///   override <begin> <end> <shard>
Result<MembershipView> ParseFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Errno("open", path);
  MembershipView view;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string directive;
    fields >> directive;
    bool ok = true;
    if (directive == "generation") {
      ok = static_cast<bool>(fields >> view.generation);
    } else if (directive == "replication") {
      ok = static_cast<bool>(fields >> view.replication);
    } else if (directive == "base_shards") {
      ok = static_cast<bool>(fields >> view.base_shards);
    } else if (directive == "node") {
      NodeRecord n;
      int role = 0;
      ok = static_cast<bool>(fields >> n.node_id >> n.uuid >> n.host >>
                             n.port >> n.shard >> role >> n.joined_generation);
      n.role = static_cast<NodeRole>(role);
      if (ok) view.nodes.push_back(std::move(n));
    } else if (directive == "override") {
      RangeOverride o;
      ok = static_cast<bool>(fields >> o.begin >> o.end >> o.shard);
      if (ok) view.overrides.push_back(o);
    } else {
      ok = false;
    }
    if (!ok) {
      return Status::Corruption("membership file " + path + " line " +
                                std::to_string(lineno) + ": " + line);
    }
  }
  return view;
}

}  // namespace

Result<std::unique_ptr<MembershipRegistry>> MembershipRegistry::Open(
    const std::string& dir, const ClusterTopology& seed) {
  const std::string path = dir.empty() ? "" : dir + "/membership.txt";
  if (!path.empty() && ::access(path.c_str(), F_OK) == 0) {
    TURBDB_ASSIGN_OR_RETURN(MembershipView view, ParseFile(path));
    return std::unique_ptr<MembershipRegistry>(
        new MembershipRegistry(path, std::move(view)));
  }
  MembershipView view;
  view.generation = 1;
  view.replication = seed.replication_factor > 0 ? seed.replication_factor : 1;
  view.base_shards = seed.num_groups();
  for (size_t i = 0; i < seed.nodes.size(); ++i) {
    NodeRecord n;
    n.node_id = static_cast<int>(i);
    n.uuid = "boot-" + std::to_string(i);
    n.host = seed.nodes[i].host;
    n.port = seed.nodes[i].port;
    n.shard = static_cast<int>(i) / view.replication;
    n.role = NodeRole::kShard;
    n.joined_generation = 1;
    view.nodes.push_back(std::move(n));
  }
  std::unique_ptr<MembershipRegistry> registry(
      new MembershipRegistry(path, std::move(view)));
  if (!path.empty()) {
    std::lock_guard<std::mutex> lock(registry->mutex_);
    TURBDB_RETURN_NOT_OK(registry->Persist());
  }
  return std::move(registry);
}

MembershipView MembershipRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return view_;
}

uint64_t MembershipRegistry::generation() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return view_.generation;
}

Result<NodeRecord> MembershipRegistry::Admit(const std::string& uuid,
                                             const std::string& host,
                                             uint16_t port) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (NodeRecord& existing : view_.nodes) {
    if (existing.uuid != uuid) continue;
    // Idempotent re-admit: a joiner crash, or the second join phase
    // announcing the real port after binding an ephemeral one. The
    // assigned id/shard stick; only the address refreshes.
    if ((!host.empty() && existing.host != host) ||
        (port != 0 && existing.port != port)) {
      if (!host.empty()) existing.host = host;
      if (port != 0) existing.port = port;
      TURBDB_RETURN_NOT_OK(Persist());
    }
    return existing;
  }
  NodeRecord n;
  n.uuid = uuid;
  n.host = host;
  n.port = port;
  int max_id = -1;
  int max_shard = view_.base_shards - 1;
  for (const NodeRecord& r : view_.nodes) {
    max_id = std::max(max_id, r.node_id);
    max_shard = std::max(max_shard, r.shard);
  }
  n.node_id = max_id + 1;
  n.shard = max_shard + 1;
  n.role = NodeRole::kJoining;
  ++view_.generation;
  n.joined_generation = view_.generation;
  view_.nodes.push_back(n);
  TURBDB_RETURN_NOT_OK(Persist());
  return n;
}

Result<NodeRecord> MembershipRegistry::Activate(const std::string& uuid) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (NodeRecord& n : view_.nodes) {
    if (n.uuid == uuid) {
      if (n.role != NodeRole::kShard) {
        n.role = NodeRole::kShard;
        ++view_.generation;
        TURBDB_RETURN_NOT_OK(Persist());
      }
      return n;
    }
  }
  return Status::NotFound("no admitted node with uuid " + uuid);
}

Result<NodeRecord> MembershipRegistry::Decommission(int node_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (NodeRecord& n : view_.nodes) {
    if (n.node_id == node_id) {
      if (n.role != NodeRole::kDraining) {
        n.role = NodeRole::kDraining;
        ++view_.generation;
        TURBDB_RETURN_NOT_OK(Persist());
      }
      return n;
    }
  }
  return Status::NotFound("no node with id " + std::to_string(node_id));
}

Result<uint64_t> MembershipRegistry::ApplyOverride(uint64_t begin,
                                                   uint64_t end, int shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (begin >= end) {
    return Status::InvalidArgument("empty override range");
  }
  view_.ApplyOverride(begin, end, shard);
  ++view_.generation;
  TURBDB_RETURN_NOT_OK(Persist());
  return view_.generation;
}

Status MembershipRegistry::Persist() const {
  if (path_.empty()) return Status::OK();
  std::ostringstream out;
  out << "# turbdb membership registry (rewritten on every change)\n";
  out << "generation " << view_.generation << "\n";
  out << "replication " << view_.replication << "\n";
  out << "base_shards " << view_.base_shards << "\n";
  for (const NodeRecord& n : view_.nodes) {
    out << "node " << n.node_id << " " << n.uuid << " " << n.host << " "
        << n.port << " " << n.shard << " " << static_cast<int>(n.role) << " "
        << n.joined_generation << "\n";
  }
  for (const RangeOverride& o : view_.overrides) {
    out << "override " << o.begin << " " << o.end << " " << o.shard << "\n";
  }
  const std::string text = out.str();
  const std::string tmp = path_ + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("create", tmp);
  const ssize_t written = ::write(fd, text.data(), text.size());
  if (written != static_cast<ssize_t>(text.size()) || ::fsync(fd) != 0) {
    Status status = Errno("write", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path_.c_str()) != 0) {
    Status status = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return status;
  }
  return Status::OK();
}

}  // namespace turbdb
