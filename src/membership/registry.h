#pragma once

#include <memory>
#include <mutex>
#include <string>

#include "cluster/topology.h"
#include "common/result.h"
#include "membership/view.h"

namespace turbdb {

/// The mediator's authoritative membership registry (the analogue of
/// tarantool's `_cluster` space plus its replicaset config): node records
/// and range overrides, versioned by a monotonic generation that every
/// mutation bumps, persisted to `<dir>/membership.txt` with the usual
/// write-temp + fsync + rename discipline. Nodes and clients receive
/// snapshots (MembershipView) pushed on change; the registry itself never
/// leaves the mediator process.
///
/// Thread-safe; every method takes the internal mutex.
class MembershipRegistry {
 public:
  /// `dir` may be empty (ephemeral registry: nothing persisted). When a
  /// persisted file exists it wins over `seed`; otherwise the registry is
  /// seeded from the static boot topology at generation 1, one record
  /// per topology entry (shard = index / replication_factor).
  static Result<std::unique_ptr<MembershipRegistry>> Open(
      const std::string& dir, const ClusterTopology& seed);

  /// Current membership snapshot.
  MembershipView Snapshot() const;

  uint64_t generation() const;

  /// Admits a joining node: assigns the next free node id and a fresh
  /// shard id (joined nodes form new single-replica shards), records it
  /// with role kJoining, bumps the generation, persists. Re-admitting a
  /// known uuid (a joiner retrying after a crash) returns the existing
  /// record unchanged. The new shard owns no ranges until rebalanced.
  Result<NodeRecord> Admit(const std::string& uuid, const std::string& host,
                           uint16_t port);

  /// Flips an admitted node to active (role kShard) once it is serving.
  Result<NodeRecord> Activate(const std::string& uuid);

  /// Marks a node draining: its shard disappears from routing once its
  /// ranges have been moved away. Bumps the generation, persists.
  Result<NodeRecord> Decommission(int node_id);

  /// Re-homes [begin, end) to `shard` (the rebalance cutover). Bumps the
  /// generation, persists.
  Result<uint64_t> ApplyOverride(uint64_t begin, uint64_t end, int shard);

 private:
  MembershipRegistry(std::string path, MembershipView view)
      : path_(std::move(path)), view_(std::move(view)) {}

  /// Writes the registry to path_ (temp + fsync + rename). Caller holds
  /// mutex_.
  Status Persist() const;

  std::string path_;  ///< Empty = ephemeral.
  mutable std::mutex mutex_;
  MembershipView view_;
};

}  // namespace turbdb
