#include "membership/view.h"

namespace turbdb {

std::vector<uint64_t> OwnedAtomsInBox(const MortonPartitioner& partitioner,
                                      const MembershipView& view, int shard,
                                      const Box3& atom_box) {
  const int base = partitioner.num_nodes();
  if (view.overrides.empty()) {
    if (shard < 0 || shard >= base) return {};
    return partitioner.NodeAtomsInBox(shard, atom_box);
  }
  std::vector<uint64_t> owned;
  for (int b = 0; b < base; ++b) {
    for (uint64_t code : partitioner.NodeAtomsInBox(b, atom_box)) {
      if (view.OwnerOf(code, b) == shard) owned.push_back(code);
    }
  }
  std::sort(owned.begin(), owned.end());
  return owned;
}

std::vector<uint64_t> OwnedAtoms(const MortonPartitioner& partitioner,
                                 const MembershipView& view, int shard) {
  const int base = partitioner.num_nodes();
  if (view.overrides.empty()) {
    if (shard < 0 || shard >= base) return {};
    return partitioner.NodeAtoms(shard);
  }
  std::vector<uint64_t> owned;
  for (int b = 0; b < base; ++b) {
    for (uint64_t code : partitioner.NodeAtoms(b)) {
      if (view.OwnerOf(code, b) == shard) owned.push_back(code);
    }
  }
  std::sort(owned.begin(), owned.end());
  return owned;
}

}  // namespace turbdb
