#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "array/box.h"
#include "array/morton.h"
#include "cluster/partitioner.h"

namespace turbdb {

/// Role of a node record within the cluster.
enum class NodeRole : int {
  kShard = 0,     ///< Active shard serving its owned ranges.
  kJoining = 1,   ///< Admitted, not yet activated (handshake pending).
  kDraining = 2,  ///< Decommissioned; ranges moved away, routing removed.
};

inline const char* NodeRoleName(NodeRole role) {
  switch (role) {
    case NodeRole::kShard:
      return "shard";
    case NodeRole::kJoining:
      return "joining";
    case NodeRole::kDraining:
      return "draining";
  }
  return "unknown";
}

/// One row of the membership registry — the analogue of a tarantool
/// `_cluster` space tuple. `shard` is the logical shard this physical
/// node belongs to (nodes of the same shard are replicas).
struct NodeRecord {
  int node_id = -1;  ///< Physical node id (index into the wire topology).
  std::string uuid;  ///< Stable instance identity across restarts.
  std::string host;
  uint16_t port = 0;
  int shard = -1;
  NodeRole role = NodeRole::kShard;
  /// Membership generation at which this node joined the cluster.
  uint64_t joined_generation = 0;

  std::string Address() const {
    return host + ":" + std::to_string(port);
  }
};

/// A half-open Morton code interval whose ownership diverges from the
/// base partitioner assignment: codes in [begin, end) belong to `shard`
/// regardless of what the static partitioning says. Overrides are how
/// live rebalancing re-homes ranges without re-creating partitioners.
struct RangeOverride {
  uint64_t begin = 0;
  uint64_t end = 0;
  int shard = -1;

  bool Contains(uint64_t code) const { return code >= begin && code < end; }
  bool operator==(const RangeOverride& other) const {
    return begin == other.begin && end == other.end && shard == other.shard;
  }
};

/// A consistent snapshot of cluster membership, versioned by a monotonic
/// generation. The mediator owns the authoritative copy (persisted to
/// disk); nodes and clients hold pushed copies and stamp the generation
/// into request headers so stale routing is detected (`kWrongOwner`).
///
/// Ownership of a Morton code is resolved in two steps: the static
/// MortonPartitioner (built for `base_shards` shards at dataset-creation
/// time) gives the base owner, then the sorted disjoint `overrides` list
/// re-homes any code falling inside an override range. Shards with id >=
/// base_shards (joined after the dataset was created) own nothing except
/// what overrides assign them.
struct MembershipView {
  uint64_t generation = 0;
  int replication = 1;
  /// Shard count the datasets' partitioners were built with.
  int base_shards = 0;
  std::vector<NodeRecord> nodes;
  /// Sorted by `begin`, pairwise disjoint.
  std::vector<RangeOverride> overrides;

  /// Effective owner of `code` given its base (partitioner) owner.
  int OwnerOf(uint64_t code, int base_owner) const {
    const RangeOverride* ov = FindOverride(code);
    return ov != nullptr ? ov->shard : base_owner;
  }

  /// The override covering `code`, or nullptr.
  const RangeOverride* FindOverride(uint64_t code) const {
    if (overrides.empty()) return nullptr;
    auto it = std::upper_bound(
        overrides.begin(), overrides.end(), code,
        [](uint64_t c, const RangeOverride& o) { return c < o.begin; });
    if (it == overrides.begin()) return nullptr;
    --it;
    return it->Contains(code) ? &*it : nullptr;
  }

  /// Splices a new override into the sorted list, splitting or trimming
  /// any existing overrides it overlaps and merging with adjacent
  /// overrides of the same shard. An override handing a range back to
  /// its base owner still needs an entry only while it differs from the
  /// base assignment; callers pass the winning shard either way and the
  /// list stays an exact record of divergence-by-construction (the
  /// planner only moves ranges away from their current owner).
  void ApplyOverride(uint64_t begin, uint64_t end, int shard) {
    if (begin >= end) return;
    std::vector<RangeOverride> next;
    next.reserve(overrides.size() + 2);
    for (const RangeOverride& o : overrides) {
      if (o.end <= begin || o.begin >= end) {
        next.push_back(o);
        continue;
      }
      // Overlap: keep the non-overlapping fragments of the old override.
      if (o.begin < begin) next.push_back({o.begin, begin, o.shard});
      if (o.end > end) next.push_back({end, o.end, o.shard});
    }
    next.push_back({begin, end, shard});
    std::sort(next.begin(), next.end(),
              [](const RangeOverride& a, const RangeOverride& b) {
                return a.begin < b.begin;
              });
    // Coalesce adjacent ranges owned by the same shard.
    overrides.clear();
    for (const RangeOverride& o : next) {
      if (!overrides.empty() && overrides.back().shard == o.shard &&
          overrides.back().end == o.begin) {
        overrides.back().end = o.end;
      } else {
        overrides.push_back(o);
      }
    }
  }

  /// Number of logical shards routable in this view (base shards plus
  /// any later-joined, still-active shards).
  int NumShards() const {
    int max_shard = base_shards - 1;
    for (const NodeRecord& n : nodes) {
      if (n.role != NodeRole::kDraining) max_shard = std::max(max_shard, n.shard);
    }
    return max_shard + 1;
  }

  const NodeRecord* FindByUuid(const std::string& uuid) const {
    for (const NodeRecord& n : nodes) {
      if (n.uuid == uuid) return &n;
    }
    return nullptr;
  }

  const NodeRecord* FindByNodeId(int node_id) const {
    for (const NodeRecord& n : nodes) {
      if (n.node_id == node_id) return &n;
    }
    return nullptr;
  }
};

/// Sorted z-indices of the atoms shard `shard` effectively owns under
/// `view`, restricted to `atom_box`. Fast path: with no overrides this
/// is exactly the partitioner's assignment (and shards the partitioner
/// does not know own nothing).
std::vector<uint64_t> OwnedAtomsInBox(const MortonPartitioner& partitioner,
                                      const MembershipView& view, int shard,
                                      const Box3& atom_box);

/// All atoms shard `shard` effectively owns under `view` (sorted).
std::vector<uint64_t> OwnedAtoms(const MortonPartitioner& partitioner,
                                 const MembershipView& view, int shard);

}  // namespace turbdb
