#include "net/client.h"

#include <chrono>
#include <thread>

namespace turbdb {
namespace net {

namespace {

/// The retry predicate: ONLY transport-level failures — connect refused,
/// reset, EOF (kIOError) or a deadline expiring mid-read (kUnavailable) —
/// earn a reconnect + retry. Every *typed* failure is a final answer and
/// must fail fast: an error frame the server sent, a Corruption from a
/// garbled payload, and in particular kVersionMismatch — retrying a peer
/// that speaks the wrong protocol version burns the whole backoff budget
/// to learn the same fact N times.
bool IsTransportFailure(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kUnavailable;
}

/// Wall-clock measurement around one RPC, written into the decoded
/// result so remote calls report like local ones.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Client::Client(std::string host, uint16_t port, ClientOptions options)
    : host_(std::move(host)), port_(port), options_(options) {}

Status Client::EnsureConnected() {
  if (conn_.valid()) return Status::OK();
  TURBDB_ASSIGN_OR_RETURN(
      conn_, TcpConnect(host_, port_,
                        Deadline::After(options_.connect_timeout_ms)));
  return Status::OK();
}

Result<std::vector<uint8_t>> Client::CallOnce(
    const std::vector<uint8_t>& request) {
  TURBDB_RETURN_NOT_OK(EnsureConnected());
  TURBDB_RETURN_NOT_OK(WriteFrame(
      conn_, request, Deadline::After(options_.write_timeout_ms)));
  return ReadFrame(conn_, Deadline::After(options_.read_timeout_ms),
                   options_.max_frame_bytes);
}

Result<std::vector<uint8_t>> Client::Call(
    const std::vector<uint8_t>& request) {
  int backoff_ms = options_.backoff_initial_ms;
  Status last;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms *= 2;
    }
    auto response = CallOnce(request);
    if (response.ok()) return response;
    last = response.status();
    // The connection's stream state is unknown after any failure; drop
    // it so the next attempt starts clean.
    conn_.Close();
    if (!IsTransportFailure(last)) return last;
  }
  // A distinct code: the peer is unreachable after every attempt, as
  // opposed to merely slow (Unavailable) on one of them. Callers (the
  // CLI, the mediator's remote-node path) surface this differently from
  // a query error.
  return Status::Unreachable(
      host_ + ":" + std::to_string(port_) + " unreachable: " +
      last.message() + " (after " +
      std::to_string(options_.max_retries + 1) + " attempts)");
}

Result<ThresholdResult> Client::Threshold(const ThresholdQuery& query,
                                          const QueryOptions& options) {
  WallTimer timer;
  ThresholdRequest request;
  request.query = query;
  request.options = options;
  request.rpc.deadline_ms = options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request)));
  TURBDB_ASSIGN_OR_RETURN(ThresholdResult result,
                          DecodeThresholdResponse(payload));
  result.wall_seconds = timer.Seconds();
  return result;
}

Result<PdfResult> Client::Pdf(const PdfQuery& query) {
  WallTimer timer;
  PdfRequest request;
  request.query = query;
  request.rpc.deadline_ms = options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request)));
  TURBDB_ASSIGN_OR_RETURN(PdfResult result, DecodePdfResponse(payload));
  result.wall_seconds = timer.Seconds();
  return result;
}

Result<TopKResult> Client::TopK(const TopKQuery& query) {
  WallTimer timer;
  TopKRequest request;
  request.query = query;
  request.rpc.deadline_ms = options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request)));
  TURBDB_ASSIGN_OR_RETURN(TopKResult result, DecodeTopKResponse(payload));
  result.wall_seconds = timer.Seconds();
  return result;
}

Result<FieldStatsResult> Client::FieldStats(const FieldStatsQuery& query) {
  WallTimer timer;
  FieldStatsRequest request;
  request.query = query;
  request.rpc.deadline_ms = options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request)));
  TURBDB_ASSIGN_OR_RETURN(FieldStatsResult result,
                          DecodeFieldStatsResponse(payload));
  result.wall_seconds = timer.Seconds();
  return result;
}

Result<ServerStatsReply> Client::ServerStats() {
  ServerStatsRequest request;
  request.rpc.deadline_ms = options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request)));
  return DecodeServerStatsResponse(payload);
}

Status Client::Ping(uint64_t delay_ms) {
  PingRequest request;
  request.delay_ms = delay_ms;
  request.rpc.deadline_ms = options_.deadline_ms;
  auto payload = Call(EncodeRequest(request));
  if (!payload.ok()) return payload.status();
  return DecodePingResponse(*payload);
}

Result<HelloReply> Client::Hello() {
  HelloRequest request;
  request.rpc.deadline_ms = options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request)));
  return DecodeHelloResponse(payload);
}

Status Client::NodeCreateDataset(const NodeCreateDatasetRequest& request) {
  NodeCreateDatasetRequest req = request;
  req.rpc.deadline_ms = options_.deadline_ms;
  auto payload = Call(EncodeRequest(req));
  if (!payload.ok()) return payload.status();
  return DecodeAckResponse(*payload, MsgType::kNodeCreateDatasetResponse);
}

Status Client::NodeIngest(const NodeIngestRequest& request) {
  NodeIngestRequest req = request;
  req.rpc.deadline_ms = options_.deadline_ms;
  auto payload = Call(EncodeRequest(req));
  if (!payload.ok()) return payload.status();
  return DecodeAckResponse(*payload, MsgType::kNodeIngestResponse);
}

Result<NodeResult> Client::NodeExecute(const NodeExecuteRequest& request) {
  NodeExecuteRequest req = request;
  if (req.rpc.deadline_ms == 0) req.rpc.deadline_ms = options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(req)));
  return DecodeNodeExecuteResponse(payload);
}

Result<NodeFetchAtomsReply> Client::NodeFetchAtoms(
    const NodeFetchAtomsRequest& request) {
  NodeFetchAtomsRequest req = request;
  if (req.rpc.deadline_ms == 0) req.rpc.deadline_ms = options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(req)));
  return DecodeNodeFetchAtomsResponse(payload);
}

Status Client::NodeDropCache(const NodeDropCacheRequest& request) {
  NodeDropCacheRequest req = request;
  req.rpc.deadline_ms = options_.deadline_ms;
  auto payload = Call(EncodeRequest(req));
  if (!payload.ok()) return payload.status();
  return DecodeAckResponse(*payload, MsgType::kNodeDropCacheResponse);
}

Result<NodeStatsReply> Client::NodeStats(const NodeStatsRequest& request) {
  NodeStatsRequest req = request;
  req.rpc.deadline_ms = options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(req)));
  return DecodeNodeStatsResponse(payload);
}

Result<NodeSyncRangeReply> Client::NodeSyncRange(
    const NodeSyncRangeRequest& request) {
  NodeSyncRangeRequest req = request;
  if (req.rpc.deadline_ms == 0) req.rpc.deadline_ms = options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(req)));
  return DecodeNodeSyncRangeResponse(payload);
}

Result<NodeListStoresReply> Client::NodeListStores() {
  NodeListStoresRequest request;
  request.rpc.deadline_ms = options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request)));
  return DecodeNodeListStoresResponse(payload);
}

}  // namespace net
}  // namespace turbdb
