#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iterator>
#include <thread>

#include "common/fault.h"
#include "wire/serializer.h"

namespace turbdb {
namespace net {

namespace {

/// The retry predicate: ONLY transport-level failures — connect refused,
/// reset, EOF (kIOError) or a deadline expiring mid-read (kUnavailable) —
/// earn a reconnect + retry. Every *typed* failure is a final answer and
/// must fail fast: an error frame the server sent, a Corruption from a
/// garbled payload, a server-reported kDeadlineExceeded or kCancelled
/// (the budget is spent / the mediator gave up — a retry would only make
/// it later), and in particular kVersionMismatch — retrying a peer that
/// speaks the wrong protocol version burns the whole backoff budget to
/// learn the same fact N times.
bool IsTransportFailure(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kUnavailable;
}

/// Remaining milliseconds of the query budget; -1 when no budget was
/// set. 0 means exhausted.
int64_t RemainingBudgetMs(const Deadline& budget) {
  if (budget.infinite()) return -1;
  return budget.PollTimeoutMs();
}

/// Per-operation deadline: the configured timeout, shortened to the
/// query budget when that is tighter.
Deadline BoundedBy(int timeout_ms, int64_t remaining_budget_ms) {
  if (remaining_budget_ms < 0) return Deadline::After(timeout_ms);
  return Deadline::After(
      std::min<int64_t>(timeout_ms, remaining_budget_ms));
}

/// Wall-clock measurement around one RPC, written into the decoded
/// result so remote calls report like local ones.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

Client::Client(std::string host, uint16_t port, ClientOptions options)
    : host_(std::move(host)),
      port_(port),
      options_(options),
      site_disconnect_mid_stream_(options_.fault_scope +
                                  "client.disconnect_mid_stream"),
      backoff_rng_(MixSeed(std::hash<std::string>{}(host_), port_)) {}

Status Client::EnsureConnected(Deadline deadline) {
  if (conn_.valid()) return Status::OK();
  TURBDB_ASSIGN_OR_RETURN(conn_, TcpConnect(host_, port_, deadline));
  return Status::OK();
}

Result<std::vector<uint8_t>> Client::CallOnce(
    const std::vector<uint8_t>& request, const Deadline& budget,
    const StreamHooks* stream) {
  int64_t remaining = RemainingBudgetMs(budget);
  TURBDB_RETURN_NOT_OK(EnsureConnected(
      BoundedBy(options_.connect_timeout_ms, remaining)));
  // Stamp the budget *remaining at send time* into the frame header so
  // the server sees what the caller is still willing to wait for.
  remaining = RemainingBudgetMs(budget);
  const uint32_t stamp =
      remaining < 0 ? 0
                    : static_cast<uint32_t>(std::min<int64_t>(
                          std::max<int64_t>(remaining, 1), UINT32_MAX));
  TURBDB_RETURN_NOT_OK(
      WriteFrame(conn_, request,
                 BoundedBy(options_.write_timeout_ms, remaining), stamp));
  while (true) {
    TURBDB_ASSIGN_OR_RETURN(
        std::vector<uint8_t> payload,
        ReadFrame(
            conn_,
            BoundedBy(options_.read_timeout_ms, RemainingBudgetMs(budget)),
            options_.max_frame_bytes));
    if (stream == nullptr) return payload;
    TURBDB_ASSIGN_OR_RETURN(MsgType type, PeekResponseType(payload));
    if (type != MsgType::kThresholdChunk && type != MsgType::kFofChunk) {
      // The terminating frame: the summary response or an error frame.
      return payload;
    }
    TURBDB_RETURN_NOT_OK(stream->chunk(payload));
    if (fault::Check(site_disconnect_mid_stream_.c_str())) {
      // Drill: the reader vanishes with chunks still in flight. The
      // server's next chunk write fails, flipping the query's cancel
      // token and thereby the not-yet-joined shards.
      conn_.Close();
      return Status::IOError("injected mid-stream disconnect");
    }
  }
}

Result<std::vector<uint8_t>> Client::Call(
    const std::vector<uint8_t>& request, uint64_t budget_ms,
    const StreamHooks* stream) {
  const Deadline budget = budget_ms > 0
                              ? Deadline::After(static_cast<int64_t>(budget_ms))
                              : Deadline::Infinite();
  int64_t backoff_ms = options_.backoff_initial_ms;
  Status last;
  int attempts = 0;
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    if (attempt > 0) {
      // Exponential backoff with uniform jitter in [delay/2, delay): a
      // fleet of clients retrying the same dead node must not
      // reconverge in lockstep. Never sleep past the query budget —
      // the remaining time belongs to the next attempt, not to waiting.
      const int64_t half = std::max<int64_t>(backoff_ms / 2, 1);
      int64_t delay =
          half + static_cast<int64_t>(backoff_rng_.NextBounded(
                     static_cast<uint64_t>(std::max<int64_t>(
                         backoff_ms - half, 1))));
      const int64_t remaining = RemainingBudgetMs(budget);
      if (remaining >= 0 && delay >= remaining) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
      backoff_ms *= 2;
    }
    if (budget.Expired()) break;
    ++attempts;
    // A retried streamed call starts over: chunks of different attempts
    // must never mix, so partial state from a failed attempt is dropped.
    if (stream != nullptr && stream->restart) stream->restart();
    auto response = CallOnce(request, budget, stream);
    if (response.ok()) {
      // kWrongOwner is the one *typed* error worth retrying: the node a
      // query landed on lost the range to a live rebalance after the
      // query was planned. The server re-plans each attempt under its
      // current membership view, so a fresh attempt lands on the new
      // owner. The connection itself is healthy — keep it.
      last = PeekErrorStatus(*response);
      if (!last.IsWrongOwner()) return response;
      continue;
    }
    last = response.status();
    // The connection's stream state is unknown after any failure; drop
    // it so the next attempt starts clean.
    conn_.Close();
    if (!IsTransportFailure(last)) return last;
  }
  if (last.IsWrongOwner()) {
    // Ownership kept moving for the whole retry budget; surface the
    // typed error, not "unreachable" — the peer answered every time.
    return last;
  }
  const std::string endpoint = host_ + ":" + std::to_string(port_);
  if (!budget.infinite() && budget.Expired()) {
    // The budget ran out, as opposed to the retry count: a typed
    // deadline error naming the spent budget, so callers (and the CLI's
    // exit code) can tell "too slow" from "not there".
    return Status::DeadlineExceeded(
        "query budget of " + std::to_string(budget_ms) + " ms exhausted on " +
        endpoint + (last.ok() ? "" : ": " + last.message()) + " (after " +
        std::to_string(attempts) + " attempt" + (attempts == 1 ? "" : "s") +
        ")");
  }
  // A distinct code: the peer is unreachable after every attempt, as
  // opposed to merely slow (Unavailable) on one of them. Callers (the
  // CLI, the mediator's remote-node path) surface this differently from
  // a query error.
  return Status::Unreachable(
      endpoint + " unreachable: " + last.message() + " (after " +
      std::to_string(attempts) + " attempts)");
}

Result<ThresholdResult> Client::Threshold(const ThresholdQuery& query,
                                          const QueryOptions& options) {
  WallTimer timer;
  ThresholdRequest request;
  request.query = query;
  request.options = options;
  request.rpc.tenant = options_.tenant;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), options_.deadline_ms));
  TURBDB_ASSIGN_OR_RETURN(ThresholdResult result,
                          DecodeThresholdResponse(payload));
  result.wall_seconds = timer.Seconds();
  return result;
}

Result<ThresholdResult> Client::ThresholdStreamed(
    const ThresholdQuery& query, const QueryOptions& options) {
  WallTimer timer;
  ThresholdRequest request;
  request.query = query;
  request.options = options;
  request.stream = true;
  request.rpc.tenant = options_.tenant;

  std::vector<ThresholdPoint> points;
  uint64_t next_seq = 0;
  StreamHooks hooks;
  hooks.restart = [&]() {
    points.clear();
    next_seq = 0;
  };
  hooks.chunk = [&](const std::vector<uint8_t>& payload) -> Status {
    TURBDB_ASSIGN_OR_RETURN(ThresholdChunk chunk,
                            DecodeThresholdChunk(payload));
    if (chunk.seq != next_seq) {
      return Status::Corruption(
          "streamed reply chunk gap: expected seq " +
          std::to_string(next_seq) + ", got " + std::to_string(chunk.seq));
    }
    ++next_seq;
    points.insert(points.end(),
                  std::make_move_iterator(chunk.points.begin()),
                  std::make_move_iterator(chunk.points.end()));
    return Status::OK();
  };

  TURBDB_ASSIGN_OR_RETURN(
      std::vector<uint8_t> payload,
      Call(EncodeRequest(request), options_.deadline_ms, &hooks));
  TURBDB_ASSIGN_OR_RETURN(ThresholdResult result,
                          DecodeThresholdResponse(payload));
  // The terminating summary carries no points; reassemble the streamed
  // set. Z-order indices are unique per grid point, so sorting on them
  // reproduces the non-streamed ordering exactly — and recomputing the
  // encodings here makes the byte counters match the non-streamed path
  // byte for byte.
  std::sort(points.begin(), points.end(),
            [](const ThresholdPoint& a, const ThresholdPoint& b) {
              return a.zindex < b.zindex;
            });
  result.points = std::move(points);
  result.result_bytes_binary = EncodePointsBinary(result.points).size();
  result.result_bytes_xml = EncodePointsXml(result.points).size();
  result.wall_seconds = timer.Seconds();
  return result;
}

Result<FofResult> Client::Fof(const FofRequest& request) {
  WallTimer timer;
  FofRequest stamped = request;
  stamped.rpc.tenant = options_.tenant;

  FofResult result;
  uint64_t next_seq = 0;
  StreamHooks hooks;
  hooks.restart = [&]() {
    result.clusters.clear();
    next_seq = 0;
  };
  hooks.chunk = [&](const std::vector<uint8_t>& payload) -> Status {
    TURBDB_ASSIGN_OR_RETURN(FofChunk chunk, DecodeFofChunk(payload));
    if (chunk.seq != next_seq) {
      return Status::Corruption(
          "streamed FoF reply chunk gap: expected seq " +
          std::to_string(next_seq) + ", got " + std::to_string(chunk.seq));
    }
    ++next_seq;
    result.clusters.insert(result.clusters.end(),
                           std::make_move_iterator(chunk.clusters.begin()),
                           std::make_move_iterator(chunk.clusters.end()));
    return Status::OK();
  };

  const uint64_t budget = stamped.rpc.deadline_ms != 0 ? stamped.rpc.deadline_ms
                                                       : options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(stamped), budget, &hooks));
  TURBDB_ASSIGN_OR_RETURN(result.summary, DecodeFofResponse(payload));
  if (result.summary.clusters != result.clusters.size()) {
    return Status::Corruption(
        "streamed FoF reply incomplete: summary says " +
        std::to_string(result.summary.clusters) + " clusters, received " +
        std::to_string(result.clusters.size()));
  }
  result.wall_seconds = timer.Seconds();
  return result;
}

Result<PdfResult> Client::Pdf(const PdfQuery& query) {
  WallTimer timer;
  PdfRequest request;
  request.query = query;
  request.rpc.tenant = options_.tenant;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), options_.deadline_ms));
  TURBDB_ASSIGN_OR_RETURN(PdfResult result, DecodePdfResponse(payload));
  result.wall_seconds = timer.Seconds();
  return result;
}

Result<TopKResult> Client::TopK(const TopKQuery& query) {
  WallTimer timer;
  TopKRequest request;
  request.query = query;
  request.rpc.tenant = options_.tenant;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), options_.deadline_ms));
  TURBDB_ASSIGN_OR_RETURN(TopKResult result, DecodeTopKResponse(payload));
  result.wall_seconds = timer.Seconds();
  return result;
}

Result<FieldStatsResult> Client::FieldStats(const FieldStatsQuery& query) {
  WallTimer timer;
  FieldStatsRequest request;
  request.query = query;
  request.rpc.tenant = options_.tenant;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), options_.deadline_ms));
  TURBDB_ASSIGN_OR_RETURN(FieldStatsResult result,
                          DecodeFieldStatsResponse(payload));
  result.wall_seconds = timer.Seconds();
  return result;
}

Result<ServerStatsReply> Client::ServerStats() {
  ServerStatsRequest request;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), options_.deadline_ms));
  return DecodeServerStatsResponse(payload);
}

Result<DropCacheReply> Client::DropCache(const DropCacheRequest& request) {
  DropCacheRequest stamped = request;
  stamped.rpc.tenant = options_.tenant;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(stamped), options_.deadline_ms));
  return DecodeDropCacheResponse(payload);
}

Result<CacheStatsReply> Client::CacheStats() {
  CacheStatsRequest request;
  request.rpc.tenant = options_.tenant;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), options_.deadline_ms));
  return DecodeCacheStatsResponse(payload);
}

Result<CacheWarmReply> Client::CacheWarm(const ThresholdQuery& query) {
  CacheWarmRequest request;
  request.query = query;
  request.rpc.tenant = options_.tenant;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), options_.deadline_ms));
  return DecodeCacheWarmResponse(payload);
}

Result<CachePinReply> Client::CachePin(const CachePinRequest& request) {
  CachePinRequest stamped = request;
  stamped.rpc.tenant = options_.tenant;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(stamped), options_.deadline_ms));
  return DecodeCachePinResponse(payload, MsgType::kCachePinResponse);
}

Result<CachePinReply> Client::CacheUnpin(const CacheUnpinRequest& request) {
  CacheUnpinRequest stamped = request;
  stamped.rpc.tenant = options_.tenant;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(stamped), options_.deadline_ms));
  return DecodeCachePinResponse(payload, MsgType::kCacheUnpinResponse);
}

Status Client::Ping(uint64_t delay_ms) {
  PingRequest request;
  request.delay_ms = delay_ms;
  auto payload = Call(EncodeRequest(request), options_.deadline_ms);
  if (!payload.ok()) return payload.status();
  return DecodePingResponse(*payload);
}

Result<HelloReply> Client::Hello() {
  HelloRequest request;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), options_.deadline_ms));
  return DecodeHelloResponse(payload);
}

Result<bool> Client::CancelQuery(uint64_t query_id) {
  CancelRequest request;
  request.rpc.query_id = query_id;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), options_.deadline_ms));
  TURBDB_ASSIGN_OR_RETURN(CancelReply reply, DecodeCancelResponse(payload));
  return reply.found;
}

// The Node* wrappers honor a per-request budget (rpc.deadline_ms) when
// the caller set one — the mediator's remote-node path deducts its own
// elapsed time per hop — and fall back to the client-wide default.

Status Client::NodeCreateDataset(const NodeCreateDatasetRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  auto payload = Call(EncodeRequest(request), budget);
  if (!payload.ok()) return payload.status();
  return DecodeAckResponse(*payload, MsgType::kNodeCreateDatasetResponse);
}

Status Client::NodeIngest(const NodeIngestRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  auto payload = Call(EncodeRequest(request), budget);
  if (!payload.ok()) return payload.status();
  return DecodeAckResponse(*payload, MsgType::kNodeIngestResponse);
}

Result<NodeResult> Client::NodeExecute(const NodeExecuteRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  if (!request.stream) {
    TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                            Call(EncodeRequest(request), budget));
    return DecodeNodeExecuteResponse(payload);
  }
  // Streamed sub-reply: reassemble the chunked points around the
  // terminating NodeResult. Chunk order is the node's point order, so no
  // re-sort here — the mediator orders the merged set.
  std::vector<ThresholdPoint> points;
  uint64_t next_seq = 0;
  StreamHooks hooks;
  hooks.restart = [&]() {
    points.clear();
    next_seq = 0;
  };
  hooks.chunk = [&](const std::vector<uint8_t>& payload) -> Status {
    TURBDB_ASSIGN_OR_RETURN(ThresholdChunk chunk,
                            DecodeThresholdChunk(payload));
    if (chunk.seq != next_seq) {
      return Status::Corruption(
          "streamed sub-reply chunk gap: expected seq " +
          std::to_string(next_seq) + ", got " + std::to_string(chunk.seq));
    }
    ++next_seq;
    points.insert(points.end(),
                  std::make_move_iterator(chunk.points.begin()),
                  std::make_move_iterator(chunk.points.end()));
    return Status::OK();
  };
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), budget, &hooks));
  TURBDB_ASSIGN_OR_RETURN(NodeResult result,
                          DecodeNodeExecuteResponse(payload));
  result.points = std::move(points);
  return result;
}

Result<NodeFetchAtomsReply> Client::NodeFetchAtoms(
    const NodeFetchAtomsRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), budget));
  return DecodeNodeFetchAtomsResponse(payload);
}

Status Client::NodeDropCache(const NodeDropCacheRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  auto payload = Call(EncodeRequest(request), budget);
  if (!payload.ok()) return payload.status();
  return DecodeAckResponse(*payload, MsgType::kNodeDropCacheResponse);
}

Result<NodeStatsReply> Client::NodeStats(const NodeStatsRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), budget));
  return DecodeNodeStatsResponse(payload);
}

Result<NodeSyncRangeReply> Client::NodeSyncRange(
    const NodeSyncRangeRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), budget));
  return DecodeNodeSyncRangeResponse(payload);
}

Result<NodeListStoresReply> Client::NodeListStores() {
  NodeListStoresRequest request;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), options_.deadline_ms));
  return DecodeNodeListStoresResponse(payload);
}

Result<NodeMerkleReply> Client::NodeMerkle(const NodeMerkleRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), budget));
  return DecodeNodeMerkleResponse(payload);
}

Result<NodeScrubReply> Client::NodeScrub(const NodeScrubRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), budget));
  return DecodeNodeScrubResponse(payload);
}

Result<NodeRepairRangeReply> Client::NodeRepairRange(
    const NodeRepairRangeRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), budget));
  return DecodeNodeRepairRangeResponse(payload);
}

Result<JoinReply> Client::Join(const JoinRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), budget));
  return DecodeJoinResponse(payload);
}

Result<LeaveReply> Client::Leave(const LeaveRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), budget));
  return DecodeLeaveResponse(payload);
}

Result<MembershipGetReply> Client::MembershipGet() {
  MembershipGetRequest request;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), options_.deadline_ms));
  return DecodeMembershipGetResponse(payload);
}

Status Client::MembershipUpdate(const MembershipUpdateRequest& request) {
  auto payload = Call(EncodeRequest(request), options_.deadline_ms);
  if (!payload.ok()) return payload.status();
  return DecodeAckResponse(*payload, MsgType::kMembershipUpdateResponse);
}

Status Client::BeginHandoff(const BeginHandoffRequest& request) {
  auto payload = Call(EncodeRequest(request), options_.deadline_ms);
  if (!payload.ok()) return payload.status();
  return DecodeAckResponse(*payload, MsgType::kBeginHandoffResponse);
}

Status Client::Cutover(const CutoverRequest& request) {
  auto payload = Call(EncodeRequest(request), options_.deadline_ms);
  if (!payload.ok()) return payload.status();
  return DecodeAckResponse(*payload, MsgType::kCutoverResponse);
}

Result<RebalanceReply> Client::Rebalance(const RebalanceRequest& request) {
  const uint64_t budget = request.rpc.deadline_ms != 0 ? request.rpc.deadline_ms
                                                       : options_.deadline_ms;
  TURBDB_ASSIGN_OR_RETURN(std::vector<uint8_t> payload,
                          Call(EncodeRequest(request), budget));
  return DecodeRebalanceResponse(payload);
}

}  // namespace net
}  // namespace turbdb
