#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"
#include "query/query.h"

namespace turbdb {
namespace net {

struct ClientOptions {
  int connect_timeout_ms = 5000;
  /// How long one call may wait for the response frame. Should exceed
  /// `deadline_ms`, or the client gives up while the server still
  /// considers the request live.
  int read_timeout_ms = 70000;
  int write_timeout_ms = 10000;
  /// Extra attempts after a transport-level failure (connect refused,
  /// reset, read timeout). Query RPCs are read-only, hence idempotent
  /// and safe to retry. Typed failures — server-reported errors,
  /// Corruption, VersionMismatch, DeadlineExceeded, Cancelled — are
  /// never retried: a peer speaking the wrong protocol version fails
  /// fast instead of burning backoff.
  int max_retries = 2;
  /// First retry waits this long; each further retry doubles it, with
  /// uniform jitter in [delay/2, delay) so a fleet of clients retrying
  /// the same dead node does not reconverge in lockstep.
  int backoff_initial_ms = 100;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-query deadline budget in milliseconds (0 = none). This bounds
  /// the WHOLE call — every attempt plus every backoff sleep — and the
  /// *remaining* budget at send time is stamped into each request
  /// frame's v3 header so the server (and its downstream halo fetches)
  /// can size their work to it. An exhausted budget returns a typed
  /// kDeadlineExceeded, never kUnreachable.
  uint64_t deadline_ms = 0;
  /// Prefix prepended to this client's fault-injection site names
  /// (TURBDB_FAULTS builds), mirroring ServerOptions::fault_scope: when
  /// a process hosts several clients (a user client and the mediator's
  /// node channels), scoping pins an armed `client.*` fault to one of
  /// them deterministically. Empty = the documented site names.
  std::string fault_scope;
  /// Tenant name stamped into every request this client issues (v5
  /// payload header). The server bills admission to this tenant's
  /// fairness bucket; empty means the shared "default" bucket (and no
  /// per-tenant bookkeeping at all until the server opts into a tenant
  /// policy). The mediator's internal node channels leave this empty.
  std::string tenant;
};

/// Reassembled distributed friends-of-friends reply: the terminating
/// summary plus the streamed cluster records, in server order (size
/// descending, then id ascending).
struct FofResult {
  FofReply summary;
  std::vector<FofClusterRecord> clusters;
  double wall_seconds = 0.0;
};

/// Remote counterpart of the Mediator query API: connects to a
/// turbdb_server and issues framed RPCs. One Client drives one
/// connection and is not thread-safe; it reconnects lazily after any
/// transport failure. Decoded results carry the point sets, counters and
/// modeled time; `wall_seconds` is measured locally around the RPC.
class Client {
 public:
  Client(std::string host, uint16_t port, ClientOptions options = {});

  Result<ThresholdResult> Threshold(const ThresholdQuery& query,
                                    const QueryOptions& options = {});

  /// Streamed variant of Threshold: asks the server for a chunked reply
  /// (a sequence of kThresholdChunk frames terminated by a summary
  /// frame) and reassembles the point set locally — the server never
  /// buffers the full result, and a slow reader throttles the producer
  /// through TCP backpressure. The returned result is byte-identical in
  /// points to the non-streamed call. A transport failure mid-stream
  /// discards every partial chunk and restarts the query from scratch on
  /// the next retry attempt (chunks of different attempts never mix).
  ///
  /// Fault site (TURBDB_FAULTS builds): `client.disconnect_mid_stream`
  /// severs the connection after the first received chunk — the
  /// server-side abort/cancel drill.
  Result<ThresholdResult> ThresholdStreamed(const ThresholdQuery& query,
                                            const QueryOptions& options = {});

  /// Distributed friends-of-friends clustering over the points of
  /// `request.query`: a streamed reply (kFofChunk frames terminated by
  /// the summary) reassembled locally. Cluster ids are deterministic
  /// (smallest member z-index) and the membership matches the
  /// in-process FriendsOfFriends byte for byte. A transport failure
  /// mid-stream restarts the query from scratch on the next attempt.
  Result<FofResult> Fof(const FofRequest& request);

  Result<PdfResult> Pdf(const PdfQuery& query);
  Result<TopKResult> TopK(const TopKQuery& query);
  Result<FieldStatsResult> FieldStats(const FieldStatsQuery& query);
  Result<ServerStatsReply> ServerStats();

  // Mediator cache controls. DropCache clears both tiers (mediator +
  // node-local); the others act on the mediator-tier result cache only.
  Result<DropCacheReply> DropCache(const DropCacheRequest& request);
  Result<CacheStatsReply> CacheStats();
  Result<CacheWarmReply> CacheWarm(const ThresholdQuery& query);
  Result<CachePinReply> CachePin(const CachePinRequest& request);
  Result<CachePinReply> CacheUnpin(const CacheUnpinRequest& request);

  /// Round-trip liveness probe; `delay_ms` asks the server to sleep
  /// before answering (deadline drills).
  Status Ping(uint64_t delay_ms = 0);

  /// Version/identity handshake (see HelloReply).
  Result<HelloReply> Hello();

  // Node-scoped RPCs (mediator / peer-node side of a turbdb_node).
  // These reuse the same bounded-retry transport: ingest and
  // create-dataset are idempotent (last write wins on identical data),
  // execute and fetch are read-only.
  Status NodeCreateDataset(const NodeCreateDatasetRequest& request);
  Status NodeIngest(const NodeIngestRequest& request);
  Result<NodeResult> NodeExecute(const NodeExecuteRequest& request);
  Result<NodeFetchAtomsReply> NodeFetchAtoms(
      const NodeFetchAtomsRequest& request);
  Status NodeDropCache(const NodeDropCacheRequest& request);
  Result<NodeStatsReply> NodeStats(const NodeStatsRequest& request);
  Result<NodeSyncRangeReply> NodeSyncRange(const NodeSyncRangeRequest& request);
  Result<NodeListStoresReply> NodeListStores();

  // Self-healing RPCs (v7): Merkle digests, scrub control and targeted
  // range repair, all read-only or idempotent (repair converges to the
  // healthy peer's contents however many times it runs).
  Result<NodeMerkleReply> NodeMerkle(const NodeMerkleRequest& request);
  Result<NodeScrubReply> NodeScrub(const NodeScrubRequest& request);
  Result<NodeRepairRangeReply> NodeRepairRange(
      const NodeRepairRangeRequest& request);

  // Elasticity RPCs (v6). Join/Leave/MembershipGet/Rebalance target the
  // mediator-fronting server; MembershipUpdate/BeginHandoff/Cutover are
  // mediator -> turbdb_node pushes.
  Result<JoinReply> Join(const JoinRequest& request);
  Result<LeaveReply> Leave(const LeaveRequest& request);
  Result<MembershipGetReply> MembershipGet();
  Status MembershipUpdate(const MembershipUpdateRequest& request);
  Status BeginHandoff(const BeginHandoffRequest& request);
  Status Cutover(const CutoverRequest& request);
  Result<RebalanceReply> Rebalance(const RebalanceRequest& request);

  /// Asks the server to cancel the live query registered under
  /// `query_id` (see RpcOptions::query_id). Returns true if the query
  /// was found in flight, false if it had already finished (or never
  /// arrived). Answered inline by the server's dispatch thread, so it
  /// works even while every worker is busy.
  Result<bool> CancelQuery(uint64_t query_id);

  const std::string& host() const { return host_; }
  uint16_t port() const { return port_; }

 private:
  /// Hooks a streamed call installs on the transport loop. `restart`
  /// runs at the start of every attempt (drop partial chunks from a
  /// failed earlier attempt); `chunk` consumes one kThresholdChunk
  /// payload — a non-OK return is a typed, final failure (never
  /// retried).
  struct StreamHooks {
    std::function<void()> restart;
    std::function<Status(const std::vector<uint8_t>& payload)> chunk;
  };

  /// Sends one request payload and reads one response payload, with
  /// retry-with-backoff across transport failures. `budget_ms` (0 =
  /// none) caps the whole call — attempts and backoff sleeps — and its
  /// remaining balance is stamped into each attempt's frame header;
  /// exhaustion yields kDeadlineExceeded. When `stream` is non-null,
  /// intermediate kThresholdChunk frames are fed to its hooks and the
  /// returned payload is the stream's *terminating* frame.
  Result<std::vector<uint8_t>> Call(const std::vector<uint8_t>& request,
                                    uint64_t budget_ms,
                                    const StreamHooks* stream = nullptr);

  /// One attempt on the current (or a fresh) connection, bounded by both
  /// the per-operation timeouts and the overall query budget.
  Result<std::vector<uint8_t>> CallOnce(const std::vector<uint8_t>& request,
                                        const Deadline& budget,
                                        const StreamHooks* stream);

  Status EnsureConnected(Deadline deadline);

  std::string host_;
  uint16_t port_;
  ClientOptions options_;
  /// Fault-site name with `fault_scope` prepended, precomputed so the
  /// chunk-read loop never builds strings.
  std::string site_disconnect_mid_stream_;
  Socket conn_;
  /// Deterministic jitter source for retry backoff, seeded from the
  /// endpoint so tests replay identical schedules.
  SplitMix64 backoff_rng_;
};

}  // namespace net
}  // namespace turbdb
