#include "net/frame.h"

#include <algorithm>
#include <cstring>

#include "common/crc32.h"

namespace turbdb {
namespace net {

namespace {

void PutU32Le(uint8_t* out, uint32_t value) {
  out[0] = static_cast<uint8_t>(value);
  out[1] = static_cast<uint8_t>(value >> 8);
  out[2] = static_cast<uint8_t>(value >> 16);
  out[3] = static_cast<uint8_t>(value >> 24);
}

uint32_t GetU32Le(const uint8_t* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

/// Validates a frame header; returns the payload length.
Result<uint32_t> CheckHeader(const uint8_t* header,
                             uint32_t max_payload_bytes) {
  if (GetU32Le(header) != kFrameMagic) {
    return Status::Corruption("bad frame magic");
  }
  if (header[4] != kProtocolVersion) {
    return Status::VersionMismatch(
        "frame protocol version " + std::to_string(header[4]) +
        ", expected " + std::to_string(kProtocolVersion));
  }
  const uint32_t length = GetU32Le(header + 5);
  if (length > max_payload_bytes) {
    return Status::ResultTooLarge(
        "frame payload of " + std::to_string(length) +
        " bytes exceeds cap of " + std::to_string(max_payload_bytes));
  }
  return length;
}

}  // namespace

std::vector<uint8_t> EncodeFrame(const std::vector<uint8_t>& payload,
                                 uint32_t budget_ms) {
  std::vector<uint8_t> out(kFrameHeaderBytes + payload.size());
  PutU32Le(out.data(), kFrameMagic);
  out[4] = kProtocolVersion;
  PutU32Le(out.data() + 5, static_cast<uint32_t>(payload.size()));
  PutU32Le(out.data() + 9, Crc32(payload.data(), payload.size()));
  PutU32Le(out.data() + 13, budget_ms);
  if (!payload.empty()) {
    std::memcpy(out.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return out;
}

Result<std::vector<uint8_t>> DecodeFrame(const std::vector<uint8_t>& bytes,
                                         uint32_t max_payload_bytes,
                                         uint32_t* budget_ms) {
  if (bytes.size() < kFrameHeaderBytes) {
    return Status::Corruption("truncated frame header");
  }
  TURBDB_ASSIGN_OR_RETURN(uint32_t length,
                          CheckHeader(bytes.data(), max_payload_bytes));
  if (bytes.size() != kFrameHeaderBytes + length) {
    return Status::Corruption("frame length mismatch");
  }
  const uint8_t* payload = bytes.data() + kFrameHeaderBytes;
  if (Crc32(payload, length) != GetU32Le(bytes.data() + 9)) {
    return Status::Corruption("frame CRC mismatch");
  }
  if (budget_ms != nullptr) *budget_ms = GetU32Le(bytes.data() + 13);
  return std::vector<uint8_t>(payload, payload + length);
}

Status WriteFrame(const Socket& socket, const std::vector<uint8_t>& payload,
                  Deadline deadline, uint32_t budget_ms) {
  uint8_t header[kFrameHeaderBytes];
  PutU32Le(header, kFrameMagic);
  header[4] = kProtocolVersion;
  PutU32Le(header + 5, static_cast<uint32_t>(payload.size()));
  PutU32Le(header + 9, Crc32(payload.data(), payload.size()));
  PutU32Le(header + 13, budget_ms);
  TURBDB_RETURN_NOT_OK(SendAll(socket, header, sizeof(header), deadline));
  return SendAll(socket, payload.data(), payload.size(), deadline);
}

Result<std::vector<uint8_t>> ReadFrame(const Socket& socket,
                                       Deadline deadline,
                                       uint32_t max_payload_bytes,
                                       uint32_t* budget_ms) {
  uint8_t header[kFrameHeaderBytes];
  TURBDB_RETURN_NOT_OK(RecvAll(socket, header, sizeof(header), deadline));
  if (budget_ms != nullptr) *budget_ms = 0;
  auto length_or = CheckHeader(header, max_payload_bytes);
  if (!length_or.ok() &&
      length_or.status().code() == StatusCode::kResultTooLarge) {
    // The header is intact, only the announced size is unacceptable.
    // Drain the payload in bounded chunks so the stream stays framed and
    // the caller can answer with an error instead of dropping the
    // connection.
    uint32_t remaining = GetU32Le(header + 5);
    uint8_t scratch[4096];
    while (remaining > 0) {
      const size_t chunk =
          std::min(remaining, static_cast<uint32_t>(sizeof(scratch)));
      TURBDB_RETURN_NOT_OK(RecvAll(socket, scratch, chunk, deadline));
      remaining -= static_cast<uint32_t>(chunk);
    }
    return length_or.status();
  }
  TURBDB_ASSIGN_OR_RETURN(uint32_t length, std::move(length_or));
  std::vector<uint8_t> payload(length);
  if (length > 0) {
    TURBDB_RETURN_NOT_OK(
        RecvAll(socket, payload.data(), payload.size(), deadline));
  }
  if (Crc32(payload.data(), payload.size()) != GetU32Le(header + 9)) {
    return Status::Corruption("frame CRC mismatch");
  }
  if (budget_ms != nullptr) *budget_ms = GetU32Le(header + 13);
  return payload;
}

}  // namespace net
}  // namespace turbdb
