#pragma once

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "net/socket.h"

namespace turbdb {
namespace net {

/// The transport framing of the turbdb wire protocol. Every message —
/// request or response — travels as one frame:
///
///   offset  size  field
///   0       4     magic 'T' 'D' 'B' 'F' (0x46424454 little-endian)
///   4       1     protocol version (kProtocolVersion)
///   5       4     payload length, little-endian uint32
///   9       4     CRC32 of the payload, little-endian uint32
///   13      4     deadline budget, milliseconds, little-endian uint32
///   17      N     payload bytes
///
/// The CRC (same IEEE polynomial the file-backed atom store uses) makes
/// in-flight corruption a Corruption status instead of a garbage query
/// result; the explicit length makes oversized frames rejectable before
/// any allocation. The version byte makes a stale peer fail loudly with
/// a typed VersionMismatch instead of misparsing the payload: a v1
/// (unversioned, 12-byte-header) peer puts its length's low byte where
/// later versions expect the version, so the very first frame is
/// rejected, and a v2 (13-byte-header) peer fails the version check the
/// same way.
///
/// The v3 budget field carries the query's *remaining* deadline budget
/// on request frames (each hop deducts its elapsed time before
/// forwarding), so a server can size its own work and its downstream
/// fetches to what the client is still willing to wait for. 0 means "no
/// budget stated — use the server default". Response frames carry 0.
///
/// v4 keeps the header layout but extends the payload protocol: a
/// threshold request may ask for a *streamed* reply (a sequence of
/// kThresholdChunk frames, each CRC-checked by this same framing,
/// terminated by a summary-or-error frame), and the server-stats reply
/// gained admission-control counters — so v3 peers are refused up front
/// rather than mid-stream.
///
/// v5 (header layout still unchanged) widens the shared request-payload
/// header with a tenant string (after the query id) so per-tenant fair
/// admission can bucket every request, adds the distributed
/// friends-of-friends RPC (FofRequest / streamed FofChunk + FofResponse
/// terminator), and appends a per-tenant counter tail to the
/// server-stats reply. A v4 peer would misparse the tenant bytes as a
/// request body, so the version byte again refuses it at the first
/// frame.
///
/// v6 (header layout still unchanged) appends the sender's membership
/// generation varint to the shared request-payload header (after the
/// tenant) so a node can detect requests routed with a stale ownership
/// view (typed retryable kWrongOwner), and adds the elasticity RPCs:
/// Join/Leave, MembershipGet/MembershipUpdate, BeginHandoff/Cutover and
/// Rebalance. The node-stats reply gains WAL-lag counters. A v5 peer
/// would misparse the generation varint, so the version byte refuses it
/// at the first frame.
///
/// v7 (header layout still unchanged) adds the self-healing RPCs:
/// NodeMerkle (Morton-range Merkle digest of a store, for anti-entropy
/// comparison between replicas), NodeScrub (trigger/inspect the
/// background checksum scrubber) and NodeRepairRange (heal only the
/// divergent ranges from a healthy sibling, paged over the existing
/// SyncRange flow). The node-stats reply appends scrub/quarantine
/// counters and the server-stats reply appends corruption-failover and
/// read-repair counters. A v6 peer would reject the new message types,
/// so the version byte refuses it at the first frame.
constexpr uint32_t kFrameMagic = 0x46424454u;  // "TDBF" read little-endian
constexpr uint8_t kProtocolVersion = 7;
constexpr size_t kFrameHeaderBytes = 17;

/// Default cap on a frame payload (64 MiB). A peer announcing more than
/// the configured cap is either corrupt or abusive; the frame is refused
/// without allocating.
constexpr uint32_t kDefaultMaxFrameBytes = 64u << 20;

/// Frames `payload` into a self-contained byte string (header + payload).
/// `budget_ms` is the remaining deadline budget stamped into the header
/// (0 on responses / when no budget is stated).
std::vector<uint8_t> EncodeFrame(const std::vector<uint8_t>& payload,
                                 uint32_t budget_ms = 0);

/// Decodes one complete frame occupying the whole of `bytes`. Returns the
/// payload, or Corruption (bad magic / length mismatch / CRC mismatch) /
/// VersionMismatch (wrong version byte) / ResultTooLarge (payload length
/// above `max_payload_bytes`). When `budget_ms` is non-null it receives
/// the header's deadline-budget field.
Result<std::vector<uint8_t>> DecodeFrame(
    const std::vector<uint8_t>& bytes,
    uint32_t max_payload_bytes = kDefaultMaxFrameBytes,
    uint32_t* budget_ms = nullptr);

/// Writes one frame to the socket within the deadline, stamping
/// `budget_ms` into the header's deadline-budget field.
Status WriteFrame(const Socket& socket, const std::vector<uint8_t>& payload,
                  Deadline deadline, uint32_t budget_ms = 0);

/// Reads one frame from the socket within the deadline and returns its
/// payload. Error taxonomy matches DecodeFrame plus the RecvAll statuses
/// (IOError on EOF/reset, Unavailable on deadline expiry). An oversized
/// frame is drained in bounded chunks before ResultTooLarge is returned,
/// so the stream stays framed and the caller may keep the connection.
/// When `budget_ms` is non-null it receives the header's deadline-budget
/// field.
Result<std::vector<uint8_t>> ReadFrame(
    const Socket& socket, Deadline deadline,
    uint32_t max_payload_bytes = kDefaultMaxFrameBytes,
    uint32_t* budget_ms = nullptr);

}  // namespace net
}  // namespace turbdb
