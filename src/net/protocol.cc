#include "net/protocol.h"

#include <cstring>

#include "wire/serializer.h"

namespace turbdb {
namespace net {

namespace {

// -- Primitive put/get helpers on top of the wire varint ----------------

void PutZigZag64(std::vector<uint8_t>* out, int64_t value) {
  const uint64_t encoded =
      (static_cast<uint64_t>(value) << 1) ^
      static_cast<uint64_t>(value >> 63);
  PutVarint64(out, encoded);
}

Result<int64_t> GetZigZag64(const std::vector<uint8_t>& bytes, size_t* pos) {
  TURBDB_ASSIGN_OR_RETURN(uint64_t encoded, GetVarint64(bytes, pos));
  return static_cast<int64_t>((encoded >> 1) ^ (~(encoded & 1) + 1));
}

void PutDouble(std::vector<uint8_t>* out, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

Result<double> GetDouble(const std::vector<uint8_t>& bytes, size_t* pos) {
  if (*pos + 8 > bytes.size()) return Status::Corruption("truncated double");
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(bytes[*pos + static_cast<size_t>(i)])
            << (8 * i);
  }
  *pos += 8;
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void PutString(std::vector<uint8_t>* out, const std::string& str) {
  PutVarint64(out, str.size());
  out->insert(out->end(), str.begin(), str.end());
}

Result<std::string> GetString(const std::vector<uint8_t>& bytes,
                              size_t* pos) {
  TURBDB_ASSIGN_OR_RETURN(uint64_t length, GetVarint64(bytes, pos));
  if (length > bytes.size() - *pos) {
    return Status::Corruption("truncated string");
  }
  std::string out(reinterpret_cast<const char*>(bytes.data() + *pos),
                  static_cast<size_t>(length));
  *pos += static_cast<size_t>(length);
  return out;
}

void PutBool(std::vector<uint8_t>* out, bool value) {
  out->push_back(value ? 1 : 0);
}

Result<bool> GetBool(const std::vector<uint8_t>& bytes, size_t* pos) {
  if (*pos >= bytes.size()) return Status::Corruption("truncated bool");
  const uint8_t byte = bytes[(*pos)++];
  if (byte > 1) return Status::Corruption("bad bool value");
  return byte == 1;
}

/// Point sets ride as a length-prefixed nested EncodePointsBinary blob.
/// The delta coding there is mod-2^64, so it round-trips any ordering
/// (top-k results are norm-sorted, not z-sorted); sorted input just
/// compresses best.
void PutPoints(std::vector<uint8_t>* out,
               const std::vector<ThresholdPoint>& points) {
  const std::vector<uint8_t> blob = EncodePointsBinary(points);
  PutVarint64(out, blob.size());
  out->insert(out->end(), blob.begin(), blob.end());
}

Result<std::vector<ThresholdPoint>> GetPoints(
    const std::vector<uint8_t>& bytes, size_t* pos) {
  TURBDB_ASSIGN_OR_RETURN(uint64_t length, GetVarint64(bytes, pos));
  if (length > bytes.size() - *pos) {
    return Status::Corruption("truncated point blob");
  }
  const std::vector<uint8_t> blob(
      bytes.begin() + static_cast<ptrdiff_t>(*pos),
      bytes.begin() + static_cast<ptrdiff_t>(*pos + length));
  *pos += static_cast<size_t>(length);
  return DecodePointsBinary(blob);
}

void PutTime(std::vector<uint8_t>* out, const TimeBreakdown& time) {
  PutDouble(out, time.cache_lookup_s);
  PutDouble(out, time.io_s);
  PutDouble(out, time.compute_s);
  PutDouble(out, time.mediator_db_comm_s);
  PutDouble(out, time.mediator_user_comm_s);
}

Result<TimeBreakdown> GetTime(const std::vector<uint8_t>& bytes,
                              size_t* pos) {
  TimeBreakdown time;
  TURBDB_ASSIGN_OR_RETURN(time.cache_lookup_s, GetDouble(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(time.io_s, GetDouble(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(time.compute_s, GetDouble(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(time.mediator_db_comm_s, GetDouble(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(time.mediator_user_comm_s, GetDouble(bytes, pos));
  return time;
}

// -- Shared query-field layout ------------------------------------------

void PutQueryCommon(std::vector<uint8_t>* out, const std::string& dataset,
                    const std::string& raw_field,
                    const std::string& derived_field, int32_t timestep,
                    const Box3& box, int fd_order) {
  PutString(out, dataset);
  PutString(out, raw_field);
  PutString(out, derived_field);
  PutZigZag64(out, timestep);
  for (int d = 0; d < 3; ++d) PutZigZag64(out, box.lo[static_cast<size_t>(d)]);
  for (int d = 0; d < 3; ++d) PutZigZag64(out, box.hi[static_cast<size_t>(d)]);
  PutZigZag64(out, fd_order);
}

template <typename Q>
Status GetQueryCommon(const std::vector<uint8_t>& bytes, size_t* pos,
                      Q* query) {
  TURBDB_ASSIGN_OR_RETURN(query->dataset, GetString(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(query->raw_field, GetString(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(query->derived_field, GetString(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t timestep, GetZigZag64(bytes, pos));
  query->timestep = static_cast<int32_t>(timestep);
  for (int d = 0; d < 3; ++d) {
    TURBDB_ASSIGN_OR_RETURN(query->box.lo[static_cast<size_t>(d)],
                            GetZigZag64(bytes, pos));
  }
  for (int d = 0; d < 3; ++d) {
    TURBDB_ASSIGN_OR_RETURN(query->box.hi[static_cast<size_t>(d)],
                            GetZigZag64(bytes, pos));
  }
  TURBDB_ASSIGN_OR_RETURN(int64_t fd_order, GetZigZag64(bytes, pos));
  query->fd_order = static_cast<int>(fd_order);
  return Status::OK();
}

void PutHeader(std::vector<uint8_t>* out, MsgType type,
               const RpcOptions& rpc) {
  PutVarint64(out, static_cast<uint64_t>(type));
  PutVarint64(out, rpc.deadline_ms);
}

/// Reads the message type and, when it is an error frame, the carried
/// Status; any other unexpected type is Corruption.
Status ExpectType(const std::vector<uint8_t>& bytes, size_t* pos,
                  MsgType expected) {
  TURBDB_ASSIGN_OR_RETURN(uint64_t raw, GetVarint64(bytes, pos));
  if (raw == static_cast<uint64_t>(expected)) return Status::OK();
  if (raw == static_cast<uint64_t>(MsgType::kErrorResponse)) {
    TURBDB_ASSIGN_OR_RETURN(uint64_t code, GetVarint64(bytes, pos));
    TURBDB_ASSIGN_OR_RETURN(std::string message, GetString(bytes, pos));
    if (code == 0 ||
        code > static_cast<uint64_t>(StatusCode::kInternal)) {
      return Status::Corruption("error frame with bad status code");
    }
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  return Status::Corruption("unexpected message type " +
                            std::to_string(raw));
}

Status CheckConsumed(const std::vector<uint8_t>& bytes, size_t pos) {
  if (pos != bytes.size()) {
    return Status::Corruption("trailing bytes in message");
  }
  return Status::OK();
}

}  // namespace

// -- Requests ------------------------------------------------------------

std::vector<uint8_t> EncodeRequest(const ThresholdRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kThresholdRequest, request.rpc);
  PutQueryCommon(&out, request.query.dataset, request.query.raw_field,
                 request.query.derived_field, request.query.timestep,
                 request.query.box, request.query.fd_order);
  PutDouble(&out, request.query.threshold);
  PutBool(&out, request.options.use_cache);
  PutBool(&out, request.options.io_only);
  PutZigZag64(&out, request.options.processes_per_node);
  PutVarint64(&out, request.options.max_result_points);
  return out;
}

std::vector<uint8_t> EncodeRequest(const PdfRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kPdfRequest, request.rpc);
  PutQueryCommon(&out, request.query.dataset, request.query.raw_field,
                 request.query.derived_field, request.query.timestep,
                 request.query.box, request.query.fd_order);
  PutDouble(&out, request.query.bin_width);
  PutZigZag64(&out, request.query.num_bins);
  return out;
}

std::vector<uint8_t> EncodeRequest(const TopKRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kTopKRequest, request.rpc);
  PutQueryCommon(&out, request.query.dataset, request.query.raw_field,
                 request.query.derived_field, request.query.timestep,
                 request.query.box, request.query.fd_order);
  PutVarint64(&out, request.query.k);
  return out;
}

std::vector<uint8_t> EncodeRequest(const FieldStatsRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kFieldStatsRequest, request.rpc);
  PutQueryCommon(&out, request.query.dataset, request.query.raw_field,
                 request.query.derived_field, request.query.timestep,
                 request.query.box, request.query.fd_order);
  return out;
}

std::vector<uint8_t> EncodeRequest(const ServerStatsRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kServerStatsRequest, request.rpc);
  return out;
}

std::vector<uint8_t> EncodeRequest(const PingRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kPingRequest, request.rpc);
  PutVarint64(&out, request.delay_ms);
  return out;
}

Result<Request> DecodeRequest(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_ASSIGN_OR_RETURN(uint64_t raw, GetVarint64(payload, &pos));
  RpcOptions rpc;
  TURBDB_ASSIGN_OR_RETURN(rpc.deadline_ms, GetVarint64(payload, &pos));
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kThresholdRequest: {
      ThresholdRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(
          GetQueryCommon(payload, &pos, &request.query));
      TURBDB_ASSIGN_OR_RETURN(request.query.threshold,
                              GetDouble(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(request.options.use_cache,
                              GetBool(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(request.options.io_only,
                              GetBool(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(int64_t processes, GetZigZag64(payload, &pos));
      request.options.processes_per_node = static_cast<int>(processes);
      TURBDB_ASSIGN_OR_RETURN(request.options.max_result_points,
                              GetVarint64(payload, &pos));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kPdfRequest: {
      PdfRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(
          GetQueryCommon(payload, &pos, &request.query));
      TURBDB_ASSIGN_OR_RETURN(request.query.bin_width,
                              GetDouble(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(int64_t num_bins, GetZigZag64(payload, &pos));
      request.query.num_bins = static_cast<int>(num_bins);
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kTopKRequest: {
      TopKRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(
          GetQueryCommon(payload, &pos, &request.query));
      TURBDB_ASSIGN_OR_RETURN(request.query.k, GetVarint64(payload, &pos));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kFieldStatsRequest: {
      FieldStatsRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(
          GetQueryCommon(payload, &pos, &request.query));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kServerStatsRequest: {
      ServerStatsRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(request);
    }
    case MsgType::kPingRequest: {
      PingRequest request;
      request.rpc = rpc;
      TURBDB_ASSIGN_OR_RETURN(request.delay_ms, GetVarint64(payload, &pos));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(request);
    }
    default:
      return Status::Corruption("unknown request type " +
                                std::to_string(raw));
  }
}

// -- Responses -----------------------------------------------------------

std::vector<uint8_t> EncodeErrorResponse(const Status& status) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kErrorResponse));
  PutVarint64(&out, static_cast<uint64_t>(status.code()));
  PutString(&out, status.message());
  return out;
}

std::vector<uint8_t> EncodeResponse(const ThresholdResult& result) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kThresholdResponse));
  PutPoints(&out, result.points);
  PutBool(&out, result.all_cache_hits);
  PutVarint64(&out, result.result_bytes_binary);
  PutVarint64(&out, result.result_bytes_xml);
  PutTime(&out, result.time);
  return out;
}

std::vector<uint8_t> EncodeResponse(const PdfResult& result) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kPdfResponse));
  PutVarint64(&out, result.counts.size());
  for (uint64_t count : result.counts) PutVarint64(&out, count);
  PutDouble(&out, result.bin_width);
  PutVarint64(&out, result.total_points);
  PutTime(&out, result.time);
  return out;
}

std::vector<uint8_t> EncodeResponse(const TopKResult& result) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kTopKResponse));
  PutPoints(&out, result.points);
  PutTime(&out, result.time);
  return out;
}

std::vector<uint8_t> EncodeResponse(const FieldStatsResult& result) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kFieldStatsResponse));
  PutVarint64(&out, result.count);
  PutDouble(&out, result.mean);
  PutDouble(&out, result.rms);
  PutDouble(&out, result.max);
  PutTime(&out, result.time);
  return out;
}

std::vector<uint8_t> EncodeResponse(const ServerStatsReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kServerStatsResponse));
  PutVarint64(&out, reply.requests_ok);
  PutVarint64(&out, reply.requests_error);
  PutVarint64(&out, reply.bytes_in);
  PutVarint64(&out, reply.bytes_out);
  PutVarint64(&out, reply.connections_accepted);
  PutVarint64(&out, reply.active_connections);
  PutDouble(&out, reply.p50_latency_ms);
  PutDouble(&out, reply.p99_latency_ms);
  return out;
}

std::vector<uint8_t> EncodePingResponse() {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kPingResponse));
  return out;
}

Result<ThresholdResult> DecodeThresholdResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kThresholdResponse));
  ThresholdResult result;
  TURBDB_ASSIGN_OR_RETURN(result.points, GetPoints(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.all_cache_hits, GetBool(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.result_bytes_binary,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.result_bytes_xml,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.time, GetTime(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return result;
}

Result<PdfResult> DecodePdfResponse(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kPdfResponse));
  PdfResult result;
  TURBDB_ASSIGN_OR_RETURN(uint64_t bins, GetVarint64(payload, &pos));
  if (bins > payload.size() - pos) {
    return Status::Corruption("implausible bin count");
  }
  result.counts.reserve(static_cast<size_t>(bins));
  for (uint64_t i = 0; i < bins; ++i) {
    TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(payload, &pos));
    result.counts.push_back(count);
  }
  TURBDB_ASSIGN_OR_RETURN(result.bin_width, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.total_points, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.time, GetTime(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return result;
}

Result<TopKResult> DecodeTopKResponse(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kTopKResponse));
  TopKResult result;
  TURBDB_ASSIGN_OR_RETURN(result.points, GetPoints(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.time, GetTime(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return result;
}

Result<FieldStatsResult> DecodeFieldStatsResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kFieldStatsResponse));
  FieldStatsResult result;
  TURBDB_ASSIGN_OR_RETURN(result.count, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.mean, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.rms, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.max, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.time, GetTime(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return result;
}

Result<ServerStatsReply> DecodeServerStatsResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kServerStatsResponse));
  ServerStatsReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.requests_ok, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.requests_error, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.bytes_in, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.bytes_out, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.connections_accepted,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.active_connections,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.p50_latency_ms, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.p99_latency_ms, GetDouble(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

Status DecodePingResponse(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kPingResponse));
  return CheckConsumed(payload, pos);
}

}  // namespace net
}  // namespace turbdb
