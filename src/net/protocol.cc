#include "net/protocol.h"

#include <cstring>

#include "wire/serializer.h"

namespace turbdb {
namespace net {

namespace {

// -- Primitive put/get helpers on top of the wire varint ----------------

void PutZigZag64(std::vector<uint8_t>* out, int64_t value) {
  const uint64_t encoded =
      (static_cast<uint64_t>(value) << 1) ^
      static_cast<uint64_t>(value >> 63);
  PutVarint64(out, encoded);
}

Result<int64_t> GetZigZag64(const std::vector<uint8_t>& bytes, size_t* pos) {
  TURBDB_ASSIGN_OR_RETURN(uint64_t encoded, GetVarint64(bytes, pos));
  return static_cast<int64_t>((encoded >> 1) ^ (~(encoded & 1) + 1));
}

void PutDouble(std::vector<uint8_t>* out, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

Result<double> GetDouble(const std::vector<uint8_t>& bytes, size_t* pos) {
  if (*pos + 8 > bytes.size()) return Status::Corruption("truncated double");
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(bytes[*pos + static_cast<size_t>(i)])
            << (8 * i);
  }
  *pos += 8;
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void PutString(std::vector<uint8_t>* out, const std::string& str) {
  PutVarint64(out, str.size());
  out->insert(out->end(), str.begin(), str.end());
}

Result<std::string> GetString(const std::vector<uint8_t>& bytes,
                              size_t* pos) {
  TURBDB_ASSIGN_OR_RETURN(uint64_t length, GetVarint64(bytes, pos));
  if (length > bytes.size() - *pos) {
    return Status::Corruption("truncated string");
  }
  std::string out(reinterpret_cast<const char*>(bytes.data() + *pos),
                  static_cast<size_t>(length));
  *pos += static_cast<size_t>(length);
  return out;
}

void PutBool(std::vector<uint8_t>* out, bool value) {
  out->push_back(value ? 1 : 0);
}

Result<bool> GetBool(const std::vector<uint8_t>& bytes, size_t* pos) {
  if (*pos >= bytes.size()) return Status::Corruption("truncated bool");
  const uint8_t byte = bytes[(*pos)++];
  if (byte > 1) return Status::Corruption("bad bool value");
  return byte == 1;
}

/// Point sets ride as a length-prefixed nested EncodePointsBinary blob.
/// The delta coding there is mod-2^64, so it round-trips any ordering
/// (top-k results are norm-sorted, not z-sorted); sorted input just
/// compresses best.
void PutPoints(std::vector<uint8_t>* out,
               const std::vector<ThresholdPoint>& points) {
  const std::vector<uint8_t> blob = EncodePointsBinary(points);
  PutVarint64(out, blob.size());
  out->insert(out->end(), blob.begin(), blob.end());
}

Result<std::vector<ThresholdPoint>> GetPoints(
    const std::vector<uint8_t>& bytes, size_t* pos) {
  TURBDB_ASSIGN_OR_RETURN(uint64_t length, GetVarint64(bytes, pos));
  if (length > bytes.size() - *pos) {
    return Status::Corruption("truncated point blob");
  }
  const std::vector<uint8_t> blob(
      bytes.begin() + static_cast<ptrdiff_t>(*pos),
      bytes.begin() + static_cast<ptrdiff_t>(*pos + length));
  *pos += static_cast<size_t>(length);
  return DecodePointsBinary(blob);
}

void PutTime(std::vector<uint8_t>* out, const TimeBreakdown& time) {
  PutDouble(out, time.cache_lookup_s);
  PutDouble(out, time.io_s);
  PutDouble(out, time.compute_s);
  PutDouble(out, time.mediator_db_comm_s);
  PutDouble(out, time.mediator_user_comm_s);
}

Result<TimeBreakdown> GetTime(const std::vector<uint8_t>& bytes,
                              size_t* pos) {
  TimeBreakdown time;
  TURBDB_ASSIGN_OR_RETURN(time.cache_lookup_s, GetDouble(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(time.io_s, GetDouble(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(time.compute_s, GetDouble(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(time.mediator_db_comm_s, GetDouble(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(time.mediator_user_comm_s, GetDouble(bytes, pos));
  return time;
}

// -- Shared query-field layout ------------------------------------------

void PutQueryCommon(std::vector<uint8_t>* out, const std::string& dataset,
                    const std::string& raw_field,
                    const std::string& derived_field, int32_t timestep,
                    const Box3& box, int fd_order) {
  PutString(out, dataset);
  PutString(out, raw_field);
  PutString(out, derived_field);
  PutZigZag64(out, timestep);
  for (int d = 0; d < 3; ++d) PutZigZag64(out, box.lo[static_cast<size_t>(d)]);
  for (int d = 0; d < 3; ++d) PutZigZag64(out, box.hi[static_cast<size_t>(d)]);
  PutZigZag64(out, fd_order);
}

template <typename Q>
Status GetQueryCommon(const std::vector<uint8_t>& bytes, size_t* pos,
                      Q* query) {
  TURBDB_ASSIGN_OR_RETURN(query->dataset, GetString(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(query->raw_field, GetString(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(query->derived_field, GetString(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t timestep, GetZigZag64(bytes, pos));
  query->timestep = static_cast<int32_t>(timestep);
  for (int d = 0; d < 3; ++d) {
    TURBDB_ASSIGN_OR_RETURN(query->box.lo[static_cast<size_t>(d)],
                            GetZigZag64(bytes, pos));
  }
  for (int d = 0; d < 3; ++d) {
    TURBDB_ASSIGN_OR_RETURN(query->box.hi[static_cast<size_t>(d)],
                            GetZigZag64(bytes, pos));
  }
  TURBDB_ASSIGN_OR_RETURN(int64_t fd_order, GetZigZag64(bytes, pos));
  query->fd_order = static_cast<int>(fd_order);
  return Status::OK();
}

// The deadline budget travels in the frame header (v3), so the payload
// header carries the type, the cancellation query id, (v5) the tenant
// the request is billed to, and (v6) the sender's membership generation
// for stale-routing detection.
void PutHeader(std::vector<uint8_t>* out, MsgType type,
               const RpcOptions& rpc) {
  PutVarint64(out, static_cast<uint64_t>(type));
  PutVarint64(out, rpc.query_id);
  PutString(out, rpc.tenant);
  PutVarint64(out, rpc.generation);
}

/// Reads the post-type portion of the shared request header (the inverse
/// of PutHeader minus the type varint, which callers consume first).
Status GetRpc(const std::vector<uint8_t>& bytes, size_t* pos,
              RpcOptions* rpc) {
  TURBDB_ASSIGN_OR_RETURN(rpc->query_id, GetVarint64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(rpc->tenant, GetString(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(rpc->generation, GetVarint64(bytes, pos));
  return Status::OK();
}

/// Reads the message type and, when it is an error frame, the carried
/// Status; any other unexpected type is Corruption.
Status ExpectType(const std::vector<uint8_t>& bytes, size_t* pos,
                  MsgType expected) {
  TURBDB_ASSIGN_OR_RETURN(uint64_t raw, GetVarint64(bytes, pos));
  if (raw == static_cast<uint64_t>(expected)) return Status::OK();
  if (raw == static_cast<uint64_t>(MsgType::kErrorResponse)) {
    TURBDB_ASSIGN_OR_RETURN(uint64_t code, GetVarint64(bytes, pos));
    TURBDB_ASSIGN_OR_RETURN(std::string message, GetString(bytes, pos));
    if (code == 0 || code > static_cast<uint64_t>(StatusCode::kWrongOwner)) {
      return Status::Corruption("error frame with bad status code");
    }
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  return Status::Corruption("unexpected message type " +
                            std::to_string(raw));
}

Status CheckConsumed(const std::vector<uint8_t>& bytes, size_t pos) {
  if (pos != bytes.size()) {
    return Status::Corruption("trailing bytes in message");
  }
  return Status::OK();
}

// -- Node-message building blocks ---------------------------------------

void PutFloat(std::vector<uint8_t>* out, float value) {
  uint32_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(bits >> (8 * i)));
  }
}

Result<float> GetFloat(const std::vector<uint8_t>& bytes, size_t* pos) {
  if (*pos + 4 > bytes.size()) return Status::Corruption("truncated float");
  uint32_t bits = 0;
  for (int i = 0; i < 4; ++i) {
    bits |= static_cast<uint32_t>(bytes[*pos + static_cast<size_t>(i)])
            << (8 * i);
  }
  *pos += 4;
  float value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

void PutAtom(std::vector<uint8_t>* out, const Atom& atom) {
  PutZigZag64(out, atom.key.timestep);
  PutVarint64(out, atom.key.zindex);
  PutZigZag64(out, atom.width);
  PutZigZag64(out, atom.ncomp);
  for (float f : atom.data) PutFloat(out, f);
}

Result<Atom> GetAtom(const std::vector<uint8_t>& bytes, size_t* pos) {
  Atom atom;
  TURBDB_ASSIGN_OR_RETURN(int64_t timestep, GetZigZag64(bytes, pos));
  atom.key.timestep = static_cast<int32_t>(timestep);
  TURBDB_ASSIGN_OR_RETURN(atom.key.zindex, GetVarint64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t width, GetZigZag64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t ncomp, GetZigZag64(bytes, pos));
  if (width <= 0 || width > 256 || ncomp <= 0 || ncomp > 64) {
    return Status::Corruption("implausible atom shape");
  }
  atom.width = static_cast<int32_t>(width);
  atom.ncomp = static_cast<int32_t>(ncomp);
  const size_t values = static_cast<size_t>(width) * static_cast<size_t>(width) *
                        static_cast<size_t>(width) * static_cast<size_t>(ncomp);
  if (values * 4 > bytes.size() - *pos) {
    return Status::Corruption("truncated atom data");
  }
  atom.data.resize(values);
  for (size_t i = 0; i < values; ++i) {
    TURBDB_ASSIGN_OR_RETURN(atom.data[i], GetFloat(bytes, pos));
  }
  return atom;
}

void PutAtoms(std::vector<uint8_t>* out, const std::vector<Atom>& atoms) {
  PutVarint64(out, atoms.size());
  for (const Atom& atom : atoms) PutAtom(out, atom);
}

Result<std::vector<Atom>> GetAtoms(const std::vector<uint8_t>& bytes,
                                   size_t* pos) {
  TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(bytes, pos));
  if (count > bytes.size() - *pos) {
    return Status::Corruption("implausible atom count");
  }
  std::vector<Atom> atoms;
  atoms.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    TURBDB_ASSIGN_OR_RETURN(Atom atom, GetAtom(bytes, pos));
    atoms.push_back(std::move(atom));
  }
  return atoms;
}

void PutGeometry(std::vector<uint8_t>* out, const GridGeometry& geometry) {
  for (int d = 0; d < 3; ++d) PutZigZag64(out, geometry.extent(d));
  for (int d = 0; d < 3; ++d) PutDouble(out, geometry.domain_length(d));
  for (int d = 0; d < 3; ++d) PutBool(out, geometry.periodic(d));
  PutZigZag64(out, geometry.atom_width());
  PutVarint64(out, geometry.stretched_y().size());
  for (double y : geometry.stretched_y()) PutDouble(out, y);
}

Result<GridGeometry> GetGeometry(const std::vector<uint8_t>& bytes,
                                 size_t* pos) {
  std::array<int64_t, 3> extent;
  std::array<double, 3> length;
  std::array<bool, 3> periodic;
  for (int d = 0; d < 3; ++d) {
    TURBDB_ASSIGN_OR_RETURN(extent[static_cast<size_t>(d)],
                            GetZigZag64(bytes, pos));
  }
  for (int d = 0; d < 3; ++d) {
    TURBDB_ASSIGN_OR_RETURN(length[static_cast<size_t>(d)],
                            GetDouble(bytes, pos));
  }
  for (int d = 0; d < 3; ++d) {
    TURBDB_ASSIGN_OR_RETURN(periodic[static_cast<size_t>(d)],
                            GetBool(bytes, pos));
  }
  TURBDB_ASSIGN_OR_RETURN(int64_t atom_width, GetZigZag64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t stretched, GetVarint64(bytes, pos));
  if (stretched > bytes.size() - *pos) {
    return Status::Corruption("implausible stretched-y size");
  }
  std::vector<double> stretched_y;
  stretched_y.reserve(static_cast<size_t>(stretched));
  for (uint64_t i = 0; i < stretched; ++i) {
    TURBDB_ASSIGN_OR_RETURN(double y, GetDouble(bytes, pos));
    stretched_y.push_back(y);
  }
  GridGeometry geometry = GridGeometry::FromParts(
      extent, length, periodic, atom_width, std::move(stretched_y));
  TURBDB_RETURN_NOT_OK(geometry.Validate());
  return geometry;
}

void PutDatasetInfo(std::vector<uint8_t>* out, const DatasetInfo& info) {
  PutString(out, info.name);
  PutGeometry(out, info.geometry);
  PutVarint64(out, info.raw_fields.size());
  for (const RawFieldSpec& spec : info.raw_fields) {
    PutString(out, spec.name);
    PutZigZag64(out, spec.ncomp);
  }
  PutZigZag64(out, info.num_timesteps);
}

Result<DatasetInfo> GetDatasetInfo(const std::vector<uint8_t>& bytes,
                                   size_t* pos) {
  DatasetInfo info;
  TURBDB_ASSIGN_OR_RETURN(info.name, GetString(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(info.geometry, GetGeometry(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t fields, GetVarint64(bytes, pos));
  if (fields > bytes.size() - *pos) {
    return Status::Corruption("implausible raw-field count");
  }
  info.raw_fields.reserve(static_cast<size_t>(fields));
  for (uint64_t i = 0; i < fields; ++i) {
    RawFieldSpec spec;
    TURBDB_ASSIGN_OR_RETURN(spec.name, GetString(bytes, pos));
    TURBDB_ASSIGN_OR_RETURN(int64_t ncomp, GetZigZag64(bytes, pos));
    spec.ncomp = static_cast<int>(ncomp);
    info.raw_fields.push_back(std::move(spec));
  }
  TURBDB_ASSIGN_OR_RETURN(int64_t timesteps, GetZigZag64(bytes, pos));
  info.num_timesteps = static_cast<int32_t>(timesteps);
  return info;
}

void PutTargets(
    std::vector<uint8_t>* out,
    const std::vector<std::pair<uint32_t, std::array<double, 3>>>& targets) {
  PutVarint64(out, targets.size());
  for (const auto& [index, position] : targets) {
    PutVarint64(out, index);
    for (int d = 0; d < 3; ++d) PutDouble(out, position[static_cast<size_t>(d)]);
  }
}

Result<std::vector<std::pair<uint32_t, std::array<double, 3>>>> GetTargets(
    const std::vector<uint8_t>& bytes, size_t* pos) {
  TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(bytes, pos));
  if (count > bytes.size() - *pos) {
    return Status::Corruption("implausible target count");
  }
  std::vector<std::pair<uint32_t, std::array<double, 3>>> targets;
  targets.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    TURBDB_ASSIGN_OR_RETURN(uint64_t index, GetVarint64(bytes, pos));
    std::array<double, 3> position;
    for (int d = 0; d < 3; ++d) {
      TURBDB_ASSIGN_OR_RETURN(position[static_cast<size_t>(d)],
                              GetDouble(bytes, pos));
    }
    targets.push_back({static_cast<uint32_t>(index), position});
  }
  return targets;
}

void PutIo(std::vector<uint8_t>* out, const IoCounters& io) {
  PutVarint64(out, io.atoms_read_local);
  PutVarint64(out, io.atoms_read_remote);
  PutVarint64(out, io.bytes_read_local);
  PutVarint64(out, io.bytes_read_remote);
  PutVarint64(out, io.cache_records_scanned);
  PutVarint64(out, io.cache_bytes_scanned);
  PutVarint64(out, io.points_evaluated);
  PutVarint64(out, io.points_returned);
}

Result<IoCounters> GetIo(const std::vector<uint8_t>& bytes, size_t* pos) {
  IoCounters io;
  TURBDB_ASSIGN_OR_RETURN(io.atoms_read_local, GetVarint64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(io.atoms_read_remote, GetVarint64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(io.bytes_read_local, GetVarint64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(io.bytes_read_remote, GetVarint64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(io.cache_records_scanned, GetVarint64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(io.cache_bytes_scanned, GetVarint64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(io.points_evaluated, GetVarint64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(io.points_returned, GetVarint64(bytes, pos));
  return io;
}

}  // namespace

// -- Requests ------------------------------------------------------------

std::vector<uint8_t> EncodeRequest(const ThresholdRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kThresholdRequest, request.rpc);
  PutQueryCommon(&out, request.query.dataset, request.query.raw_field,
                 request.query.derived_field, request.query.timestep,
                 request.query.box, request.query.fd_order);
  PutDouble(&out, request.query.threshold);
  PutBool(&out, request.options.use_cache);
  PutBool(&out, request.options.io_only);
  PutZigZag64(&out, request.options.processes_per_node);
  PutVarint64(&out, request.options.max_result_points);
  PutBool(&out, request.stream);
  return out;
}

std::vector<uint8_t> EncodeRequest(const PdfRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kPdfRequest, request.rpc);
  PutQueryCommon(&out, request.query.dataset, request.query.raw_field,
                 request.query.derived_field, request.query.timestep,
                 request.query.box, request.query.fd_order);
  PutDouble(&out, request.query.bin_width);
  PutZigZag64(&out, request.query.num_bins);
  return out;
}

std::vector<uint8_t> EncodeRequest(const TopKRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kTopKRequest, request.rpc);
  PutQueryCommon(&out, request.query.dataset, request.query.raw_field,
                 request.query.derived_field, request.query.timestep,
                 request.query.box, request.query.fd_order);
  PutVarint64(&out, request.query.k);
  return out;
}

std::vector<uint8_t> EncodeRequest(const FieldStatsRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kFieldStatsRequest, request.rpc);
  PutQueryCommon(&out, request.query.dataset, request.query.raw_field,
                 request.query.derived_field, request.query.timestep,
                 request.query.box, request.query.fd_order);
  return out;
}

std::vector<uint8_t> EncodeRequest(const ServerStatsRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kServerStatsRequest, request.rpc);
  return out;
}

std::vector<uint8_t> EncodeRequest(const PingRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kPingRequest, request.rpc);
  PutVarint64(&out, request.delay_ms);
  return out;
}

std::vector<uint8_t> EncodeRequest(const DropCacheRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kDropCacheRequest, request.rpc);
  PutString(&out, request.dataset);
  PutString(&out, request.raw_field);
  PutString(&out, request.derived_field);
  PutZigZag64(&out, request.timestep);
  return out;
}

std::vector<uint8_t> EncodeRequest(const CacheStatsRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kCacheStatsRequest, request.rpc);
  return out;
}

std::vector<uint8_t> EncodeRequest(const CacheWarmRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kCacheWarmRequest, request.rpc);
  PutQueryCommon(&out, request.query.dataset, request.query.raw_field,
                 request.query.derived_field, request.query.timestep,
                 request.query.box, request.query.fd_order);
  PutDouble(&out, request.query.threshold);
  return out;
}

namespace {

/// Pin and Unpin share one field layout; only the type differs.
template <typename R>
std::vector<uint8_t> EncodeCacheKeyRequest(const R& request, MsgType type) {
  std::vector<uint8_t> out;
  PutHeader(&out, type, request.rpc);
  PutString(&out, request.dataset);
  PutString(&out, request.raw_field);
  PutString(&out, request.derived_field);
  PutZigZag64(&out, request.timestep);
  return out;
}

template <typename R>
Status GetCacheKeyRequestBody(const std::vector<uint8_t>& payload,
                              size_t* pos, R* request) {
  TURBDB_ASSIGN_OR_RETURN(request->dataset, GetString(payload, pos));
  TURBDB_ASSIGN_OR_RETURN(request->raw_field, GetString(payload, pos));
  TURBDB_ASSIGN_OR_RETURN(request->derived_field, GetString(payload, pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t timestep, GetZigZag64(payload, pos));
  request->timestep = static_cast<int32_t>(timestep);
  return Status::OK();
}

}  // namespace

std::vector<uint8_t> EncodeRequest(const CachePinRequest& request) {
  return EncodeCacheKeyRequest(request, MsgType::kCachePinRequest);
}

std::vector<uint8_t> EncodeRequest(const CacheUnpinRequest& request) {
  return EncodeCacheKeyRequest(request, MsgType::kCacheUnpinRequest);
}

std::vector<uint8_t> EncodeRequest(const FofRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kFofRequest, request.rpc);
  PutQueryCommon(&out, request.query.dataset, request.query.raw_field,
                 request.query.derived_field, request.query.timestep,
                 request.query.box, request.query.fd_order);
  PutDouble(&out, request.query.threshold);
  PutBool(&out, request.options.use_cache);
  PutBool(&out, request.options.io_only);
  PutZigZag64(&out, request.options.processes_per_node);
  PutVarint64(&out, request.options.max_result_points);
  PutDouble(&out, request.linking_length);
  PutVarint64(&out, request.min_cluster_size);
  PutBool(&out, request.include_members);
  return out;
}

Result<Request> DecodeRequest(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_ASSIGN_OR_RETURN(uint64_t raw, GetVarint64(payload, &pos));
  RpcOptions rpc;
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &rpc));
  switch (static_cast<MsgType>(raw)) {
    case MsgType::kThresholdRequest: {
      ThresholdRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(
          GetQueryCommon(payload, &pos, &request.query));
      TURBDB_ASSIGN_OR_RETURN(request.query.threshold,
                              GetDouble(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(request.options.use_cache,
                              GetBool(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(request.options.io_only,
                              GetBool(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(int64_t processes, GetZigZag64(payload, &pos));
      request.options.processes_per_node = static_cast<int>(processes);
      TURBDB_ASSIGN_OR_RETURN(request.options.max_result_points,
                              GetVarint64(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(request.stream, GetBool(payload, &pos));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kPdfRequest: {
      PdfRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(
          GetQueryCommon(payload, &pos, &request.query));
      TURBDB_ASSIGN_OR_RETURN(request.query.bin_width,
                              GetDouble(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(int64_t num_bins, GetZigZag64(payload, &pos));
      request.query.num_bins = static_cast<int>(num_bins);
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kTopKRequest: {
      TopKRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(
          GetQueryCommon(payload, &pos, &request.query));
      TURBDB_ASSIGN_OR_RETURN(request.query.k, GetVarint64(payload, &pos));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kFieldStatsRequest: {
      FieldStatsRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(
          GetQueryCommon(payload, &pos, &request.query));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kServerStatsRequest: {
      ServerStatsRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(request);
    }
    case MsgType::kPingRequest: {
      PingRequest request;
      request.rpc = rpc;
      TURBDB_ASSIGN_OR_RETURN(request.delay_ms, GetVarint64(payload, &pos));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(request);
    }
    case MsgType::kDropCacheRequest: {
      DropCacheRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(GetCacheKeyRequestBody(payload, &pos, &request));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kCacheStatsRequest: {
      CacheStatsRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(request);
    }
    case MsgType::kCacheWarmRequest: {
      CacheWarmRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(GetQueryCommon(payload, &pos, &request.query));
      TURBDB_ASSIGN_OR_RETURN(request.query.threshold,
                              GetDouble(payload, &pos));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kCachePinRequest: {
      CachePinRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(GetCacheKeyRequestBody(payload, &pos, &request));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kCacheUnpinRequest: {
      CacheUnpinRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(GetCacheKeyRequestBody(payload, &pos, &request));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    case MsgType::kFofRequest: {
      FofRequest request;
      request.rpc = rpc;
      TURBDB_RETURN_NOT_OK(GetQueryCommon(payload, &pos, &request.query));
      TURBDB_ASSIGN_OR_RETURN(request.query.threshold,
                              GetDouble(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(request.options.use_cache,
                              GetBool(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(request.options.io_only,
                              GetBool(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(int64_t processes, GetZigZag64(payload, &pos));
      request.options.processes_per_node = static_cast<int>(processes);
      TURBDB_ASSIGN_OR_RETURN(request.options.max_result_points,
                              GetVarint64(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(request.linking_length,
                              GetDouble(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(request.min_cluster_size,
                              GetVarint64(payload, &pos));
      TURBDB_ASSIGN_OR_RETURN(request.include_members,
                              GetBool(payload, &pos));
      TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
      return Request(std::move(request));
    }
    default:
      return Status::Corruption("unknown request type " +
                                std::to_string(raw));
  }
}

// -- Responses -----------------------------------------------------------

std::vector<uint8_t> EncodeErrorResponse(const Status& status) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kErrorResponse));
  PutVarint64(&out, static_cast<uint64_t>(status.code()));
  PutString(&out, status.message());
  return out;
}

std::vector<uint8_t> EncodeResponse(const ThresholdResult& result) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kThresholdResponse));
  PutPoints(&out, result.points);
  PutBool(&out, result.all_cache_hits);
  PutVarint64(&out, result.result_bytes_binary);
  PutVarint64(&out, result.result_bytes_xml);
  PutTime(&out, result.time);
  return out;
}

std::vector<uint8_t> EncodeResponse(const PdfResult& result) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kPdfResponse));
  PutVarint64(&out, result.counts.size());
  for (uint64_t count : result.counts) PutVarint64(&out, count);
  PutDouble(&out, result.bin_width);
  PutVarint64(&out, result.total_points);
  PutTime(&out, result.time);
  return out;
}

std::vector<uint8_t> EncodeResponse(const TopKResult& result) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kTopKResponse));
  PutPoints(&out, result.points);
  PutTime(&out, result.time);
  return out;
}

std::vector<uint8_t> EncodeResponse(const FieldStatsResult& result) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kFieldStatsResponse));
  PutVarint64(&out, result.count);
  PutDouble(&out, result.mean);
  PutDouble(&out, result.rms);
  PutDouble(&out, result.max);
  PutTime(&out, result.time);
  return out;
}

std::vector<uint8_t> EncodeResponse(const ServerStatsReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kServerStatsResponse));
  PutVarint64(&out, reply.requests_ok);
  PutVarint64(&out, reply.requests_error);
  PutVarint64(&out, reply.bytes_in);
  PutVarint64(&out, reply.bytes_out);
  PutVarint64(&out, reply.connections_accepted);
  PutVarint64(&out, reply.active_connections);
  PutDouble(&out, reply.p50_latency_ms);
  PutDouble(&out, reply.p99_latency_ms);
  PutVarint64(&out, reply.queries_in_flight);
  PutVarint64(&out, reply.queries_admitted);
  PutVarint64(&out, reply.queries_shed);
  PutVarint64(&out, reply.result_bytes_in_use);
  PutVarint64(&out, reply.result_bytes_peak);
  PutVarint64(&out, reply.cache_hits);
  PutVarint64(&out, reply.cache_misses);
  PutVarint64(&out, reply.cache_subsumption_hits);
  PutVarint64(&out, reply.cache_evictions);
  PutVarint64(&out, reply.cache_entries);
  PutVarint64(&out, reply.cache_bytes);
  PutVarint64(&out, reply.cache_pinned_bytes);
  PutVarint64(&out, reply.tenants.size());
  for (const ServerStatsReply::TenantStats& tenant : reply.tenants) {
    PutString(&out, tenant.name);
    PutVarint64(&out, tenant.in_flight);
    PutVarint64(&out, tenant.peak_in_flight);
    PutVarint64(&out, tenant.admitted);
    PutVarint64(&out, tenant.shed);
    PutVarint64(&out, tenant.cap);
  }
  PutVarint64(&out, reply.membership_generation);
  PutVarint64(&out, reply.corruption_failovers);
  PutVarint64(&out, reply.read_repairs);
  return out;
}

std::vector<uint8_t> EncodePingResponse() {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kPingResponse));
  return out;
}

Result<ThresholdResult> DecodeThresholdResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kThresholdResponse));
  ThresholdResult result;
  TURBDB_ASSIGN_OR_RETURN(result.points, GetPoints(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.all_cache_hits, GetBool(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.result_bytes_binary,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.result_bytes_xml,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.time, GetTime(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return result;
}

Result<PdfResult> DecodePdfResponse(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kPdfResponse));
  PdfResult result;
  TURBDB_ASSIGN_OR_RETURN(uint64_t bins, GetVarint64(payload, &pos));
  if (bins > payload.size() - pos) {
    return Status::Corruption("implausible bin count");
  }
  result.counts.reserve(static_cast<size_t>(bins));
  for (uint64_t i = 0; i < bins; ++i) {
    TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(payload, &pos));
    result.counts.push_back(count);
  }
  TURBDB_ASSIGN_OR_RETURN(result.bin_width, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.total_points, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.time, GetTime(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return result;
}

Result<TopKResult> DecodeTopKResponse(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kTopKResponse));
  TopKResult result;
  TURBDB_ASSIGN_OR_RETURN(result.points, GetPoints(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.time, GetTime(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return result;
}

Result<FieldStatsResult> DecodeFieldStatsResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kFieldStatsResponse));
  FieldStatsResult result;
  TURBDB_ASSIGN_OR_RETURN(result.count, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.mean, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.rms, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.max, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.time, GetTime(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return result;
}

Result<ServerStatsReply> DecodeServerStatsResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kServerStatsResponse));
  ServerStatsReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.requests_ok, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.requests_error, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.bytes_in, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.bytes_out, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.connections_accepted,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.active_connections,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.p50_latency_ms, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.p99_latency_ms, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.queries_in_flight, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.queries_admitted, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.queries_shed, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.result_bytes_in_use,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.result_bytes_peak,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.cache_hits, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.cache_misses, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.cache_subsumption_hits,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.cache_evictions, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.cache_entries, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.cache_bytes, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.cache_pinned_bytes,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t tenants, GetVarint64(payload, &pos));
  if (tenants > payload.size() - pos) {
    return Status::Corruption("implausible tenant count");
  }
  reply.tenants.reserve(static_cast<size_t>(tenants));
  for (uint64_t i = 0; i < tenants; ++i) {
    ServerStatsReply::TenantStats tenant;
    TURBDB_ASSIGN_OR_RETURN(tenant.name, GetString(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(tenant.in_flight, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(tenant.peak_in_flight,
                            GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(tenant.admitted, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(tenant.shed, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(tenant.cap, GetVarint64(payload, &pos));
    reply.tenants.push_back(std::move(tenant));
  }
  TURBDB_ASSIGN_OR_RETURN(reply.membership_generation,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.corruption_failovers,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.read_repairs, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

Status DecodePingResponse(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kPingResponse));
  return CheckConsumed(payload, pos);
}

// -- Mediator cache-control responses ------------------------------------

std::vector<uint8_t> EncodeDropCacheResponse(const DropCacheReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kDropCacheResponse));
  PutVarint64(&out, reply.mediator_entries);
  PutBool(&out, reply.node_tier_cleared);
  return out;
}

Result<DropCacheReply> DecodeDropCacheResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kDropCacheResponse));
  DropCacheReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.mediator_entries, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.node_tier_cleared, GetBool(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

std::vector<uint8_t> EncodeCacheStatsResponse(const CacheStatsReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kCacheStatsResponse));
  PutBool(&out, reply.enabled);
  PutVarint64(&out, reply.capacity_bytes);
  PutVarint64(&out, reply.entries);
  PutVarint64(&out, reply.bytes);
  PutVarint64(&out, reply.hits);
  PutVarint64(&out, reply.misses);
  PutVarint64(&out, reply.subsumption_hits);
  PutVarint64(&out, reply.insertions);
  PutVarint64(&out, reply.evictions);
  PutVarint64(&out, reply.invalidations);
  PutVarint64(&out, reply.stale_inserts);
  PutVarint64(&out, reply.pinned_entries);
  PutVarint64(&out, reply.pinned_bytes);
  PutBool(&out, reply.affinity_enabled);
  PutVarint64(&out, reply.affinity_routes);
  return out;
}

Result<CacheStatsReply> DecodeCacheStatsResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kCacheStatsResponse));
  CacheStatsReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.enabled, GetBool(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.capacity_bytes, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.entries, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.bytes, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.hits, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.misses, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.subsumption_hits, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.insertions, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.evictions, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.invalidations, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.stale_inserts, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.pinned_entries, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.pinned_bytes, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.affinity_enabled, GetBool(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.affinity_routes, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

std::vector<uint8_t> EncodeCacheWarmResponse(const CacheWarmReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kCacheWarmResponse));
  PutVarint64(&out, reply.points);
  PutBool(&out, reply.already_cached);
  return out;
}

Result<CacheWarmReply> DecodeCacheWarmResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kCacheWarmResponse));
  CacheWarmReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.points, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.already_cached, GetBool(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

std::vector<uint8_t> EncodeCachePinResponse(const CachePinReply& reply,
                                            MsgType type) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(type));
  PutVarint64(&out, reply.entries);
  return out;
}

Result<CachePinReply> DecodeCachePinResponse(
    const std::vector<uint8_t>& payload, MsgType type) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, type));
  CachePinReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.entries, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

// -- Streamed threshold replies ------------------------------------------

std::vector<uint8_t> EncodeThresholdChunk(const ThresholdChunk& chunk) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kThresholdChunk));
  PutVarint64(&out, chunk.seq);
  PutPoints(&out, chunk.points);
  PutVarint64(&out, chunk.total_points);
  return out;
}

Result<ThresholdChunk> DecodeThresholdChunk(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kThresholdChunk));
  ThresholdChunk chunk;
  TURBDB_ASSIGN_OR_RETURN(chunk.seq, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(chunk.points, GetPoints(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(chunk.total_points, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return chunk;
}

// -- Streamed friends-of-friends replies ---------------------------------

std::vector<uint8_t> EncodeFofChunk(const FofChunk& chunk) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kFofChunk));
  PutVarint64(&out, chunk.seq);
  PutVarint64(&out, chunk.clusters.size());
  for (const FofClusterRecord& cluster : chunk.clusters) {
    PutVarint64(&out, cluster.id);
    PutVarint64(&out, cluster.size);
    for (int d = 0; d < 3; ++d) {
      PutVarint64(&out, cluster.bbox_lo[static_cast<size_t>(d)]);
    }
    for (int d = 0; d < 3; ++d) {
      PutVarint64(&out, cluster.bbox_hi[static_cast<size_t>(d)]);
    }
    for (int d = 0; d < 3; ++d) {
      PutDouble(&out, cluster.centroid[static_cast<size_t>(d)]);
    }
    PutFloat(&out, cluster.max_norm);
    PutVarint64(&out, cluster.peak_zindex);
    PutPoints(&out, cluster.members);
  }
  PutVarint64(&out, chunk.total_clusters);
  return out;
}

Result<FofChunk> DecodeFofChunk(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kFofChunk));
  FofChunk chunk;
  TURBDB_ASSIGN_OR_RETURN(chunk.seq, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(payload, &pos));
  if (count > payload.size() - pos) {
    return Status::Corruption("implausible cluster count");
  }
  chunk.clusters.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    FofClusterRecord cluster;
    TURBDB_ASSIGN_OR_RETURN(cluster.id, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(cluster.size, GetVarint64(payload, &pos));
    for (int d = 0; d < 3; ++d) {
      TURBDB_ASSIGN_OR_RETURN(cluster.bbox_lo[static_cast<size_t>(d)],
                              GetVarint64(payload, &pos));
    }
    for (int d = 0; d < 3; ++d) {
      TURBDB_ASSIGN_OR_RETURN(cluster.bbox_hi[static_cast<size_t>(d)],
                              GetVarint64(payload, &pos));
    }
    for (int d = 0; d < 3; ++d) {
      TURBDB_ASSIGN_OR_RETURN(cluster.centroid[static_cast<size_t>(d)],
                              GetDouble(payload, &pos));
    }
    TURBDB_ASSIGN_OR_RETURN(cluster.max_norm, GetFloat(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(cluster.peak_zindex, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(cluster.members, GetPoints(payload, &pos));
    chunk.clusters.push_back(std::move(cluster));
  }
  TURBDB_ASSIGN_OR_RETURN(chunk.total_clusters, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return chunk;
}

std::vector<uint8_t> EncodeFofResponse(const FofReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kFofResponse));
  PutVarint64(&out, reply.clusters);
  PutVarint64(&out, reply.points);
  PutVarint64(&out, reply.largest_cluster);
  PutTime(&out, reply.time);
  return out;
}

Result<FofReply> DecodeFofResponse(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kFofResponse));
  FofReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.clusters, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.points, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.largest_cluster, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.time, GetTime(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

Result<MsgType> PeekResponseType(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_ASSIGN_OR_RETURN(uint64_t raw, GetVarint64(payload, &pos));
  return static_cast<MsgType>(raw);
}

Status PeekErrorStatus(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  auto raw = GetVarint64(payload, &pos);
  if (!raw.ok() || *raw != static_cast<uint64_t>(MsgType::kErrorResponse)) {
    return Status::OK();
  }
  TURBDB_ASSIGN_OR_RETURN(uint64_t code, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(std::string message, GetString(payload, &pos));
  if (code == 0 || code > static_cast<uint64_t>(StatusCode::kWrongOwner)) {
    return Status::Corruption("error frame with bad status code");
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

// -- Request header peek -------------------------------------------------

Result<RequestHeader> PeekRequestHeader(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_ASSIGN_OR_RETURN(uint64_t raw, GetVarint64(payload, &pos));
  if (raw == 0 || raw >= static_cast<uint64_t>(MsgType::kThresholdResponse)) {
    return Status::Corruption("payload is not a request (type " +
                              std::to_string(raw) + ")");
  }
  RequestHeader header;
  header.type = static_cast<MsgType>(raw);
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &header.rpc));
  return header;
}

// -- Handshake -----------------------------------------------------------

std::vector<uint8_t> EncodeRequest(const HelloRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kHelloRequest, request.rpc);
  return out;
}

std::vector<uint8_t> EncodeHelloResponse(const HelloReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kHelloResponse));
  PutVarint64(&out, reply.protocol_version);
  PutZigZag64(&out, reply.server_id);
  PutVarint64(&out, reply.epoch);
  return out;
}

Result<HelloReply> DecodeHelloResponse(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kHelloResponse));
  HelloReply reply;
  TURBDB_ASSIGN_OR_RETURN(uint64_t version, GetVarint64(payload, &pos));
  reply.protocol_version = static_cast<uint32_t>(version);
  TURBDB_ASSIGN_OR_RETURN(int64_t id, GetZigZag64(payload, &pos));
  reply.server_id = static_cast<int32_t>(id);
  TURBDB_ASSIGN_OR_RETURN(reply.epoch, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

// -- Cancellation --------------------------------------------------------

std::vector<uint8_t> EncodeRequest(const CancelRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kCancelRequest, request.rpc);
  return out;
}

std::vector<uint8_t> EncodeCancelResponse(const CancelReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kCancelResponse));
  PutBool(&out, reply.found);
  return out;
}

Result<CancelReply> DecodeCancelResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kCancelResponse));
  CancelReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.found, GetBool(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

// -- Node-scoped requests ------------------------------------------------

std::vector<uint8_t> EncodeRequest(const NodeCreateDatasetRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kNodeCreateDatasetRequest, request.rpc);
  PutDatasetInfo(&out, request.info);
  PutZigZag64(&out, request.num_nodes);
  PutZigZag64(&out, request.node_id);
  PutZigZag64(&out, request.strategy);
  return out;
}

Result<NodeCreateDatasetRequest> DecodeNodeCreateDatasetRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  NodeCreateDatasetRequest request;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeCreateDatasetRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.info, GetDatasetInfo(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t num_nodes, GetZigZag64(payload, &pos));
  request.num_nodes = static_cast<int32_t>(num_nodes);
  TURBDB_ASSIGN_OR_RETURN(int64_t node_id, GetZigZag64(payload, &pos));
  request.node_id = static_cast<int32_t>(node_id);
  TURBDB_ASSIGN_OR_RETURN(int64_t strategy, GetZigZag64(payload, &pos));
  request.strategy = static_cast<int32_t>(strategy);
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const NodeIngestRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kNodeIngestRequest, request.rpc);
  PutString(&out, request.dataset);
  PutString(&out, request.field);
  PutAtoms(&out, request.atoms);
  PutBool(&out, request.skip_existing);
  return out;
}

Result<NodeIngestRequest> DecodeNodeIngestRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  NodeIngestRequest request;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kNodeIngestRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.dataset, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.field, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.atoms, GetAtoms(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.skip_existing, GetBool(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const NodeExecuteRequest& request) {
  const NodeQuerySpec& spec = request.spec;
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kNodeExecuteRequest, request.rpc);
  PutZigZag64(&out, spec.mode);
  PutQueryCommon(&out, spec.dataset, spec.raw_field, spec.derived_field,
                 spec.timestep, spec.box, spec.fd_order);
  PutDouble(&out, spec.threshold);
  PutDouble(&out, spec.bin_width);
  PutZigZag64(&out, spec.num_bins);
  PutVarint64(&out, spec.k);
  PutZigZag64(&out, spec.processes);
  PutBool(&out, spec.options.use_cache);
  PutBool(&out, spec.options.io_only);
  PutZigZag64(&out, spec.options.processes_per_node);
  PutVarint64(&out, spec.options.max_result_points);
  PutZigZag64(&out, spec.sample_support);
  PutTargets(&out, spec.targets);
  PutDouble(&out, spec.flops_per_process);
  PutDouble(&out, spec.effective_cores);
  PutBool(&out, request.stream);
  return out;
}

Result<NodeExecuteRequest> DecodeNodeExecuteRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  NodeExecuteRequest request;
  NodeQuerySpec& spec = request.spec;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeExecuteRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(int64_t mode, GetZigZag64(payload, &pos));
  spec.mode = static_cast<int32_t>(mode);
  struct CommonView {
    std::string dataset, raw_field, derived_field;
    int32_t timestep;
    Box3 box;
    int fd_order;
  } common;
  TURBDB_RETURN_NOT_OK(GetQueryCommon(payload, &pos, &common));
  spec.dataset = std::move(common.dataset);
  spec.raw_field = std::move(common.raw_field);
  spec.derived_field = std::move(common.derived_field);
  spec.timestep = common.timestep;
  spec.box = common.box;
  spec.fd_order = common.fd_order;
  TURBDB_ASSIGN_OR_RETURN(spec.threshold, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(spec.bin_width, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t num_bins, GetZigZag64(payload, &pos));
  spec.num_bins = static_cast<int32_t>(num_bins);
  TURBDB_ASSIGN_OR_RETURN(spec.k, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t processes, GetZigZag64(payload, &pos));
  spec.processes = static_cast<int32_t>(processes);
  TURBDB_ASSIGN_OR_RETURN(spec.options.use_cache, GetBool(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(spec.options.io_only, GetBool(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t opt_processes, GetZigZag64(payload, &pos));
  spec.options.processes_per_node = static_cast<int>(opt_processes);
  TURBDB_ASSIGN_OR_RETURN(spec.options.max_result_points,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t support, GetZigZag64(payload, &pos));
  spec.sample_support = static_cast<int32_t>(support);
  TURBDB_ASSIGN_OR_RETURN(spec.targets, GetTargets(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(spec.flops_per_process, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(spec.effective_cores, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.stream, GetBool(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const NodeFetchAtomsRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kNodeFetchAtomsRequest, request.rpc);
  PutString(&out, request.dataset);
  PutString(&out, request.field);
  PutZigZag64(&out, request.timestep);
  PutZigZag64(&out, request.concurrent);
  PutVarint64(&out, request.codes.size());
  // Codes arrive sorted; delta coding keeps halo requests tiny.
  uint64_t previous = 0;
  for (uint64_t code : request.codes) {
    PutVarint64(&out, code - previous);
    previous = code;
  }
  return out;
}

Result<NodeFetchAtomsRequest> DecodeNodeFetchAtomsRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  NodeFetchAtomsRequest request;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeFetchAtomsRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.dataset, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.field, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t timestep, GetZigZag64(payload, &pos));
  request.timestep = static_cast<int32_t>(timestep);
  TURBDB_ASSIGN_OR_RETURN(int64_t concurrent, GetZigZag64(payload, &pos));
  request.concurrent = static_cast<int32_t>(concurrent);
  TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(payload, &pos));
  if (count > payload.size() - pos) {
    return Status::Corruption("implausible code count");
  }
  request.codes.reserve(static_cast<size_t>(count));
  uint64_t previous = 0;
  for (uint64_t i = 0; i < count; ++i) {
    TURBDB_ASSIGN_OR_RETURN(uint64_t delta, GetVarint64(payload, &pos));
    previous += delta;
    request.codes.push_back(previous);
  }
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const NodeDropCacheRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kNodeDropCacheRequest, request.rpc);
  PutString(&out, request.dataset);
  PutString(&out, request.field);
  PutZigZag64(&out, request.timestep);
  return out;
}

Result<NodeDropCacheRequest> DecodeNodeDropCacheRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  NodeDropCacheRequest request;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeDropCacheRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.dataset, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.field, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t timestep, GetZigZag64(payload, &pos));
  request.timestep = static_cast<int32_t>(timestep);
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const NodeStatsRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kNodeStatsRequest, request.rpc);
  PutString(&out, request.dataset);
  PutString(&out, request.field);
  return out;
}

Result<NodeStatsRequest> DecodeNodeStatsRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  NodeStatsRequest request;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kNodeStatsRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.dataset, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.field, GetString(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const NodeSyncRangeRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kNodeSyncRangeRequest, request.rpc);
  PutString(&out, request.dataset);
  PutString(&out, request.field);
  PutZigZag64(&out, request.timestep);
  PutVarint64(&out, request.begin_code);
  PutVarint64(&out, request.end_code);
  PutVarint64(&out, request.max_atoms);
  return out;
}

Result<NodeSyncRangeRequest> DecodeNodeSyncRangeRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  NodeSyncRangeRequest request;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeSyncRangeRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.dataset, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.field, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t timestep, GetZigZag64(payload, &pos));
  request.timestep = static_cast<int32_t>(timestep);
  TURBDB_ASSIGN_OR_RETURN(request.begin_code, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.end_code, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.max_atoms, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const NodeListStoresRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kNodeListStoresRequest, request.rpc);
  return out;
}

Result<NodeListStoresRequest> DecodeNodeListStoresRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  NodeListStoresRequest request;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeListStoresRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

// -- Node-scoped responses -----------------------------------------------

std::vector<uint8_t> EncodeAckResponse(MsgType type) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(type));
  return out;
}

Status DecodeAckResponse(const std::vector<uint8_t>& payload, MsgType type) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, type));
  return CheckConsumed(payload, pos);
}

std::vector<uint8_t> EncodeNodeExecuteResponse(const NodeResult& result) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kNodeExecuteResponse));
  PutPoints(&out, result.points);
  PutVarint64(&out, result.histogram.size());
  for (uint64_t count : result.histogram) PutVarint64(&out, count);
  PutDouble(&out, result.norm_sum);
  PutDouble(&out, result.norm_sum_sq);
  PutDouble(&out, result.norm_max);
  PutTargets(&out, result.samples);
  PutBool(&out, result.cache_hit);
  PutTime(&out, result.time);
  PutIo(&out, result.io);
  return out;
}

Result<NodeResult> DecodeNodeExecuteResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeExecuteResponse));
  NodeResult result;
  TURBDB_ASSIGN_OR_RETURN(result.points, GetPoints(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t bins, GetVarint64(payload, &pos));
  if (bins > payload.size() - pos) {
    return Status::Corruption("implausible histogram size");
  }
  result.histogram.reserve(static_cast<size_t>(bins));
  for (uint64_t i = 0; i < bins; ++i) {
    TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(payload, &pos));
    result.histogram.push_back(count);
  }
  TURBDB_ASSIGN_OR_RETURN(result.norm_sum, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.norm_sum_sq, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.norm_max, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.samples, GetTargets(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.cache_hit, GetBool(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.time, GetTime(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(result.io, GetIo(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return result;
}

std::vector<uint8_t> EncodeNodeFetchAtomsResponse(
    const NodeFetchAtomsReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kNodeFetchAtomsResponse));
  PutAtoms(&out, reply.atoms);
  PutDouble(&out, reply.cost_s);
  PutVarint64(&out, reply.bytes_out);
  return out;
}

Result<NodeFetchAtomsReply> DecodeNodeFetchAtomsResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeFetchAtomsResponse));
  NodeFetchAtomsReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.atoms, GetAtoms(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.cost_s, GetDouble(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.bytes_out, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

std::vector<uint8_t> EncodeNodeStatsResponse(const NodeStatsReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kNodeStatsResponse));
  PutZigZag64(&out, reply.node_id);
  PutVarint64(&out, reply.stored_atoms);
  PutVarint64(&out, reply.epoch);
  PutVarint64(&out, reply.wal_pending_records);
  PutVarint64(&out, reply.wal_pending_bytes);
  PutVarint64(&out, reply.generation);
  PutVarint64(&out, reply.scrub_passes);
  PutVarint64(&out, reply.scrub_atoms_verified);
  PutVarint64(&out, reply.scrub_atoms_corrupt);
  PutVarint64(&out, reply.scrub_atoms_repaired);
  PutVarint64(&out, reply.atoms_quarantined);
  return out;
}

Result<NodeStatsReply> DecodeNodeStatsResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kNodeStatsResponse));
  NodeStatsReply reply;
  TURBDB_ASSIGN_OR_RETURN(int64_t node_id, GetZigZag64(payload, &pos));
  reply.node_id = static_cast<int32_t>(node_id);
  TURBDB_ASSIGN_OR_RETURN(reply.stored_atoms, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.epoch, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.wal_pending_records, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.wal_pending_bytes, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.generation, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.scrub_passes, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.scrub_atoms_verified,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.scrub_atoms_corrupt,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.scrub_atoms_repaired,
                          GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.atoms_quarantined, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

std::vector<uint8_t> EncodeNodeSyncRangeResponse(
    const NodeSyncRangeReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kNodeSyncRangeResponse));
  PutAtoms(&out, reply.atoms);
  PutVarint64(&out, reply.next_code);
  PutBool(&out, reply.done);
  return out;
}

Result<NodeSyncRangeReply> DecodeNodeSyncRangeResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeSyncRangeResponse));
  NodeSyncRangeReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.atoms, GetAtoms(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.next_code, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.done, GetBool(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

std::vector<uint8_t> EncodeNodeListStoresResponse(
    const NodeListStoresReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kNodeListStoresResponse));
  PutVarint64(&out, reply.stores.size());
  for (const NodeStoreInfo& store : reply.stores) {
    PutString(&out, store.dataset);
    PutString(&out, store.field);
    PutVarint64(&out, store.atoms);
  }
  return out;
}

Result<NodeListStoresReply> DecodeNodeListStoresResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeListStoresResponse));
  NodeListStoresReply reply;
  TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(payload, &pos));
  if (count > payload.size() - pos) {
    return Status::Corruption("implausible store count");
  }
  reply.stores.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    NodeStoreInfo store;
    TURBDB_ASSIGN_OR_RETURN(store.dataset, GetString(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(store.field, GetString(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(store.atoms, GetVarint64(payload, &pos));
    reply.stores.push_back(std::move(store));
  }
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

// -- Self-healing messages (v7) ------------------------------------------

std::vector<uint8_t> EncodeRequest(const NodeMerkleRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kNodeMerkleRequest, request.rpc);
  PutString(&out, request.dataset);
  PutString(&out, request.field);
  PutVarint64(&out, request.leaf_shift);
  return out;
}

Result<NodeMerkleRequest> DecodeNodeMerkleRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  NodeMerkleRequest request;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kNodeMerkleRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.dataset, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.field, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t shift, GetVarint64(payload, &pos));
  if (shift > 63) return Status::Corruption("implausible leaf shift");
  request.leaf_shift = static_cast<uint32_t>(shift);
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const NodeScrubRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kNodeScrubRequest, request.rpc);
  PutBool(&out, request.trigger);
  return out;
}

Result<NodeScrubRequest> DecodeNodeScrubRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  NodeScrubRequest request;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kNodeScrubRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.trigger, GetBool(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const NodeRepairRangeRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kNodeRepairRangeRequest, request.rpc);
  PutString(&out, request.dataset);
  PutString(&out, request.field);
  PutZigZag64(&out, request.timestep);
  PutVarint64(&out, request.begin_code);
  PutVarint64(&out, request.end_code);
  return out;
}

Result<NodeRepairRangeRequest> DecodeNodeRepairRangeRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  NodeRepairRangeRequest request;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeRepairRangeRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.dataset, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.field, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t timestep, GetZigZag64(payload, &pos));
  request.timestep = static_cast<int32_t>(timestep);
  TURBDB_ASSIGN_OR_RETURN(request.begin_code, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.end_code, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeNodeMerkleResponse(const NodeMerkleReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kNodeMerkleResponse));
  PutZigZag64(&out, reply.node_id);
  PutVarint64(&out, reply.leaf_shift);
  PutVarint64(&out, reply.root);
  PutVarint64(&out, reply.leaves.size());
  for (const WireMerkleLeaf& leaf : reply.leaves) {
    PutZigZag64(&out, leaf.timestep);
    PutVarint64(&out, leaf.leaf);
    PutVarint64(&out, leaf.digest);
    PutVarint64(&out, leaf.atoms);
  }
  return out;
}

Result<NodeMerkleReply> DecodeNodeMerkleResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeMerkleResponse));
  NodeMerkleReply reply;
  TURBDB_ASSIGN_OR_RETURN(int64_t node_id, GetZigZag64(payload, &pos));
  reply.node_id = static_cast<int32_t>(node_id);
  TURBDB_ASSIGN_OR_RETURN(uint64_t shift, GetVarint64(payload, &pos));
  if (shift > 63) return Status::Corruption("implausible leaf shift");
  reply.leaf_shift = static_cast<uint32_t>(shift);
  TURBDB_ASSIGN_OR_RETURN(reply.root, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(payload, &pos));
  if (count > payload.size() - pos) {
    return Status::Corruption("implausible leaf count");
  }
  reply.leaves.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    WireMerkleLeaf leaf;
    TURBDB_ASSIGN_OR_RETURN(int64_t timestep, GetZigZag64(payload, &pos));
    leaf.timestep = static_cast<int32_t>(timestep);
    TURBDB_ASSIGN_OR_RETURN(leaf.leaf, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(leaf.digest, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(leaf.atoms, GetVarint64(payload, &pos));
    reply.leaves.push_back(leaf);
  }
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

std::vector<uint8_t> EncodeNodeScrubResponse(const NodeScrubReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kNodeScrubResponse));
  PutZigZag64(&out, reply.node_id);
  PutVarint64(&out, reply.passes);
  PutVarint64(&out, reply.atoms_verified);
  PutVarint64(&out, reply.atoms_corrupt);
  PutVarint64(&out, reply.atoms_repaired);
  PutVarint64(&out, reply.last_pass_unix_ms);
  PutVarint64(&out, reply.stores.size());
  for (const ScrubStoreRow& store : reply.stores) {
    PutString(&out, store.dataset);
    PutString(&out, store.field);
    PutVarint64(&out, store.atoms_verified);
    PutVarint64(&out, store.atoms_corrupt);
    PutVarint64(&out, store.atoms_repaired);
    PutVarint64(&out, store.atoms_quarantined);
    PutVarint64(&out, store.bytes_verified);
    PutVarint64(&out, store.passes);
    PutVarint64(&out, store.merkle_root);
  }
  return out;
}

Result<NodeScrubReply> DecodeNodeScrubResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kNodeScrubResponse));
  NodeScrubReply reply;
  TURBDB_ASSIGN_OR_RETURN(int64_t node_id, GetZigZag64(payload, &pos));
  reply.node_id = static_cast<int32_t>(node_id);
  TURBDB_ASSIGN_OR_RETURN(reply.passes, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.atoms_verified, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.atoms_corrupt, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.atoms_repaired, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.last_pass_unix_ms, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(payload, &pos));
  if (count > payload.size() - pos) {
    return Status::Corruption("implausible store count");
  }
  reply.stores.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    ScrubStoreRow store;
    TURBDB_ASSIGN_OR_RETURN(store.dataset, GetString(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(store.field, GetString(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(store.atoms_verified, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(store.atoms_corrupt, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(store.atoms_repaired, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(store.atoms_quarantined,
                            GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(store.bytes_verified, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(store.passes, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(store.merkle_root, GetVarint64(payload, &pos));
    reply.stores.push_back(std::move(store));
  }
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

std::vector<uint8_t> EncodeNodeRepairRangeResponse(
    const NodeRepairRangeReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kNodeRepairRangeResponse));
  PutZigZag64(&out, reply.node_id);
  PutVarint64(&out, reply.ranges_diverged);
  PutVarint64(&out, reply.atoms_examined);
  PutVarint64(&out, reply.atoms_repaired);
  PutVarint64(&out, reply.root);
  return out;
}

Result<NodeRepairRangeReply> DecodeNodeRepairRangeResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kNodeRepairRangeResponse));
  NodeRepairRangeReply reply;
  TURBDB_ASSIGN_OR_RETURN(int64_t node_id, GetZigZag64(payload, &pos));
  reply.node_id = static_cast<int32_t>(node_id);
  TURBDB_ASSIGN_OR_RETURN(reply.ranges_diverged, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.atoms_examined, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.atoms_repaired, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.root, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

// -- Elasticity messages (v6) --------------------------------------------

namespace {

void PutNodeRecord(std::vector<uint8_t>* out, const NodeRecord& record) {
  PutZigZag64(out, record.node_id);
  PutString(out, record.uuid);
  PutString(out, record.host);
  PutVarint64(out, record.port);
  PutZigZag64(out, record.shard);
  PutZigZag64(out, static_cast<int64_t>(record.role));
  PutVarint64(out, record.joined_generation);
}

Result<NodeRecord> GetNodeRecord(const std::vector<uint8_t>& bytes,
                                 size_t* pos) {
  NodeRecord record;
  TURBDB_ASSIGN_OR_RETURN(int64_t node_id, GetZigZag64(bytes, pos));
  record.node_id = static_cast<int>(node_id);
  TURBDB_ASSIGN_OR_RETURN(record.uuid, GetString(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(record.host, GetString(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t port, GetVarint64(bytes, pos));
  record.port = static_cast<uint16_t>(port);
  TURBDB_ASSIGN_OR_RETURN(int64_t shard, GetZigZag64(bytes, pos));
  record.shard = static_cast<int>(shard);
  TURBDB_ASSIGN_OR_RETURN(int64_t role, GetZigZag64(bytes, pos));
  if (role < 0 || role > static_cast<int64_t>(NodeRole::kDraining)) {
    return Status::Corruption("implausible node role");
  }
  record.role = static_cast<NodeRole>(role);
  TURBDB_ASSIGN_OR_RETURN(record.joined_generation, GetVarint64(bytes, pos));
  return record;
}

void PutView(std::vector<uint8_t>* out, const MembershipView& view) {
  PutVarint64(out, view.generation);
  PutZigZag64(out, view.replication);
  PutZigZag64(out, view.base_shards);
  PutVarint64(out, view.nodes.size());
  for (const NodeRecord& record : view.nodes) PutNodeRecord(out, record);
  PutVarint64(out, view.overrides.size());
  for (const RangeOverride& o : view.overrides) {
    PutVarint64(out, o.begin);
    PutVarint64(out, o.end);
    PutZigZag64(out, o.shard);
  }
}

Result<MembershipView> GetView(const std::vector<uint8_t>& bytes,
                               size_t* pos) {
  MembershipView view;
  TURBDB_ASSIGN_OR_RETURN(view.generation, GetVarint64(bytes, pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t replication, GetZigZag64(bytes, pos));
  view.replication = static_cast<int>(replication);
  TURBDB_ASSIGN_OR_RETURN(int64_t base_shards, GetZigZag64(bytes, pos));
  view.base_shards = static_cast<int>(base_shards);
  TURBDB_ASSIGN_OR_RETURN(uint64_t node_count, GetVarint64(bytes, pos));
  if (node_count > bytes.size() - *pos) {
    return Status::Corruption("implausible node-record count");
  }
  view.nodes.reserve(static_cast<size_t>(node_count));
  for (uint64_t i = 0; i < node_count; ++i) {
    TURBDB_ASSIGN_OR_RETURN(NodeRecord record, GetNodeRecord(bytes, pos));
    view.nodes.push_back(std::move(record));
  }
  TURBDB_ASSIGN_OR_RETURN(uint64_t override_count, GetVarint64(bytes, pos));
  if (override_count > bytes.size() - *pos) {
    return Status::Corruption("implausible override count");
  }
  view.overrides.reserve(static_cast<size_t>(override_count));
  for (uint64_t i = 0; i < override_count; ++i) {
    RangeOverride o;
    TURBDB_ASSIGN_OR_RETURN(o.begin, GetVarint64(bytes, pos));
    TURBDB_ASSIGN_OR_RETURN(o.end, GetVarint64(bytes, pos));
    TURBDB_ASSIGN_OR_RETURN(int64_t shard, GetZigZag64(bytes, pos));
    o.shard = static_cast<int>(shard);
    view.overrides.push_back(o);
  }
  return view;
}

}  // namespace

std::vector<uint8_t> EncodeRequest(const JoinRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kJoinRequest, request.rpc);
  PutString(&out, request.uuid);
  PutString(&out, request.host);
  PutVarint64(&out, request.port);
  PutBool(&out, request.activate);
  return out;
}

Result<JoinRequest> DecodeJoinRequest(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  JoinRequest request;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kJoinRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.uuid, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.host, GetString(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t port, GetVarint64(payload, &pos));
  request.port = static_cast<uint16_t>(port);
  TURBDB_ASSIGN_OR_RETURN(request.activate, GetBool(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeJoinResponse(const JoinReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kJoinResponse));
  PutNodeRecord(&out, reply.record);
  PutView(&out, reply.view);
  PutVarint64(&out, reply.registrations.size());
  for (const WireDatasetRegistration& reg : reply.registrations) {
    PutDatasetInfo(&out, reg.info);
    PutZigZag64(&out, reg.num_nodes);
    PutZigZag64(&out, reg.strategy);
  }
  return out;
}

Result<JoinReply> DecodeJoinResponse(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kJoinResponse));
  JoinReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.record, GetNodeRecord(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.view, GetView(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(payload, &pos));
  if (count > payload.size() - pos) {
    return Status::Corruption("implausible registration count");
  }
  reply.registrations.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    WireDatasetRegistration reg;
    TURBDB_ASSIGN_OR_RETURN(reg.info, GetDatasetInfo(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(int64_t num_nodes, GetZigZag64(payload, &pos));
    reg.num_nodes = static_cast<int32_t>(num_nodes);
    TURBDB_ASSIGN_OR_RETURN(int64_t strategy, GetZigZag64(payload, &pos));
    reg.strategy = static_cast<int32_t>(strategy);
    reply.registrations.push_back(std::move(reg));
  }
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

std::vector<uint8_t> EncodeRequest(const LeaveRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kLeaveRequest, request.rpc);
  PutZigZag64(&out, request.node_id);
  return out;
}

Result<LeaveRequest> DecodeLeaveRequest(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  LeaveRequest request;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kLeaveRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(int64_t node_id, GetZigZag64(payload, &pos));
  request.node_id = static_cast<int32_t>(node_id);
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeLeaveResponse(const LeaveReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kLeaveResponse));
  PutView(&out, reply.view);
  PutVarint64(&out, reply.ranges_moved);
  PutVarint64(&out, reply.atoms_copied);
  return out;
}

Result<LeaveReply> DecodeLeaveResponse(const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kLeaveResponse));
  LeaveReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.view, GetView(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.ranges_moved, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(reply.atoms_copied, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

std::vector<uint8_t> EncodeRequest(const MembershipGetRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kMembershipGetRequest, request.rpc);
  return out;
}

Result<MembershipGetRequest> DecodeMembershipGetRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  MembershipGetRequest request;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kMembershipGetRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeMembershipGetResponse(
    const MembershipGetReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kMembershipGetResponse));
  PutView(&out, reply.view);
  return out;
}

Result<MembershipGetReply> DecodeMembershipGetResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kMembershipGetResponse));
  MembershipGetReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.view, GetView(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

std::vector<uint8_t> EncodeRequest(const MembershipUpdateRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kMembershipUpdateRequest, request.rpc);
  PutView(&out, request.view);
  return out;
}

Result<MembershipUpdateRequest> DecodeMembershipUpdateRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  MembershipUpdateRequest request;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kMembershipUpdateRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.view, GetView(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const BeginHandoffRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kBeginHandoffRequest, request.rpc);
  PutVarint64(&out, request.begin);
  PutVarint64(&out, request.end);
  PutZigZag64(&out, request.from_shard);
  PutZigZag64(&out, request.to_shard);
  return out;
}

Result<BeginHandoffRequest> DecodeBeginHandoffRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  BeginHandoffRequest request;
  TURBDB_RETURN_NOT_OK(
      ExpectType(payload, &pos, MsgType::kBeginHandoffRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.begin, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.end, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t from_shard, GetZigZag64(payload, &pos));
  request.from_shard = static_cast<int32_t>(from_shard);
  TURBDB_ASSIGN_OR_RETURN(int64_t to_shard, GetZigZag64(payload, &pos));
  request.to_shard = static_cast<int32_t>(to_shard);
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const CutoverRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kCutoverRequest, request.rpc);
  PutVarint64(&out, request.begin);
  PutVarint64(&out, request.end);
  PutZigZag64(&out, request.from_shard);
  PutZigZag64(&out, request.to_shard);
  PutView(&out, request.view);
  return out;
}

Result<CutoverRequest> DecodeCutoverRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  CutoverRequest request;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kCutoverRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(request.begin, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(request.end, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(int64_t from_shard, GetZigZag64(payload, &pos));
  request.from_shard = static_cast<int32_t>(from_shard);
  TURBDB_ASSIGN_OR_RETURN(int64_t to_shard, GetZigZag64(payload, &pos));
  request.to_shard = static_cast<int32_t>(to_shard);
  TURBDB_ASSIGN_OR_RETURN(request.view, GetView(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRequest(const RebalanceRequest& request) {
  std::vector<uint8_t> out;
  PutHeader(&out, MsgType::kRebalanceRequest, request.rpc);
  PutZigZag64(&out, request.to_shard);
  PutVarint64(&out, request.max_ranges);
  return out;
}

Result<RebalanceRequest> DecodeRebalanceRequest(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  RebalanceRequest request;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kRebalanceRequest));
  TURBDB_RETURN_NOT_OK(GetRpc(payload, &pos, &request.rpc));
  TURBDB_ASSIGN_OR_RETURN(int64_t to_shard, GetZigZag64(payload, &pos));
  request.to_shard = static_cast<int32_t>(to_shard);
  TURBDB_ASSIGN_OR_RETURN(request.max_ranges, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return request;
}

std::vector<uint8_t> EncodeRebalanceResponse(const RebalanceReply& reply) {
  std::vector<uint8_t> out;
  PutVarint64(&out, static_cast<uint64_t>(MsgType::kRebalanceResponse));
  PutVarint64(&out, reply.generation);
  PutVarint64(&out, reply.moved.size());
  for (const RangeOverride& o : reply.moved) {
    PutVarint64(&out, o.begin);
    PutVarint64(&out, o.end);
    PutZigZag64(&out, o.shard);
  }
  PutVarint64(&out, reply.atoms_copied);
  return out;
}

Result<RebalanceReply> DecodeRebalanceResponse(
    const std::vector<uint8_t>& payload) {
  size_t pos = 0;
  TURBDB_RETURN_NOT_OK(ExpectType(payload, &pos, MsgType::kRebalanceResponse));
  RebalanceReply reply;
  TURBDB_ASSIGN_OR_RETURN(reply.generation, GetVarint64(payload, &pos));
  TURBDB_ASSIGN_OR_RETURN(uint64_t count, GetVarint64(payload, &pos));
  if (count > payload.size() - pos) {
    return Status::Corruption("implausible moved-range count");
  }
  reply.moved.reserve(static_cast<size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    RangeOverride o;
    TURBDB_ASSIGN_OR_RETURN(o.begin, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(o.end, GetVarint64(payload, &pos));
    TURBDB_ASSIGN_OR_RETURN(int64_t shard, GetZigZag64(payload, &pos));
    o.shard = static_cast<int>(shard);
    reply.moved.push_back(o);
  }
  TURBDB_ASSIGN_OR_RETURN(reply.atoms_copied, GetVarint64(payload, &pos));
  TURBDB_RETURN_NOT_OK(CheckConsumed(payload, pos));
  return reply;
}

}  // namespace net
}  // namespace turbdb
