#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "array/atom.h"
#include "cluster/dataset.h"
#include "common/profile.h"
#include "common/result.h"
#include "membership/view.h"
#include "query/query.h"

namespace turbdb {
namespace net {

/// Message discriminator, the first varint of every frame payload.
/// Requests and responses share the numbering space; responses are the
/// request value + 64, errors are 127. Types 1-6 are the mediator-facing
/// (user) RPCs; 7 is the handshake; 8 is cooperative cancellation
/// (answered inline by every server); 10-14 are the mediator cache
/// controls (9 is skipped: 9 + 64 is the kThresholdChunk slot); 15 is
/// the distributed friends-of-friends query (v5); 16-23 are the
/// node-scoped RPCs the mediator (and peer nodes) issue to `turbdb_node`
/// processes.
enum class MsgType : uint8_t {
  kThresholdRequest = 1,
  kPdfRequest = 2,
  kTopKRequest = 3,
  kFieldStatsRequest = 4,
  kServerStatsRequest = 5,
  kPingRequest = 6,
  kHelloRequest = 7,
  kCancelRequest = 8,
  kDropCacheRequest = 10,
  kCacheStatsRequest = 11,
  kCacheWarmRequest = 12,
  kCachePinRequest = 13,
  kCacheUnpinRequest = 14,
  kFofRequest = 15,

  kNodeCreateDatasetRequest = 16,
  kNodeIngestRequest = 17,
  kNodeExecuteRequest = 18,
  kNodeFetchAtomsRequest = 19,
  kNodeDropCacheRequest = 20,
  kNodeStatsRequest = 21,
  kNodeSyncRangeRequest = 22,
  kNodeListStoresRequest = 23,

  // Elasticity RPCs (v6). 24 is skipped: 24 + 64 is the kFofChunk slot.
  kJoinRequest = 25,
  kLeaveRequest = 26,
  kMembershipGetRequest = 27,
  kMembershipUpdateRequest = 28,
  kBeginHandoffRequest = 29,
  kCutoverRequest = 30,
  kRebalanceRequest = 31,

  // Self-healing RPCs (v7): Merkle digests, scrub control and targeted
  // range repair, all node-scoped.
  kNodeMerkleRequest = 32,
  kNodeScrubRequest = 33,
  kNodeRepairRangeRequest = 34,

  kThresholdResponse = 65,
  kPdfResponse = 66,
  kTopKResponse = 67,
  kFieldStatsResponse = 68,
  kServerStatsResponse = 69,
  kPingResponse = 70,
  kHelloResponse = 71,
  kCancelResponse = 72,
  /// One slice of a streamed threshold reply (v4). A streamed request is
  /// answered by zero or more chunk frames followed by a terminating
  /// kThresholdResponse (summary, empty point set) or kErrorResponse.
  kThresholdChunk = 73,
  kDropCacheResponse = 74,
  kCacheStatsResponse = 75,
  kCacheWarmResponse = 76,
  kCachePinResponse = 77,
  kCacheUnpinResponse = 78,

  /// Terminator of a streamed friends-of-friends reply (v5): summary
  /// counters, preceded by zero or more kFofChunk frames.
  kFofResponse = 79,

  kNodeCreateDatasetResponse = 80,
  kNodeIngestResponse = 81,
  kNodeExecuteResponse = 82,
  kNodeFetchAtomsResponse = 83,
  kNodeDropCacheResponse = 84,
  kNodeStatsResponse = 85,
  kNodeSyncRangeResponse = 86,
  kNodeListStoresResponse = 87,
  /// One slice of a streamed friends-of-friends reply (v5): a batch of
  /// whole clusters (summary row each, member points when requested).
  kFofChunk = 88,

  kJoinResponse = 89,
  kLeaveResponse = 90,
  kMembershipGetResponse = 91,
  kMembershipUpdateResponse = 92,
  kBeginHandoffResponse = 93,
  kCutoverResponse = 94,
  kRebalanceResponse = 95,

  kNodeMerkleResponse = 96,
  kNodeScrubResponse = 97,
  kNodeRepairRangeResponse = 98,

  kErrorResponse = 127,
};

/// Options every request carries. `deadline_ms` is the client's
/// *remaining* budget for the request measured from the moment the
/// server reads it off the wire; 0 means "use the server default". Since
/// frame v3 the budget travels in the frame header (each hop re-stamps
/// the remainder before forwarding), so this field is populated from the
/// header on decode and never serialized into the payload. The server
/// refuses to start (and refuses to *reply* with data) once the budget
/// is exhausted, so an expired request costs one small typed
/// DeadlineExceeded error frame, not a result dump.
///
/// `query_id` names the query for cooperative cancellation: a server
/// registers every in-flight request with a non-zero id, and a later
/// CancelRequest for the same id flips that request's cancel token. 0
/// means "not cancellable". It rides in the payload header (second
/// varint, after the type).
///
/// `tenant` (v5) names the principal the request is billed to, so the
/// server's ResourceGovernor can admit fairly across tenants instead of
/// letting one flood starve everyone. It rides in the payload header
/// (string, after the query id); empty means the default bucket.
///
/// `generation` (v6) is the sender's membership generation — the version
/// of the cluster ownership view the request was routed with. A node
/// whose ownership of the addressed range changed after that generation
/// answers kWrongOwner (retryable) instead of serving stale data. 0
/// means "not generation-checked" (single-node deployments, admin RPCs).
/// It rides in the payload header (varint, after the tenant).
struct RpcOptions {
  uint64_t deadline_ms = 0;
  uint64_t query_id = 0;
  std::string tenant;
  uint64_t generation = 0;
};

struct ThresholdRequest {
  ThresholdQuery query;
  QueryOptions options;
  RpcOptions rpc;
  /// Asks the server to stream the reply as a sequence of
  /// `kThresholdChunk` frames terminated by a summary (or error) frame,
  /// so neither side ever holds the full result set in one buffer. A
  /// server always honors the flag; a false value keeps the single-frame
  /// v3 behavior.
  bool stream = false;
};

/// One slice of a streamed threshold reply. Chunks carry consecutive
/// `seq` numbers starting at 0 and a running `total_points` (points
/// delivered up to and including this chunk) so the consumer can detect
/// a torn stream; each chunk rides in its own CRC-checked frame.
struct ThresholdChunk {
  uint64_t seq = 0;
  std::vector<ThresholdPoint> points;
  uint64_t total_points = 0;
};

struct PdfRequest {
  PdfQuery query;
  RpcOptions rpc;
};

struct TopKRequest {
  TopKQuery query;
  RpcOptions rpc;
};

struct FieldStatsRequest {
  FieldStatsQuery query;
  RpcOptions rpc;
};

/// Asks for the server's own request counters (the `stats` RPC).
struct ServerStatsRequest {
  RpcOptions rpc;
};

/// Liveness probe. `delay_ms` makes the server sleep before answering —
/// used by tests (and operators) to exercise deadline handling.
struct PingRequest {
  uint64_t delay_ms = 0;
  RpcOptions rpc;
};

// -- Mediator cache controls (v4 message-layer additions) ----------------

/// Clears cached threshold results for (dataset, raw:derived field
/// [, timestep]) in *both* tiers: the mediator's in-memory result cache
/// and every node's local semantic cache. timestep -1 matches all.
struct DropCacheRequest {
  std::string dataset;
  std::string raw_field;
  std::string derived_field;
  int32_t timestep = -1;
  RpcOptions rpc;
};

struct DropCacheReply {
  uint64_t mediator_entries = 0;  ///< Mediator-tier entries dropped.
  bool node_tier_cleared = false; ///< Node-local caches were also swept.
};

/// Asks for the mediator-tier cache counters.
struct CacheStatsRequest {
  RpcOptions rpc;
};

/// Wire mirror of MediatorCacheStats plus the affinity-routing gauges.
struct CacheStatsReply {
  bool enabled = false;
  uint64_t capacity_bytes = 0;
  uint64_t entries = 0;
  uint64_t bytes = 0;
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t subsumption_hits = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t invalidations = 0;
  uint64_t stale_inserts = 0;
  uint64_t pinned_entries = 0;
  uint64_t pinned_bytes = 0;
  bool affinity_enabled = false;
  uint64_t affinity_routes = 0;  ///< Executes routed by cache affinity.
};

/// Runs a threshold query solely to populate the mediator cache; the
/// reply carries the point count, never the points.
struct CacheWarmRequest {
  ThresholdQuery query;
  RpcOptions rpc;
};

struct CacheWarmReply {
  uint64_t points = 0;
  bool already_cached = false;  ///< The cache could already answer it.
};

/// Pins (exempts from LRU eviction) every mediator-tier entry for
/// (dataset, raw:derived field [, timestep]); -1 matches all.
struct CachePinRequest {
  std::string dataset;
  std::string raw_field;
  std::string derived_field;
  int32_t timestep = -1;
  RpcOptions rpc;
};

/// Reverses CachePin for the same key selector.
struct CacheUnpinRequest {
  std::string dataset;
  std::string raw_field;
  std::string derived_field;
  int32_t timestep = -1;
  RpcOptions rpc;
};

/// Entries affected by a pin/unpin.
struct CachePinReply {
  uint64_t entries = 0;
};

// -- Distributed friends-of-friends (v5) ---------------------------------

/// Runs a threshold query and clusters the resulting points with the
/// friends-of-friends rule (two points are friends iff their periodic
/// distance is at most `linking_length` grid units), merged across shard
/// boundaries by the mediator. The reply is always streamed: zero or
/// more kFofChunk frames carrying whole clusters, then a terminating
/// kFofResponse summary (or kErrorResponse).
struct FofRequest {
  ThresholdQuery query;
  QueryOptions options;
  double linking_length = 2.0;     ///< In grid units.
  uint64_t min_cluster_size = 1;   ///< Smaller clusters are dropped.
  /// True = chunks carry each cluster's member points; false = summary
  /// rows only (size/bbox/centroid/peak), which keeps replies tiny.
  bool include_members = false;
  RpcOptions rpc;
};

/// One cluster row of a streamed FoF reply. `id` is the smallest member
/// z-index — a content-derived name, so ids are identical no matter how
/// shards were joined or which replicas answered.
struct FofClusterRecord {
  uint64_t id = 0;
  uint64_t size = 0;
  std::array<uint64_t, 3> bbox_lo{0, 0, 0};  ///< Grid coords, inclusive.
  std::array<uint64_t, 3> bbox_hi{0, 0, 0};
  std::array<double, 3> centroid{0.0, 0.0, 0.0};
  float max_norm = 0.0f;
  uint64_t peak_zindex = 0;  ///< z-index of the max-norm member.
  /// Z-sorted members; empty unless the request set include_members.
  std::vector<ThresholdPoint> members;

  bool operator==(const FofClusterRecord& other) const {
    return id == other.id && size == other.size &&
           bbox_lo == other.bbox_lo && bbox_hi == other.bbox_hi &&
           centroid == other.centroid && max_norm == other.max_norm &&
           peak_zindex == other.peak_zindex && members == other.members;
  }
};

/// One slice of a streamed FoF reply: whole clusters only (a cluster is
/// never split across chunks), consecutive `seq` from 0 and a running
/// `total_clusters` so the consumer detects a torn stream.
struct FofChunk {
  uint64_t seq = 0;
  std::vector<FofClusterRecord> clusters;
  uint64_t total_clusters = 0;
};

/// Terminator of a streamed FoF reply.
struct FofReply {
  uint64_t clusters = 0;          ///< After the min-size filter.
  uint64_t points = 0;            ///< Threshold points clustered.
  uint64_t largest_cluster = 0;   ///< Size of the biggest cluster.
  TimeBreakdown time;             ///< Modeled, end-to-end.
};

using Request =
    std::variant<ThresholdRequest, PdfRequest, TopKRequest,
                 FieldStatsRequest, ServerStatsRequest, PingRequest,
                 DropCacheRequest, CacheStatsRequest, CacheWarmRequest,
                 CachePinRequest, CacheUnpinRequest, FofRequest>;

/// Cooperative cancellation: asks the server to flip the cancel token of
/// the in-flight request whose RpcOptions named `rpc.query_id`. Answered
/// inline by the server (never queued behind the victim), so a cancel
/// lands even while every worker is busy.
struct CancelRequest {
  RpcOptions rpc;
};

struct CancelReply {
  bool found = false;  ///< True if the id named an in-flight request.
};

/// Version/identity handshake. Framing already rejects a wrong protocol
/// version (the frame header carries it), so a Hello that decodes at all
/// proves compatibility; the reply's id lets a dialer confirm it reached
/// the process it meant to (a mediator is -1, a turbdb_node its node id).
struct HelloRequest {
  RpcOptions rpc;
};

struct HelloReply {
  uint32_t protocol_version = 0;
  int32_t server_id = -1;
  /// Incarnation counter: a turbdb_node bumps it on every start (persisted
  /// beside its storage dir), so a dialer that remembers the last epoch can
  /// tell a reconnect from a restart. A mediator reports 0.
  uint64_t epoch = 0;
};

// -- Node-scoped messages (mediator -> turbdb_node) ----------------------

/// Registers a dataset on a node and tells it which shard of the
/// partitioning it owns. Every node derives the same partitioner from
/// (geometry, num_nodes, strategy), so only those parameters travel.
struct NodeCreateDatasetRequest {
  DatasetInfo info;
  int32_t num_nodes = 1;
  int32_t node_id = 0;   ///< Which shard the receiving node owns.
  int32_t strategy = 0;  ///< PartitionStrategy as int.
  RpcOptions rpc;
};

/// Stores a batch of atoms of (dataset, field) on the node.
/// `skip_existing` makes duplicate keys a silent no-op instead of an
/// error — replica re-sync pushes ranges that may partially overlap what
/// a restarted node already recovered from durable storage.
struct NodeIngestRequest {
  std::string dataset;
  std::string field;
  std::vector<Atom> atoms;
  bool skip_existing = false;
  RpcOptions rpc;
};

/// A NodeQuery by value: every process-local pointer of the in-process
/// `NodeQuery` (dataset, kernel, differentiator, interpolator) replaced
/// by the name/parameters it was resolved from, so the receiving node can
/// rebuild it. `flops_per_process`/`effective_cores` ride along so the
/// remote node prices compute exactly like an in-process one and results
/// stay byte-identical, modeled times included.
struct NodeQuerySpec {
  int32_t mode = 0;  ///< NodeQuery::Mode as int.
  std::string dataset;
  std::string raw_field;
  std::string derived_field;  ///< Empty for kSample.
  int32_t timestep = 0;
  Box3 box;
  int32_t fd_order = 4;
  double threshold = 0.0;
  double bin_width = 10.0;
  int32_t num_bins = 9;
  uint64_t k = 100;
  int32_t processes = 1;
  QueryOptions options;
  int32_t sample_support = 0;  ///< Lagrange support (kSample only).
  std::vector<std::pair<uint32_t, std::array<double, 3>>> targets;
  double flops_per_process = 1.25e8;
  double effective_cores = 4.0;
};

struct NodeExecuteRequest {
  NodeQuerySpec spec;
  RpcOptions rpc;
  /// v4: ask the node for a *streamed* sub-reply — threshold points
  /// arrive as kThresholdChunk frames, the terminating NodeResult
  /// carries everything else with an empty point set. Decouples the
  /// sub-reply size from the frame cap and keeps the node's encoded
  /// reply bounded.
  bool stream = false;
};

/// Wire mirror of `NodeOutcome` (minus node_id, which the mediator
/// assigns): one node's answer to its part of a query.
struct NodeResult {
  std::vector<ThresholdPoint> points;
  std::vector<uint64_t> histogram;
  double norm_sum = 0.0;
  double norm_sum_sq = 0.0;
  double norm_max = 0.0;
  std::vector<std::pair<uint32_t, std::array<double, 3>>> samples;
  bool cache_hit = false;
  TimeBreakdown time;
  IoCounters io;
};

/// Peer-to-peer halo fetch: the batched `ServeAtoms` read a node issues
/// against the owner of boundary atoms it does not store.
struct NodeFetchAtomsRequest {
  std::string dataset;
  std::string field;
  int32_t timestep = 0;
  int32_t concurrent = 1;
  std::vector<uint64_t> codes;  ///< Sorted z-indices.
  RpcOptions rpc;
};

struct NodeFetchAtomsReply {
  std::vector<Atom> atoms;
  double cost_s = 0.0;       ///< Modeled disk cost on the serving node.
  uint64_t bytes_out = 0;    ///< Payload bytes (for the LAN cost model).
};

struct NodeDropCacheRequest {
  std::string dataset;
  std::string field;  ///< Cache key, "<raw>:<derived>".
  int32_t timestep = -1;
  RpcOptions rpc;
};

struct NodeStatsRequest {
  std::string dataset;
  std::string field;
  RpcOptions rpc;
};

struct NodeStatsReply {
  int32_t node_id = 0;
  uint64_t stored_atoms = 0;
  uint64_t epoch = 0;  ///< Same incarnation counter the Hello reply carries.
  // WAL lag (v6): ingest records not yet checkpointed into fsynced
  // stores, and the membership generation of the node's current view.
  uint64_t wal_pending_records = 0;
  uint64_t wal_pending_bytes = 0;
  uint64_t generation = 0;
  // Scrub health (v7): lifetime counters of the node's background
  // scrubber plus the count of atoms currently quarantined as corrupt.
  uint64_t scrub_passes = 0;
  uint64_t scrub_atoms_verified = 0;
  uint64_t scrub_atoms_corrupt = 0;
  uint64_t scrub_atoms_repaired = 0;
  uint64_t atoms_quarantined = 0;
};

/// Replica sync: pages atoms of (dataset, field, timestep) inside a
/// half-open Morton range off a healthy donor. The caller walks the range
/// with `begin_code` cursors; the reply's `next_code` is where the next
/// page starts and `done` says the range is exhausted.
struct NodeSyncRangeRequest {
  std::string dataset;
  std::string field;
  int32_t timestep = 0;
  uint64_t begin_code = 0;
  uint64_t end_code = 0;   ///< Half-open; 0 means "to the end".
  uint64_t max_atoms = 0;  ///< Page size; 0 means server default (512).
  RpcOptions rpc;
};

struct NodeSyncRangeReply {
  std::vector<Atom> atoms;
  uint64_t next_code = 0;
  bool done = false;
};

/// Lists every (dataset, field) store a node currently has open, with its
/// atom count — the sync driver uses it to learn what a donor can serve.
struct NodeListStoresRequest {
  RpcOptions rpc;
};

struct NodeStoreInfo {
  std::string dataset;
  std::string field;
  uint64_t atoms = 0;
};

struct NodeListStoresReply {
  std::vector<NodeStoreInfo> stores;
};

// -- Self-healing messages (v7) ------------------------------------------

/// Asks a node for the Morton-range Merkle digest of one store, the
/// anti-entropy exchange: the caller diffs the leaves against its own
/// tree and repairs only the divergent ranges.
struct NodeMerkleRequest {
  std::string dataset;
  std::string field;
  /// Leaf bucket width as a shift (leaf = zindex >> leaf_shift); both
  /// sides must agree for the diff to line up.
  uint32_t leaf_shift = 10;
  RpcOptions rpc;
};

/// One non-empty leaf of the wire-shipped tree (mirrors
/// turbdb::MerkleLeaf; the transport does not link the storage layer).
struct WireMerkleLeaf {
  int32_t timestep = 0;
  uint64_t leaf = 0;    ///< Bucket index: zindex >> leaf_shift.
  uint64_t digest = 0;  ///< CRC-of-CRCs over the bucket's content CRCs.
  uint64_t atoms = 0;
};

struct NodeMerkleReply {
  int32_t node_id = 0;
  uint32_t leaf_shift = 10;
  uint64_t root = 0;  ///< 0 iff the store is empty or unknown.
  std::vector<WireMerkleLeaf> leaves;
};

/// Triggers a synchronous scrub pass (trigger == true) or just reads
/// the scrubber's counters.
struct NodeScrubRequest {
  bool trigger = true;
  RpcOptions rpc;
};

/// Per-store results of the node's most recent scrub pass.
struct ScrubStoreRow {
  std::string dataset;
  std::string field;
  uint64_t atoms_verified = 0;
  uint64_t atoms_corrupt = 0;
  uint64_t atoms_repaired = 0;
  uint64_t atoms_quarantined = 0;
  uint64_t bytes_verified = 0;
  uint64_t passes = 0;
  uint64_t merkle_root = 0;
};

struct NodeScrubReply {
  int32_t node_id = 0;
  uint64_t passes = 0;  ///< Full passes completed.
  uint64_t atoms_verified = 0;
  uint64_t atoms_corrupt = 0;
  uint64_t atoms_repaired = 0;
  uint64_t last_pass_unix_ms = 0;
  std::vector<ScrubStoreRow> stores;
};

/// Orders a node to repair one store from its replica siblings: it
/// diffs Merkle trees against a healthy peer, pages only the divergent
/// ranges over the existing SyncRange flow, and rewrites what differs.
/// A non-empty range ([begin_code, end_code) of `timestep`) confines
/// the repair; begin == end == 0 means "whatever the diff finds".
struct NodeRepairRangeRequest {
  std::string dataset;
  std::string field;
  int32_t timestep = 0;
  uint64_t begin_code = 0;
  uint64_t end_code = 0;
  RpcOptions rpc;
};

struct NodeRepairRangeReply {
  int32_t node_id = 0;
  uint64_t ranges_diverged = 0;  ///< Divergent leaves found in the diff.
  uint64_t atoms_examined = 0;   ///< Peer atoms compared against local.
  uint64_t atoms_repaired = 0;   ///< Rewritten (missing/corrupt/different).
  uint64_t root = 0;             ///< Local Merkle root after the repair.
};

// -- Elasticity messages (v6) --------------------------------------------

/// The dataset-registration parameters a joining node needs to serve:
/// what CreateDataset carried, minus the shard id (the joiner derives
/// its ownership from the membership view instead).
struct WireDatasetRegistration {
  DatasetInfo info;
  int32_t num_nodes = 1;   ///< Base shard count the partitioner was built with.
  int32_t strategy = 0;    ///< PartitionStrategy as int.
};

/// `turbdb_node --join` sent to the mediator. The two-phase dance:
/// `activate == false` asks for admission (the mediator assigns a node
/// id and a fresh shard id, records the node as kJoining, and returns
/// the view plus every dataset registration so the joiner can start
/// serving); once the joiner is listening it repeats the request with
/// `activate == true` and the mediator dials it, flips it to kShard and
/// pushes the new view to the whole cluster.
struct JoinRequest {
  std::string uuid;
  std::string host;
  uint16_t port = 0;
  bool activate = false;
  RpcOptions rpc;
};

struct JoinReply {
  NodeRecord record;  ///< The joiner's assigned registry row.
  MembershipView view;
  std::vector<WireDatasetRegistration> registrations;
};

/// `turbdb_cli decommission`: drains `node_id` — its owned ranges are
/// moved to the remaining shards, then it is removed from routing.
struct LeaveRequest {
  int32_t node_id = -1;
  RpcOptions rpc;
};

struct LeaveReply {
  MembershipView view;       ///< View after the drain completed.
  uint64_t ranges_moved = 0;
  uint64_t atoms_copied = 0;
};

/// Fetches the mediator's current membership view (clients use it to
/// refresh after kWrongOwner; `turbdb_cli membership` prints it).
struct MembershipGetRequest {
  RpcOptions rpc;
};

struct MembershipGetReply {
  MembershipView view;
};

/// Mediator -> node push of a new membership view (generation bump).
/// The node re-derives its ownership for every registered dataset from
/// the view and acks. Also what the Cutover step sends under the hood.
struct MembershipUpdateRequest {
  MembershipView view;
  RpcOptions rpc;
};

/// Mediator -> node: a live range move of [begin, end) from `from_shard`
/// to `to_shard` is starting. The donor keeps serving the range
/// (double-read window); the recipient starts accepting its atoms.
struct BeginHandoffRequest {
  uint64_t begin = 0;
  uint64_t end = 0;  ///< Half-open Morton range.
  int32_t from_shard = -1;
  int32_t to_shard = -1;
  RpcOptions rpc;
};

/// Mediator -> node: the copy caught up; `view` (with the range's new
/// override and a bumped generation) takes effect now. The donor stops
/// owning the range — later queries routed with an older generation get
/// kWrongOwner — but keeps its bytes for halo point-reads until dropped.
struct CutoverRequest {
  uint64_t begin = 0;
  uint64_t end = 0;
  int32_t from_shard = -1;
  int32_t to_shard = -1;
  MembershipView view;
  RpcOptions rpc;
};

/// `turbdb_cli rebalance`: asks the mediator to plan and execute up to
/// `max_ranges` live range moves, toward `to_shard` (or the least-loaded
/// shard when -1). Synchronous: the reply arrives after cutover.
struct RebalanceRequest {
  int32_t to_shard = -1;
  uint64_t max_ranges = 1;
  RpcOptions rpc;
};

struct RebalanceReply {
  uint64_t generation = 0;  ///< After the last cutover.
  std::vector<RangeOverride> moved;
  uint64_t atoms_copied = 0;
};

/// Server-side request counters surfaced through the stats RPC.
struct ServerStatsReply {
  uint64_t requests_ok = 0;
  uint64_t requests_error = 0;
  uint64_t bytes_in = 0;        ///< Frame bytes read (headers + payloads).
  uint64_t bytes_out = 0;       ///< Frame bytes written.
  uint64_t connections_accepted = 0;
  uint64_t active_connections = 0;
  double p50_latency_ms = 0.0;  ///< Over the most recent served requests.
  double p99_latency_ms = 0.0;
  // Admission-control counters (v4). All zero on servers running without
  // budgets (the governor treats 0 limits as unlimited).
  uint64_t queries_in_flight = 0;     ///< Currently admitted queries.
  uint64_t queries_admitted = 0;      ///< Total admitted since start.
  uint64_t queries_shed = 0;          ///< Rejected with kResourceExhausted.
  uint64_t result_bytes_in_use = 0;   ///< Reply bytes currently buffered.
  uint64_t result_bytes_peak = 0;     ///< High-water mark of the above.
  // Mediator-tier result-cache counters (all zero when the cache is
  // disabled or the server fronts no mediator).
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_subsumption_hits = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_entries = 0;
  uint64_t cache_bytes = 0;           ///< Charged to the governor ledger.
  uint64_t cache_pinned_bytes = 0;
  // Per-tenant admission counters (v5). Empty until a request carried a
  // tenant id (or a tenant cap/weight was configured); sorted by name.
  struct TenantStats {
    std::string name;
    uint64_t in_flight = 0;
    uint64_t peak_in_flight = 0;
    uint64_t admitted = 0;
    uint64_t shed = 0;
    uint64_t cap = 0;  ///< Effective in-flight cap; 0 = global only.
  };
  std::vector<TenantStats> tenants;
  /// Membership generation of the mediator behind this server (v6);
  /// 0 when the mediator runs without a membership registry.
  uint64_t membership_generation = 0;
  // Self-healing counters (v7), summed over the mediator's replica
  // groups. Zero under R=1 (no sibling to fail over to or repair from).
  uint64_t corruption_failovers = 0;  ///< kCorruption reads retried on a
                                      ///< sibling replica.
  uint64_t read_repairs = 0;          ///< Repairs enqueued for the loser.
};

// -- Request encoding ----------------------------------------------------

std::vector<uint8_t> EncodeRequest(const ThresholdRequest& request);
std::vector<uint8_t> EncodeRequest(const PdfRequest& request);
std::vector<uint8_t> EncodeRequest(const TopKRequest& request);
std::vector<uint8_t> EncodeRequest(const FieldStatsRequest& request);
std::vector<uint8_t> EncodeRequest(const ServerStatsRequest& request);
std::vector<uint8_t> EncodeRequest(const PingRequest& request);
std::vector<uint8_t> EncodeRequest(const DropCacheRequest& request);
std::vector<uint8_t> EncodeRequest(const CacheStatsRequest& request);
std::vector<uint8_t> EncodeRequest(const CacheWarmRequest& request);
std::vector<uint8_t> EncodeRequest(const CachePinRequest& request);
std::vector<uint8_t> EncodeRequest(const CacheUnpinRequest& request);
std::vector<uint8_t> EncodeRequest(const FofRequest& request);

/// Decodes any request frame payload (server side).
Result<Request> DecodeRequest(const std::vector<uint8_t>& payload);

// -- Response encoding ---------------------------------------------------

/// Encodes a failed request. `status` must be non-OK.
std::vector<uint8_t> EncodeErrorResponse(const Status& status);

std::vector<uint8_t> EncodeResponse(const ThresholdResult& result);
std::vector<uint8_t> EncodeResponse(const PdfResult& result);
std::vector<uint8_t> EncodeResponse(const TopKResult& result);
std::vector<uint8_t> EncodeResponse(const FieldStatsResult& result);
std::vector<uint8_t> EncodeResponse(const ServerStatsReply& reply);
std::vector<uint8_t> EncodePingResponse();

/// Response decoders (client side). An error frame decodes into the
/// Status the server sent; a type other than the expected one is
/// Corruption. Wall-clock and per-node stats are not carried over the
/// wire: `wall_seconds` is 0 and `node_stats` empty in decoded results.
Result<ThresholdResult> DecodeThresholdResponse(
    const std::vector<uint8_t>& payload);
Result<PdfResult> DecodePdfResponse(const std::vector<uint8_t>& payload);
Result<TopKResult> DecodeTopKResponse(const std::vector<uint8_t>& payload);
Result<FieldStatsResult> DecodeFieldStatsResponse(
    const std::vector<uint8_t>& payload);
Result<ServerStatsReply> DecodeServerStatsResponse(
    const std::vector<uint8_t>& payload);
Status DecodePingResponse(const std::vector<uint8_t>& payload);

// -- Mediator cache-control responses ------------------------------------

std::vector<uint8_t> EncodeDropCacheResponse(const DropCacheReply& reply);
Result<DropCacheReply> DecodeDropCacheResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeCacheStatsResponse(const CacheStatsReply& reply);
Result<CacheStatsReply> DecodeCacheStatsResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeCacheWarmResponse(const CacheWarmReply& reply);
Result<CacheWarmReply> DecodeCacheWarmResponse(
    const std::vector<uint8_t>& payload);

/// `type` selects kCachePinResponse or kCacheUnpinResponse.
std::vector<uint8_t> EncodeCachePinResponse(const CachePinReply& reply,
                                            MsgType type);
Result<CachePinReply> DecodeCachePinResponse(
    const std::vector<uint8_t>& payload, MsgType type);

// -- Streamed threshold replies (v4) ------------------------------------

std::vector<uint8_t> EncodeThresholdChunk(const ThresholdChunk& chunk);
Result<ThresholdChunk> DecodeThresholdChunk(
    const std::vector<uint8_t>& payload);

// -- Streamed friends-of-friends replies (v5) ----------------------------

std::vector<uint8_t> EncodeFofChunk(const FofChunk& chunk);
Result<FofChunk> DecodeFofChunk(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeFofResponse(const FofReply& reply);
Result<FofReply> DecodeFofResponse(const std::vector<uint8_t>& payload);

/// Reads just the leading type varint of a response payload so a
/// stream consumer can route a frame (chunk vs terminator) without
/// decoding the body twice. Does not validate the value beyond varint
/// well-formedness.
Result<MsgType> PeekResponseType(const std::vector<uint8_t>& payload);

/// When `payload` is an error frame, decodes and returns the Status it
/// carries; returns OK for any other frame type (including malformed
/// leading varints — those surface later in the real decoder). The
/// client's retry loop uses this to recognise typed-but-retryable
/// failures (kWrongOwner from a node whose ownership moved mid-query)
/// before the response-specific decoder runs.
Status PeekErrorStatus(const std::vector<uint8_t>& payload);

// -- Request header peek -------------------------------------------------

/// The shared prefix of every request payload: type varint + query-id
/// varint + tenant string (v5). (The deadline budget is not here — it
/// rides in the frame header.)
struct RequestHeader {
  MsgType type;
  RpcOptions rpc;
};

/// Reads just the request header, leaving the body untouched — the
/// server uses it to route the payload and register the query id for
/// cancellation without decoding the (possibly large) body twice.
Result<RequestHeader> PeekRequestHeader(const std::vector<uint8_t>& payload);

// -- Handshake -----------------------------------------------------------

std::vector<uint8_t> EncodeRequest(const HelloRequest& request);
std::vector<uint8_t> EncodeHelloResponse(const HelloReply& reply);
Result<HelloReply> DecodeHelloResponse(const std::vector<uint8_t>& payload);

// -- Cancellation --------------------------------------------------------

std::vector<uint8_t> EncodeRequest(const CancelRequest& request);
std::vector<uint8_t> EncodeCancelResponse(const CancelReply& reply);
Result<CancelReply> DecodeCancelResponse(const std::vector<uint8_t>& payload);

// -- Node-scoped encoding ------------------------------------------------

std::vector<uint8_t> EncodeRequest(const NodeCreateDatasetRequest& request);
std::vector<uint8_t> EncodeRequest(const NodeIngestRequest& request);
std::vector<uint8_t> EncodeRequest(const NodeExecuteRequest& request);
std::vector<uint8_t> EncodeRequest(const NodeFetchAtomsRequest& request);
std::vector<uint8_t> EncodeRequest(const NodeDropCacheRequest& request);
std::vector<uint8_t> EncodeRequest(const NodeStatsRequest& request);
std::vector<uint8_t> EncodeRequest(const NodeSyncRangeRequest& request);
std::vector<uint8_t> EncodeRequest(const NodeListStoresRequest& request);

/// Node request decoders (turbdb_node side). Each expects a payload whose
/// header names its type; the header's RpcOptions are re-read into the
/// returned struct.
Result<NodeCreateDatasetRequest> DecodeNodeCreateDatasetRequest(
    const std::vector<uint8_t>& payload);
Result<NodeIngestRequest> DecodeNodeIngestRequest(
    const std::vector<uint8_t>& payload);
Result<NodeExecuteRequest> DecodeNodeExecuteRequest(
    const std::vector<uint8_t>& payload);
Result<NodeFetchAtomsRequest> DecodeNodeFetchAtomsRequest(
    const std::vector<uint8_t>& payload);
Result<NodeDropCacheRequest> DecodeNodeDropCacheRequest(
    const std::vector<uint8_t>& payload);
Result<NodeStatsRequest> DecodeNodeStatsRequest(
    const std::vector<uint8_t>& payload);
Result<NodeSyncRangeRequest> DecodeNodeSyncRangeRequest(
    const std::vector<uint8_t>& payload);
Result<NodeListStoresRequest> DecodeNodeListStoresRequest(
    const std::vector<uint8_t>& payload);

/// A bare acknowledgement (type varint only) for node requests whose
/// success carries no data (create-dataset, ingest, drop-cache).
std::vector<uint8_t> EncodeAckResponse(MsgType type);
Status DecodeAckResponse(const std::vector<uint8_t>& payload, MsgType type);

std::vector<uint8_t> EncodeNodeExecuteResponse(const NodeResult& result);
Result<NodeResult> DecodeNodeExecuteResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeNodeFetchAtomsResponse(
    const NodeFetchAtomsReply& reply);
Result<NodeFetchAtomsReply> DecodeNodeFetchAtomsResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeNodeStatsResponse(const NodeStatsReply& reply);
Result<NodeStatsReply> DecodeNodeStatsResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeNodeSyncRangeResponse(
    const NodeSyncRangeReply& reply);
Result<NodeSyncRangeReply> DecodeNodeSyncRangeResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeNodeListStoresResponse(
    const NodeListStoresReply& reply);
Result<NodeListStoresReply> DecodeNodeListStoresResponse(
    const std::vector<uint8_t>& payload);

// -- Self-healing encoding (v7) ------------------------------------------

std::vector<uint8_t> EncodeRequest(const NodeMerkleRequest& request);
std::vector<uint8_t> EncodeRequest(const NodeScrubRequest& request);
std::vector<uint8_t> EncodeRequest(const NodeRepairRangeRequest& request);

Result<NodeMerkleRequest> DecodeNodeMerkleRequest(
    const std::vector<uint8_t>& payload);
Result<NodeScrubRequest> DecodeNodeScrubRequest(
    const std::vector<uint8_t>& payload);
Result<NodeRepairRangeRequest> DecodeNodeRepairRangeRequest(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeNodeMerkleResponse(const NodeMerkleReply& reply);
Result<NodeMerkleReply> DecodeNodeMerkleResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeNodeScrubResponse(const NodeScrubReply& reply);
Result<NodeScrubReply> DecodeNodeScrubResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeNodeRepairRangeResponse(
    const NodeRepairRangeReply& reply);
Result<NodeRepairRangeReply> DecodeNodeRepairRangeResponse(
    const std::vector<uint8_t>& payload);

// -- Elasticity encoding (v6) --------------------------------------------

std::vector<uint8_t> EncodeRequest(const JoinRequest& request);
std::vector<uint8_t> EncodeRequest(const LeaveRequest& request);
std::vector<uint8_t> EncodeRequest(const MembershipGetRequest& request);
std::vector<uint8_t> EncodeRequest(const MembershipUpdateRequest& request);
std::vector<uint8_t> EncodeRequest(const BeginHandoffRequest& request);
std::vector<uint8_t> EncodeRequest(const CutoverRequest& request);
std::vector<uint8_t> EncodeRequest(const RebalanceRequest& request);

Result<JoinRequest> DecodeJoinRequest(const std::vector<uint8_t>& payload);
Result<LeaveRequest> DecodeLeaveRequest(const std::vector<uint8_t>& payload);
Result<MembershipGetRequest> DecodeMembershipGetRequest(
    const std::vector<uint8_t>& payload);
Result<MembershipUpdateRequest> DecodeMembershipUpdateRequest(
    const std::vector<uint8_t>& payload);
Result<BeginHandoffRequest> DecodeBeginHandoffRequest(
    const std::vector<uint8_t>& payload);
Result<CutoverRequest> DecodeCutoverRequest(
    const std::vector<uint8_t>& payload);
Result<RebalanceRequest> DecodeRebalanceRequest(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeJoinResponse(const JoinReply& reply);
Result<JoinReply> DecodeJoinResponse(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeLeaveResponse(const LeaveReply& reply);
Result<LeaveReply> DecodeLeaveResponse(const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeMembershipGetResponse(
    const MembershipGetReply& reply);
Result<MembershipGetReply> DecodeMembershipGetResponse(
    const std::vector<uint8_t>& payload);

std::vector<uint8_t> EncodeRebalanceResponse(const RebalanceReply& reply);
Result<RebalanceReply> DecodeRebalanceResponse(
    const std::vector<uint8_t>& payload);
// MembershipUpdate, BeginHandoff and Cutover succeed with a bare
// EncodeAckResponse of their response type.

}  // namespace net
}  // namespace turbdb
