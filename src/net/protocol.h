#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "query/query.h"

namespace turbdb {
namespace net {

/// Message discriminator, the first varint of every frame payload.
/// Requests and responses share the numbering space; responses are the
/// request value + 64, errors are 127.
enum class MsgType : uint8_t {
  kThresholdRequest = 1,
  kPdfRequest = 2,
  kTopKRequest = 3,
  kFieldStatsRequest = 4,
  kServerStatsRequest = 5,
  kPingRequest = 6,

  kThresholdResponse = 65,
  kPdfResponse = 66,
  kTopKResponse = 67,
  kFieldStatsResponse = 68,
  kServerStatsResponse = 69,
  kPingResponse = 70,

  kErrorResponse = 127,
};

/// Options every request carries. `deadline_ms` is the client's total
/// budget for the request measured from the moment the server reads it
/// off the wire; 0 means "use the server default". The server refuses to
/// start (and refuses to *reply* with data) once the budget is exhausted,
/// so an expired request costs one small error frame, not a result dump.
struct RpcOptions {
  uint64_t deadline_ms = 0;
};

struct ThresholdRequest {
  ThresholdQuery query;
  QueryOptions options;
  RpcOptions rpc;
};

struct PdfRequest {
  PdfQuery query;
  RpcOptions rpc;
};

struct TopKRequest {
  TopKQuery query;
  RpcOptions rpc;
};

struct FieldStatsRequest {
  FieldStatsQuery query;
  RpcOptions rpc;
};

/// Asks for the server's own request counters (the `stats` RPC).
struct ServerStatsRequest {
  RpcOptions rpc;
};

/// Liveness probe. `delay_ms` makes the server sleep before answering —
/// used by tests (and operators) to exercise deadline handling.
struct PingRequest {
  uint64_t delay_ms = 0;
  RpcOptions rpc;
};

using Request =
    std::variant<ThresholdRequest, PdfRequest, TopKRequest,
                 FieldStatsRequest, ServerStatsRequest, PingRequest>;

/// Server-side request counters surfaced through the stats RPC.
struct ServerStatsReply {
  uint64_t requests_ok = 0;
  uint64_t requests_error = 0;
  uint64_t bytes_in = 0;        ///< Frame bytes read (headers + payloads).
  uint64_t bytes_out = 0;       ///< Frame bytes written.
  uint64_t connections_accepted = 0;
  uint64_t active_connections = 0;
  double p50_latency_ms = 0.0;  ///< Over the most recent served requests.
  double p99_latency_ms = 0.0;
};

// -- Request encoding ----------------------------------------------------

std::vector<uint8_t> EncodeRequest(const ThresholdRequest& request);
std::vector<uint8_t> EncodeRequest(const PdfRequest& request);
std::vector<uint8_t> EncodeRequest(const TopKRequest& request);
std::vector<uint8_t> EncodeRequest(const FieldStatsRequest& request);
std::vector<uint8_t> EncodeRequest(const ServerStatsRequest& request);
std::vector<uint8_t> EncodeRequest(const PingRequest& request);

/// Decodes any request frame payload (server side).
Result<Request> DecodeRequest(const std::vector<uint8_t>& payload);

// -- Response encoding ---------------------------------------------------

/// Encodes a failed request. `status` must be non-OK.
std::vector<uint8_t> EncodeErrorResponse(const Status& status);

std::vector<uint8_t> EncodeResponse(const ThresholdResult& result);
std::vector<uint8_t> EncodeResponse(const PdfResult& result);
std::vector<uint8_t> EncodeResponse(const TopKResult& result);
std::vector<uint8_t> EncodeResponse(const FieldStatsResult& result);
std::vector<uint8_t> EncodeResponse(const ServerStatsReply& reply);
std::vector<uint8_t> EncodePingResponse();

/// Response decoders (client side). An error frame decodes into the
/// Status the server sent; a type other than the expected one is
/// Corruption. Wall-clock and per-node stats are not carried over the
/// wire: `wall_seconds` is 0 and `node_stats` empty in decoded results.
Result<ThresholdResult> DecodeThresholdResponse(
    const std::vector<uint8_t>& payload);
Result<PdfResult> DecodePdfResponse(const std::vector<uint8_t>& payload);
Result<TopKResult> DecodeTopKResponse(const std::vector<uint8_t>& payload);
Result<FieldStatsResult> DecodeFieldStatsResponse(
    const std::vector<uint8_t>& payload);
Result<ServerStatsReply> DecodeServerStatsResponse(
    const std::vector<uint8_t>& payload);
Status DecodePingResponse(const std::vector<uint8_t>& payload);

}  // namespace net
}  // namespace turbdb
