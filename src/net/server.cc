#include "net/server.h"

#include <algorithm>
#include <chrono>

#include "common/fault.h"
#include "common/logging.h"

namespace turbdb {
namespace net {

namespace {

constexpr size_t kLatencyWindow = 4096;

/// A percentile over an unordered sample (nearest-rank).
double Percentile(std::vector<double> sample, double fraction) {
  if (sample.empty()) return 0.0;
  const size_t rank = std::min(
      sample.size() - 1,
      static_cast<size_t>(fraction * static_cast<double>(sample.size())));
  std::nth_element(sample.begin(),
                   sample.begin() + static_cast<ptrdiff_t>(rank),
                   sample.end());
  return sample[rank];
}

Status DeadlineError(uint64_t budget_ms) {
  return Status::DeadlineExceeded("server-side budget of " +
                                  std::to_string(budget_ms) +
                                  " ms exhausted");
}

/// A response payload is an error frame iff its first (single-byte)
/// varint is kErrorResponse — all message types fit in one byte.
bool IsErrorPayload(const std::vector<uint8_t>& response) {
  return !response.empty() &&
         response[0] == static_cast<uint8_t>(MsgType::kErrorResponse);
}

}  // namespace

Server::Server(Handler handler, const ServerOptions& options)
    : handler_(std::move(handler)),
      options_(options),
      site_accept_(options.fault_scope + "server.accept"),
      site_reply_delay_(options.fault_scope + "server.reply.delay"),
      site_reply_error_(options.fault_scope + "server.reply.error"),
      site_reply_truncate_(options.fault_scope + "server.reply.truncate"),
      site_handler_error_(options.fault_scope + "server.handler.error"),
      site_chunk_truncate_(options.fault_scope + "server.chunk_truncate"),
      governor_(options.max_concurrent_queries, options.result_budget_bytes) {
  if (options.per_tenant_max_queries != 0 || !options.tenant_weights.empty()) {
    governor_.SetTenantPolicy(options.per_tenant_max_queries,
                              options.tenant_weights);
  }
  latencies_ms_.resize(kLatencyWindow, 0.0);
}

Result<std::unique_ptr<Server>> Server::Start(Handler handler,
                                              const ServerOptions& options) {
  if (!handler) {
    return Status::InvalidArgument("server needs a request handler");
  }
  std::unique_ptr<Server> server(new Server(std::move(handler), options));
  TURBDB_ASSIGN_OR_RETURN(
      server->listener_,
      TcpListen(options.bind_address, options.port));
  TURBDB_ASSIGN_OR_RETURN(server->port_, LocalPort(server->listener_));
  server->pool_ =
      std::make_unique<ThreadPool>(std::max(1, options.num_workers));
  server->accept_thread_ = std::thread([s = server.get()] {
    s->AcceptLoop();
  });
  return server;
}

Server::~Server() { Stop(); }

void Server::Stop() {
  if (stop_.exchange(true)) {
    // Second caller (e.g. the destructor after an explicit Stop) still
    // has to wait for the first teardown to finish.
    if (accept_thread_.joinable()) accept_thread_.join();
    return;
  }
  listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();
  // Destroying the pool joins the workers; handlers notice stop_ within
  // one idle poll and return after their in-flight request.
  pool_.reset();
  listener_.Close();
  // Last: every handler is done, so a teardown hook can safely release
  // state that referenced this server (e.g. detach a cache charging our
  // governor) before the members are destroyed.
  if (options_.on_stop) options_.on_stop();
}

void Server::AcceptLoop() {
  while (!stop_.load()) {
    auto conn = AcceptWithTimeout(listener_, options_.idle_poll_ms);
    if (!conn.ok()) {
      if (stop_.load()) break;
      // Timeouts are the idle heartbeat; real accept errors are logged
      // and the loop keeps serving (a bad client must not kill the
      // listener).
      if (conn.status().code() != StatusCode::kUnavailable) {
        TURBDB_LOG(Warning) << "accept failed: " << conn.status();
      }
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ++connections_accepted_;
      ++active_connections_;
    }
    if (auto f = fault::Check(site_accept_.c_str())) {
      // Injected accept-stall: the connection is accepted but sits
      // unserved — the client sees an open socket that never answers,
      // the failure mode of a wedged server.
      InjectedSleep(f.arg);
    }
    pool_->Submit([this, c = std::move(conn).value()]() mutable {
      ServeConnection(std::move(c));
      std::lock_guard<std::mutex> lock(stats_mutex_);
      --active_connections_;
    });
  }
}

void Server::ServeConnection(Socket conn) {
  while (!stop_.load()) {
    Status readable = WaitReadable(conn, options_.idle_poll_ms);
    if (!readable.ok()) {
      if (readable.code() == StatusCode::kUnavailable) continue;
      break;
    }
    uint32_t budget_ms = 0;
    auto payload = ReadFrame(
        conn, Deadline::After(static_cast<int64_t>(options_.default_deadline_ms)),
        options_.max_frame_bytes, &budget_ms);
    if (!payload.ok()) {
      // An oversized frame was drained by ReadFrame, so the stream is
      // still synced: refuse it with an error and keep serving. Any
      // other stream-level failure (bad magic, version mismatch, CRC
      // mismatch, torn read) leaves the framing untrustworthy and
      // closes the connection.
      if (payload.status().code() == StatusCode::kResultTooLarge) {
        const auto frame = EncodeErrorResponse(payload.status());
        Status written = WriteFrame(conn, frame, Deadline::After(1000));
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++requests_error_;
        if (written.ok()) bytes_out_ += kFrameHeaderBytes + frame.size();
        continue;
      }
      break;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      bytes_in_ += kFrameHeaderBytes + payload->size();
    }
    bool stream_broken = false;
    std::vector<uint8_t> response =
        HandleRequest(*payload, budget_ms, conn, &stream_broken);
    if (stream_broken) {
      // A chunk write failed mid-stream (client gone, or an injected
      // truncation): the connection may hold a torn frame, so the only
      // safe move is to drop it. The handler already saw its cancel
      // token flip.
      break;
    }
    if (auto f = fault::Check(site_reply_delay_.c_str())) {
      // Injected slow reply: the request was executed, the answer just
      // doesn't come — the client's read deadline decides.
      InjectedSleep(f.arg);
    }
    if (auto f = fault::Check(site_reply_error_.c_str())) {
      response = EncodeErrorResponse(
          Status(static_cast<StatusCode>(f.arg), "injected fault"));
    }
    if (auto f = fault::Check(site_reply_truncate_.c_str())) {
      // Injected mid-frame truncation: send a prefix of the encoded
      // frame and sever the connection, exactly what a crash between
      // send() calls produces.
      const auto frame = EncodeFrame(response);
      const size_t cut = std::min(static_cast<size_t>(f.arg), frame.size());
      (void)SendAll(conn, frame.data(), cut, Deadline::After(1000));
      break;
    }
    Status written = WriteFrame(
        conn, response,
        Deadline::After(static_cast<int64_t>(options_.default_deadline_ms)));
    if (!written.ok()) break;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    bytes_out_ += kFrameHeaderBytes + response.size();
  }
  conn.Close();
}

std::vector<uint8_t> Server::HandleRequest(
    const std::vector<uint8_t>& payload, uint32_t frame_budget_ms,
    const Socket& conn, bool* stream_broken) {
  const auto started = std::chrono::steady_clock::now();
  uint64_t chunk_bytes_out = 0;

  std::vector<uint8_t> response;
  auto header_or = PeekRequestHeader(payload);
  if (!header_or.ok()) {
    response = EncodeErrorResponse(header_or.status());
  } else {
    // The frame header carries the client's *remaining* budget; 0 means
    // none stated, so the server default applies.
    const uint64_t budget_ms = frame_budget_ms != 0
                                   ? frame_budget_ms
                                   : options_.default_deadline_ms;
    const Deadline deadline =
        Deadline::After(static_cast<int64_t>(budget_ms));

    switch (header_or->type) {
      case MsgType::kServerStatsRequest:
        response = EncodeResponse(stats());
        break;
      case MsgType::kHelloRequest: {
        HelloReply reply;
        reply.protocol_version = kProtocolVersion;
        reply.server_id = options_.server_id;
        reply.epoch = options_.server_epoch;
        response = EncodeHelloResponse(reply);
        break;
      }
      case MsgType::kCancelRequest: {
        // Answered here, not in the handler, so cancellation works the
        // same on mediator and node servers and never depends on what
        // the (possibly busy) application handler is doing.
        CancelReply reply;
        reply.found = CancelLiveQuery(header_or->rpc.query_id);
        response = EncodeCancelResponse(reply);
        break;
      }
      case MsgType::kPingRequest: {
        // Sleep the requested delay in stop-aware slices, then honour
        // the deadline exactly like a query would.
        auto request_or = DecodeRequest(payload);
        if (!request_or.ok() ||
            !std::holds_alternative<PingRequest>(*request_or)) {
          response = EncodeErrorResponse(
              request_or.ok() ? Status::Corruption("malformed ping")
                              : request_or.status());
          break;
        }
        const auto& req = std::get<PingRequest>(*request_or);
        const auto wake = started + std::chrono::milliseconds(req.delay_ms);
        while (!stop_.load() && std::chrono::steady_clock::now() < wake) {
          std::this_thread::sleep_for(std::chrono::milliseconds(
              std::min<int64_t>(options_.idle_poll_ms, 10)));
        }
        response = deadline.Expired()
                       ? EncodeErrorResponse(DeadlineError(budget_ms))
                       : EncodePingResponse();
        break;
      }
      default: {
        if (auto f = fault::Check(site_handler_error_.c_str())) {
          // Injected application failure: only handler-delegated
          // requests fail, so Hello/Ping health probes still succeed —
          // the shape of a node whose storage is sick but whose
          // transport is fine (what trips a circuit breaker).
          response = EncodeErrorResponse(
              Status(static_cast<StatusCode>(f.arg), "injected fault"));
          break;
        }
        // Admission control: shed fast instead of queueing into an OOM.
        // Only handler-delegated work is gated — Ping/Hello/Stats/Cancel
        // stay answerable on an overloaded server. The header's tenant
        // picks the fairness bucket (empty = default).
        ResourceGovernor::AdmitTicket ticket;
        Status admitted = governor_.TryAdmit(header_or->rpc.tenant, &ticket);
        if (!admitted.ok()) {
          response = EncodeErrorResponse(admitted);
          break;
        }
        const uint64_t query_id = header_or->rpc.query_id;
        CallContext ctx;
        ctx.deadline = deadline;
        ctx.cancelled = query_id != 0
                            ? RegisterQuery(query_id)
                            : std::make_shared<std::atomic<bool>>(false);
        ctx.chunk_points = options_.stream_chunk_points;
        ctx.governor = &governor_;
        // Streamed replies go out through this hook while the handler
        // still runs. The blocking write *is* the backpressure; the
        // request deadline bounds how long a stalled client may hold the
        // worker. A failed write marks the stream broken and flips the
        // cancel token so the handler (and, through the mediator's
        // fan-out, the unjoined shards) stop producing.
        ctx.emit = [this, &conn, &ctx, &chunk_bytes_out,
                    stream_broken](const std::vector<uint8_t>& chunk) {
          if (*stream_broken) {
            return Status::IOError("reply stream already broken");
          }
          if (auto f = fault::Check(site_chunk_truncate_.c_str())) {
            // Injected mid-stream truncation: a prefix of the chunk
            // frame, then silence — a crash between send() calls.
            const auto frame = EncodeFrame(chunk);
            const size_t cut =
                std::min(static_cast<size_t>(f.arg), frame.size());
            (void)SendAll(conn, frame.data(), cut, Deadline::After(1000));
            *stream_broken = true;
            if (ctx.cancelled) {
              ctx.cancelled->store(true, std::memory_order_relaxed);
            }
            return Status::IOError("injected chunk truncation");
          }
          Status written = WriteFrame(conn, chunk, ctx.deadline);
          if (!written.ok()) {
            *stream_broken = true;
            if (ctx.cancelled) {
              ctx.cancelled->store(true, std::memory_order_relaxed);
            }
            return written;
          }
          chunk_bytes_out += kFrameHeaderBytes + chunk.size();
          return Status::OK();
        };
        response = handler_(payload, ctx);
        if (query_id != 0) UnregisterQuery(query_id);
        if (!IsErrorPayload(response)) {
          if (ctx.Cancelled()) {
            response = EncodeErrorResponse(Status::Cancelled(
                "query " + std::to_string(query_id) + " cancelled"));
          } else if (deadline.Expired()) {
            // The result is ready but stale: the client stopped
            // waiting. Sending a small error instead of a large dead
            // result is the whole point of carrying the deadline
            // server-side.
            response = EncodeErrorResponse(DeadlineError(budget_ms));
          }
        }
        break;
      }
    }
  }

  const double latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - started)
          .count();
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (IsErrorPayload(response)) {
      ++requests_error_;
    } else {
      ++requests_ok_;
    }
    bytes_out_ += chunk_bytes_out;
    latencies_ms_[latency_next_] = latency_ms;
    latency_next_ = (latency_next_ + 1) % latencies_ms_.size();
    if (latency_next_ == 0) latency_full_ = true;
  }
  return response;
}

std::shared_ptr<std::atomic<bool>> Server::RegisterQuery(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(cancel_mutex_);
  auto& token = live_queries_[query_id];
  if (token == nullptr) token = std::make_shared<std::atomic<bool>>(false);
  return token;
}

void Server::UnregisterQuery(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(cancel_mutex_);
  live_queries_.erase(query_id);
}

bool Server::CancelLiveQuery(uint64_t query_id) {
  std::lock_guard<std::mutex> lock(cancel_mutex_);
  auto it = live_queries_.find(query_id);
  if (it == live_queries_.end()) return false;
  it->second->store(true, std::memory_order_relaxed);
  return true;
}

void Server::InjectedSleep(uint64_t ms) {
  const auto wake =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (!stop_.load() && std::chrono::steady_clock::now() < wake) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

ServerStatsReply Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ServerStatsReply reply;
  reply.requests_ok = requests_ok_;
  reply.requests_error = requests_error_;
  reply.bytes_in = bytes_in_;
  reply.bytes_out = bytes_out_;
  reply.connections_accepted = connections_accepted_;
  reply.active_connections = active_connections_;
  const size_t filled = latency_full_ ? latencies_ms_.size() : latency_next_;
  std::vector<double> sample(latencies_ms_.begin(),
                             latencies_ms_.begin() +
                                 static_cast<ptrdiff_t>(filled));
  reply.p50_latency_ms = Percentile(sample, 0.50);
  reply.p99_latency_ms = Percentile(std::move(sample), 0.99);
  reply.queries_in_flight = governor_.in_flight();
  reply.queries_admitted = governor_.admitted();
  reply.queries_shed = governor_.shed();
  reply.result_bytes_in_use = governor_.bytes_in_use();
  reply.result_bytes_peak = governor_.peak_bytes();
  for (const auto& tenant : governor_.tenant_stats()) {
    ServerStatsReply::TenantStats entry;
    entry.name = tenant.name;
    entry.in_flight = tenant.in_flight;
    entry.peak_in_flight = tenant.peak_in_flight;
    entry.admitted = tenant.admitted;
    entry.shed = tenant.shed;
    entry.cap = tenant.cap;
    reply.tenants.push_back(std::move(entry));
  }
  if (options_.stats_decorator) options_.stats_decorator(&reply);
  return reply;
}

}  // namespace net
}  // namespace turbdb
