#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/governor.h"
#include "common/thread_pool.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace turbdb {
namespace net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with Server::port().
  uint16_t port = 0;
  /// Connection-handling threads; each serves one connection at a time.
  int num_workers = 4;
  /// Frames above this payload size are refused.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Budget applied to requests that do not carry their own deadline.
  uint64_t default_deadline_ms = 60000;
  /// How often blocked accept/read loops wake to notice Stop(). Smaller
  /// values shut down faster at the cost of idle wakeups.
  int idle_poll_ms = 100;
  /// Identity returned by the Hello handshake: a mediator server keeps
  /// the default -1, a turbdb_node sets its node id, so a dialer can
  /// confirm it reached the process it meant to.
  int32_t server_id = -1;
  /// Incarnation counter returned by the Hello handshake. A turbdb_node
  /// bumps a counter persisted beside its storage dir on every start and
  /// sets it here, so a dialer that remembers the last epoch can tell a
  /// plain reconnect from a restart (and trigger re-sync). A mediator
  /// keeps the default 0.
  uint64_t server_epoch = 0;
  /// Prefix prepended to this server's fault-injection site names
  /// (TURBDB_FAULTS builds). The fault registry is process-global; when
  /// a test hosts several servers in one process, scoping ("n0." makes
  /// node 0 consult "n0.server.reply.delay") pins each armed fault to
  /// one server deterministically. Empty (the default, and what the
  /// one-server-per-process tools use) leaves the documented site names.
  std::string fault_scope;
  /// Admission control: how many handler-delegated requests (queries,
  /// ingests — not Ping/Hello/Stats/Cancel) may run at once. A request
  /// beyond the budget is shed *fast* with a typed kResourceExhausted
  /// error, never queued. 0 = unlimited.
  uint64_t max_concurrent_queries = 0;
  /// Admission control: how many reply bytes the server may buffer at
  /// once across all in-flight queries (the streaming encoder reserves
  /// each chunk against this before materializing it). 0 = unlimited.
  uint64_t result_budget_bytes = 0;
  /// Points per kThresholdChunk frame on streamed replies. Bounds the
  /// per-chunk buffer: ~29 bytes/point encoded, so the default is ~1 MiB
  /// chunks.
  uint64_t stream_chunk_points = 32768;
  /// Per-tenant fair admission (v5): flat in-flight cap applied to every
  /// tenant without an explicit weight. 0 = tenants share only the
  /// global budget (but are still counted once any of this or
  /// tenant_weights is set, or a request names a tenant).
  uint64_t per_tenant_max_queries = 0;
  /// Weighted tenant shares: tenant name -> weight. Each listed tenant
  /// gets max(1, max_concurrent_queries * w / total_w) in-flight slots.
  std::map<std::string, double> tenant_weights;
  /// Optional hook run on every stats() snapshot (local and remote) after
  /// the transport counters are filled in. The embedding service uses it
  /// to merge subsystem gauges — e.g. the mediator result-cache counters —
  /// into the same reply without the transport knowing about them.
  std::function<void(ServerStatsReply*)> stats_decorator;
  /// Optional hook run once at the end of Stop(), after every worker has
  /// joined and before the server's members are destroyed. The embedding
  /// service uses it to detach state that references the server — e.g.
  /// release cache reservations charged to this server's governor.
  std::function<void()> on_stop;
};

/// Per-request execution context handed to a Handler.
///
/// `deadline` is derived from the request frame's deadline-budget field
/// (or the server default when the frame carried 0); handlers should
/// check it between units of work and pass the *remaining* budget on any
/// downstream RPC they issue. `cancelled` flips to true when a
/// CancelQuery RPC names this request's query id — a cooperative token:
/// the handler polls it at its own granularity and abandons work early.
struct CallContext {
  Deadline deadline = Deadline::Infinite();
  std::shared_ptr<std::atomic<bool>> cancelled;

  /// Streamed replies: writes one response-frame payload (a
  /// kThresholdChunk, typically) to the requesting connection *now*,
  /// before the handler returns its terminating frame. Blocking on the
  /// socket is the backpressure: a slow client throttles the producer
  /// instead of growing a buffer. On a write failure (client gone, torn
  /// stream) the server flips `cancelled` — the disconnect aborts the
  /// rest of the query — and every later emit fails fast. Null when the
  /// transport cannot stream (in-process callers).
  std::function<Status(const std::vector<uint8_t>& payload)> emit;
  /// Points per streamed chunk (ServerOptions::stream_chunk_points).
  uint64_t chunk_points = 0;
  /// The server's result-byte accounting; producers reserve each chunk
  /// buffer against it. Null when the server runs unbudgeted.
  ResourceGovernor* governor = nullptr;

  bool Cancelled() const {
    return cancelled != nullptr &&
           cancelled->load(std::memory_order_relaxed);
  }
};

/// A framed-TCP request server: accepts connections, reads framed
/// requests, and answers them. What the requests *mean* is supplied by
/// the caller as a `Handler` — the mediator front-end
/// (`cluster/service.h`) and the per-node `turbdb_node` service
/// (`cluster/node_service.h`) both run on this same transport.
///
/// The server itself answers the transport-level requests (Ping,
/// ServerStats, Hello, CancelQuery) and delegates everything else to the
/// handler with a CallContext carrying the deadline and cancellation
/// token. If the deadline has expired — or the query was cancelled — by
/// the time the handler returns, the (stale) response is replaced by a
/// small typed error (kDeadlineExceeded / kCancelled). CancelQuery is
/// answered without consulting the handler, so it works on mediator and
/// node servers alike; note it still needs a free worker to read its
/// connection, so callers should keep num_workers above the expected
/// number of simultaneously busy query connections.
///
/// Failure policy: anything wrong with a *request* (unknown type, failed
/// query, expired deadline, oversized frame) gets an error frame back and
/// the connection stays open; anything wrong with the *stream* (bad
/// magic, version mismatch, CRC mismatch, torn read) closes the
/// connection, because framing can no longer be trusted.
///
/// Fault injection (TURBDB_FAULTS builds only) consults these sites:
///   server.accept         stall the accept path for `arg` ms
///   server.reply.delay    sleep `arg` ms before writing a response
///   server.reply.error    replace the response with an error of
///                         StatusCode `arg`
///   server.reply.truncate write only the first `arg` bytes of the
///                         response frame, then sever the connection
///   server.handler.error  fail only handler-delegated requests with an
///                         error of StatusCode `arg`; Hello/Ping/Stats/
///                         Cancel stay healthy (breaker drills)
///   server.chunk_truncate write only the first `arg` bytes of a
///                         streamed chunk frame, then sever the
///                         connection (mid-stream crash drills)
class Server {
 public:
  /// Produces the response payload for one request payload. `ctx`
  /// carries the request's execution budget and cancellation token; the
  /// handler may check both mid-flight. Must return either a response or
  /// an error frame body (EncodeErrorResponse) — never throw.
  using Handler = std::function<std::vector<uint8_t>(
      const std::vector<uint8_t>& payload, const CallContext& ctx)>;

  /// Binds, starts the accept loop and worker pool. The handler (and
  /// everything it references) must outlive the server.
  static Result<std::unique_ptr<Server>> Start(Handler handler,
                                               const ServerOptions& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Graceful shutdown: stop accepting, let in-flight requests finish,
  /// join every thread. Idempotent; also run by the destructor.
  void Stop();

  uint16_t port() const { return port_; }

  /// Snapshot of the request counters (also served remotely via the
  /// stats RPC).
  ServerStatsReply stats() const;

  /// The server's admission/result-byte ledger. Subsystems that want
  /// their resident bytes to compete with in-flight results (the
  /// mediator result cache) charge this ledger directly.
  ResourceGovernor& governor() { return governor_; }

 private:
  Server(Handler handler, const ServerOptions& options);

  void AcceptLoop();
  void ServeConnection(Socket conn);

  /// Decodes and executes one request payload; returns the *terminating*
  /// response payload (success or error frame body). `budget_ms` is the
  /// deadline budget read from the request's frame header (0 = none
  /// stated). `conn` is the requesting connection: a streaming handler
  /// writes chunk frames to it before returning. `stream_broken` is set
  /// when a mid-request chunk write failed — the connection's framing is
  /// no longer trustworthy and the caller must close it.
  std::vector<uint8_t> HandleRequest(const std::vector<uint8_t>& payload,
                                     uint32_t budget_ms, const Socket& conn,
                                     bool* stream_broken);

  /// Registers a live query under `query_id` and returns its token
  /// (reusing an existing token on id collision).
  std::shared_ptr<std::atomic<bool>> RegisterQuery(uint64_t query_id);
  void UnregisterQuery(uint64_t query_id);

  /// Flips the token of a live query; false if no such query is in
  /// flight (already finished, or never arrived).
  bool CancelLiveQuery(uint64_t query_id);

  /// Sleeps `ms` in stop-aware slices (fault-injection delays).
  void InjectedSleep(uint64_t ms);

  Handler handler_;
  ServerOptions options_;
  /// Fault-site names with this server's `fault_scope` prepended,
  /// precomputed so the per-request checks never build strings.
  std::string site_accept_;
  std::string site_reply_delay_;
  std::string site_reply_error_;
  std::string site_reply_truncate_;
  std::string site_handler_error_;
  std::string site_chunk_truncate_;
  Socket listener_;
  uint16_t port_ = 0;

  /// Admission budgets (concurrency + buffered reply bytes) from
  /// ServerOptions; 0-limits make it a pure counter.
  ResourceGovernor governor_;

  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  /// Live queries by id, for CancelQuery. Entries exist only while the
  /// handler runs; a cancel for an unknown id is a no-op answer.
  std::mutex cancel_mutex_;
  std::unordered_map<uint64_t, std::shared_ptr<std::atomic<bool>>>
      live_queries_;

  mutable std::mutex stats_mutex_;
  uint64_t requests_ok_ = 0;
  uint64_t requests_error_ = 0;
  uint64_t bytes_in_ = 0;
  uint64_t bytes_out_ = 0;
  uint64_t connections_accepted_ = 0;
  uint64_t active_connections_ = 0;
  /// Ring buffer of the most recent request latencies (ms) for the
  /// percentile estimates.
  std::vector<double> latencies_ms_;
  size_t latency_next_ = 0;
  bool latency_full_ = false;
};

}  // namespace net
}  // namespace turbdb
