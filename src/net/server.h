#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "net/frame.h"
#include "net/protocol.h"
#include "net/socket.h"

namespace turbdb {
namespace net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  /// 0 binds an ephemeral port; read it back with Server::port().
  uint16_t port = 0;
  /// Connection-handling threads; each serves one connection at a time.
  int num_workers = 4;
  /// Frames above this payload size are refused.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Budget applied to requests that do not carry their own deadline.
  uint64_t default_deadline_ms = 60000;
  /// How often blocked accept/read loops wake to notice Stop(). Smaller
  /// values shut down faster at the cost of idle wakeups.
  int idle_poll_ms = 100;
  /// Identity returned by the Hello handshake: a mediator server keeps
  /// the default -1, a turbdb_node sets its node id, so a dialer can
  /// confirm it reached the process it meant to.
  int32_t server_id = -1;
  /// Incarnation counter returned by the Hello handshake. A turbdb_node
  /// bumps a counter persisted beside its storage dir on every start and
  /// sets it here, so a dialer that remembers the last epoch can tell a
  /// plain reconnect from a restart (and trigger re-sync). A mediator
  /// keeps the default 0.
  uint64_t server_epoch = 0;
};

/// A framed-TCP request server: accepts connections, reads framed
/// requests, and answers them. What the requests *mean* is supplied by
/// the caller as a `Handler` — the mediator front-end
/// (`cluster/service.h`) and the per-node `turbdb_node` service
/// (`cluster/node_service.h`) both run on this same transport.
///
/// The server itself answers the transport-level requests (Ping,
/// ServerStats, Hello) and delegates everything else to the handler,
/// passing the deadline derived from the request's RpcOptions. If the
/// deadline has expired by the time the handler returns, the (stale)
/// response is replaced by a small Unavailable error.
///
/// Failure policy: anything wrong with a *request* (unknown type, failed
/// query, expired deadline, oversized frame) gets an error frame back and
/// the connection stays open; anything wrong with the *stream* (bad
/// magic, version mismatch, CRC mismatch, torn read) closes the
/// connection, because framing can no longer be trusted.
class Server {
 public:
  /// Produces the response payload for one request payload. `deadline`
  /// is the request's execution budget; the handler may check it
  /// mid-flight. Must return either a response or an error frame body
  /// (EncodeErrorResponse) — never throw.
  using Handler = std::function<std::vector<uint8_t>(
      const std::vector<uint8_t>& payload, const Deadline& deadline)>;

  /// Binds, starts the accept loop and worker pool. The handler (and
  /// everything it references) must outlive the server.
  static Result<std::unique_ptr<Server>> Start(Handler handler,
                                               const ServerOptions& options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Graceful shutdown: stop accepting, let in-flight requests finish,
  /// join every thread. Idempotent; also run by the destructor.
  void Stop();

  uint16_t port() const { return port_; }

  /// Snapshot of the request counters (also served remotely via the
  /// stats RPC).
  ServerStatsReply stats() const;

 private:
  Server(Handler handler, const ServerOptions& options);

  void AcceptLoop();
  void ServeConnection(Socket conn);

  /// Decodes and executes one request payload; returns the response
  /// payload (success or error frame body).
  std::vector<uint8_t> HandleRequest(const std::vector<uint8_t>& payload);

  Handler handler_;
  ServerOptions options_;
  Socket listener_;
  uint16_t port_ = 0;

  std::atomic<bool> stop_{false};
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex stats_mutex_;
  uint64_t requests_ok_ = 0;
  uint64_t requests_error_ = 0;
  uint64_t bytes_in_ = 0;
  uint64_t bytes_out_ = 0;
  uint64_t connections_accepted_ = 0;
  uint64_t active_connections_ = 0;
  /// Ring buffer of the most recent request latencies (ms) for the
  /// percentile estimates.
  std::vector<double> latencies_ms_;
  size_t latency_next_ = 0;
  bool latency_full_ = false;
};

}  // namespace net
}  // namespace turbdb
