#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <climits>
#include <cstring>

namespace turbdb {
namespace net {

namespace {

Status ErrnoStatus(const char* what, int err) {
  return Status::IOError(std::string(what) + ": " + std::strerror(err));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)", errno);
  }
  return Status::OK();
}

/// Waits for `events` (POLLIN/POLLOUT) on fd within the deadline.
/// Returns Unavailable on timeout.
Status PollFor(int fd, short events, Deadline deadline, const char* what) {
  for (;;) {
    struct pollfd pfd;
    pfd.fd = fd;
    pfd.events = events;
    pfd.revents = 0;
    const int timeout = deadline.PollTimeoutMs();
    if (!deadline.infinite() && timeout <= 0) {
      return Status::Unavailable(std::string(what) + " timeout");
    }
    const int rc = ::poll(&pfd, 1, timeout);
    if (rc > 0) return Status::OK();
    if (rc == 0) return Status::Unavailable(std::string(what) + " timeout");
    if (errno == EINTR) continue;
    return ErrnoStatus("poll", errno);
  }
}

}  // namespace

int Deadline::PollTimeoutMs() const {
  if (infinite_) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (now >= at_) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(at_ - now)
          .count();
  return static_cast<int>(std::min<int64_t>(ms + 1, INT_MAX));
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Result<Socket> TcpListen(const std::string& host, uint16_t port,
                         int backlog) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket", errno);
  const int one = 1;
  ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (host.empty() || host == "0.0.0.0") {
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  } else if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("bad bind address: " + host);
  }
  if (::bind(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    return ErrnoStatus("bind", errno);
  }
  if (::listen(sock.fd(), backlog) < 0) return ErrnoStatus("listen", errno);
  TURBDB_RETURN_NOT_OK(SetNonBlocking(sock.fd()));
  return sock;
}

Result<uint16_t> LocalPort(const Socket& socket) {
  struct sockaddr_in addr;
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                    &len) < 0) {
    return ErrnoStatus("getsockname", errno);
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> AcceptWithTimeout(const Socket& listener, int timeout_ms) {
  TURBDB_RETURN_NOT_OK(
      PollFor(listener.fd(), POLLIN, Deadline::After(timeout_ms), "accept"));
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("accept timeout");
    }
    return ErrnoStatus("accept", errno);
  }
  Socket conn(fd);
  TURBDB_RETURN_NOT_OK(SetNonBlocking(conn.fd()));
  const int one = 1;
  ::setsockopt(conn.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

Result<Socket> TcpConnect(const std::string& host, uint16_t port,
                          Deadline deadline) {
  // Resolve (numeric fast path first; getaddrinfo for names).
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* info = nullptr;
    const int rc = ::getaddrinfo(host.c_str(), nullptr, &hints, &info);
    if (rc != 0 || info == nullptr) {
      if (info) ::freeaddrinfo(info);
      return Status::IOError("cannot resolve host: " + host);
    }
    addr.sin_addr =
        reinterpret_cast<struct sockaddr_in*>(info->ai_addr)->sin_addr;
    ::freeaddrinfo(info);
  }

  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) return ErrnoStatus("socket", errno);
  TURBDB_RETURN_NOT_OK(SetNonBlocking(sock.fd()));

  if (::connect(sock.fd(), reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) return ErrnoStatus("connect", errno);
    TURBDB_RETURN_NOT_OK(PollFor(sock.fd(), POLLOUT, deadline, "connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)", errno);
    }
    if (err != 0) return ErrnoStatus("connect", err);
  }
  const int one = 1;
  ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Status SendAll(const Socket& socket, const void* data, size_t length,
               Deadline deadline) {
  const uint8_t* cursor = static_cast<const uint8_t*>(data);
  size_t remaining = length;
  while (remaining > 0) {
    const ssize_t sent =
        ::send(socket.fd(), cursor, remaining, MSG_NOSIGNAL);
    if (sent > 0) {
      cursor += sent;
      remaining -= static_cast<size_t>(sent);
      continue;
    }
    if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      Status ready = PollFor(socket.fd(), POLLOUT, deadline, "send");
      // A send that cannot make progress by the deadline is an I/O
      // failure of this connection, not a retry-later condition.
      if (!ready.ok()) return Status::IOError(ready.message());
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    if (sent < 0 && errno == EPIPE) {
      // MSG_NOSIGNAL turns the fatal SIGPIPE into this errno; name the
      // condition so callers log "peer went away" rather than a cryptic
      // "send: Broken pipe".
      return Status::IOError("peer disconnected (EPIPE)");
    }
    return ErrnoStatus("send", errno);
  }
  return Status::OK();
}

Status RecvAll(const Socket& socket, void* data, size_t length,
               Deadline deadline) {
  uint8_t* cursor = static_cast<uint8_t*>(data);
  size_t remaining = length;
  while (remaining > 0) {
    const ssize_t got = ::recv(socket.fd(), cursor, remaining, 0);
    if (got > 0) {
      cursor += got;
      remaining -= static_cast<size_t>(got);
      continue;
    }
    if (got == 0) return Status::IOError("connection closed by peer");
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      TURBDB_RETURN_NOT_OK(PollFor(socket.fd(), POLLIN, deadline, "recv"));
      continue;
    }
    if (errno == EINTR) continue;
    return ErrnoStatus("recv", errno);
  }
  return Status::OK();
}

Status WaitReadable(const Socket& socket, int timeout_ms) {
  return PollFor(socket.fd(), POLLIN, Deadline::After(timeout_ms), "recv");
}

Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 >= spec.size()) {
    return Status::InvalidArgument("expected host:port, got '" + spec + "'");
  }
  char* end = nullptr;
  const unsigned long port = std::strtoul(spec.c_str() + colon + 1, &end, 10);
  if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument("bad port in '" + spec + "'");
  }
  return std::make_pair(spec.substr(0, colon),
                        static_cast<uint16_t>(port));
}

}  // namespace net
}  // namespace turbdb
