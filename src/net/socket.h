#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "common/result.h"

namespace turbdb {
namespace net {

/// An absolute point in time a blocking socket operation must finish by.
/// All socket I/O in this subsystem is deadline-based (poll + non-blocking
/// descriptors) so that a stuck peer surfaces as a clean Status error, not
/// a hang — the failure mode the production service must never exhibit.
class Deadline {
 public:
  /// Never expires.
  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now; ms <= 0 means already expired.
  static Deadline After(int64_t ms) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  bool infinite() const { return infinite_; }
  bool Expired() const {
    return !infinite_ && std::chrono::steady_clock::now() >= at_;
  }

  /// Milliseconds until expiry, clamped to [0, INT_MAX]; -1 if infinite
  /// (the value poll(2) expects for "wait forever").
  int PollTimeoutMs() const;

 private:
  Deadline() = default;
  bool infinite_ = true;
  std::chrono::steady_clock::time_point at_{};
};

/// A move-only RAII wrapper over a POSIX socket descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void Close();

  /// shutdown(2) both directions; wakes a peer blocked on this socket.
  void ShutdownBoth();

 private:
  int fd_ = -1;
};

/// Creates a listening TCP socket bound to `host:port` (port 0 picks an
/// ephemeral port; use LocalPort to learn which).
Result<Socket> TcpListen(const std::string& host, uint16_t port,
                         int backlog = 64);

/// The port a bound socket is listening on.
Result<uint16_t> LocalPort(const Socket& socket);

/// Accepts one connection, waiting at most `timeout_ms`. Returns
/// Unavailable on timeout (so an accept loop can poll a stop flag).
Result<Socket> AcceptWithTimeout(const Socket& listener, int timeout_ms);

/// Connects to `host:port` (numeric address or resolvable name) within
/// the deadline. The returned socket is non-blocking; use SendAll /
/// RecvAll for I/O.
Result<Socket> TcpConnect(const std::string& host, uint16_t port,
                          Deadline deadline);

/// Writes exactly `length` bytes, or fails. Deadline expiry and peer
/// resets return IOError ("send timeout" / errno text). A peer that
/// closed its read side surfaces as IOError("peer disconnected (EPIPE)")
/// — sends use MSG_NOSIGNAL, and the serving binaries additionally
/// ignore SIGPIPE, so a vanished client can never kill the process.
Status SendAll(const Socket& socket, const void* data, size_t length,
               Deadline deadline);

/// Reads exactly `length` bytes, or fails. A clean EOF before any byte of
/// this read returns IOError("connection closed by peer"); a deadline
/// expiry returns Unavailable("recv timeout") so callers can distinguish
/// a slow peer (retryable) from a broken one.
Status RecvAll(const Socket& socket, void* data, size_t length,
               Deadline deadline);

/// Waits until the socket has bytes to read (or EOF), at most
/// `timeout_ms`. Returns Unavailable on timeout. Lets a serving loop
/// poll a stop flag between requests without starting a frame read that
/// could tear on its own idle timeout.
Status WaitReadable(const Socket& socket, int timeout_ms);

/// Splits "host:port" (e.g. "127.0.0.1:7878" or "db3:7878").
Result<std::pair<std::string, uint16_t>> ParseHostPort(
    const std::string& spec);

}  // namespace net
}  // namespace turbdb
