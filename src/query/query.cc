#include "query/query.h"

#include "fields/stencil.h"

namespace turbdb {

namespace {

Status ValidateCommon(const std::string& dataset, const std::string& raw_field,
                      const std::string& derived_field, const Box3& box,
                      int fd_order) {
  if (dataset.empty()) return Status::InvalidArgument("dataset name is empty");
  if (raw_field.empty()) {
    return Status::InvalidArgument("raw field name is empty");
  }
  if (derived_field.empty()) {
    return Status::InvalidArgument("derived field name is empty");
  }
  if (box.Empty()) return Status::InvalidArgument("query box is empty");
  if (!IsSupportedFdOrder(fd_order)) {
    return Status::InvalidArgument("unsupported finite-difference order " +
                                   std::to_string(fd_order));
  }
  return Status::OK();
}

}  // namespace

Status ValidateThresholdQuery(const ThresholdQuery& query) {
  TURBDB_RETURN_NOT_OK(ValidateCommon(query.dataset, query.raw_field,
                                      query.derived_field, query.box,
                                      query.fd_order));
  if (query.threshold < 0.0) {
    return Status::InvalidArgument("threshold must be non-negative");
  }
  if (query.timestep < 0) {
    return Status::InvalidArgument("timestep must be non-negative");
  }
  return Status::OK();
}

Status ValidatePdfQuery(const PdfQuery& query) {
  TURBDB_RETURN_NOT_OK(ValidateCommon(query.dataset, query.raw_field,
                                      query.derived_field, query.box,
                                      query.fd_order));
  if (query.bin_width <= 0.0) {
    return Status::InvalidArgument("bin width must be positive");
  }
  if (query.num_bins <= 0) {
    return Status::InvalidArgument("need at least one bin");
  }
  return Status::OK();
}

Status ValidateSampleQuery(const SampleQuery& query) {
  if (query.dataset.empty()) {
    return Status::InvalidArgument("dataset name is empty");
  }
  if (query.raw_field.empty()) {
    return Status::InvalidArgument("raw field name is empty");
  }
  if (query.positions.empty()) {
    return Status::InvalidArgument("no sample positions given");
  }
  if (query.positions.size() > kDefaultMaxResultPoints) {
    return Status::InvalidArgument("too many sample positions");
  }
  if (query.support != 4 && query.support != 6 && query.support != 8) {
    return Status::InvalidArgument(
        "interpolation support must be 4, 6 or 8");
  }
  if (query.timestep < 0) {
    return Status::InvalidArgument("timestep must be non-negative");
  }
  return Status::OK();
}

Status ValidateTopKQuery(const TopKQuery& query) {
  TURBDB_RETURN_NOT_OK(ValidateCommon(query.dataset, query.raw_field,
                                      query.derived_field, query.box,
                                      query.fd_order));
  if (query.k == 0) return Status::InvalidArgument("k must be positive");
  if (query.k > kDefaultMaxResultPoints) {
    return Status::InvalidArgument("k exceeds the result-size limit");
  }
  return Status::OK();
}

}  // namespace turbdb
