#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "array/box.h"
#include "array/point.h"
#include "common/profile.h"
#include "common/result.h"

namespace turbdb {

/// Default cap on threshold-query result size. The production service
/// limits results to 1e6 locations per time-step and rejects queries
/// whose threshold is set too low (Sec. 4).
constexpr uint64_t kDefaultMaxResultPoints = 1000000;

/// A threshold query: report every grid location in `box` (at `timestep`)
/// where the norm (or absolute value) of `derived_field`, computed
/// on-demand from `raw_field` with an FD stencil of order `fd_order`,
/// is at least `threshold`.
struct ThresholdQuery {
  std::string dataset;
  std::string raw_field;      ///< Stored field, e.g. "velocity".
  std::string derived_field;  ///< Kernel name, e.g. "vorticity".
  int32_t timestep = 0;
  Box3 box;                   ///< Half-open grid-coordinate box.
  double threshold = 0.0;
  int fd_order = 4;
};

/// Per-query execution switches (primarily for experiments).
struct QueryOptions {
  /// false = the Fig. 6 "no cache" baseline: no lookup, no insert.
  bool use_cache = true;
  /// true = perform the raw-data reads but skip kernel evaluation and
  /// caching (the "I/O only" series of Fig. 8).
  bool io_only = false;
  /// Overrides the per-query process count; 0 = the cluster default.
  int processes_per_node = 0;
  /// Result cap; exceeding it fails with kThresholdTooLow.
  uint64_t max_result_points = kDefaultMaxResultPoints;
};

/// Execution statistics of one database node's part of a query.
struct NodeExecutionStats {
  int node_id = 0;
  bool cache_hit = false;
  TimeBreakdown time;  ///< The node's own categories (no mediator terms).
  IoCounters io;
};

/// Result of a threshold query, with the modeled end-to-end time
/// breakdown (Fig. 9 categories) and real wall-clock time.
struct ThresholdResult {
  std::vector<ThresholdPoint> points;  ///< Sorted by z-index.
  TimeBreakdown time;                  ///< Modeled, end-to-end.
  double wall_seconds = 0.0;           ///< Measured host time.
  bool all_cache_hits = false;         ///< Every node answered from cache.
  uint64_t result_bytes_binary = 0;    ///< Node->mediator frame size.
  uint64_t result_bytes_xml = 0;       ///< Mediator->user (SOAP) size.
  std::vector<NodeExecutionStats> node_stats;
};

/// A histogram ("PDF") query over the norm of a derived field (Fig. 2).
struct PdfQuery {
  std::string dataset;
  std::string raw_field;
  std::string derived_field;
  int32_t timestep = 0;
  Box3 box;
  int fd_order = 4;
  double bin_width = 10.0;
  int num_bins = 9;  ///< Plus one implicit overflow bin [num_bins*w, inf).
};

struct PdfResult {
  /// counts.size() == num_bins + 1; the last bin is the overflow bin.
  std::vector<uint64_t> counts;
  double bin_width = 0.0;
  uint64_t total_points = 0;
  TimeBreakdown time;
  double wall_seconds = 0.0;
};

/// A top-k query: the k grid locations with the largest derived-field
/// norms in the box.
struct TopKQuery {
  std::string dataset;
  std::string raw_field;
  std::string derived_field;
  int32_t timestep = 0;
  Box3 box;
  int fd_order = 4;
  uint64_t k = 100;
};

struct TopKResult {
  std::vector<ThresholdPoint> points;  ///< Sorted by norm, descending.
  TimeBreakdown time;
  double wall_seconds = 0.0;
};

/// A point-sample query: interpolate a *stored* field at arbitrary
/// physical positions (the JHTDB's GetVelocity-style calls, Sec. 2).
/// `support` selects Lag4/Lag6/Lag8 Lagrange interpolation.
struct SampleQuery {
  std::string dataset;
  std::string raw_field;
  int32_t timestep = 0;
  std::vector<std::array<double, 3>> positions;
  int support = 4;
};

struct SampleResult {
  /// values[i] holds the components for positions[i] (unused components
  /// zero for scalar fields).
  std::vector<std::array<double, 3>> values;
  int ncomp = 0;
  TimeBreakdown time;
  double wall_seconds = 0.0;
};

/// A moments query: mean, RMS and maximum of the derived-field norm over
/// a box. Scientists pick threshold values as multiples of the RMS
/// ("values above 8 times the root mean square value", Sec. 4); this is
/// the query that supplies the RMS.
struct FieldStatsQuery {
  std::string dataset;
  std::string raw_field;
  std::string derived_field;
  int32_t timestep = 0;
  Box3 box;
  int fd_order = 4;
};

struct FieldStatsResult {
  uint64_t count = 0;
  double mean = 0.0;
  double rms = 0.0;  ///< sqrt(E[norm^2]).
  double max = 0.0;
  TimeBreakdown time;
  double wall_seconds = 0.0;
};

/// Validates the parts of a query that do not require catalog access.
Status ValidateThresholdQuery(const ThresholdQuery& query);
Status ValidatePdfQuery(const PdfQuery& query);
Status ValidateTopKQuery(const TopKQuery& query);
Status ValidateSampleQuery(const SampleQuery& query);

}  // namespace turbdb
