#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <mutex>

namespace turbdb {

/// Liveness policy of one replica-group member (see HealthTracker).
struct HealthOptions {
  /// Minimum spacing between probes of a down member.
  int probe_interval_ms = 100;
  /// Circuit breaker: this many MarkDown()s in a row (each within the
  /// decay window of the previous) trip the breaker. 0 disables it.
  int breaker_trip_failures = 3;
  /// Failures further apart than this are unrelated incidents, not a
  /// flap: the streak restarts instead of accumulating.
  int64_t breaker_failure_decay_ms = 30000;
  /// A tripped member is quarantined this long: no probes, no dials.
  int64_t breaker_quarantine_ms = 5000;
};

/// Liveness bookkeeping for one replica-group member. The group marks a
/// member down on transport failure and up again after a successful
/// probe; probes of a down member are rate-limited so every query does
/// not pay a connect timeout re-discovering the same dead node.
///
/// `epoch` records the incarnation the member last answered with: a
/// probe that returns a higher epoch means the process restarted and
/// must be re-synced before serving reads. `missed_writes` is set when a
/// write fan-out skipped this member while it was down — another reason
/// a recovering member needs a sync before rejoining.
///
/// On top of the probe rate limit sits a circuit breaker for *flapping*
/// members — ones that answer the Hello probe but fail every real
/// request, so they cycle up/down and eat a failover on every query.
/// MarkUp deliberately does not clear the failure streak; only time does
/// (breaker_failure_decay_ms without a failure). A member that
/// accumulates breaker_trip_failures MarkDowns within the decay window
/// is quarantined: ShouldProbe stays false until the quarantine elapses,
/// after which it gets one probe to prove itself (half-open).
///
/// Thread-safe; the replica group consults it from concurrent queries.
class HealthTracker {
 public:
  explicit HealthTracker(int probe_interval_ms = 100) {
    options_.probe_interval_ms = probe_interval_ms;
  }

  /// Replaces the policy (bring-up wiring; not expected mid-flight).
  void Configure(const HealthOptions& options) {
    std::lock_guard<std::mutex> lock(mutex_);
    options_ = options;
  }

  /// Injects a millisecond clock (tests advance a fake one to step
  /// through quarantine without sleeping). Null restores steady_clock.
  void set_clock(std::function<int64_t()> clock) {
    std::lock_guard<std::mutex> lock(mutex_);
    clock_ = std::move(clock);
  }

  bool healthy() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return healthy_;
  }

  uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
  }

  uint64_t failovers() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return failovers_;
  }

  bool missed_writes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return missed_writes_;
  }

  /// Whether the breaker is currently open for this member.
  bool quarantined() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return NowMs() < quarantined_until_ms_;
  }

  /// How many times the breaker has tripped (observability).
  uint64_t breaker_trips() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return breaker_trips_;
  }

  /// Member answered (and, if it was stale, has been re-synced): healthy
  /// at `epoch`, with no outstanding missed writes. The breaker's
  /// failure streak intentionally survives this — a flapping member
  /// marks up between every pair of failures.
  void MarkUp(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    healthy_ = true;
    missed_writes_ = false;
    epoch_ = epoch;
  }

  /// Member failed at the transport level. Also (re)starts the probe
  /// rate-limit window so the very next query does not immediately
  /// re-dial it, and advances the breaker streak.
  void MarkDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    healthy_ = false;
    const int64_t now = NowMs();
    last_probe_ms_ = now;
    if (options_.breaker_trip_failures <= 0) return;
    if (last_down_ms_ != kNever &&
        now - last_down_ms_ > options_.breaker_failure_decay_ms) {
      failure_streak_ = 0;  // Old incident; start a fresh streak.
    }
    last_down_ms_ = now;
    if (++failure_streak_ >= options_.breaker_trip_failures) {
      quarantined_until_ms_ = now + options_.breaker_quarantine_ms;
      failure_streak_ = 0;  // Half-open after quarantine: prove it again.
      ++breaker_trips_;
    }
  }

  /// A read was re-routed off this member.
  void NoteFailover() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++failovers_;
  }

  /// A write fan-out skipped this member while it was down.
  void NoteMissedWrite() {
    std::lock_guard<std::mutex> lock(mutex_);
    missed_writes_ = true;
  }

  /// Whether a down member may be probed now. Never while quarantined;
  /// otherwise true at most once per probe interval (and records the
  /// attempt).
  bool ShouldProbe() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (healthy_) return false;
    const int64_t now = NowMs();
    if (now < quarantined_until_ms_) return false;
    if (now - last_probe_ms_ < options_.probe_interval_ms) return false;
    last_probe_ms_ = now;
    return true;
  }

 private:
  /// "Never happened" sentinel far enough in the past that any window
  /// arithmetic against a real or fake clock stays negative-safe.
  static constexpr int64_t kNever = std::numeric_limits<int64_t>::min() / 2;

  int64_t NowMs() const {
    if (clock_) return clock_();
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  mutable std::mutex mutex_;
  HealthOptions options_;
  std::function<int64_t()> clock_;
  bool healthy_ = true;
  bool missed_writes_ = false;
  uint64_t epoch_ = 0;
  uint64_t failovers_ = 0;
  uint64_t breaker_trips_ = 0;
  int failure_streak_ = 0;
  int64_t last_probe_ms_ = kNever;
  int64_t last_down_ms_ = kNever;
  int64_t quarantined_until_ms_ = kNever;
};

}  // namespace turbdb
