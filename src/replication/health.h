#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>

namespace turbdb {

/// Liveness bookkeeping for one replica-group member. The group marks a
/// member down on transport failure and up again after a successful
/// probe; probes of a down member are rate-limited so every query does
/// not pay a connect timeout re-discovering the same dead node.
///
/// `epoch` records the incarnation the member last answered with: a
/// probe that returns a higher epoch means the process restarted and
/// must be re-synced before serving reads. `missed_writes` is set when a
/// write fan-out skipped this member while it was down — another reason
/// a recovering member needs a sync before rejoining.
///
/// Thread-safe; the replica group consults it from concurrent queries.
class HealthTracker {
 public:
  explicit HealthTracker(int probe_interval_ms = 100)
      : probe_interval_(probe_interval_ms) {}

  bool healthy() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return healthy_;
  }

  uint64_t epoch() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return epoch_;
  }

  uint64_t failovers() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return failovers_;
  }

  bool missed_writes() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return missed_writes_;
  }

  /// Member answered (and, if it was stale, has been re-synced): healthy
  /// at `epoch`, with no outstanding missed writes.
  void MarkUp(uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    healthy_ = true;
    missed_writes_ = false;
    epoch_ = epoch;
  }

  /// Member failed at the transport level. Also (re)starts the probe
  /// rate-limit window so the very next query does not immediately
  /// re-dial it.
  void MarkDown() {
    std::lock_guard<std::mutex> lock(mutex_);
    healthy_ = false;
    last_probe_ = std::chrono::steady_clock::now();
  }

  /// A read was re-routed off this member.
  void NoteFailover() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++failovers_;
  }

  /// A write fan-out skipped this member while it was down.
  void NoteMissedWrite() {
    std::lock_guard<std::mutex> lock(mutex_);
    missed_writes_ = true;
  }

  /// Whether a down member may be probed now. True at most once per
  /// probe interval; records the attempt.
  bool ShouldProbe() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (healthy_) return false;
    const auto now = std::chrono::steady_clock::now();
    if (now - last_probe_ < probe_interval_) return false;
    last_probe_ = now;
    return true;
  }

 private:
  mutable std::mutex mutex_;
  std::chrono::milliseconds probe_interval_;
  bool healthy_ = true;
  bool missed_writes_ = false;
  uint64_t epoch_ = 0;
  uint64_t failovers_ = 0;
  std::chrono::steady_clock::time_point last_probe_{};
};

}  // namespace turbdb
