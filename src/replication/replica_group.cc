#include "replication/replica_group.h"

#include "common/logging.h"

namespace turbdb {

namespace {

/// Failures of the pipe rather than the request: worth failing over.
/// Typed failures (NotFound, InvalidArgument, error frames in general)
/// would reproduce on every replica and are returned as-is.
bool IsTransportFailure(const Status& status) {
  return status.code() == StatusCode::kUnreachable ||
         status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kUnavailable;
}

}  // namespace

ReplicaGroup::ReplicaGroup(int group_id,
                           std::vector<std::unique_ptr<RemoteNode>> members,
                           const RemoteNodeOptions& options)
    : group_id_(group_id) {
  HealthOptions health;
  health.probe_interval_ms = options.probe_interval_ms;
  health.breaker_trip_failures = options.breaker_trip_failures;
  health.breaker_failure_decay_ms = options.breaker_failure_decay_ms;
  health.breaker_quarantine_ms = options.breaker_quarantine_ms;
  members_.reserve(members.size());
  for (auto& node : members) {
    auto member = std::make_unique<Member>();
    member->node = std::move(node);
    member->health.Configure(health);
    members_.push_back(std::move(member));
  }
}

ReplicaGroup::~ReplicaGroup() {
  {
    std::lock_guard<std::mutex> lock(repair_mutex_);
    repair_stop_ = true;
  }
  repair_wake_.notify_all();
  if (repair_thread_.joinable()) repair_thread_.join();
}

void ReplicaGroup::EnqueueRepair(const std::string& dataset,
                                 const std::string& field, size_t member) {
  std::lock_guard<std::mutex> lock(repair_mutex_);
  if (repair_stop_) return;
  for (const RepairTask& queued : repair_queue_) {
    if (queued.dataset == dataset && queued.field == field &&
        queued.member == member) {
      return;  // Same repair already pending.
    }
  }
  repair_queue_.push_back({dataset, field, member});
  if (!repair_thread_.joinable()) {
    repair_thread_ = std::thread([this] { RepairLoop(); });
  }
  repair_wake_.notify_one();
}

void ReplicaGroup::RepairLoop() {
  for (;;) {
    RepairTask task;
    {
      std::unique_lock<std::mutex> lock(repair_mutex_);
      repair_wake_.wait(
          lock, [this] { return repair_stop_ || !repair_queue_.empty(); });
      if (repair_stop_) return;
      task = std::move(repair_queue_.front());
      repair_queue_.pop_front();
    }
    Member* member = members_[task.member].get();
    net::NodeRepairRangeRequest request;
    request.dataset = task.dataset;
    request.field = task.field;
    auto reply = member->node->RepairRange(request);
    if (!reply.ok()) {
      TURBDB_LOG(Warning) << DebugName() << ": read-repair of "
                          << task.dataset << "/" << task.field << " on "
                          << member->node->DebugName()
                          << " failed: " << reply.status().ToString();
      continue;
    }
    read_repairs_.fetch_add(1, std::memory_order_relaxed);
    TURBDB_LOG(Warning) << DebugName() << ": read-repair of " << task.dataset
                        << "/" << task.field << " on "
                        << member->node->DebugName() << " rewrote "
                        << reply->atoms_repaired << " atom(s) across "
                        << reply->ranges_diverged << " divergent range(s)";
  }
}

std::string ReplicaGroup::DebugName() const {
  if (members_.size() == 1) return members_.front()->node->DebugName();
  std::string name = "shard " + std::to_string(group_id_) + " (nodes";
  for (const auto& member : members_) {
    name += " " + std::to_string(member->node->id());
  }
  return name + ")";
}

Status ReplicaGroup::BringUp() {
  Status last;
  int live = 0;
  for (auto& member : members_) {
    auto epoch = member->node->Handshake();
    if (epoch.ok()) {
      member->health.MarkUp(*epoch);
      ++live;
    } else {
      last = epoch.status();
      member->health.MarkDown();
      if (members_.size() > 1) {
        TURBDB_LOG(Warning) << DebugName() << ": "
                            << member->node->DebugName()
                            << " down at bring-up: " << last.ToString();
      }
    }
  }
  if (live == 0) return last;
  return Status::OK();
}

void ReplicaGroup::FailMember(Member* member, const Status& failure) {
  member->health.MarkDown();
  member->health.NoteFailover();
  TURBDB_LOG(Warning) << DebugName() << ": failing over off "
                      << member->node->DebugName() << ": "
                      << failure.ToString();
}

Status ReplicaGroup::Recover(Member* member, uint64_t new_epoch) {
  std::lock_guard<std::mutex> lock(recovery_mutex_);
  // Another query may have finished the same recovery while we waited.
  if (member->health.healthy() &&
      member->health.epoch() == new_epoch) {
    return Status::OK();
  }
  Member* donor = nullptr;
  for (auto& candidate : members_) {
    if (candidate.get() != member && candidate->health.healthy()) {
      donor = candidate.get();
      break;
    }
  }
  std::vector<DatasetRegistration> registrations;
  {
    std::lock_guard<std::mutex> reg_lock(registrations_mutex_);
    registrations = registrations_;
  }
  if (donor == nullptr) {
    if (members_.size() > 1) {
      return Status::Unavailable(DebugName() +
                                 ": no healthy donor to re-sync " +
                                 member->node->DebugName());
    }
    // A single-replica shard has no donor — and needs none: its durable
    // stores plus the write-ahead-log replay it ran at startup already
    // hold every acknowledged atom (and nothing could have been written
    // while the sole member was down). Only the volatile dataset catalog
    // is gone; re-register it and the node serves from its own disk.
    TURBDB_LOG(Warning) << DebugName() << ": " << member->node->DebugName()
                        << " restarted (epoch " << new_epoch
                        << "); re-registering its catalog (no donor, "
                        << "self-recovery from durable stores)";
    for (const DatasetRegistration& reg : registrations) {
      TURBDB_ASSIGN_OR_RETURN(
          MortonPartitioner partitioner,
          MortonPartitioner::Create(reg.info.geometry, reg.num_nodes,
                                    reg.strategy));
      TURBDB_RETURN_NOT_OK(
          member->node->CreateDataset(reg.info, partitioner, reg.strategy));
    }
    member->health.MarkUp(new_epoch);
    return Status::OK();
  }
  TURBDB_LOG(Warning) << DebugName() << ": " << member->node->DebugName()
                      << " restarted (epoch " << new_epoch
                      << "); re-syncing from " << donor->node->DebugName();
  auto report = ResyncReplica(member->node.get(), donor->node.get(),
                              registrations);
  if (!report.ok()) return report.status();
  member->health.MarkUp(new_epoch);
  return Status::OK();
}

bool ReplicaGroup::EnsureUsable(Member* member) {
  if (member->health.healthy()) return true;
  if (!member->health.ShouldProbe()) return false;
  auto epoch = member->node->Handshake();
  if (!epoch.ok()) return false;
  if (*epoch != member->health.epoch() || member->health.missed_writes()) {
    Status recovered = Recover(member, *epoch);
    if (!recovered.ok()) {
      TURBDB_LOG(Warning) << DebugName() << ": cannot re-sync "
                          << member->node->DebugName() << ": "
                          << recovered.ToString();
      return false;
    }
  }
  member->health.MarkUp(*epoch);
  return true;
}

bool ReplicaGroup::TryRecoverStale(Member* member) {
  auto epoch = member->node->Handshake();
  if (!epoch.ok()) return false;
  if (*epoch == member->health.epoch()) return false;
  Status recovered = Recover(member, *epoch);
  if (!recovered.ok()) {
    TURBDB_LOG(Warning) << DebugName() << ": cannot re-sync "
                        << member->node->DebugName() << ": "
                        << recovered.ToString();
    return false;
  }
  return true;
}

Status ReplicaGroup::CreateDataset(const DatasetInfo& info,
                                   const MortonPartitioner& partitioner,
                                   PartitionStrategy strategy) {
  {
    std::lock_guard<std::mutex> lock(registrations_mutex_);
    bool replaced = false;
    for (DatasetRegistration& reg : registrations_) {
      if (reg.info.name == info.name) {
        reg = {info, partitioner.num_nodes(), strategy};
        replaced = true;
        break;
      }
    }
    if (!replaced) {
      registrations_.push_back({info, partitioner.num_nodes(), strategy});
    }
  }
  Status last;
  int accepted = 0;
  for (auto& member : members_) {
    if (!EnsureUsable(member.get())) {
      member->health.NoteMissedWrite();
      continue;
    }
    Status status = member->node->CreateDataset(info, partitioner, strategy);
    if (status.ok()) {
      ++accepted;
      continue;
    }
    if (IsTransportFailure(status)) {
      FailMember(member.get(), status);
      member->health.NoteMissedWrite();
      last = status;
      continue;
    }
    return status;
  }
  if (accepted == 0) {
    return last.ok() ? Status::Unreachable(DebugName() + ": all replicas down")
                     : last;
  }
  return Status::OK();
}

Status ReplicaGroup::IngestAtoms(const std::string& dataset,
                                 const std::string& field,
                                 const std::vector<Atom>& atoms) {
  Status last;
  int accepted = 0;
  for (auto& member : members_) {
    if (!EnsureUsable(member.get())) {
      member->health.NoteMissedWrite();
      continue;
    }
    Status status = member->node->IngestAtoms(dataset, field, atoms);
    if (status.ok()) {
      ++accepted;
      continue;
    }
    if (IsTransportFailure(status)) {
      FailMember(member.get(), status);
      member->health.NoteMissedWrite();
      last = status;
      continue;
    }
    return status;
  }
  if (accepted == 0) {
    return last.ok() ? Status::Unreachable(DebugName() + ": all replicas down")
                     : last;
  }
  return Status::OK();
}

Status ReplicaGroup::DropCacheEntries(const std::string& dataset,
                                      const std::string& field,
                                      int32_t timestep) {
  Status last;
  int accepted = 0;
  for (auto& member : members_) {
    if (!EnsureUsable(member.get())) {
      member->health.NoteMissedWrite();
      continue;
    }
    Status status = member->node->DropCacheEntries(dataset, field, timestep);
    if (status.ok()) {
      ++accepted;
      continue;
    }
    if (IsTransportFailure(status)) {
      FailMember(member.get(), status);
      member->health.NoteMissedWrite();
      last = status;
      continue;
    }
    return status;
  }
  if (accepted == 0) {
    return last.ok() ? Status::Unreachable(DebugName() + ": all replicas down")
                     : last;
  }
  return Status::OK();
}

std::vector<size_t> ReplicaGroup::PreferredOrder(const NodeQuery& query) {
  std::vector<size_t> order(members_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (!cache_affinity_ || members_.size() < 2 ||
      query.mode != NodeQuery::Mode::kThreshold || !query.options.use_cache) {
    return order;
  }
  const AffinityKey key{query.dataset->name, query.cache_field_key,
                        query.fd_order, query.timestep};
  size_t preferred = 0;
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(affinity_mutex_);
    auto it = affinity_.find(key);
    // Only a *subsuming* recorded answer promises a node-local cache hit;
    // an overlapping-but-smaller one would miss and recompute anyway.
    if (it != affinity_.end() && it->second.threshold <= query.threshold &&
        it->second.region.ContainsBox(query.box)) {
      preferred = it->second.member;
      found = true;
    }
  }
  if (found && preferred < order.size()) {
    order.erase(order.begin() + static_cast<long>(preferred));
    order.insert(order.begin(), preferred);
    affinity_routes_.fetch_add(1, std::memory_order_relaxed);
  }
  return order;
}

void ReplicaGroup::RecordAffinity(const NodeQuery& query, size_t index) {
  if (!cache_affinity_ || members_.size() < 2 ||
      query.mode != NodeQuery::Mode::kThreshold || !query.options.use_cache) {
    return;
  }
  const AffinityKey key{query.dataset->name, query.cache_field_key,
                        query.fd_order, query.timestep};
  std::lock_guard<std::mutex> lock(affinity_mutex_);
  // The key space is tiny (datasets × fields × timesteps), but bound it
  // anyway so a hostile workload degrades to no-affinity, never to OOM.
  if (affinity_.size() >= 4096 && affinity_.find(key) == affinity_.end()) {
    affinity_.clear();
  }
  AffinityEntry& entry = affinity_[key];
  if (entry.member == index && !entry.region.Empty() &&
      entry.region.ContainsBox(query.box) &&
      entry.threshold <= query.threshold) {
    return;  // The recorded answer already subsumes this one.
  }
  entry.member = index;
  entry.region = query.box;
  entry.threshold = query.threshold;
}

Result<NodeOutcome> ReplicaGroup::Execute(const NodeQuery& query) {
  Status last = Status::Unreachable(DebugName() + ": all replicas down");
  for (size_t index : PreferredOrder(query)) {
    Member* member = members_[index].get();
    if (!EnsureUsable(member)) continue;
    auto outcome = member->node->Execute(query);
    if (outcome.ok()) {
      outcome->node_id = group_id_;
      RecordAffinity(query, index);
      return outcome;
    }
    last = outcome.status();
    if (last.code() == StatusCode::kCorruption) {
      // The member's store is rotting, not its transport: the node stays
      // up (no breaker trip), the read fails over to a sibling, and a
      // background read-repair is queued so the rot heals instead of
      // being re-served.
      corruption_failovers_.fetch_add(1, std::memory_order_relaxed);
      TURBDB_LOG(Warning) << DebugName() << ": corrupt read on "
                          << member->node->DebugName()
                          << "; failing over and queueing read-repair: "
                          << last.ToString();
      EnqueueRepair(query.dataset->name, query.raw_field, index);
      continue;
    }
    if (IsTransportFailure(last)) {
      FailMember(member, last);
      continue;
    }
    // A typed error from a member that restarted under us (and whose
    // datasets are therefore unregistered) deserves one re-sync + retry.
    if (TryRecoverStale(member)) {
      auto retry = member->node->Execute(query);
      if (retry.ok()) {
        retry->node_id = group_id_;
        RecordAffinity(query, index);
        return retry;
      }
      last = retry.status();
    }
    return last;
  }
  return last;
}

void ReplicaGroup::Cancel(uint64_t query_id) {
  for (auto& member : members_) {
    // Quarantined or down members are skipped: nothing of ours runs
    // there, and dialing them is what the breaker exists to avoid.
    if (!member->health.healthy()) continue;
    member->node->Cancel(query_id);
  }
}

Result<uint64_t> ReplicaGroup::StoredAtomCount(const std::string& dataset,
                                               const std::string& field) {
  Status last = Status::Unreachable(DebugName() + ": all replicas down");
  for (size_t index = 0; index < members_.size(); ++index) {
    Member* member = members_[index].get();
    if (!EnsureUsable(member)) continue;
    auto count = member->node->StoredAtomCount(dataset, field);
    if (count.ok()) return count;
    last = count.status();
    if (last.code() == StatusCode::kCorruption) {
      corruption_failovers_.fetch_add(1, std::memory_order_relaxed);
      EnqueueRepair(dataset, field, index);
      continue;
    }
    if (IsTransportFailure(last)) {
      FailMember(member, last);
      continue;
    }
    return last;
  }
  return last;
}

uint64_t ReplicaGroup::failover_count() const {
  uint64_t total = 0;
  for (const auto& member : members_) total += member->health.failovers();
  return total;
}

std::vector<DatasetRegistration> ReplicaGroup::Registrations() const {
  std::lock_guard<std::mutex> lock(registrations_mutex_);
  return registrations_;
}

Result<net::NodeSyncRangeReply> ReplicaGroup::SyncRange(
    const net::NodeSyncRangeRequest& request) {
  Status last;
  for (auto& member : members_) {
    if (!EnsureUsable(member.get())) continue;
    auto reply = member->node->SyncRange(request);
    if (reply.ok()) return reply;
    if (!IsTransportFailure(reply.status())) return reply.status();
    FailMember(member.get(), reply.status());
    last = reply.status();
  }
  return last.ok() ? Status::Unreachable(DebugName() + ": all replicas down")
                   : last;
}

Status ReplicaGroup::IngestSkippingExisting(const std::string& dataset,
                                            const std::string& field,
                                            const std::vector<Atom>& atoms) {
  for (auto& member : members_) {
    TURBDB_RETURN_NOT_OK(
        member->node->IngestSkippingExisting(dataset, field, atoms));
  }
  return Status::OK();
}

Status ReplicaGroup::PushMembership(const MembershipView& view) {
  Status first;
  for (auto& member : members_) {
    Status status = member->node->PushMembership(view);
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

Status ReplicaGroup::BeginHandoff(const net::BeginHandoffRequest& request) {
  for (auto& member : members_) {
    TURBDB_RETURN_NOT_OK(member->node->BeginHandoff(request));
  }
  return Status::OK();
}

Status ReplicaGroup::Cutover(const net::CutoverRequest& request) {
  for (auto& member : members_) {
    TURBDB_RETURN_NOT_OK(member->node->Cutover(request));
  }
  return Status::OK();
}

std::vector<ReplicaGroup::MemberStatus> ReplicaGroup::Snapshot() const {
  std::vector<MemberStatus> statuses;
  statuses.reserve(members_.size());
  for (size_t i = 0; i < members_.size(); ++i) {
    const Member& member = *members_[i];
    MemberStatus status;
    status.node_id = member.node->id();
    status.address = member.node->address().ToString();
    status.primary = i == 0;
    status.healthy = member.health.healthy();
    status.epoch = member.health.epoch();
    status.failovers = member.health.failovers();
    statuses.push_back(std::move(status));
  }
  return statuses;
}

}  // namespace turbdb
