#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "cluster/node_backend.h"
#include "cluster/remote_node.h"
#include "replication/health.h"
#include "replication/sync.h"

namespace turbdb {

/// One logical shard served by R physical nodes. The mediator holds one
/// ReplicaGroup per shard instead of one RemoteNode per node; the group
/// fronts its members so a single dead node becomes a logged failover,
/// not a query error:
///
///  - Reads (Execute, StoredAtomCount) go to the primary (member 0) and
///    fail over to the next live member on transport error.
///  - Writes (CreateDataset, IngestAtoms, DropCacheEntries) fan out to
///    every member; a down member is skipped with its missed-writes flag
///    set, and the write succeeds as long as one member accepted it.
///  - A member that went down is probed (rate-limited) on later reads;
///    if its Hello epoch moved — the process restarted — it is re-synced
///    from a healthy sibling (see ResyncReplica) before rejoining.
///
/// With R=1 the group degenerates to its single RemoteNode: bring-up
/// fails fast, and every failure surfaces verbatim with the node's name.
class ReplicaGroup : public NodeBackend {
 public:
  struct MemberStatus {
    int node_id = 0;
    std::string address;
    bool primary = false;
    bool healthy = false;
    uint64_t epoch = 0;
    uint64_t failovers = 0;
  };

  /// `options` supplies the per-member health policy (probe interval,
  /// circuit breaker); the default keeps HealthTracker's defaults.
  ReplicaGroup(int group_id, std::vector<std::unique_ptr<RemoteNode>> members,
               const RemoteNodeOptions& options = {});
  ~ReplicaGroup() override;

  /// Handshakes every member and records their epochs. OK as long as at
  /// least one member answers; a single-member group propagates its
  /// handshake failure (the unreplicated fail-fast bring-up).
  Status BringUp();

  int id() const override { return group_id_; }
  std::string DebugName() const override;

  Status CreateDataset(const DatasetInfo& info,
                       const MortonPartitioner& partitioner,
                       PartitionStrategy strategy) override;
  Status IngestAtoms(const std::string& dataset, const std::string& field,
                     const std::vector<Atom>& atoms) override;
  Result<NodeOutcome> Execute(const NodeQuery& query) override;

  /// Fans the cancellation to every member: Execute may have failed over
  /// mid-flight, so any of them could be running the sub-query.
  void Cancel(uint64_t query_id) override;

  Status DropCacheEntries(const std::string& dataset,
                          const std::string& field,
                          int32_t timestep) override;
  Result<uint64_t> StoredAtomCount(const std::string& dataset,
                                   const std::string& field) override;

  int num_members() const { return static_cast<int>(members_.size()); }

  /// Health bookkeeping of member `r` (tests inject fake clocks and read
  /// breaker state through this).
  HealthTracker& member_health(int r) {
    return members_[static_cast<size_t>(r)]->health;
  }

  /// Total reads re-routed off a failed member (test observability).
  uint64_t failover_count() const;

  /// Reads that failed over because a member answered kCorruption (its
  /// store is rotting, not its transport — the member stays up and a
  /// read-repair is queued for it instead of tripping the breaker).
  uint64_t corruption_failovers() const {
    return corruption_failovers_.load(std::memory_order_relaxed);
  }

  /// Read-repairs completed by the background worker (each one an
  /// anti-entropy RepairRange driven on the corrupt member).
  uint64_t read_repairs() const {
    return read_repairs_.load(std::memory_order_relaxed);
  }

  /// Cache-affinity routing: when on, a threshold read is first sent to
  /// the member that most recently served a *subsuming* threshold query
  /// for the same (dataset, field, fd-order, timestep) — its node-local
  /// semantic cache most likely still holds the entry — instead of
  /// always preferring the primary. Unusable members and failover still
  /// follow the health-ordered default. Off by default.
  void set_cache_affinity(bool on) { cache_affinity_ = on; }
  bool cache_affinity() const { return cache_affinity_; }

  /// Reads routed by affinity preference rather than default member
  /// order (observability; surfaced in the CacheStats RPC).
  uint64_t affinity_routes() const {
    return affinity_routes_.load(std::memory_order_relaxed);
  }

  /// Per-member snapshot for cluster-status style reporting.
  std::vector<MemberStatus> Snapshot() const;

  /// Direct access to physical member `r` (elasticity control plane:
  /// stats rows, membership pushes). The group keeps ownership.
  RemoteNode* member_node(int r) {
    return members_[static_cast<size_t>(r)]->node.get();
  }

  /// The dataset registrations replayed onto stale members — also the
  /// catalog a joining node self-registers from.
  std::vector<DatasetRegistration> Registrations() const;

  /// One page of a live range move, read off the first member that
  /// answers (primary-preferred, transport failover).
  Result<net::NodeSyncRangeReply> SyncRange(
      const net::NodeSyncRangeRequest& request);

  /// Skip-existing ingest fanned out to *every* member. Unlike
  /// IngestAtoms this does not tolerate down members: a rebalance copy
  /// must land on all replicas of the recipient shard or fail loudly.
  Status IngestSkippingExisting(const std::string& dataset,
                                const std::string& field,
                                const std::vector<Atom>& atoms);

  /// Fans a membership view to every member; first failure is returned
  /// but the remaining members are still pushed (a down member learns
  /// the view from its post-restart resync instead).
  Status PushMembership(const MembershipView& view);

  /// Handoff control fan-outs to every member.
  Status BeginHandoff(const net::BeginHandoffRequest& request);
  Status Cutover(const net::CutoverRequest& request);

 private:
  struct Member {
    std::unique_ptr<RemoteNode> node;
    HealthTracker health;
  };

  /// True if the member may serve right now: already healthy, or just
  /// probed back to life (re-synced first if its epoch moved or it
  /// missed writes).
  bool EnsureUsable(Member* member);

  /// Marks the member down after `failure` and counts the failover.
  void FailMember(Member* member, const Status& failure);

  /// Re-syncs `member` (which answers at `new_epoch`) from a healthy
  /// sibling, then marks it up. Serialized: one recovery at a time.
  Status Recover(Member* member, uint64_t new_epoch);

  /// If the member's typed failure is explained by a restart we have not
  /// noticed yet (its epoch moved), recover it and return true so the
  /// caller retries.
  bool TryRecoverStale(Member* member);

  /// What a member most recently answered for one semantic cache key.
  struct AffinityEntry {
    size_t member = 0;     ///< Index into members_.
    Box3 region;           ///< Region of the answered query.
    double threshold = 0;  ///< Its threshold.
  };
  using AffinityKey =
      std::tuple<std::string /*dataset*/, std::string /*field key*/,
                 int /*fd_order*/, int32_t /*timestep*/>;

  /// The member order Execute should try for `query`: default member
  /// order, except that with affinity on, a member holding a subsuming
  /// node-local entry is moved to the front (and `affinity_routes_` is
  /// counted).
  std::vector<size_t> PreferredOrder(const NodeQuery& query);

  /// Records that member `index` just served `query` with use_cache on
  /// (so its node-local cache now holds a subsuming entry).
  void RecordAffinity(const NodeQuery& query, size_t index);

  /// One queued read-repair: member `member` served kCorruption for
  /// (dataset, field) and should heal itself from a sibling.
  struct RepairTask {
    std::string dataset;
    std::string field;
    size_t member = 0;
  };

  /// Queues a read-repair of member `member` (deduplicated against
  /// queued work) and lazily starts the repair worker.
  void EnqueueRepair(const std::string& dataset, const std::string& field,
                     size_t member);
  void RepairLoop();

  int group_id_;
  std::vector<std::unique_ptr<Member>> members_;

  mutable std::mutex registrations_mutex_;
  std::vector<DatasetRegistration> registrations_;

  std::mutex recovery_mutex_;

  bool cache_affinity_ = false;
  std::atomic<uint64_t> affinity_routes_{0};
  std::mutex affinity_mutex_;
  std::map<AffinityKey, AffinityEntry> affinity_;

  std::atomic<uint64_t> corruption_failovers_{0};
  std::atomic<uint64_t> read_repairs_{0};
  /// Read-repair worker: lazily started on the first corrupt read,
  /// joined by the destructor. Guarded by repair_mutex_.
  std::mutex repair_mutex_;
  std::condition_variable repair_wake_;
  std::deque<RepairTask> repair_queue_;
  bool repair_stop_ = false;
  std::thread repair_thread_;
};

}  // namespace turbdb
