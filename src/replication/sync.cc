#include "replication/sync.h"

#include "common/logging.h"
#include "net/protocol.h"

namespace turbdb {

Result<ResyncReport> ResyncReplica(
    RemoteNode* stale, RemoteNode* donor,
    const std::vector<DatasetRegistration>& registrations,
    uint64_t page_atoms) {
  if (page_atoms == 0) page_atoms = 256;
  ResyncReport report;

  // A restarted node lost its in-memory catalog; re-register every
  // dataset so it re-derives its shard before atoms arrive.
  for (const DatasetRegistration& reg : registrations) {
    TURBDB_ASSIGN_OR_RETURN(
        MortonPartitioner partitioner,
        MortonPartitioner::Create(reg.info.geometry, reg.num_nodes,
                                  reg.strategy));
    TURBDB_RETURN_NOT_OK(
        stale->CreateDataset(reg.info, partitioner, reg.strategy));
  }

  TURBDB_ASSIGN_OR_RETURN(net::NodeListStoresReply stores,
                          donor->ListStores());
  for (const net::NodeStoreInfo& store : stores.stores) {
    int32_t timesteps = 1;
    for (const DatasetRegistration& reg : registrations) {
      if (reg.info.name == store.dataset) timesteps = reg.info.num_timesteps;
    }
    for (int32_t t = 0; t < timesteps; ++t) {
      uint64_t cursor = 0;
      bool done = false;
      while (!done) {
        net::NodeSyncRangeRequest request;
        request.dataset = store.dataset;
        request.field = store.field;
        request.timestep = t;
        request.begin_code = cursor;
        request.end_code = 0;  // To the end of the shard.
        request.max_atoms = page_atoms;
        TURBDB_ASSIGN_OR_RETURN(net::NodeSyncRangeReply page,
                                donor->SyncRange(request));
        if (!page.atoms.empty()) {
          TURBDB_RETURN_NOT_OK(stale->IngestSkippingExisting(
              store.dataset, store.field, page.atoms));
          report.atoms_pushed += page.atoms.size();
        }
        if (!page.done && page.atoms.empty() && page.next_code <= cursor) {
          return Status::Internal("sync of " + store.dataset + "/" +
                                  store.field + " from " +
                                  donor->DebugName() + " made no progress");
        }
        done = page.done;
        cursor = page.next_code;
      }
    }
    TURBDB_ASSIGN_OR_RETURN(uint64_t have,
                            stale->StoredAtomCount(store.dataset, store.field));
    if (have < store.atoms) {
      return Status::Internal(
          "resync left " + stale->DebugName() + " with " +
          std::to_string(have) + " of " + std::to_string(store.atoms) +
          " atoms of " + store.dataset + "/" + store.field);
    }
    ++report.stores_synced;
  }
  TURBDB_LOG(Info) << "re-synced " << stale->DebugName() << " from "
                   << donor->DebugName() << ": " << report.atoms_pushed
                   << " atoms across " << report.stores_synced << " stores";
  return report;
}

}  // namespace turbdb
