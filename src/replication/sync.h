#pragma once

#include <cstdint>
#include <vector>

#include "cluster/dataset.h"
#include "cluster/partitioner.h"
#include "cluster/remote_node.h"
#include "common/result.h"

namespace turbdb {

/// One dataset registration a replica group replays onto a stale member.
/// The partitioner is not stored — it re-derives from (geometry,
/// num_nodes, strategy), exactly as it does on the wire.
struct DatasetRegistration {
  DatasetInfo info;
  int num_nodes = 1;
  PartitionStrategy strategy = PartitionStrategy::kMorton;
};

struct ResyncReport {
  uint64_t atoms_pushed = 0;
  uint64_t stores_synced = 0;
};

/// Catches a stale replica up from a healthy donor in its group:
/// replays every dataset registration, then pages each (store, timestep)
/// the donor holds through SyncRange and pushes the atoms with
/// skip-existing ingest — so a member that already recovered part of its
/// data from its own storage dir only receives what it is missing.
/// Verifies the member's per-store atom counts reach the donor's before
/// declaring success.
Result<ResyncReport> ResyncReplica(
    RemoteNode* stale, RemoteNode* donor,
    const std::vector<DatasetRegistration>& registrations,
    uint64_t page_atoms = 256);

}  // namespace turbdb
