#include "storage/atom_store.h"

#include <mutex>

#include "common/crc32.h"

namespace turbdb {

VerifyReport AtomStore::Verify(const std::function<void(uint64_t)>& pace) {
  // Volatile stores have no medium to rot: a content sweep over the
  // digest rows counts every atom clean.
  VerifyReport report;
  std::vector<AtomDigest> rows;
  if (!DigestRows(&rows).ok()) return report;
  for (const AtomDigest& row : rows) {
    ++report.atoms_verified;
    report.bytes_verified += row.bytes;
    if (pace) pace(row.bytes);
  }
  return report;
}

Status InMemoryAtomStore::Put(const Atom& atom) {
  std::unique_lock lock(mutex_);
  auto [it, inserted] = atoms_.emplace(atom.key, atom);
  if (!inserted) {
    return Status::AlreadyExists("atom already stored");
  }
  total_bytes_ += atom.SizeBytes();
  return Status::OK();
}

Result<Atom> InMemoryAtomStore::Get(const AtomKey& key) const {
  std::shared_lock lock(mutex_);
  auto it = atoms_.find(key);
  if (it == atoms_.end()) {
    return Status::NotFound("atom not found");
  }
  return it->second;
}

bool InMemoryAtomStore::Contains(const AtomKey& key) const {
  std::shared_lock lock(mutex_);
  return atoms_.count(key) > 0;
}

Status InMemoryAtomStore::Scan(
    int32_t timestep, const MortonRange& range,
    const std::function<void(const Atom&)>& fn) const {
  std::shared_lock lock(mutex_);
  auto it = atoms_.lower_bound(AtomKey{timestep, range.lo});
  for (; it != atoms_.end(); ++it) {
    if (it->first.timestep != timestep || it->first.zindex >= range.hi) break;
    fn(it->second);
  }
  return Status::OK();
}

uint64_t InMemoryAtomStore::AtomCount() const {
  std::shared_lock lock(mutex_);
  return atoms_.size();
}

uint64_t InMemoryAtomStore::TotalBytes() const {
  std::shared_lock lock(mutex_);
  return total_bytes_;
}

Status InMemoryAtomStore::DigestRows(std::vector<AtomDigest>* rows) const {
  std::shared_lock lock(mutex_);
  rows->reserve(rows->size() + atoms_.size());
  for (const auto& [key, atom] : atoms_) {
    AtomDigest row;
    row.timestep = key.timestep;
    row.zindex = key.zindex;
    row.bytes = atom.data.size() * sizeof(float);
    row.crc = Crc32(atom.data.data(), row.bytes);
    rows->push_back(row);
  }
  return Status::OK();
}

Status InMemoryAtomStore::Repair(const Atom& atom) {
  std::unique_lock lock(mutex_);
  auto it = atoms_.find(atom.key);
  if (it != atoms_.end()) {
    total_bytes_ -= it->second.SizeBytes();
    it->second = atom;
  } else {
    atoms_.emplace(atom.key, atom);
  }
  total_bytes_ += atom.SizeBytes();
  return Status::OK();
}

}  // namespace turbdb
