#include "storage/atom_store.h"

#include <mutex>

namespace turbdb {

Status InMemoryAtomStore::Put(const Atom& atom) {
  std::unique_lock lock(mutex_);
  auto [it, inserted] = atoms_.emplace(atom.key, atom);
  if (!inserted) {
    return Status::AlreadyExists("atom already stored");
  }
  total_bytes_ += atom.SizeBytes();
  return Status::OK();
}

Result<Atom> InMemoryAtomStore::Get(const AtomKey& key) const {
  std::shared_lock lock(mutex_);
  auto it = atoms_.find(key);
  if (it == atoms_.end()) {
    return Status::NotFound("atom not found");
  }
  return it->second;
}

bool InMemoryAtomStore::Contains(const AtomKey& key) const {
  std::shared_lock lock(mutex_);
  return atoms_.count(key) > 0;
}

Status InMemoryAtomStore::Scan(
    int32_t timestep, const MortonRange& range,
    const std::function<void(const Atom&)>& fn) const {
  std::shared_lock lock(mutex_);
  auto it = atoms_.lower_bound(AtomKey{timestep, range.lo});
  for (; it != atoms_.end(); ++it) {
    if (it->first.timestep != timestep || it->first.zindex >= range.hi) break;
    fn(it->second);
  }
  return Status::OK();
}

uint64_t InMemoryAtomStore::AtomCount() const {
  std::shared_lock lock(mutex_);
  return atoms_.size();
}

uint64_t InMemoryAtomStore::TotalBytes() const {
  std::shared_lock lock(mutex_);
  return total_bytes_;
}

}  // namespace turbdb
