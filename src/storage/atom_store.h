#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <shared_mutex>
#include <vector>

#include "array/atom.h"
#include "array/morton.h"
#include "common/result.h"
#include "common/status.h"

namespace turbdb {

/// One atom's content digest for anti-entropy comparison. `crc` is
/// recomputed from the payload bytes as stored *now* — not copied from
/// the record header — so a bit-flipped payload (whose header CRC still
/// describes the original bytes) yields a different row than a healthy
/// replica's copy.
struct AtomDigest {
  int32_t timestep = 0;
  uint64_t zindex = 0;
  uint32_t crc = 0;    ///< CRC32 of the payload contents as stored.
  uint64_t bytes = 0;  ///< Payload bytes.
};

/// Outcome of one full verification sweep over a store.
struct VerifyReport {
  uint64_t atoms_verified = 0;  ///< Atoms whose checksum matched.
  uint64_t atoms_corrupt = 0;   ///< Atoms that failed (now quarantined).
  uint64_t bytes_verified = 0;  ///< Payload bytes read and checked.
  /// Keys that failed verification this sweep, in key order.
  std::vector<AtomKey> corrupt;
};

/// Ordered storage for the atoms of one (dataset, field) pair, keyed by
/// (timestep, zindex) — the clustered primary key of the paper's data
/// tables. Implementations must support concurrent readers.
class AtomStore {
 public:
  virtual ~AtomStore() = default;

  /// Inserts an atom; kAlreadyExists if the key is present (simulation
  /// output is immutable once ingested).
  virtual Status Put(const Atom& atom) = 0;

  /// Point lookup by exact key.
  virtual Result<Atom> Get(const AtomKey& key) const = 0;

  virtual bool Contains(const AtomKey& key) const = 0;

  /// Ordered scan of all atoms of `timestep` whose z-index lies in
  /// `range`; `fn` is invoked in increasing z-index order.
  virtual Status Scan(int32_t timestep, const MortonRange& range,
                      const std::function<void(const Atom&)>& fn) const = 0;

  virtual uint64_t AtomCount() const = 0;

  /// Total payload bytes stored.
  virtual uint64_t TotalBytes() const = 0;

  /// Flushes accepted writes to stable storage. A no-op for volatile
  /// stores; durable stores fsync so atoms acknowledged before Sync()
  /// returns survive a crash. Called once per ingest batch, not per Put.
  virtual Status Sync() { return Status::OK(); }

  /// Re-reads every atom and re-checks its payload checksum, off the
  /// query read path. Durable stores quarantine atoms that fail (reads
  /// of a quarantined key fast-fail kCorruption instead of serving bad
  /// bytes); an atom that verifies clean again is un-quarantined.
  /// `pace`, when set, is invoked with the payload bytes just read so a
  /// caller can rate-limit the sweep.
  virtual VerifyReport Verify(const std::function<void(uint64_t)>& pace = {});

  /// Appends one AtomDigest row per stored atom in key order (all
  /// timesteps), with `crc` recomputed from the stored payload bytes.
  /// Quarantined/corrupt atoms still produce rows — their divergent
  /// digests are what lets a peer locate the damage.
  virtual Status DigestRows(std::vector<AtomDigest>* rows) const {
    (void)rows;
    return Status::NotSupported("store does not support digests");
  }

  /// Replaces (or inserts) the stored copy of `atom` with the supplied
  /// bytes — the healing path once a healthy peer provides a known-good
  /// copy. Unlike Put, an existing key is overwritten and any
  /// quarantine on it is cleared.
  virtual Status Repair(const Atom& atom) {
    (void)atom;
    return Status::NotSupported("store does not support repair");
  }

  /// Atoms currently quarantined (confirmed corrupt, reads fast-fail).
  virtual uint64_t QuarantinedCount() const { return 0; }
};

/// Heap-backed store: a sorted map guarded by a shared mutex. This is the
/// default substrate for benchmarks (device *time* comes from the cost
/// models, so the physical medium of the simulation data is irrelevant to
/// the measured shapes).
class InMemoryAtomStore : public AtomStore {
 public:
  Status Put(const Atom& atom) override;
  Result<Atom> Get(const AtomKey& key) const override;
  bool Contains(const AtomKey& key) const override;
  Status Scan(int32_t timestep, const MortonRange& range,
              const std::function<void(const Atom&)>& fn) const override;
  uint64_t AtomCount() const override;
  uint64_t TotalBytes() const override;
  Status DigestRows(std::vector<AtomDigest>* rows) const override;
  Status Repair(const Atom& atom) override;

 private:
  mutable std::shared_mutex mutex_;
  std::map<AtomKey, Atom> atoms_;
  uint64_t total_bytes_ = 0;
};

}  // namespace turbdb
