#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <shared_mutex>

#include "array/atom.h"
#include "array/morton.h"
#include "common/result.h"
#include "common/status.h"

namespace turbdb {

/// Ordered storage for the atoms of one (dataset, field) pair, keyed by
/// (timestep, zindex) — the clustered primary key of the paper's data
/// tables. Implementations must support concurrent readers.
class AtomStore {
 public:
  virtual ~AtomStore() = default;

  /// Inserts an atom; kAlreadyExists if the key is present (simulation
  /// output is immutable once ingested).
  virtual Status Put(const Atom& atom) = 0;

  /// Point lookup by exact key.
  virtual Result<Atom> Get(const AtomKey& key) const = 0;

  virtual bool Contains(const AtomKey& key) const = 0;

  /// Ordered scan of all atoms of `timestep` whose z-index lies in
  /// `range`; `fn` is invoked in increasing z-index order.
  virtual Status Scan(int32_t timestep, const MortonRange& range,
                      const std::function<void(const Atom&)>& fn) const = 0;

  virtual uint64_t AtomCount() const = 0;

  /// Total payload bytes stored.
  virtual uint64_t TotalBytes() const = 0;

  /// Flushes accepted writes to stable storage. A no-op for volatile
  /// stores; durable stores fsync so atoms acknowledged before Sync()
  /// returns survive a crash. Called once per ingest batch, not per Put.
  virtual Status Sync() { return Status::OK(); }
};

/// Heap-backed store: a sorted map guarded by a shared mutex. This is the
/// default substrate for benchmarks (device *time* comes from the cost
/// models, so the physical medium of the simulation data is irrelevant to
/// the measured shapes).
class InMemoryAtomStore : public AtomStore {
 public:
  Status Put(const Atom& atom) override;
  Result<Atom> Get(const AtomKey& key) const override;
  bool Contains(const AtomKey& key) const override;
  Status Scan(int32_t timestep, const MortonRange& range,
              const std::function<void(const Atom&)>& fn) const override;
  uint64_t AtomCount() const override;
  uint64_t TotalBytes() const override;

 private:
  mutable std::shared_mutex mutex_;
  std::map<AtomKey, Atom> atoms_;
  uint64_t total_bytes_ = 0;
};

}  // namespace turbdb
