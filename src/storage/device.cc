#include "storage/device.h"

#include <cmath>

#include <algorithm>

namespace turbdb {

DeviceSpec DeviceSpec::HddArray() {
  DeviceSpec spec;
  spec.name = "hdd-raid5";
  spec.seek_s = 0.008;
  spec.bandwidth_bps = 33.0 * 1024 * 1024;
  spec.concurrency_exponent = 0.5;
  return spec;
}

DeviceSpec DeviceSpec::Ssd() {
  DeviceSpec spec;
  spec.name = "ssd";
  spec.seek_s = 0.0001;
  spec.bandwidth_bps = 250.0 * 1024 * 1024;
  spec.concurrency_exponent = 1.0;
  return spec;
}

DeviceSpec DeviceSpec::Null() {
  DeviceSpec spec;
  spec.name = "null";
  spec.seek_s = 0.0;
  spec.bandwidth_bps = 0.0;  // Sentinel: no transfer cost.
  spec.concurrency_exponent = 1.0;
  return spec;
}

double DeviceModel::ChargeRead(uint64_t bytes, uint64_t ops, int concurrent) {
  total_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  total_ops_.fetch_add(ops, std::memory_order_relaxed);
  concurrent = std::max(1, concurrent);
  double cost = static_cast<double>(ops) * spec_.seek_s;
  if (spec_.bandwidth_bps > 0.0) {
    const double contention = std::pow(static_cast<double>(concurrent),
                                       1.0 - spec_.concurrency_exponent);
    cost += static_cast<double>(bytes) * contention / spec_.bandwidth_bps;
  }
  return cost;
}

void DeviceModel::ResetCounters() {
  total_bytes_.store(0);
  total_ops_.store(0);
}

}  // namespace turbdb
