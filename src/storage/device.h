#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace turbdb {

/// Analytic cost model for one storage device (an HDD RAID array or an
/// SSD attached to a database node).
///
/// The reproduction executes all data movement for real (bytes are read
/// from real in-memory or on-disk stores) but *charges time* through these
/// models, calibrated to the paper's 2008-era production hardware, so that
/// benchmark shapes (I/O ~ half of total, no I/O scaling with process
/// count, SSD cache lookups that are negligible) are reproduced
/// deterministically regardless of the host machine.
///
/// Model: a read of `bytes` issued as `ops` operations by one of
/// `concurrent` streams sharing the device costs
///
///   ops * seek_s
///     + bytes * concurrent^(1 - concurrency_exponent) / bandwidth_bps
///
/// `bandwidth_bps` is the *single-stream* effective rate. The exponent
/// captures how much extra aggregate throughput additional streams buy:
/// 1.0 = perfectly parallel (SSD), 0.0 = one shared spindle (streams
/// divide a fixed aggregate), 0.5 = the paper's four RAID-5 arrays per
/// node, where Fig. 8 shows I/O time falling from ~130 s at one process
/// to ~65 s at eight — sub-linear because the partitioned data files can
/// drive the arrays in parallel but share controllers, caches and the
/// production workload (Sec. 5.3).
struct DeviceSpec {
  std::string name;
  double seek_s = 0.0;         ///< Per-operation positioning cost.
  double bandwidth_bps = 0.0;  ///< Effective single-stream bandwidth.
  double concurrency_exponent = 0.5;  ///< Aggregate-throughput scaling.

  /// Four RAID-5 SATA arrays shared with the production workload;
  /// single-stream effective rate calibrated from Fig. 8 (3.2 GB/node in
  /// ~130 s at one process).
  static DeviceSpec HddArray();

  /// 2008-era SSD holding the cache tables: cheap seeks, fast scans.
  static DeviceSpec Ssd();

  /// Infinitely fast device (for tests and for disabling the model).
  static DeviceSpec Null();
};

/// A device instance with usage counters. Cost computation is pure;
/// callers pass the number of streams concurrently using the device
/// (the per-node process count in this simulation).
class DeviceModel {
 public:
  explicit DeviceModel(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& spec() const { return spec_; }

  /// Modeled seconds for a read; also accumulates the usage counters.
  double ChargeRead(uint64_t bytes, uint64_t ops, int concurrent);

  uint64_t total_bytes() const { return total_bytes_.load(); }
  uint64_t total_ops() const { return total_ops_.load(); }
  void ResetCounters();

 private:
  DeviceSpec spec_;
  std::atomic<uint64_t> total_bytes_{0};
  std::atomic<uint64_t> total_ops_{0};
};

}  // namespace turbdb
