#include "storage/epoch.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <ctime>

namespace turbdb {

namespace {

std::string EpochPath(const std::string& storage_dir, int node_id) {
  return storage_dir + "/node" + std::to_string(node_id) + ".epoch";
}

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

}  // namespace

Result<uint64_t> ReadEpochFile(const std::string& storage_dir, int node_id) {
  if (storage_dir.empty()) return uint64_t{0};
  const std::string path = EpochPath(storage_dir, node_id);
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    if (errno == ENOENT) return uint64_t{0};
    return Errno("open", path);
  }
  unsigned long long value = 0;
  const int matched = std::fscanf(f, "%llu", &value);
  std::fclose(f);
  if (matched != 1) {
    return Status::Corruption("epoch file " + path +
                              " does not hold a counter");
  }
  return static_cast<uint64_t>(value);
}

Result<uint64_t> BumpEpochFile(const std::string& storage_dir, int node_id) {
  if (storage_dir.empty()) {
    // Ephemeral node: no file to persist, but distinct across restarts.
    return static_cast<uint64_t>(std::time(nullptr));
  }
  TURBDB_ASSIGN_OR_RETURN(uint64_t current,
                          ReadEpochFile(storage_dir, node_id));
  const uint64_t next = current + 1;
  const std::string path = EpochPath(storage_dir, node_id);
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("create", tmp);
  const std::string text = std::to_string(next) + "\n";
  ssize_t written = ::write(fd, text.data(), text.size());
  if (written != static_cast<ssize_t>(text.size()) || ::fsync(fd) != 0) {
    Status status = Errno("write", tmp);
    ::close(fd);
    ::unlink(tmp.c_str());
    return status;
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    Status status = Errno("rename", tmp);
    ::unlink(tmp.c_str());
    return status;
  }
  return next;
}

namespace {

std::string MarkerPath(const std::string& storage_dir, int node_id) {
  return storage_dir + "/node" + std::to_string(node_id) + ".lock";
}

}  // namespace

Status CreateStartMarker(const std::string& storage_dir, int node_id) {
  if (storage_dir.empty()) return Status::OK();
  const std::string path = MarkerPath(storage_dir, node_id);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Errno("create", path);
  ::close(fd);
  return Status::OK();
}

Status RemoveStartMarker(const std::string& storage_dir, int node_id) {
  if (storage_dir.empty()) return Status::OK();
  const std::string path = MarkerPath(storage_dir, node_id);
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Errno("unlink", path);
  }
  return Status::OK();
}

Result<bool> StartMarkerPresent(const std::string& storage_dir, int node_id) {
  if (storage_dir.empty()) return false;
  const std::string path = MarkerPath(storage_dir, node_id);
  if (::access(path.c_str(), F_OK) == 0) return true;
  if (errno == ENOENT) return false;
  return Errno("access", path);
}

}  // namespace turbdb
