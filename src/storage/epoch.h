#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace turbdb {

/// Per-node incarnation counter persisted beside the atom stores.
///
/// A `turbdb_node` calls BumpEpochFile() once at startup: the counter in
/// `<storage_dir>/node<id>.epoch` is read, incremented, durably rewritten
/// (write-temp + fsync + rename), and returned. The new value rides in the
/// Hello handshake, so a mediator that remembers the epoch it saw at
/// bring-up can tell a plain TCP reconnect (same epoch) from a process
/// restart (higher epoch) — the trigger for replica re-sync.
///
/// With no storage dir there is nothing to persist; the bump falls back to
/// wall-clock seconds, which still changes across restarts (the only
/// property the protocol needs — monotonic per node, different per start).
Result<uint64_t> BumpEpochFile(const std::string& storage_dir, int node_id);

/// Reads the current epoch without bumping; 0 if the file does not exist.
Result<uint64_t> ReadEpochFile(const std::string& storage_dir, int node_id);

}  // namespace turbdb
