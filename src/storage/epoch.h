#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace turbdb {

/// Per-node incarnation counter persisted beside the atom stores.
///
/// A `turbdb_node` calls BumpEpochFile() once at startup: the counter in
/// `<storage_dir>/node<id>.epoch` is read, incremented, durably rewritten
/// (write-temp + fsync + rename), and returned. The new value rides in the
/// Hello handshake, so a mediator that remembers the epoch it saw at
/// bring-up can tell a plain TCP reconnect (same epoch) from a process
/// restart (higher epoch) — the trigger for replica re-sync.
///
/// With no storage dir there is nothing to persist; the bump falls back to
/// wall-clock seconds, which still changes across restarts (the only
/// property the protocol needs — monotonic per node, different per start).
Result<uint64_t> BumpEpochFile(const std::string& storage_dir, int node_id);

/// Reads the current epoch without bumping; 0 if the file does not exist.
Result<uint64_t> ReadEpochFile(const std::string& storage_dir, int node_id);

/// Crash-detection marker `<storage_dir>/node<id>.lock`: a `turbdb_node`
/// creates it right after startup and removes it on a clean SIGTERM
/// drain. Finding it at the next start means the previous process died
/// without draining (kill -9, OOM, power loss) — the node warns, replays
/// its WAL and bumps the epoch so mediators re-sync it; after a clean
/// shutdown the epoch is kept, since the stores are known consistent.
/// All three are no-ops / false with an empty storage dir.
Status CreateStartMarker(const std::string& storage_dir, int node_id);
Status RemoveStartMarker(const std::string& storage_dir, int node_id);
Result<bool> StartMarkerPresent(const std::string& storage_dir, int node_id);

}  // namespace turbdb
