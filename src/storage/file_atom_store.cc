#include "storage/file_atom_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/crc32.h"
#include "common/logging.h"

namespace turbdb {

namespace {

constexpr uint32_t kRecordMagic = 0x4D544154;  // 'TATM'

#pragma pack(push, 1)
struct RecordHeader {
  uint32_t magic;
  int32_t timestep;
  uint64_t zindex;
  int32_t width;
  int32_t ncomp;
  uint32_t payload_bytes;
  uint32_t crc;
};
#pragma pack(pop)

static_assert(sizeof(RecordHeader) == 32, "unexpected header padding");

Status ErrnoStatus(const std::string& op) {
  return Status::IOError(op + ": " + std::strerror(errno));
}

}  // namespace

FileAtomStore::FileAtomStore(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

FileAtomStore::~FileAtomStore() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<FileAtomStore>> FileAtomStore::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  std::unique_ptr<FileAtomStore> store(new FileAtomStore(path, fd));
  TURBDB_RETURN_NOT_OK(store->LoadIndex());
  return store;
}

Status FileAtomStore::LoadIndex() {
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return ErrnoStatus("lseek");
  uint64_t offset = 0;
  while (offset + sizeof(RecordHeader) <= static_cast<uint64_t>(end)) {
    RecordHeader header;
    const ssize_t n =
        ::pread(fd_, &header, sizeof(header), static_cast<off_t>(offset));
    if (n != static_cast<ssize_t>(sizeof(header))) {
      return ErrnoStatus("pread header");
    }
    if (header.magic != kRecordMagic) {
      return Status::Corruption("bad record magic at offset " +
                                std::to_string(offset));
    }
    const uint64_t record_size = sizeof(RecordHeader) + header.payload_bytes;
    if (offset + record_size > static_cast<uint64_t>(end)) {
      // Torn final record from an interrupted append: truncate it away.
      TURBDB_LOG(Warning) << "truncating torn record at offset " << offset
                          << " in " << path_;
      if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
        return ErrnoStatus("ftruncate");
      }
      break;
    }
    IndexEntry entry;
    entry.offset = offset;
    entry.payload_bytes = header.payload_bytes;
    entry.width = header.width;
    entry.ncomp = header.ncomp;
    index_[AtomKey{header.timestep, header.zindex}] = entry;
    total_payload_bytes_ += header.payload_bytes;
    offset += record_size;
  }
  file_size_ = offset;
  return Status::OK();
}

Status FileAtomStore::Put(const Atom& atom) {
  const uint32_t payload_bytes =
      static_cast<uint32_t>(atom.data.size() * sizeof(float));
  RecordHeader header;
  header.magic = kRecordMagic;
  header.timestep = atom.key.timestep;
  header.zindex = atom.key.zindex;
  header.width = atom.width;
  header.ncomp = atom.ncomp;
  header.payload_bytes = payload_bytes;
  header.crc = Crc32(atom.data.data(), payload_bytes);

  std::lock_guard<std::mutex> write_lock(write_mutex_);
  {
    std::shared_lock index_lock(index_mutex_);
    if (index_.count(atom.key)) {
      return Status::AlreadyExists("atom already stored");
    }
  }
  // Build one contiguous buffer so the append is a single pwrite (keeps
  // torn-record handling simple: either the header+payload prefix is
  // complete or LoadIndex truncates it).
  std::vector<uint8_t> buffer(sizeof(header) + payload_bytes);
  std::memcpy(buffer.data(), &header, sizeof(header));
  std::memcpy(buffer.data() + sizeof(header), atom.data.data(), payload_bytes);
  const ssize_t n = ::pwrite(fd_, buffer.data(), buffer.size(),
                             static_cast<off_t>(file_size_));
  if (n != static_cast<ssize_t>(buffer.size())) {
    return ErrnoStatus("pwrite");
  }
  IndexEntry entry;
  entry.offset = file_size_;
  entry.payload_bytes = payload_bytes;
  entry.width = atom.width;
  entry.ncomp = atom.ncomp;
  {
    std::unique_lock index_lock(index_mutex_);
    index_[atom.key] = entry;
    file_size_ += buffer.size();
    total_payload_bytes_ += payload_bytes;
  }
  return Status::OK();
}

Result<Atom> FileAtomStore::ReadRecord(const AtomKey& key,
                                       const IndexEntry& entry) const {
  RecordHeader header;
  ssize_t n = ::pread(fd_, &header, sizeof(header),
                      static_cast<off_t>(entry.offset));
  if (n != static_cast<ssize_t>(sizeof(header))) {
    return ErrnoStatus("pread header");
  }
  if (header.magic != kRecordMagic || header.timestep != key.timestep ||
      header.zindex != key.zindex) {
    return Status::Corruption("index/record mismatch at offset " +
                              std::to_string(entry.offset));
  }
  Atom atom;
  atom.key = key;
  atom.width = header.width;
  atom.ncomp = header.ncomp;
  atom.data.resize(header.payload_bytes / sizeof(float));
  n = ::pread(fd_, atom.data.data(), header.payload_bytes,
              static_cast<off_t>(entry.offset + sizeof(header)));
  if (n != static_cast<ssize_t>(header.payload_bytes)) {
    return ErrnoStatus("pread payload");
  }
  const uint32_t crc = Crc32(atom.data.data(), header.payload_bytes);
  if (crc != header.crc) {
    return Status::Corruption("checksum mismatch for atom at offset " +
                              std::to_string(entry.offset));
  }
  return atom;
}

Result<Atom> FileAtomStore::Get(const AtomKey& key) const {
  IndexEntry entry;
  {
    std::shared_lock index_lock(index_mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) return Status::NotFound("atom not found");
    entry = it->second;
  }
  return ReadRecord(key, entry);
}

bool FileAtomStore::Contains(const AtomKey& key) const {
  std::shared_lock index_lock(index_mutex_);
  return index_.count(key) > 0;
}

Status FileAtomStore::Scan(int32_t timestep, const MortonRange& range,
                           const std::function<void(const Atom&)>& fn) const {
  // Snapshot the matching index entries, then read without the lock.
  std::vector<std::pair<AtomKey, IndexEntry>> entries;
  {
    std::shared_lock index_lock(index_mutex_);
    auto it = index_.lower_bound(AtomKey{timestep, range.lo});
    for (; it != index_.end(); ++it) {
      if (it->first.timestep != timestep || it->first.zindex >= range.hi) {
        break;
      }
      entries.push_back(*it);
    }
  }
  for (const auto& [key, entry] : entries) {
    TURBDB_ASSIGN_OR_RETURN(Atom atom, ReadRecord(key, entry));
    fn(atom);
  }
  return Status::OK();
}

uint64_t FileAtomStore::AtomCount() const {
  std::shared_lock index_lock(index_mutex_);
  return index_.size();
}

uint64_t FileAtomStore::TotalBytes() const {
  std::shared_lock index_lock(index_mutex_);
  return total_payload_bytes_;
}

Status FileAtomStore::Sync() {
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync");
  return Status::OK();
}

}  // namespace turbdb
