#include "storage/file_atom_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <vector>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/logging.h"

namespace turbdb {

namespace {

constexpr uint32_t kRecordMagic = 0x4D544154;  // 'TATM'

#pragma pack(push, 1)
struct RecordHeader {
  uint32_t magic;
  int32_t timestep;
  uint64_t zindex;
  int32_t width;
  int32_t ncomp;
  uint32_t payload_bytes;
  uint32_t crc;
};
#pragma pack(pop)

static_assert(sizeof(RecordHeader) == 32, "unexpected header padding");

Status ErrnoStatus(const std::string& op) {
  return Status::IOError(op + ": " + std::strerror(errno));
}

}  // namespace

FileAtomStore::FileAtomStore(std::string path, int fd)
    : path_(std::move(path)), fd_(fd) {}

FileAtomStore::~FileAtomStore() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<FileAtomStore>> FileAtomStore::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  std::unique_ptr<FileAtomStore> store(new FileAtomStore(path, fd));
  TURBDB_RETURN_NOT_OK(store->LoadIndex());
  return store;
}

Status FileAtomStore::LoadIndex() {
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return ErrnoStatus("lseek");
  uint64_t offset = 0;
  while (offset + sizeof(RecordHeader) <= static_cast<uint64_t>(end)) {
    RecordHeader header;
    const ssize_t n =
        ::pread(fd_, &header, sizeof(header), static_cast<off_t>(offset));
    if (n != static_cast<ssize_t>(sizeof(header))) {
      return ErrnoStatus("pread header");
    }
    if (header.magic != kRecordMagic) {
      return Status::Corruption("bad record magic at offset " +
                                std::to_string(offset));
    }
    const uint64_t record_size = sizeof(RecordHeader) + header.payload_bytes;
    if (offset + record_size > static_cast<uint64_t>(end)) {
      // Torn final record from an interrupted append: truncate it away.
      TURBDB_LOG(Warning) << "truncating torn record at offset " << offset
                          << " in " << path_;
      if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
        return ErrnoStatus("ftruncate");
      }
      break;
    }
    IndexEntry entry;
    entry.offset = offset;
    entry.payload_bytes = header.payload_bytes;
    entry.width = header.width;
    entry.ncomp = header.ncomp;
    // A later record for the same key wins (Repair appends a fresh copy
    // and strands the old bytes); keep the byte accounting consistent.
    const AtomKey key{header.timestep, header.zindex};
    auto it = index_.find(key);
    if (it != index_.end()) {
      total_payload_bytes_ -= it->second.payload_bytes;
      it->second = entry;
    } else {
      index_.emplace(key, entry);
    }
    total_payload_bytes_ += header.payload_bytes;
    offset += record_size;
  }
  file_size_ = offset;
  return Status::OK();
}

Status FileAtomStore::AppendRecord(const Atom& atom, bool replace) {
  const uint32_t payload_bytes =
      static_cast<uint32_t>(atom.data.size() * sizeof(float));
  RecordHeader header;
  header.magic = kRecordMagic;
  header.timestep = atom.key.timestep;
  header.zindex = atom.key.zindex;
  header.width = atom.width;
  header.ncomp = atom.ncomp;
  header.payload_bytes = payload_bytes;
  header.crc = Crc32(atom.data.data(), payload_bytes);

  std::lock_guard<std::mutex> write_lock(write_mutex_);
  {
    std::shared_lock index_lock(index_mutex_);
    if (!replace && index_.count(atom.key)) {
      return Status::AlreadyExists("atom already stored");
    }
  }
  // Build one contiguous buffer so the append is a single pwrite (keeps
  // torn-record handling simple: either the header+payload prefix is
  // complete or LoadIndex truncates it).
  std::vector<uint8_t> buffer(sizeof(header) + payload_bytes);
  std::memcpy(buffer.data(), &header, sizeof(header));
  std::memcpy(buffer.data() + sizeof(header), atom.data.data(), payload_bytes);
  const ssize_t n = ::pwrite(fd_, buffer.data(), buffer.size(),
                             static_cast<off_t>(file_size_));
  if (n != static_cast<ssize_t>(buffer.size())) {
    return ErrnoStatus("pwrite");
  }
  IndexEntry entry;
  entry.offset = file_size_;
  entry.payload_bytes = payload_bytes;
  entry.width = atom.width;
  entry.ncomp = atom.ncomp;
  {
    std::unique_lock index_lock(index_mutex_);
    auto it = index_.find(atom.key);
    if (it != index_.end()) {
      total_payload_bytes_ -= it->second.payload_bytes;
      it->second = entry;
    } else {
      index_.emplace(atom.key, entry);
    }
    file_size_ += buffer.size();
    total_payload_bytes_ += payload_bytes;
    quarantine_.erase(atom.key);
  }
  return Status::OK();
}

Status FileAtomStore::Put(const Atom& atom) {
  return AppendRecord(atom, /*replace=*/false);
}

Status FileAtomStore::Repair(const Atom& atom) {
  // The old record becomes dead bytes in the file; LoadIndex keeps the
  // later record for the key on reopen, so the heal survives a restart.
  return AppendRecord(atom, /*replace=*/true);
}

Status FileAtomStore::CorruptionAt(const char* what, const AtomKey& key,
                                   uint64_t offset) const {
  return Status::Corruption(std::string(what) + " for atom z=" +
                            std::to_string(key.zindex) + " t=" +
                            std::to_string(key.timestep) + " at offset " +
                            std::to_string(offset) + " in " + path_);
}

Result<Atom> FileAtomStore::ReadRecord(const AtomKey& key,
                                       const IndexEntry& entry) const {
  if (fault::Enabled()) {
    // store.bit_flip: corrupt the stored copy for real — XOR one payload
    // byte on disk (arg = offset within the payload) — then read it back
    // normally, so the checksum path detects genuine on-media damage.
    if (auto injected = fault::Check("store.bit_flip")) {
      const uint64_t at = entry.offset + sizeof(RecordHeader) +
                          (entry.payload_bytes
                               ? injected.arg % entry.payload_bytes
                               : 0);
      uint8_t byte = 0;
      if (::pread(fd_, &byte, 1, static_cast<off_t>(at)) == 1) {
        byte ^= 0xFF;
        (void)!::pwrite(fd_, &byte, 1, static_cast<off_t>(at));
        TURBDB_LOG(Warning) << "fault store.bit_flip: flipped byte at offset "
                            << at << " in " << path_;
      }
    }
  }
  RecordHeader header;
  ssize_t n = ::pread(fd_, &header, sizeof(header),
                      static_cast<off_t>(entry.offset));
  if (n != static_cast<ssize_t>(sizeof(header))) {
    return ErrnoStatus("pread header");
  }
  if (header.magic != kRecordMagic || header.timestep != key.timestep ||
      header.zindex != key.zindex) {
    return CorruptionAt("index/record mismatch", key, entry.offset);
  }
  Atom atom;
  atom.key = key;
  atom.width = header.width;
  atom.ncomp = header.ncomp;
  atom.data.resize(header.payload_bytes / sizeof(float));
  n = ::pread(fd_, atom.data.data(), header.payload_bytes,
              static_cast<off_t>(entry.offset + sizeof(header)));
  if (n != static_cast<ssize_t>(header.payload_bytes)) {
    return ErrnoStatus("pread payload");
  }
  const uint32_t crc = Crc32(atom.data.data(), header.payload_bytes);
  if (crc != header.crc) {
    return CorruptionAt("checksum mismatch", key, entry.offset);
  }
  return atom;
}

Result<Atom> FileAtomStore::Get(const AtomKey& key) const {
  IndexEntry entry;
  {
    std::shared_lock index_lock(index_mutex_);
    auto it = index_.find(key);
    if (it == index_.end()) return Status::NotFound("atom not found");
    if (quarantine_.count(key)) {
      return CorruptionAt("quarantined (known corrupt)", key,
                          it->second.offset);
    }
    entry = it->second;
  }
  auto atom = ReadRecord(key, entry);
  if (!atom.ok() && atom.status().IsCorruption()) {
    std::unique_lock index_lock(index_mutex_);
    quarantine_.insert(key);
  }
  return atom;
}

bool FileAtomStore::Contains(const AtomKey& key) const {
  std::shared_lock index_lock(index_mutex_);
  return index_.count(key) > 0;
}

Status FileAtomStore::Scan(int32_t timestep, const MortonRange& range,
                           const std::function<void(const Atom&)>& fn) const {
  // Snapshot the matching index entries, then read without the lock.
  std::vector<std::pair<AtomKey, IndexEntry>> entries;
  {
    std::shared_lock index_lock(index_mutex_);
    auto it = index_.lower_bound(AtomKey{timestep, range.lo});
    for (; it != index_.end(); ++it) {
      if (it->first.timestep != timestep || it->first.zindex >= range.hi) {
        break;
      }
      if (quarantine_.count(it->first)) {
        return CorruptionAt("quarantined (known corrupt)", it->first,
                            it->second.offset);
      }
      entries.push_back(*it);
    }
  }
  for (const auto& [key, entry] : entries) {
    auto atom = ReadRecord(key, entry);
    if (!atom.ok()) {
      if (atom.status().IsCorruption()) {
        std::unique_lock index_lock(index_mutex_);
        quarantine_.insert(key);
      }
      return atom.status();
    }
    fn(*atom);
  }
  return Status::OK();
}

uint64_t FileAtomStore::AtomCount() const {
  std::shared_lock index_lock(index_mutex_);
  return index_.size();
}

uint64_t FileAtomStore::TotalBytes() const {
  std::shared_lock index_lock(index_mutex_);
  return total_payload_bytes_;
}

Status FileAtomStore::Sync() {
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync");
  return Status::OK();
}

VerifyReport FileAtomStore::Verify(const std::function<void(uint64_t)>& pace) {
  // Snapshot the index, then read record-by-record without the lock so
  // the sweep never blocks queries or ingest.
  std::vector<std::pair<AtomKey, IndexEntry>> entries;
  {
    std::shared_lock index_lock(index_mutex_);
    entries.assign(index_.begin(), index_.end());
  }
  VerifyReport report;
  std::vector<uint8_t> payload;
  for (const auto& [key, entry] : entries) {
    bool clean = false;
    RecordHeader header;
    ssize_t n = ::pread(fd_, &header, sizeof(header),
                        static_cast<off_t>(entry.offset));
    if (n == static_cast<ssize_t>(sizeof(header)) &&
        header.magic == kRecordMagic && header.timestep == key.timestep &&
        header.zindex == key.zindex &&
        header.payload_bytes == entry.payload_bytes) {
      payload.resize(header.payload_bytes);
      n = ::pread(fd_, payload.data(), header.payload_bytes,
                  static_cast<off_t>(entry.offset + sizeof(header)));
      clean = n == static_cast<ssize_t>(header.payload_bytes) &&
              Crc32(payload.data(), header.payload_bytes) == header.crc;
    }
    if (clean) {
      ++report.atoms_verified;
      report.bytes_verified += entry.payload_bytes;
    } else {
      ++report.atoms_corrupt;
      report.corrupt.push_back(key);
      TURBDB_LOG(Warning) << "scrub: "
                          << CorruptionAt("verification failed", key,
                                          entry.offset)
                                 .ToString();
    }
    {
      // Verification is the ground truth for quarantine membership: a
      // repaired (or transiently mis-read) atom that now checks out is
      // released; a newly rotted one is held.
      std::unique_lock index_lock(index_mutex_);
      if (clean) {
        quarantine_.erase(key);
      } else {
        quarantine_.insert(key);
      }
    }
    if (pace) pace(entry.payload_bytes);
  }
  return report;
}

Status FileAtomStore::DigestRows(std::vector<AtomDigest>* rows) const {
  std::vector<std::pair<AtomKey, IndexEntry>> entries;
  {
    std::shared_lock index_lock(index_mutex_);
    entries.assign(index_.begin(), index_.end());
  }
  rows->reserve(rows->size() + entries.size());
  std::vector<uint8_t> payload;
  for (const auto& [key, entry] : entries) {
    payload.resize(entry.payload_bytes);
    const ssize_t n =
        ::pread(fd_, payload.data(), entry.payload_bytes,
                static_cast<off_t>(entry.offset + sizeof(RecordHeader)));
    if (n != static_cast<ssize_t>(entry.payload_bytes)) {
      return ErrnoStatus("pread payload");
    }
    AtomDigest row;
    row.timestep = key.timestep;
    row.zindex = key.zindex;
    row.bytes = entry.payload_bytes;
    row.crc = Crc32(payload.data(), entry.payload_bytes);
    rows->push_back(row);
  }
  return Status::OK();
}

uint64_t FileAtomStore::QuarantinedCount() const {
  std::shared_lock index_lock(index_mutex_);
  return quarantine_.size();
}

}  // namespace turbdb
