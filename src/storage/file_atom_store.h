#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "storage/atom_store.h"

namespace turbdb {

/// Durable atom storage: a single append-only data file plus an in-memory
/// key -> offset index rebuilt by scanning record headers at open time.
///
/// On-disk record format (little-endian):
///   u32 magic            'TATM'
///   i32 timestep
///   u64 zindex
///   i32 width
///   i32 ncomp
///   u32 payload_bytes
///   u32 crc32(payload)
///   f32 payload[width^3 * ncomp]
///
/// Writes are serialized by a mutex; reads use pread(2) and may run
/// concurrently with each other. CRC mismatches surface as kCorruption.
class FileAtomStore : public AtomStore {
 public:
  ~FileAtomStore() override;

  /// Opens (creating if needed) the store backed by `path`. Existing
  /// records are indexed; a torn final record (e.g. crash mid-append) is
  /// truncated away.
  static Result<std::unique_ptr<FileAtomStore>> Open(const std::string& path);

  Status Put(const Atom& atom) override;
  Result<Atom> Get(const AtomKey& key) const override;
  bool Contains(const AtomKey& key) const override;
  Status Scan(int32_t timestep, const MortonRange& range,
              const std::function<void(const Atom&)>& fn) const override;
  uint64_t AtomCount() const override;
  uint64_t TotalBytes() const override;

  /// fsyncs the data file.
  Status Sync() override;

  const std::string& path() const { return path_; }

 private:
  struct IndexEntry {
    uint64_t offset = 0;       ///< Offset of the record header.
    uint32_t payload_bytes = 0;
    int32_t width = 0;
    int32_t ncomp = 0;
  };

  FileAtomStore(std::string path, int fd);

  Status LoadIndex();
  Result<Atom> ReadRecord(const AtomKey& key, const IndexEntry& entry) const;

  std::string path_;
  int fd_ = -1;
  mutable std::mutex write_mutex_;
  mutable std::shared_mutex index_mutex_;
  std::map<AtomKey, IndexEntry> index_;
  uint64_t file_size_ = 0;
  uint64_t total_payload_bytes_ = 0;
};

}  // namespace turbdb
