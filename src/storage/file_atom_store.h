#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "storage/atom_store.h"

namespace turbdb {

/// Durable atom storage: a single append-only data file plus an in-memory
/// key -> offset index rebuilt by scanning record headers at open time.
///
/// On-disk record format (little-endian):
///   u32 magic            'TATM'
///   i32 timestep
///   u64 zindex
///   i32 width
///   i32 ncomp
///   u32 payload_bytes
///   u32 crc32(payload)
///   f32 payload[width^3 * ncomp]
///
/// Writes are serialized by a mutex; reads use pread(2) and may run
/// concurrently with each other. CRC mismatches surface as kCorruption.
class FileAtomStore : public AtomStore {
 public:
  ~FileAtomStore() override;

  /// Opens (creating if needed) the store backed by `path`. Existing
  /// records are indexed; a torn final record (e.g. crash mid-append) is
  /// truncated away.
  static Result<std::unique_ptr<FileAtomStore>> Open(const std::string& path);

  Status Put(const Atom& atom) override;
  Result<Atom> Get(const AtomKey& key) const override;
  bool Contains(const AtomKey& key) const override;
  Status Scan(int32_t timestep, const MortonRange& range,
              const std::function<void(const Atom&)>& fn) const override;
  uint64_t AtomCount() const override;
  uint64_t TotalBytes() const override;

  /// fsyncs the data file.
  Status Sync() override;

  /// Full checksum sweep; atoms whose payload no longer matches the
  /// recorded CRC (or whose header disagrees with the index) are
  /// quarantined so later reads fast-fail instead of serving bad bytes.
  VerifyReport Verify(const std::function<void(uint64_t)>& pace = {}) override;

  /// Content digests recomputed from the bytes on disk right now, so a
  /// rotted payload diverges from a healthy replica's row even though
  /// both carry the same header CRC.
  Status DigestRows(std::vector<AtomDigest>* rows) const override;

  /// Appends a fresh record for the atom and repoints the index at it
  /// (the old record becomes dead bytes; reopen keeps the later record).
  /// Clears any quarantine on the key.
  Status Repair(const Atom& atom) override;

  uint64_t QuarantinedCount() const override;

  const std::string& path() const { return path_; }

 private:
  struct IndexEntry {
    uint64_t offset = 0;       ///< Offset of the record header.
    uint32_t payload_bytes = 0;
    int32_t width = 0;
    int32_t ncomp = 0;
  };

  FileAtomStore(std::string path, int fd);

  Status LoadIndex();
  Result<Atom> ReadRecord(const AtomKey& key, const IndexEntry& entry) const;

  /// Detailed kCorruption with the file path, atom z-index and byte
  /// offset, so an operator can find the bad block without a debugger.
  Status CorruptionAt(const char* what, const AtomKey& key,
                      uint64_t offset) const;

  /// Appends a record for `atom` at the current tail and updates the
  /// index (replacing a prior entry for the key if `replace`). Caller
  /// must NOT hold write_mutex_.
  Status AppendRecord(const Atom& atom, bool replace);

  std::string path_;
  int fd_ = -1;
  mutable std::mutex write_mutex_;
  mutable std::shared_mutex index_mutex_;
  std::map<AtomKey, IndexEntry> index_;
  /// Keys confirmed corrupt by a read or a scrub sweep; guarded by
  /// index_mutex_. Reads fast-fail kCorruption until Repair clears it.
  mutable std::set<AtomKey> quarantine_;
  uint64_t file_size_ = 0;
  uint64_t total_payload_bytes_ = 0;
};

}  // namespace turbdb
