#include "storage/merkle.h"

#include <algorithm>

#include "common/crc32.h"

namespace turbdb {

namespace {

/// Folds one digest row into a leaf digest. The CRC seed-chaining makes
/// the leaf a CRC-of-CRCs: order-sensitive, but rows arrive in key
/// order on every replica, so equal contents give equal leaves.
uint64_t FoldRow(uint64_t digest, const AtomDigest& row) {
  uint64_t fields[3] = {row.zindex, row.crc, row.bytes};
  return Crc32(fields, sizeof(fields), static_cast<uint32_t>(digest));
}

/// Interior node: hash of the two children (or one, at an odd edge).
uint64_t FoldPair(uint64_t left, uint64_t right) {
  uint64_t pair[2] = {left, right};
  return Crc32(pair, sizeof(pair));
}

}  // namespace

MerkleTree BuildMerkleTree(const std::vector<AtomDigest>& rows,
                           uint32_t leaf_shift) {
  MerkleTree tree;
  tree.leaf_shift = leaf_shift;
  for (const AtomDigest& row : rows) {
    const uint64_t bucket = row.zindex >> leaf_shift;
    if (tree.leaves.empty() ||
        tree.leaves.back().timestep != row.timestep ||
        tree.leaves.back().leaf != bucket) {
      MerkleLeaf leaf;
      leaf.timestep = row.timestep;
      leaf.leaf = bucket;
      tree.leaves.push_back(leaf);
    }
    MerkleLeaf& leaf = tree.leaves.back();
    // Mix the bucket coordinates in with the first row so an empty-ish
    // leaf at bucket 0 still differs from one at bucket 1.
    if (leaf.atoms == 0) {
      uint64_t coords[2] = {static_cast<uint64_t>(leaf.timestep), leaf.leaf};
      leaf.digest = Crc32(coords, sizeof(coords));
    }
    leaf.digest = FoldRow(leaf.digest, row);
    ++leaf.atoms;
  }
  // Reduce pairwise up to the root; a lone node at the end of a level
  // is folded with itself so tree shape stays deterministic.
  std::vector<uint64_t> level;
  level.reserve(tree.leaves.size());
  for (const MerkleLeaf& leaf : tree.leaves) level.push_back(leaf.digest);
  while (level.size() > 1) {
    std::vector<uint64_t> next;
    next.reserve((level.size() + 1) / 2);
    for (size_t i = 0; i < level.size(); i += 2) {
      const uint64_t right = i + 1 < level.size() ? level[i + 1] : level[i];
      next.push_back(FoldPair(level[i], right));
    }
    level.swap(next);
  }
  tree.root = level.empty() ? 0 : level[0];
  return tree;
}

std::vector<MerkleRange> DiffMerkleTrees(const MerkleTree& mine,
                                         const MerkleTree& theirs) {
  std::vector<MerkleRange> diverged;
  if (mine.leaf_shift == theirs.leaf_shift && mine.root == theirs.root) {
    return diverged;
  }
  const uint32_t shift = mine.leaf_shift;
  auto emit = [&](int32_t timestep, uint64_t bucket) {
    MerkleRange range;
    range.timestep = timestep;
    range.begin = bucket << shift;
    range.end = (bucket + 1) << shift;
    diverged.push_back(range);
  };
  // Merge-walk the two sorted leaf lists; a bucket present on one side
  // only, or present on both with different digests, is divergent.
  size_t i = 0, j = 0;
  auto before = [](const MerkleLeaf& a, const MerkleLeaf& b) {
    return a.timestep != b.timestep ? a.timestep < b.timestep
                                    : a.leaf < b.leaf;
  };
  while (i < mine.leaves.size() || j < theirs.leaves.size()) {
    if (j >= theirs.leaves.size() ||
        (i < mine.leaves.size() && before(mine.leaves[i], theirs.leaves[j]))) {
      emit(mine.leaves[i].timestep, mine.leaves[i].leaf);
      ++i;
    } else if (i >= mine.leaves.size() ||
               before(theirs.leaves[j], mine.leaves[i])) {
      emit(theirs.leaves[j].timestep, theirs.leaves[j].leaf);
      ++j;
    } else {
      if (mine.leaves[i].digest != theirs.leaves[j].digest) {
        emit(mine.leaves[i].timestep, mine.leaves[i].leaf);
      }
      ++i;
      ++j;
    }
  }
  return diverged;
}

}  // namespace turbdb
