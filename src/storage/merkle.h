#pragma once

// Morton-range Merkle digest over a store's atoms, the anti-entropy
// primitive: two replicas that hold the same logical contents produce
// the same root, and when the roots differ the per-leaf digests locate
// the divergent (timestep, z-range) buckets without shipping any atom
// payloads. A leaf covers a fixed-width z-range (2^leaf_shift Morton
// codes) of one timestep and digests the *content* CRCs of its atoms —
// recomputed from the stored bytes, so bit rot that leaves the header
// CRC intact still diverges the tree.

#include <cstdint>
#include <vector>

#include "storage/atom_store.h"

namespace turbdb {

/// Default leaf width: 2^10 Morton codes per leaf keeps the leaf count
/// small (a 64^3 grid of 8^3 atoms has 512 codes per timestep) while
/// still bounding a repair transfer to a modest bucket.
constexpr uint32_t kDefaultMerkleLeafShift = 10;

/// One non-empty leaf of the tree.
struct MerkleLeaf {
  int32_t timestep = 0;
  uint64_t leaf = 0;      ///< Bucket index: zindex >> leaf_shift.
  uint64_t digest = 0;    ///< CRC-of-CRCs over the bucket's atoms.
  uint64_t atoms = 0;     ///< Atoms digested into this leaf.
};

/// A divergent z-range between two trees, in SyncRange coordinates
/// ([begin, end) Morton codes of one timestep).
struct MerkleRange {
  int32_t timestep = 0;
  uint64_t begin = 0;
  uint64_t end = 0;  ///< Exclusive.
};

/// The built tree: the root plus the non-empty leaves (interior levels
/// are recomputable from the leaves, so only these go on the wire).
struct MerkleTree {
  uint32_t leaf_shift = kDefaultMerkleLeafShift;
  uint64_t root = 0;  ///< 0 iff the store is empty.
  std::vector<MerkleLeaf> leaves;

  uint64_t AtomCount() const {
    uint64_t n = 0;
    for (const MerkleLeaf& leaf : leaves) n += leaf.atoms;
    return n;
  }
};

/// Builds the tree from digest rows (must be in key order, as
/// AtomStore::DigestRows emits them).
MerkleTree BuildMerkleTree(const std::vector<AtomDigest>& rows,
                           uint32_t leaf_shift = kDefaultMerkleLeafShift);

/// Leaves whose digests differ between the two trees — including
/// buckets present on only one side — as repair-ready z-ranges. Both
/// trees must use the same leaf_shift. Identical roots short-circuit to
/// an empty list.
std::vector<MerkleRange> DiffMerkleTrees(const MerkleTree& mine,
                                         const MerkleTree& theirs);

}  // namespace turbdb
