#include "storage/scrub.h"

#include <chrono>

#include "common/fault.h"
#include "common/logging.h"
#include "storage/merkle.h"

namespace turbdb {

namespace {

uint64_t NowUnixMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace

Scrubber::Scrubber(Options options, ListStoresFn list_stores, RepairFn repair)
    : options_(options),
      list_stores_(std::move(list_stores)),
      repair_(std::move(repair)) {}

Scrubber::~Scrubber() { Stop(); }

void Scrubber::Start() {
  if (options_.interval_s <= 0) return;
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (thread_.joinable()) return;
  stop_ = false;
  thread_ = std::thread([this] { Loop(); });
}

void Scrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void Scrubber::Loop() {
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stop_) {
    const auto interval = std::chrono::seconds(options_.interval_s);
    if (wake_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    RunPass();
    lock.lock();
  }
}

void Scrubber::Throttle(uint64_t* window_bytes,
                        std::chrono::steady_clock::time_point* window_start,
                        uint64_t bytes) const {
  if (options_.rate_mb <= 0) return;
  *window_bytes += bytes;
  const double budget_per_ms =
      static_cast<double>(options_.rate_mb) * 1024.0 * 1024.0 / 1000.0;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - *window_start)
                           .count();
  const double earned_ms = static_cast<double>(*window_bytes) / budget_per_ms;
  if (earned_ms > static_cast<double>(elapsed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(
        static_cast<int64_t>(earned_ms) - elapsed));
  }
}

Scrubber::Totals Scrubber::RunPass() {
  std::lock_guard<std::mutex> pass_lock(pass_mutex_);
  // scrub.stall: chaos hook to hold a pass at its start (arg = ms), so
  // tests can assert queries stay healthy while the scrubber is wedged.
  if (auto injected = fault::Check("scrub.stall")) {
    std::this_thread::sleep_for(std::chrono::milliseconds(injected.arg));
  }
  uint64_t window_bytes = 0;
  auto window_start = std::chrono::steady_clock::now();
  uint64_t pass_verified = 0, pass_corrupt = 0, pass_repaired = 0;
  uint64_t pass_bytes = 0;
  for (const StoreRef& ref : list_stores_()) {
    if (ref.store == nullptr) continue;
    VerifyReport report = ref.store->Verify([&](uint64_t bytes) {
      Throttle(&window_bytes, &window_start, bytes);
    });
    uint64_t repaired = 0;
    if (report.atoms_corrupt > 0) {
      TURBDB_LOG(Warning) << "scrub: " << report.atoms_corrupt
                          << " corrupt atom(s) in " << ref.dataset << "/"
                          << ref.field;
      if (repair_) repaired = repair_(ref.dataset, ref.field);
    }
    // The root reflects the store as the pass leaves it — after any
    // repair — so converged replicas report identical digests.
    uint64_t root = 0;
    std::vector<AtomDigest> rows;
    if (ref.store->DigestRows(&rows).ok()) {
      root = BuildMerkleTree(rows).root;
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mutex_);
      StoreStats& stats = stats_[ref.dataset + "/" + ref.field];
      stats.dataset = ref.dataset;
      stats.field = ref.field;
      stats.atoms_verified = report.atoms_verified;
      stats.atoms_corrupt = report.atoms_corrupt;
      stats.atoms_repaired += repaired;
      stats.atoms_quarantined = ref.store->QuarantinedCount();
      stats.bytes_verified = report.bytes_verified;
      ++stats.passes;
      stats.merkle_root = root;
    }
    pass_verified += report.atoms_verified;
    pass_corrupt += report.atoms_corrupt;
    pass_repaired += repaired;
    pass_bytes += report.bytes_verified;
  }
  std::lock_guard<std::mutex> stats_lock(stats_mutex_);
  ++totals_.passes;
  totals_.atoms_verified += pass_verified;
  totals_.atoms_corrupt += pass_corrupt;
  totals_.atoms_repaired += pass_repaired;
  totals_.bytes_verified += pass_bytes;
  totals_.last_pass_unix_ms = NowUnixMs();
  return totals_;
}

Scrubber::Totals Scrubber::totals() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return totals_;
}

std::vector<Scrubber::StoreStats> Scrubber::Snapshot() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  std::vector<StoreStats> out;
  out.reserve(stats_.size());
  for (const auto& [key, stats] : stats_) out.push_back(stats);
  return out;
}

}  // namespace turbdb
