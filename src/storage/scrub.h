#pragma once

// Rate-limited background scrubber: a per-node thread that walks every
// open store off the query read path, re-verifies atom checksums,
// quarantines what failed, and (through an injected repair hook) heals
// corrupt stores from a healthy replica. The scrubber knows nothing of
// the cluster — callers hand it a store-listing callback and a repair
// callback, keeping the storage layer free of upward dependencies.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "storage/atom_store.h"

namespace turbdb {

class Scrubber {
 public:
  struct Options {
    /// Seconds between background passes; 0 disables the thread (passes
    /// then run only on demand, e.g. from the scrub RPC).
    int interval_s = 0;
    /// Read-rate budget in MB/s for a pass; 0 = unthrottled.
    int rate_mb = 0;
  };

  /// One open store, as reported by the listing callback. The pointer
  /// must stay valid for the scrubber's lifetime (stores are never
  /// closed while a node runs).
  struct StoreRef {
    std::string dataset;
    std::string field;
    AtomStore* store = nullptr;
  };

  /// Per-store results of the most recent pass, plus lifetime counters.
  struct StoreStats {
    std::string dataset;
    std::string field;
    uint64_t atoms_verified = 0;     ///< Clean atoms, last pass.
    uint64_t atoms_corrupt = 0;      ///< Failures found, last pass.
    uint64_t atoms_repaired = 0;     ///< Healed via the repair hook, ever.
    uint64_t atoms_quarantined = 0;  ///< Still quarantined right now.
    uint64_t bytes_verified = 0;     ///< Payload bytes checked, last pass.
    uint64_t passes = 0;             ///< Passes over this store, ever.
    uint64_t merkle_root = 0;        ///< Content digest after the pass.
  };

  struct Totals {
    uint64_t passes = 0;  ///< Full passes completed (all stores).
    uint64_t atoms_verified = 0;
    uint64_t atoms_corrupt = 0;
    uint64_t atoms_repaired = 0;
    uint64_t bytes_verified = 0;
    uint64_t last_pass_unix_ms = 0;  ///< Wall-clock end of the last pass.
  };

  using ListStoresFn = std::function<std::vector<StoreRef>()>;
  /// Invoked when a pass leaves (dataset, field) with corrupt atoms;
  /// returns how many atoms it repaired (0 if no healthy peer).
  using RepairFn =
      std::function<uint64_t(const std::string&, const std::string&)>;

  Scrubber(Options options, ListStoresFn list_stores, RepairFn repair = {});
  ~Scrubber();

  Scrubber(const Scrubber&) = delete;
  Scrubber& operator=(const Scrubber&) = delete;

  /// Launches the background thread (no-op when interval_s == 0).
  void Start();

  /// Stops and joins the background thread; idempotent.
  void Stop();

  /// Runs one synchronous full pass over every listed store (the scrub
  /// RPC path; also what the background thread calls). Thread-safe, but
  /// concurrent passes serialize.
  Totals RunPass();

  Totals totals() const;
  std::vector<StoreStats> Snapshot() const;

 private:
  void Loop();
  /// Pacer handed to AtomStore::Verify; sleeps as needed to keep the
  /// pass under rate_mb.
  void Throttle(uint64_t* window_bytes,
                std::chrono::steady_clock::time_point* window_start,
                uint64_t bytes) const;

  const Options options_;
  const ListStoresFn list_stores_;
  const RepairFn repair_;

  std::mutex pass_mutex_;  ///< Serializes RunPass.

  mutable std::mutex stats_mutex_;
  std::map<std::string, StoreStats> stats_;  ///< Keyed dataset + "/" + field.
  Totals totals_;

  std::mutex thread_mutex_;
  std::condition_variable wake_;
  std::thread thread_;
  bool stop_ = false;
};

}  // namespace turbdb
