#include "storage/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "common/crc32.h"
#include "common/fault.h"
#include "common/logging.h"

namespace turbdb {

namespace {

constexpr uint32_t kWalMagic = 0x4C415754;  // 'TWAL'
constexpr size_t kFrameBytes = 12;          // magic + payload_bytes + crc.

Status ErrnoStatus(const std::string& op) {
  return Status::IOError(op + ": " + std::strerror(errno));
}

void PutU16(std::vector<uint8_t>* out, uint16_t value) {
  out->push_back(static_cast<uint8_t>(value));
  out->push_back(static_cast<uint8_t>(value >> 8));
}

void PutU32(std::vector<uint8_t>* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

void PutU64(std::vector<uint8_t>* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(value >> (8 * i)));
  }
}

bool GetU16(const uint8_t* data, size_t size, size_t* pos, uint16_t* value) {
  if (*pos + 2 > size) return false;
  *value = static_cast<uint16_t>(data[*pos] | (data[*pos + 1] << 8));
  *pos += 2;
  return true;
}

bool GetU32(const uint8_t* data, size_t size, size_t* pos, uint32_t* value) {
  if (*pos + 4 > size) return false;
  *value = 0;
  for (int i = 0; i < 4; ++i) {
    *value |= static_cast<uint32_t>(data[*pos + static_cast<size_t>(i)])
              << (8 * i);
  }
  *pos += 4;
  return true;
}

bool GetU64(const uint8_t* data, size_t size, size_t* pos, uint64_t* value) {
  if (*pos + 8 > size) return false;
  *value = 0;
  for (int i = 0; i < 8; ++i) {
    *value |= static_cast<uint64_t>(data[*pos + static_cast<size_t>(i)])
              << (8 * i);
  }
  *pos += 8;
  return true;
}

/// Serializes one record's payload (everything the frame CRC covers).
std::vector<uint8_t> EncodePayload(const std::string& dataset,
                                   const std::string& field,
                                   const Atom& atom) {
  std::vector<uint8_t> out;
  const uint32_t data_bytes =
      static_cast<uint32_t>(atom.data.size() * sizeof(float));
  out.reserve(dataset.size() + field.size() + 28 + data_bytes);
  PutU16(&out, static_cast<uint16_t>(dataset.size()));
  out.insert(out.end(), dataset.begin(), dataset.end());
  PutU16(&out, static_cast<uint16_t>(field.size()));
  out.insert(out.end(), field.begin(), field.end());
  PutU32(&out, static_cast<uint32_t>(atom.key.timestep));
  PutU64(&out, atom.key.zindex);
  PutU32(&out, static_cast<uint32_t>(atom.width));
  PutU32(&out, static_cast<uint32_t>(atom.ncomp));
  const size_t data_offset = out.size();
  out.resize(out.size() + data_bytes);
  std::memcpy(out.data() + data_offset, atom.data.data(), data_bytes);
  return out;
}

bool DecodePayload(const uint8_t* data, size_t size,
                   WriteAheadLog::Record* record) {
  size_t pos = 0;
  uint16_t len = 0;
  if (!GetU16(data, size, &pos, &len) || pos + len > size) return false;
  record->dataset.assign(reinterpret_cast<const char*>(data + pos), len);
  pos += len;
  if (!GetU16(data, size, &pos, &len) || pos + len > size) return false;
  record->field.assign(reinterpret_cast<const char*>(data + pos), len);
  pos += len;
  uint32_t timestep = 0;
  uint64_t zindex = 0;
  uint32_t width = 0;
  uint32_t ncomp = 0;
  if (!GetU32(data, size, &pos, &timestep) ||
      !GetU64(data, size, &pos, &zindex) ||
      !GetU32(data, size, &pos, &width) || !GetU32(data, size, &pos, &ncomp)) {
    return false;
  }
  record->atom.key.timestep = static_cast<int32_t>(timestep);
  record->atom.key.zindex = zindex;
  record->atom.width = static_cast<int32_t>(width);
  record->atom.ncomp = static_cast<int32_t>(ncomp);
  if (width == 0 || width > 256 || ncomp == 0 || ncomp > 64) return false;
  const size_t values = static_cast<size_t>(width) * width * width * ncomp;
  if (size - pos != values * sizeof(float)) return false;
  record->atom.data.resize(values);
  std::memcpy(record->atom.data.data(), data + pos, values * sizeof(float));
  return true;
}

}  // namespace

WriteAheadLog::WriteAheadLog(std::string path, int fd, WalFsyncPolicy policy)
    : path_(std::move(path)), fd_(fd), policy_(policy) {}

WriteAheadLog::~WriteAheadLog() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& path, WalFsyncPolicy policy) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) return ErrnoStatus("open " + path);
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(path, fd, policy));
  TURBDB_RETURN_NOT_OK(wal->Recover());
  return std::move(wal);
}

Status WriteAheadLog::Recover() {
  const off_t end = ::lseek(fd_, 0, SEEK_END);
  if (end < 0) return ErrnoStatus("lseek " + path_);
  uint64_t offset = 0;
  uint64_t records = 0;
  while (offset + kFrameBytes <= static_cast<uint64_t>(end)) {
    uint8_t frame[kFrameBytes];
    if (::pread(fd_, frame, sizeof(frame), static_cast<off_t>(offset)) !=
        static_cast<ssize_t>(sizeof(frame))) {
      return ErrnoStatus("pread frame " + path_);
    }
    size_t pos = 0;
    uint32_t magic = 0;
    uint32_t payload_bytes = 0;
    uint32_t crc = 0;
    GetU32(frame, sizeof(frame), &pos, &magic);
    GetU32(frame, sizeof(frame), &pos, &payload_bytes);
    GetU32(frame, sizeof(frame), &pos, &crc);
    bool intact = magic == kWalMagic &&
                  offset + kFrameBytes + payload_bytes <=
                      static_cast<uint64_t>(end);
    std::vector<uint8_t> payload;
    if (intact) {
      payload.resize(payload_bytes);
      if (::pread(fd_, payload.data(), payload_bytes,
                  static_cast<off_t>(offset + kFrameBytes)) !=
          static_cast<ssize_t>(payload_bytes)) {
        return ErrnoStatus("pread payload " + path_);
      }
      intact = Crc32(payload.data(), payload.size()) == crc;
    }
    if (!intact) {
      // Torn or corrupt tail (crash mid-append): cut it and keep the
      // intact prefix. Anything after a bad record is unreachable anyway
      // since record boundaries are lost.
      TURBDB_LOG(Warning) << "wal " << path_ << ": truncating torn tail at "
                          << offset << " (" << (end - static_cast<off_t>(offset))
                          << " bytes dropped)";
      if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
        return ErrnoStatus("ftruncate " + path_);
      }
      tail_truncated_ = true;
      break;
    }
    offset += kFrameBytes + payload_bytes;
    ++records;
  }
  if (!tail_truncated_ && offset != static_cast<uint64_t>(end)) {
    // A partial frame header at the very end is also a torn tail.
    TURBDB_LOG(Warning) << "wal " << path_
                        << ": truncating partial frame header at " << offset;
    if (::ftruncate(fd_, static_cast<off_t>(offset)) != 0) {
      return ErrnoStatus("ftruncate " + path_);
    }
    tail_truncated_ = true;
  }
  file_size_ = offset;
  records_ = records;
  return Status::OK();
}

Status WriteAheadLog::Append(const std::string& dataset,
                             const std::string& field, const Atom& atom) {
  if (dataset.size() > UINT16_MAX || field.size() > UINT16_MAX) {
    return Status::InvalidArgument("wal record name too long");
  }
  const std::vector<uint8_t> payload = EncodePayload(dataset, field, atom);
  std::vector<uint8_t> buffer;
  buffer.reserve(kFrameBytes + payload.size());
  PutU32(&buffer, kWalMagic);
  PutU32(&buffer, static_cast<uint32_t>(payload.size()));
  PutU32(&buffer, Crc32(payload.data(), payload.size()));
  buffer.insert(buffer.end(), payload.begin(), payload.end());

  std::lock_guard<std::mutex> lock(mutex_);
  size_t write_bytes = buffer.size();
  if (const fault::Injected injected = fault::Check("wal.torn_tail")) {
    // Simulated crash mid-append: only a prefix of the record reaches the
    // file. The caller proceeds as if the write completed — recovery at
    // the next open must detect and drop the torn tail.
    write_bytes = std::min<size_t>(
        write_bytes, injected.action == fault::Action::kTruncate
                         ? static_cast<size_t>(injected.arg)
                         : write_bytes / 2);
  }
  const ssize_t n = ::pwrite(fd_, buffer.data(), write_bytes,
                             static_cast<off_t>(file_size_));
  if (n != static_cast<ssize_t>(write_bytes)) {
    return ErrnoStatus("pwrite " + path_);
  }
  file_size_ += write_bytes;
  if (write_bytes == buffer.size()) ++records_;
  if (policy_ == WalFsyncPolicy::kEveryAppend) {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_);
  }
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (policy_ == WalFsyncPolicy::kNever) return Status::OK();
  std::lock_guard<std::mutex> lock(mutex_);
  if (::fsync(fd_) != 0) return ErrnoStatus("fsync " + path_);
  return Status::OK();
}

Status WriteAheadLog::Replay(
    const std::function<Status(const Record&)>& fn) const {
  uint64_t end = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    end = file_size_;
  }
  uint64_t offset = 0;
  while (offset + kFrameBytes <= end) {
    uint8_t frame[kFrameBytes];
    if (::pread(fd_, frame, sizeof(frame), static_cast<off_t>(offset)) !=
        static_cast<ssize_t>(sizeof(frame))) {
      return ErrnoStatus("pread frame " + path_);
    }
    size_t pos = 0;
    uint32_t magic = 0;
    uint32_t payload_bytes = 0;
    uint32_t crc = 0;
    GetU32(frame, sizeof(frame), &pos, &magic);
    GetU32(frame, sizeof(frame), &pos, &payload_bytes);
    GetU32(frame, sizeof(frame), &pos, &crc);
    if (magic != kWalMagic || offset + kFrameBytes + payload_bytes > end) {
      return Status::Corruption("wal " + path_ + ": bad record at offset " +
                                std::to_string(offset));
    }
    std::vector<uint8_t> payload(payload_bytes);
    if (::pread(fd_, payload.data(), payload_bytes,
                static_cast<off_t>(offset + kFrameBytes)) !=
        static_cast<ssize_t>(payload_bytes)) {
      return ErrnoStatus("pread payload " + path_);
    }
    if (Crc32(payload.data(), payload.size()) != crc) {
      return Status::Corruption("wal " + path_ +
                                ": checksum mismatch at offset " +
                                std::to_string(offset));
    }
    Record record;
    if (!DecodePayload(payload.data(), payload.size(), &record)) {
      return Status::Corruption("wal " + path_ +
                                ": undecodable record at offset " +
                                std::to_string(offset));
    }
    TURBDB_RETURN_NOT_OK(fn(record));
    offset += kFrameBytes + payload_bytes;
  }
  return Status::OK();
}

Status WriteAheadLog::Truncate() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (::ftruncate(fd_, 0) != 0) return ErrnoStatus("ftruncate " + path_);
  if (policy_ != WalFsyncPolicy::kNever && ::fsync(fd_) != 0) {
    return ErrnoStatus("fsync " + path_);
  }
  file_size_ = 0;
  records_ = 0;
  return Status::OK();
}

uint64_t WriteAheadLog::pending_records() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return records_;
}

uint64_t WriteAheadLog::pending_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return file_size_;
}

}  // namespace turbdb
